/**
 * @file
 * `wanify-serve` — run the resident multi-query WAN-sharing service
 * over a mixed workload and report aggregate service metrics.
 *
 *   wanify-serve run [options]
 *   wanify-serve verify [options]
 *
 * Options:
 *   --queries N        workload size                  (default 300)
 *   --dcs N            cluster size                   (default 8)
 *   --concurrent N     admission cap                  (default 256)
 *   --policy P         maxmin | weighted              (default maxmin)
 *   --scheduler S      tetrium | kimchi | locality    (default tetrium)
 *   --epoch E          control-plane quantum seconds  (default 1)
 *   --window W         arrival window seconds         (default 60)
 *   --heavy F          heavy-query fraction           (default 0.08)
 *   --retrain-every K  republish the predictor every K completions
 *                      (default 0 = never)
 *   --no-model         plan from raw path capacities (skip the
 *                      shared predictor; much faster to start)
 *   --quiet            disable stationary OU fluctuation
 *   --seed S           base seed                      (default 1)
 *
 * `run` executes one drain and prints the report. `verify` runs the
 * same configuration twice and fails unless the two aggregate result
 * hashes are bit-identical — the service determinism contract under
 * CTest, same shape as `wanify-scenario verify`.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "experiments/predictor_factory.hh"
#include "experiments/testbed.hh"
#include "serve/service.hh"
#include "serve/workload.hh"

using namespace wanify;

namespace {

struct CliOptions
{
    std::size_t queries = 300;
    std::size_t dcs = 8;
    std::size_t concurrent = 256;
    serve::AllocPolicy policy = serve::AllocPolicy::MaxMinFair;
    serve::SchedulerKind scheduler = serve::SchedulerKind::Tetrium;
    Seconds epoch = 1.0;
    Seconds window = 60.0;
    double heavy = 0.08;
    std::size_t retrainEvery = 0;
    bool useModel = true;
    bool fluctuation = true;
    std::uint64_t seed = 1;
};

int
usage()
{
    std::printf(
        "usage: wanify-serve <command> [options]\n"
        "  run      drain one mixed workload and print the report\n"
        "  verify   drain the workload twice; fail unless the\n"
        "           aggregate result hashes are bit-identical\n"
        "options: --queries N --dcs N --concurrent N\n"
        "         --policy maxmin|weighted\n"
        "         --scheduler tetrium|kimchi|locality\n"
        "         --epoch E --window W --heavy F\n"
        "         --retrain-every K --no-model --quiet --seed S\n");
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, CliOptions &opts)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", what);
                return nullptr;
            }
            return argv[++i];
        };
        const char *v = nullptr;
        if (arg == "--queries") {
            if ((v = next("--queries")) == nullptr)
                return false;
            opts.queries = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--dcs") {
            if ((v = next("--dcs")) == nullptr)
                return false;
            opts.dcs = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--concurrent") {
            if ((v = next("--concurrent")) == nullptr)
                return false;
            opts.concurrent = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--policy") {
            if ((v = next("--policy")) == nullptr)
                return false;
            if (std::strcmp(v, "maxmin") == 0) {
                opts.policy = serve::AllocPolicy::MaxMinFair;
            } else if (std::strcmp(v, "weighted") == 0) {
                opts.policy = serve::AllocPolicy::WeightedPriority;
            } else {
                std::fprintf(stderr, "unknown policy '%s'\n", v);
                return false;
            }
        } else if (arg == "--scheduler") {
            if ((v = next("--scheduler")) == nullptr)
                return false;
            if (std::strcmp(v, "tetrium") == 0) {
                opts.scheduler = serve::SchedulerKind::Tetrium;
            } else if (std::strcmp(v, "kimchi") == 0) {
                opts.scheduler = serve::SchedulerKind::Kimchi;
            } else if (std::strcmp(v, "locality") == 0) {
                opts.scheduler = serve::SchedulerKind::Locality;
            } else {
                std::fprintf(stderr, "unknown scheduler '%s'\n", v);
                return false;
            }
        } else if (arg == "--epoch") {
            if ((v = next("--epoch")) == nullptr)
                return false;
            opts.epoch = std::atof(v);
        } else if (arg == "--window") {
            if ((v = next("--window")) == nullptr)
                return false;
            opts.window = std::atof(v);
        } else if (arg == "--heavy") {
            if ((v = next("--heavy")) == nullptr)
                return false;
            opts.heavy = std::atof(v);
        } else if (arg == "--retrain-every") {
            if ((v = next("--retrain-every")) == nullptr)
                return false;
            opts.retrainEvery =
                static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--no-model") {
            opts.useModel = false;
        } else if (arg == "--quiet") {
            opts.fluctuation = false;
        } else if (arg == "--seed") {
            if ((v = next("--seed")) == nullptr)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            return false;
        }
    }
    return true;
}

serve::ServiceReport
drainOnce(const CliOptions &opts)
{
    // A fresh facade per drain: a retrain-publishing drain swaps its
    // own facade's model, so back-to-back drains (verify mode) still
    // start from the identical published predictor.
    std::unique_ptr<core::Wanify> wanify;
    if (opts.useModel) {
        wanify = std::make_unique<core::Wanify>();
        wanify->setPredictor(experiments::sharedPredictor());
    }

    serve::ServiceConfig cfg;
    cfg.policy = opts.policy;
    cfg.scheduler = opts.scheduler;
    cfg.maxConcurrent = opts.concurrent;
    cfg.epoch = opts.epoch;
    cfg.retrainEveryCompleted = opts.retrainEvery;

    serve::Service service(experiments::workerCluster(opts.dcs),
                           cfg,
                           opts.fluctuation
                               ? experiments::defaultSimConfig()
                               : experiments::quietSimConfig(),
                           wanify.get(), opts.seed);

    serve::WorkloadConfig wl;
    wl.queries = opts.queries;
    wl.heavyFraction = opts.heavy;
    wl.arrivalWindow = opts.window;
    for (serve::QuerySpec &q :
         serve::mixedWorkload(wl, opts.dcs, opts.seed))
        service.submit(std::move(q));
    return service.drain();
}

void
printReport(const serve::ServiceReport &report)
{
    std::printf("queries          %zu\n", report.queries.size());
    std::printf("completed        %zu\n", report.completed);
    std::printf("timed-out        %zu\n", report.timedOut);
    std::printf("peak-concurrent  %zu\n", report.peakConcurrent);
    std::printf("queued           %zu\n", report.queuedAdmissions);
    std::printf("makespan-s       %.1f\n", report.makespan);
    std::printf("queries-per-hour %.1f\n", report.throughputPerHour);
    std::printf("jain-fairness    %.4f\n", report.jainFairness);
    std::printf("redispatches     %zu\n", report.redispatches);
    std::printf("retrains         %zu\n", report.retrainsPublished);
    std::printf("capped-pairs     %zu\n", report.cappedPairRounds);
    std::printf("result-hash      %016llx\n",
                static_cast<unsigned long long>(report.resultHash));
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    CliOptions opts;
    if (!parseOptions(argc, argv, 2, opts))
        return usage();

    if (command == "run") {
        printReport(drainOnce(opts));
        return 0;
    }
    if (command == "verify") {
        const auto a = drainOnce(opts);
        const auto b = drainOnce(opts);
        std::printf("hash-a %016llx\nhash-b %016llx\n",
                    static_cast<unsigned long long>(a.resultHash),
                    static_cast<unsigned long long>(b.resultHash));
        if (a.resultHash != b.resultHash) {
            std::fprintf(stderr,
                         "verify FAILED: reports differ\n");
            return 1;
        }
        std::printf("verify OK: bit-identical reports\n");
        return 0;
    }
    return usage();
}
