/**
 * @file
 * `wanify-scenario` — drive, record, replay, and verify the built-in
 * WAN scenario library from the command line.
 *
 *   wanify-scenario list
 *   wanify-scenario show <name>
 *   wanify-scenario run <name> [options] [--record FILE]
 *   wanify-scenario replay <trace.csv> [options]
 *   wanify-scenario verify [options]
 *
 * Options:
 *   --dcs N        cluster size                     (default 8)
 *   --vms N        VMs per DC                       (default 2)
 *   --seed S       base seed                        (default 1)
 *   --epoch E      epoch seconds (0 = scenario's)   (default 0)
 *   --horizon H    run seconds (0 = scenario's)     (default 0)
 *   --quiet        disable the stationary OU noise
 *   --record FILE  write the bandwidth trace as CSV
 *
 * Every run is deterministic: the same scenario, cluster, and seed
 * produce a bit-identical trace (printed as `trace-hash`). `verify`
 * drives every library scenario twice and fails if any pair of
 * traces differs — the determinism contract under CTest.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/table.hh"
#include "experiments/testbed.hh"
#include "scenario/driver.hh"

using namespace wanify;

namespace {

struct CliOptions
{
    std::size_t dcs = 8;
    std::size_t vmsPerDc = 2;
    std::uint64_t seed = 1;
    Seconds epoch = 0.0;
    Seconds horizon = 0.0;
    bool fluctuation = true;
    std::string recordPath;
};

int
usage()
{
    std::printf(
        "usage: wanify-scenario <command> [options]\n"
        "  list                      name every built-in scenario\n"
        "  show <name>               print a scenario's events\n"
        "  run <name> [options]      drive a scenario and report\n"
        "  replay <trace.csv>        re-run a recorded trace\n"
        "  verify                    drive each scenario twice and\n"
        "                            check the traces are identical\n"
        "options: --dcs N --vms N --seed S --epoch E --horizon H\n"
        "         --quiet --record FILE\n");
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, CliOptions &opts)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", what);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--dcs") {
            const char *v = next("--dcs");
            if (v == nullptr)
                return false;
            opts.dcs = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--vms") {
            const char *v = next("--vms");
            if (v == nullptr)
                return false;
            opts.vmsPerDc = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--seed") {
            const char *v = next("--seed");
            if (v == nullptr)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--epoch") {
            const char *v = next("--epoch");
            if (v == nullptr)
                return false;
            opts.epoch = std::atof(v);
        } else if (arg == "--horizon") {
            const char *v = next("--horizon");
            if (v == nullptr)
                return false;
            opts.horizon = std::atof(v);
        } else if (arg == "--quiet") {
            opts.fluctuation = false;
        } else if (arg == "--record") {
            const char *v = next("--record");
            if (v == nullptr)
                return false;
            opts.recordPath = v;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    if (opts.dcs < 4 || opts.dcs > 8) {
        std::fprintf(stderr, "--dcs must be in [4, 8]\n");
        return false;
    }
    if (opts.vmsPerDc < 1) {
        std::fprintf(stderr, "--vms must be >= 1\n");
        return false;
    }
    return true;
}

scenario::DriveConfig
driveConfig(const CliOptions &opts)
{
    scenario::DriveConfig cfg;
    cfg.epoch = opts.epoch;
    cfg.horizon = opts.horizon;
    cfg.seed = opts.seed;
    cfg.fluctuation = opts.fluctuation;
    return cfg;
}

void
printResult(const scenario::DriveResult &result)
{
    Table table("scenario '" + result.name + "' (" +
                std::to_string(result.epochs.size()) + " epochs)");
    table.setHeader({"t (s)", "min cap x", "mean cap x",
                     "min pair Mbps", "drift err", "retrain"});
    for (const auto &e : result.epochs) {
        table.addRow({Table::num(e.t, 0),
                      Table::num(e.minCapFactor, 2),
                      Table::num(e.meanCapFactor, 2),
                      Table::num(e.minPairRate, 0),
                      Table::pct(e.errorFraction, 0),
                      e.retrainFired ? "*" : ""});
    }
    table.print();
    std::printf("retrains: %zu, peak drift-error fraction: %.0f%%, "
                "trace-hash: %016llx\n",
                result.retrainTriggers,
                100.0 * result.maxErrorFraction,
                static_cast<unsigned long long>(result.trace.hash()));
}

int
cmdList()
{
    Table table("built-in scenarios");
    table.setHeader({"name", "epoch", "horizon", "events"});
    for (const auto &name : scenario::libraryScenarioNames()) {
        const auto spec = scenario::libraryScenario(name);
        table.addRow({spec.name, Table::num(spec.epoch, 0),
                      Table::num(spec.horizon, 0),
                      std::to_string(spec.events.size())});
    }
    table.print();
    return 0;
}

int
cmdShow(const std::string &name)
{
    const auto spec = scenario::libraryScenario(name);
    std::printf("%s: %s\n", spec.name.c_str(),
                spec.description.c_str());
    Table table("events");
    table.setHeader({"kind", "src", "dst", "start", "duration",
                     "magnitude"});
    auto dc = [](int id) {
        return id == scenario::kAnyDc ? std::string("*")
                                      : std::to_string(id);
    };
    for (const auto &ev : spec.events) {
        table.addRow({scenario::eventKindName(ev.kind), dc(ev.src),
                      dc(ev.dst), Table::num(ev.start, 0),
                      ev.duration >= scenario::kForever
                          ? std::string("forever")
                          : Table::num(ev.duration, 0),
                      Table::num(ev.magnitude, 2)});
    }
    table.print();
    return 0;
}

int
cmdRun(const std::string &name, const CliOptions &opts)
{
    const auto spec = scenario::libraryScenario(name);
    const auto topo =
        experiments::workerCluster(opts.dcs, opts.vmsPerDc);
    const auto result =
        scenario::driveScenario(spec, topo, driveConfig(opts));
    printResult(result);
    if (!opts.recordPath.empty()) {
        scenario::writeTraceCsv(opts.recordPath, result.trace);
        std::printf("trace written to %s (%zu samples)\n",
                    opts.recordPath.c_str(), result.trace.size());
    }
    return 0;
}

int
cmdReplay(const std::string &path, const CliOptions &opts)
{
    const auto trace = scenario::readTraceCsv(path);
    if (trace.dcs != opts.dcs) {
        std::printf("note: trace was recorded on %zu DCs; using "
                    "that cluster size\n",
                    trace.dcs);
    }
    const auto topo =
        experiments::workerCluster(trace.dcs, opts.vmsPerDc);
    const auto result =
        scenario::driveReplay(trace, topo, driveConfig(opts));
    printResult(result);
    return 0;
}

int
cmdVerify(const CliOptions &opts)
{
    const auto topo =
        experiments::workerCluster(opts.dcs, opts.vmsPerDc);
    bool ok = true;
    for (const auto &name : scenario::libraryScenarioNames()) {
        const auto spec = scenario::libraryScenario(name);
        const auto a =
            scenario::driveScenario(spec, topo, driveConfig(opts));
        const auto b =
            scenario::driveScenario(spec, topo, driveConfig(opts));
        const bool same = a.trace.identical(b.trace);
        ok = ok && same;
        std::printf("%-16s %3zu epochs  retrains %zu  trace-hash "
                    "%016llx  %s\n",
                    name.c_str(), a.epochs.size(),
                    a.retrainTriggers,
                    static_cast<unsigned long long>(a.trace.hash()),
                    same ? "OK" : "MISMATCH");
    }
    std::printf(ok ? "all scenarios deterministic\n"
                   : "determinism violation detected\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "show") {
            if (argc < 3)
                return usage();
            return cmdShow(argv[2]);
        }
        CliOptions opts;
        if (cmd == "run" || cmd == "replay") {
            if (argc < 3)
                return usage();
            if (!parseOptions(argc, argv, 3, opts))
                return 2;
            return cmd == "run" ? cmdRun(argv[2], opts)
                                : cmdReplay(argv[2], opts);
        }
        if (cmd == "verify") {
            if (!parseOptions(argc, argv, 2, opts))
                return 2;
            return cmdVerify(opts);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wanify-scenario: %s\n", e.what());
        return 1;
    }
    return usage();
}
