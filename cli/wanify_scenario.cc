/**
 * @file
 * `wanify-scenario` — drive, record, replay, and verify the built-in
 * WAN scenario library from the command line.
 *
 *   wanify-scenario list
 *   wanify-scenario show <name>
 *   wanify-scenario run <name> [options] [--record FILE]
 *   wanify-scenario replay <trace.csv> [options]
 *   wanify-scenario verify [options]
 *
 * Options:
 *   --dcs N        cluster size                     (default 8)
 *   --vms N        VMs per DC                       (default 2)
 *   --seed S       base seed                        (default 1)
 *   --epoch E      epoch seconds (0 = scenario's)   (default 0)
 *   --horizon H    run seconds (0 = scenario's)     (default 0)
 *   --quiet        disable the stationary OU noise
 *   --record FILE  write the bandwidth trace as CSV
 *   --adapt        run the GDA engine (TeraSort + WANify-TC) under
 *                  the scenario with drift-triggered warm-start
 *                  retraining instead of the bare mesh driver
 *   --retrain      with --adapt: publish each warm-start retrained
 *                  model back to the facade, so later runs start
 *                  from it (the online learning loop across runs)
 *   --runs N       engine runs for --adapt (default 1; 2 with
 *                  --retrain so the cross-run improvement shows)
 *
 * Every mesh-driver run is deterministic: the same scenario,
 * cluster, and seed produce a bit-identical trace (printed as
 * `trace-hash`). `verify` drives every library scenario twice and
 * fails if any pair of traces differs — the determinism contract
 * under CTest.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/table.hh"
#include "experiments/predictor_factory.hh"
#include "fault/fault.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "sched/locality.hh"
#include "scenario/driver.hh"
#include "storage/hdfs.hh"
#include "workloads/terasort.hh"

using namespace wanify;

namespace {

struct CliOptions
{
    std::size_t dcs = 8;
    std::size_t vmsPerDc = 2;
    std::uint64_t seed = 1;
    Seconds epoch = 0.0;
    Seconds horizon = 0.0;
    bool fluctuation = true;
    std::string recordPath;
    bool adapt = false;
    bool retrain = false;
    std::size_t runs = 0; // 0 = default for the mode
};

int
usage()
{
    std::printf(
        "usage: wanify-scenario <command> [options]\n"
        "  list                      name every built-in scenario\n"
        "  show <name>               print a scenario's events\n"
        "  run <name> [options]      drive a scenario and report\n"
        "  replay <trace.csv>        re-run a recorded trace\n"
        "  verify                    drive each scenario twice and\n"
        "                            check the traces are identical\n"
        "options: --dcs N --vms N --seed S --epoch E --horizon H\n"
        "         --quiet --record FILE --adapt [--retrain]\n"
        "         --runs N\n");
    return 2;
}

bool
parseOptions(int argc, char **argv, int first, CliOptions &opts)
{
    for (int i = first; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires a value\n", what);
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--dcs") {
            const char *v = next("--dcs");
            if (v == nullptr)
                return false;
            opts.dcs = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--vms") {
            const char *v = next("--vms");
            if (v == nullptr)
                return false;
            opts.vmsPerDc = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--seed") {
            const char *v = next("--seed");
            if (v == nullptr)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--epoch") {
            const char *v = next("--epoch");
            if (v == nullptr)
                return false;
            opts.epoch = std::atof(v);
        } else if (arg == "--horizon") {
            const char *v = next("--horizon");
            if (v == nullptr)
                return false;
            opts.horizon = std::atof(v);
        } else if (arg == "--quiet") {
            opts.fluctuation = false;
        } else if (arg == "--adapt") {
            opts.adapt = true;
        } else if (arg == "--retrain") {
            opts.retrain = true;
        } else if (arg == "--runs") {
            const char *v = next("--runs");
            if (v == nullptr)
                return false;
            char *end = nullptr;
            const long parsed = std::strtol(v, &end, 10);
            if (end == v || *end != '\0' || parsed < 1 ||
                parsed > 1000) {
                std::fprintf(stderr,
                             "--runs must be an integer in "
                             "[1, 1000]\n");
                return false;
            }
            opts.runs = static_cast<std::size_t>(parsed);
        } else if (arg == "--record") {
            const char *v = next("--record");
            if (v == nullptr)
                return false;
            opts.recordPath = v;
        } else {
            std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
            return false;
        }
    }
    // Library scenarios script DC ids up to 3, hence the floor of 4;
    // the flat mesh paths make big clusters first-class, so the cap
    // is the 256-DC scale the perf sweep exercises rather than the
    // old silent 8-DC testbed bound.
    if (opts.dcs < 4 || opts.dcs > 256) {
        std::fprintf(stderr, "--dcs must be in [4, 256]\n");
        return false;
    }
    if (opts.vmsPerDc < 1) {
        std::fprintf(stderr, "--vms must be >= 1\n");
        return false;
    }
    if (opts.retrain && !opts.adapt) {
        std::fprintf(stderr, "--retrain requires --adapt\n");
        return false;
    }
    if (opts.runs > 0 && !opts.adapt) {
        std::fprintf(stderr, "--runs requires --adapt\n");
        return false;
    }
    if (opts.adapt &&
        (!opts.recordPath.empty() || opts.epoch > 0.0 ||
         opts.horizon > 0.0)) {
        // The engine paces itself by AIMD epochs and job length;
        // these knobs only shape the mesh driver.
        std::fprintf(stderr, "--record/--epoch/--horizon only apply "
                             "to mesh-driver runs (drop --adapt)\n");
        return false;
    }
    return true;
}

scenario::DriveConfig
driveConfig(const CliOptions &opts)
{
    scenario::DriveConfig cfg;
    cfg.epoch = opts.epoch;
    cfg.horizon = opts.horizon;
    cfg.seed = opts.seed;
    cfg.fluctuation = opts.fluctuation;
    return cfg;
}

void
printResult(const scenario::DriveResult &result)
{
    Table table("scenario '" + result.name + "' (" +
                std::to_string(result.epochs.size()) + " epochs)");
    table.setHeader({"t (s)", "min cap x", "mean cap x",
                     "min pair Mbps", "drift err", "retrain"});
    for (const auto &e : result.epochs) {
        table.addRow({Table::num(e.t, 0),
                      Table::num(e.minCapFactor, 2),
                      Table::num(e.meanCapFactor, 2),
                      Table::num(e.minPairRate, 0),
                      Table::pct(e.errorFraction, 0),
                      e.retrainFired ? "*" : ""});
    }
    table.print();
    std::printf("retrains: %zu, peak drift-error fraction: %.0f%%, "
                "trace-hash: %016llx\n",
                result.retrainTriggers,
                100.0 * result.maxErrorFraction,
                static_cast<unsigned long long>(result.trace.hash()));
}

int
cmdList()
{
    Table table("built-in scenarios");
    table.setHeader({"name", "epoch", "horizon", "events",
                     "faults"});
    for (const auto &name : scenario::libraryScenarioNames()) {
        const auto spec = scenario::libraryScenario(name);
        table.addRow({spec.name, Table::num(spec.epoch, 0),
                      Table::num(spec.horizon, 0),
                      std::to_string(spec.events.size()),
                      std::to_string(spec.faults.size())});
    }
    table.print();
    // The chaos set lives outside the bandwidth-dynamics campaign
    // rotation: hard faults (aborts, crashes, blackouts, gauge
    // outages) on top of scripted soft dynamics.
    Table chaos("fault-storm scenarios");
    chaos.setHeader({"name", "epoch", "horizon", "events",
                     "faults"});
    for (const auto &name : scenario::faultScenarioNames()) {
        const auto spec = scenario::libraryScenario(name);
        chaos.addRow({spec.name, Table::num(spec.epoch, 0),
                      Table::num(spec.horizon, 0),
                      std::to_string(spec.events.size()),
                      std::to_string(spec.faults.size())});
    }
    chaos.print();
    return 0;
}

int
cmdShow(const std::string &name)
{
    const auto spec = scenario::libraryScenario(name);
    std::printf("%s: %s\n", spec.name.c_str(),
                spec.description.c_str());
    Table table("events");
    table.setHeader({"kind", "src", "dst", "start", "duration",
                     "magnitude"});
    auto dc = [](int id) {
        return id == scenario::kAnyDc ? std::string("*")
                                      : std::to_string(id);
    };
    for (const auto &ev : spec.events) {
        table.addRow({scenario::eventKindName(ev.kind), dc(ev.src),
                      dc(ev.dst), Table::num(ev.start, 0),
                      ev.duration >= scenario::kForever
                          ? std::string("forever")
                          : Table::num(ev.duration, 0),
                      Table::num(ev.magnitude, 2)});
    }
    table.print();
    if (!spec.faults.empty()) {
        Table ftable("fault events");
        ftable.setHeader({"kind", "src", "dst", "dc", "start",
                          "duration", "jitter"});
        auto fdc = [](int id) {
            return id == fault::kAnyDc ? std::string("*")
                                       : std::to_string(id);
        };
        for (const auto &fv : spec.faults) {
            ftable.addRow({fault::faultKindName(fv.kind),
                           fdc(fv.src), fdc(fv.dst), fdc(fv.dc),
                           Table::num(fv.time, 0),
                           Table::num(fv.duration, 0),
                           Table::num(fv.startJitter, 0)});
        }
        ftable.print();
    }
    return 0;
}

/**
 * `run <name> --adapt [--retrain]`: the online learning loop behind
 * a real query. TeraSort runs through the GDA engine under the
 * scenario with WANify-TC deployed and adaptOnDrift on; each drift
 * trip gauges the live mesh, warm-starts the forest, and re-plans.
 * With --retrain the retrained model is published back to the facade
 * after every warm start, so successive runs start progressively
 * better calibrated — the cross-run half of the loop.
 */
int
cmdRunEngine(const scenario::ScenarioSpec &spec,
             const CliOptions &opts)
{
    const auto topo =
        experiments::workerCluster(opts.dcs, opts.vmsPerDc);
    const std::size_t n = topo.dcCount();
    const scenario::ScenarioTimeline timeline(spec, n, opts.seed);

    // Sized per DC so TeraSort's map compute ends (and its shuffle
    // therefore runs) inside the library scenarios' scripted event
    // windows on the default 2-VM workers, whatever --dcs is.
    const auto job =
        workloads::teraSort(6.0 * static_cast<double>(opts.dcs));
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;

    // Scenario-sized drift window (two full meshes), as the scenario
    // benches use.
    core::WanifyConfig wcfg;
    wcfg.drift.windowSize = 2 * n * (n - 1);
    wcfg.drift.minObservations = n * (n - 1);
    wcfg.drift.retrainFraction = 0.2;
    core::Wanify wanify(wcfg);
    std::printf("training the shared WAN prediction model...\n");
    wanify.setPredictor(experiments::sharedPredictor());

    // Cross-run campaign accumulator (--retrain): every run's gauges
    // join one incremental dataset, so later warm starts train on
    // the union. Safe here because the runs are sequential.
    core::AnalyzerConfig campaignCfg;
    campaignCfg.clusterSizes = {n};
    core::BandwidthAnalyzer campaign(campaignCfg);

    const std::size_t runs =
        opts.runs > 0 ? opts.runs : (opts.retrain ? 2 : 1);
    Table table("scenario '" + spec.name + "': TeraSort + WANify-TC" +
                (opts.retrain ? " (publishing retrained models)"
                              : ""));
    table.setHeader({"Run", "Latency (s)", "Cost ($)",
                     "Min BW (Mbps)", "Retrains", "Pre err",
                     "Post err", "Trees"});
    for (std::size_t r = 0; r < runs; ++r) {
        auto simCfg = experiments::defaultSimConfig();
        simCfg.fluctuation.enabled = opts.fluctuation;
        gda::Engine engine(topo, simCfg, opts.seed + 101 * r);
        gda::RunOptions ropts;
        ropts.schedulerBw = Matrix<Mbps>::square(n, 400.0);
        ropts.wanify = &wanify;
        ropts.dynamics = &timeline;
        ropts.adaptOnDrift = true;
        ropts.publishRetrainedModel = opts.retrain;
        if (opts.retrain)
            ropts.campaign = &campaign;
        const auto res =
            engine.run(job, input, locality, ropts);
        const bool retrained = res.retrainsApplied > 0;
        table.addRow(
            {std::to_string(r + 1), Table::num(res.latency, 0),
             Table::num(res.cost.total(), 2),
             Table::num(res.minObservedBw, 0),
             std::to_string(res.retrainsApplied),
             retrained ? Table::num(res.preRetrainError, 0)
                       : std::string("-"),
             retrained ? Table::num(res.postRetrainError, 0)
                       : std::string("-"),
             std::to_string(
                 wanify.predictorSnapshot()->forest().treeCount())});
    }
    table.print();
    std::printf("pre/post err = mean abs BW prediction error (Mbps) "
                "at each warm-start retrain; 'Trees' is the "
                "facade's published forest after the run%s.\n",
                opts.retrain ? " (grows as models are published)"
                             : " (unchanged without --retrain)");
    return 0;
}

int
cmdRun(const std::string &name, const CliOptions &opts)
{
    const auto spec = scenario::libraryScenario(name);
    if (opts.adapt)
        return cmdRunEngine(spec, opts);
    const auto topo =
        experiments::workerCluster(opts.dcs, opts.vmsPerDc);
    const auto result =
        scenario::driveScenario(spec, topo, driveConfig(opts));
    printResult(result);
    if (!opts.recordPath.empty()) {
        scenario::writeTraceCsv(opts.recordPath, result.trace);
        std::printf("trace written to %s (%zu samples)\n",
                    opts.recordPath.c_str(), result.trace.size());
    }
    return 0;
}

int
cmdReplay(const std::string &path, const CliOptions &opts)
{
    const auto trace = scenario::readTraceCsv(path);
    if (trace.dcs != opts.dcs) {
        std::printf("note: trace was recorded on %zu DCs; using "
                    "that cluster size\n",
                    trace.dcs);
    }
    const auto topo =
        experiments::workerCluster(trace.dcs, opts.vmsPerDc);
    const auto result =
        scenario::driveReplay(trace, topo, driveConfig(opts));
    printResult(result);
    return 0;
}

int
cmdVerify(const CliOptions &opts)
{
    const auto topo =
        experiments::workerCluster(opts.dcs, opts.vmsPerDc);
    bool ok = true;
    for (const auto &name : scenario::libraryScenarioNames()) {
        const auto spec = scenario::libraryScenario(name);
        const auto a =
            scenario::driveScenario(spec, topo, driveConfig(opts));
        const auto b =
            scenario::driveScenario(spec, topo, driveConfig(opts));
        const bool same = a.trace.identical(b.trace);
        ok = ok && same;
        std::printf("%-16s %3zu epochs  retrains %zu  trace-hash "
                    "%016llx  %s\n",
                    name.c_str(), a.epochs.size(),
                    a.retrainTriggers,
                    static_cast<unsigned long long>(a.trace.hash()),
                    same ? "OK" : "MISMATCH");
    }
    std::printf(ok ? "all scenarios deterministic\n"
                   : "determinism violation detected\n");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];
    try {
        if (cmd == "list")
            return cmdList();
        if (cmd == "show") {
            if (argc < 3)
                return usage();
            return cmdShow(argv[2]);
        }
        CliOptions opts;
        if (cmd == "run" || cmd == "replay") {
            if (argc < 3)
                return usage();
            if (!parseOptions(argc, argv, 3, opts))
                return 2;
            return cmd == "run" ? cmdRun(argv[2], opts)
                                : cmdReplay(argv[2], opts);
        }
        if (cmd == "verify") {
            if (!parseOptions(argc, argv, 2, opts))
                return 2;
            return cmdVerify(opts);
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "wanify-scenario: %s\n", e.what());
        return 1;
    }
    return usage();
}
