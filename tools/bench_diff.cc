/**
 * @file
 * Perf-trajectory diff gate: compares a freshly produced BENCH_*.json
 * against the committed baseline and fails on regression.
 *
 * The BENCH files carry two kinds of metric: absolute wall-clock
 * values (machine-dependent — meaningless to compare across a dev box
 * and a CI runner) and speedup ratios (algorithm-vs-algorithm on the
 * same machine, comparable anywhere). By default only the `speedup_*`
 * keys are gated, higher-is-better, with a 25% relative tolerance:
 * a fresh speedup below baseline * (1 - tolerance) fails, and so does
 * a gated baseline key missing from the fresh file (a silently
 * dropped measurement is how trajectories rot). Improvements always
 * pass and should be locked in by committing the fresh file as the
 * new baseline.
 *
 * Usage:
 *   wanify-bench-diff <baseline.json> <fresh.json>
 *                     [--max-regress 0.25] [--prefix speedup_]
 *
 * The parser understands exactly the flat `"results": { "key":
 * number, ... }` object the bench binaries emit — no JSON library
 * needed (and none available without new dependencies).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Metric
{
    std::string name;
    double value;
};

/** Extract "key": number pairs from the "results" object. */
std::vector<Metric>
parseResults(const std::string &text, const std::string &path)
{
    const std::size_t anchor = text.find("\"results\"");
    if (anchor == std::string::npos) {
        std::fprintf(stderr, "%s: no \"results\" object\n",
                     path.c_str());
        std::exit(2);
    }
    const std::size_t open = text.find('{', anchor);
    const std::size_t close = text.find('}', open);
    if (open == std::string::npos || close == std::string::npos) {
        std::fprintf(stderr, "%s: malformed \"results\" object\n",
                     path.c_str());
        std::exit(2);
    }

    std::vector<Metric> metrics;
    std::size_t pos = open + 1;
    while (pos < close) {
        const std::size_t keyStart = text.find('"', pos);
        if (keyStart == std::string::npos || keyStart >= close)
            break;
        const std::size_t keyEnd = text.find('"', keyStart + 1);
        if (keyEnd == std::string::npos || keyEnd >= close)
            break;
        const std::size_t colon = text.find(':', keyEnd);
        if (colon == std::string::npos || colon >= close)
            break;
        std::size_t valStart = colon + 1;
        while (valStart < close &&
               std::isspace(static_cast<unsigned char>(
                   text[valStart])))
            ++valStart;
        char *end = nullptr;
        const double value =
            std::strtod(text.c_str() + valStart, &end);
        if (end == text.c_str() + valStart) {
            std::fprintf(stderr, "%s: non-numeric value for \"%s\"\n",
                         path.c_str(),
                         text.substr(keyStart + 1,
                                     keyEnd - keyStart - 1)
                             .c_str());
            std::exit(2);
        }
        metrics.push_back(
            {text.substr(keyStart + 1, keyEnd - keyStart - 1),
             value});
        pos = static_cast<std::size_t>(end - text.c_str());
    }
    if (metrics.empty()) {
        std::fprintf(stderr, "%s: empty \"results\" object\n",
                     path.c_str());
        std::exit(2);
    }
    return metrics;
}

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path);
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

const Metric *
find(const std::vector<Metric> &metrics, const std::string &name)
{
    for (const auto &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *baselinePath = nullptr;
    const char *freshPath = nullptr;
    double maxRegress = 0.25;
    std::string prefix = "speedup_";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--max-regress") == 0 &&
            a + 1 < argc) {
            maxRegress = std::atof(argv[++a]);
        } else if (std::strcmp(argv[a], "--prefix") == 0 &&
                   a + 1 < argc) {
            prefix = argv[++a];
        } else if (baselinePath == nullptr) {
            baselinePath = argv[a];
        } else if (freshPath == nullptr) {
            freshPath = argv[a];
        } else {
            std::fprintf(stderr,
                         "usage: %s <baseline.json> <fresh.json> "
                         "[--max-regress 0.25] [--prefix speedup_]\n",
                         argv[0]);
            return 2;
        }
    }
    if (baselinePath == nullptr || freshPath == nullptr) {
        std::fprintf(stderr,
                     "usage: %s <baseline.json> <fresh.json> "
                     "[--max-regress 0.25] [--prefix speedup_]\n",
                     argv[0]);
        return 2;
    }
    if (maxRegress <= 0.0 || maxRegress >= 1.0) {
        std::fprintf(stderr, "--max-regress must be in (0, 1)\n");
        return 2;
    }

    const auto baseline =
        parseResults(readFile(baselinePath), baselinePath);
    const auto fresh = parseResults(readFile(freshPath), freshPath);

    int regressions = 0;
    std::size_t gated = 0;
    for (const auto &base : baseline) {
        if (base.name.compare(0, prefix.size(), prefix) != 0)
            continue;
        ++gated;
        const Metric *now = find(fresh, base.name);
        if (now == nullptr) {
            std::fprintf(stderr,
                         "REGRESSION %s: present in baseline, "
                         "missing from %s\n",
                         base.name.c_str(), freshPath);
            ++regressions;
            continue;
        }
        const double floor = base.value * (1.0 - maxRegress);
        const char *verdict =
            now->value < floor ? "REGRESSION" : "ok";
        std::printf("%-32s baseline %9.3f  fresh %9.3f  floor "
                    "%9.3f  %s\n",
                    base.name.c_str(), base.value, now->value, floor,
                    verdict);
        if (now->value < floor)
            ++regressions;
    }
    if (gated == 0) {
        std::fprintf(stderr,
                     "no baseline keys match prefix \"%s\" — "
                     "nothing gated\n",
                     prefix.c_str());
        return 2;
    }
    if (regressions > 0) {
        std::fprintf(stderr,
                     "%d metric(s) regressed more than %.0f%% vs %s\n",
                     regressions, maxRegress * 100.0, baselinePath);
        return 1;
    }
    std::printf("perf trajectory ok: %zu metric(s) within %.0f%% of "
                "baseline\n",
                gated, maxRegress * 100.0);
    return 0;
}
