/**
 * @file
 * Perf-trajectory diff gate: compares freshly produced BENCH_*.json
 * files against their committed baselines and fails on regression.
 *
 * The BENCH files carry two kinds of metric: absolute wall-clock
 * values (machine-dependent — meaningless to compare across a dev box
 * and a CI runner) and ratio/score metrics (algorithm-vs-algorithm on
 * the same machine, or virtual-time service metrics — comparable
 * anywhere). Only keys matching a gated prefix are compared,
 * higher-is-better, with a 25% relative tolerance by default: a fresh
 * value below baseline * (1 - tolerance) fails, and so does a gated
 * baseline key missing from the fresh file (a silently dropped
 * measurement is how trajectories rot). Improvements always pass and
 * should be locked in by committing the fresh file as the new
 * baseline. Pool-dependent keys (speedup_predict_batch_pool) are
 * skipped with a visible note when either file records
 * `pool_threads: 1` — a one-thread pool has nothing to fan out over,
 * so that ratio is scheduler noise, not a signal.
 *
 * Usage:
 *   wanify-bench-diff <baseline.json> <fresh.json>
 *                     [<baseline2.json> <fresh2.json> ...]
 *                     [--max-regress 0.25] [--prefix speedup_,serve_]
 *
 * Any even number of positional (baseline, fresh) pairs is accepted,
 * so one invocation gates the whole trajectory — inference, training,
 * and serve — in a single CI step; the exit code is nonzero if any
 * pair regressed. --prefix takes a comma-separated list of gated key
 * prefixes applied to every pair.
 *
 * The parser understands exactly the flat `"results": { "key":
 * number, ... }` object the bench binaries emit — no JSON library
 * needed (and none available without new dependencies).
 */

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Metric
{
    std::string name;
    double value;
};

/** Extract "key": number pairs from the "results" object. */
std::vector<Metric>
parseResults(const std::string &text, const std::string &path)
{
    const std::size_t anchor = text.find("\"results\"");
    if (anchor == std::string::npos) {
        std::fprintf(stderr, "%s: no \"results\" object\n",
                     path.c_str());
        std::exit(2);
    }
    const std::size_t open = text.find('{', anchor);
    const std::size_t close = text.find('}', open);
    if (open == std::string::npos || close == std::string::npos) {
        std::fprintf(stderr, "%s: malformed \"results\" object\n",
                     path.c_str());
        std::exit(2);
    }

    std::vector<Metric> metrics;
    std::size_t pos = open + 1;
    while (pos < close) {
        const std::size_t keyStart = text.find('"', pos);
        if (keyStart == std::string::npos || keyStart >= close)
            break;
        const std::size_t keyEnd = text.find('"', keyStart + 1);
        if (keyEnd == std::string::npos || keyEnd >= close)
            break;
        const std::size_t colon = text.find(':', keyEnd);
        if (colon == std::string::npos || colon >= close)
            break;
        std::size_t valStart = colon + 1;
        while (valStart < close &&
               std::isspace(static_cast<unsigned char>(
                   text[valStart])))
            ++valStart;
        char *end = nullptr;
        const double value =
            std::strtod(text.c_str() + valStart, &end);
        if (end == text.c_str() + valStart) {
            std::fprintf(stderr, "%s: non-numeric value for \"%s\"\n",
                         path.c_str(),
                         text.substr(keyStart + 1,
                                     keyEnd - keyStart - 1)
                             .c_str());
            std::exit(2);
        }
        metrics.push_back(
            {text.substr(keyStart + 1, keyEnd - keyStart - 1),
             value});
        pos = static_cast<std::size_t>(end - text.c_str());
    }
    if (metrics.empty()) {
        std::fprintf(stderr, "%s: empty \"results\" object\n",
                     path.c_str());
        std::exit(2);
    }
    return metrics;
}

std::string
readFile(const char *path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot read %s\n", path);
        std::exit(2);
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

const Metric *
find(const std::vector<Metric> &metrics, const std::string &name)
{
    for (const auto &m : metrics)
        if (m.name == name)
            return &m;
    return nullptr;
}

/**
 * Read a top-level numeric field like `"pool_threads": 4` from the
 * raw JSON text (outside the "results" object). Returns @p fallback
 * when absent — older BENCH files predate the field.
 */
double
topLevelNumber(const std::string &text, const std::string &key,
               double fallback)
{
    const std::string needle = "\"" + key + "\"";
    const std::size_t anchor = text.find(needle);
    if (anchor == std::string::npos)
        return fallback;
    const std::size_t colon = text.find(':', anchor + needle.size());
    if (colon == std::string::npos)
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(text.c_str() + colon + 1, &end);
    return end == text.c_str() + colon + 1 ? fallback : value;
}

/**
 * Keys whose value is meaningless on a single-thread pool: the pool
 * speedup compares the batched predict path against itself when
 * there is nothing to fan out over. Gating it on a one-core runner
 * just measures scheduler noise around 1.0x.
 */
bool
poolDependent(const std::string &name)
{
    return name == "speedup_predict_batch_pool";
}

/** Split a comma-separated prefix list; empty entries dropped. */
std::vector<std::string>
splitPrefixes(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > pos)
            out.push_back(list.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

bool
matchesAny(const std::string &name,
           const std::vector<std::string> &prefixes)
{
    for (const auto &p : prefixes)
        if (name.compare(0, p.size(), p) == 0)
            return true;
    return false;
}

/**
 * Gate one (baseline, fresh) pair. Returns the number of
 * regressions; exits with status 2 when the pair gates nothing (a
 * misconfigured prefix must not silently pass).
 */
int
diffPair(const char *baselinePath, const char *freshPath,
         const std::vector<std::string> &prefixes, double maxRegress)
{
    const std::string baselineText = readFile(baselinePath);
    const std::string freshText = readFile(freshPath);
    const auto baseline = parseResults(baselineText, baselinePath);
    const auto fresh = parseResults(freshText, freshPath);
    const double basePool =
        topLevelNumber(baselineText, "pool_threads", 0.0);
    const double freshPool =
        topLevelNumber(freshText, "pool_threads", 0.0);

    std::printf("== %s vs %s\n", baselinePath, freshPath);
    int regressions = 0;
    std::size_t gated = 0;
    for (const auto &base : baseline) {
        if (!matchesAny(base.name, prefixes))
            continue;
        ++gated;
        if (poolDependent(base.name) &&
            (basePool == 1.0 || freshPool == 1.0)) {
            std::printf("%-32s SKIPPED: pool_threads == 1 in %s — "
                        "pool speedup is noise on a single-core "
                        "runner\n",
                        base.name.c_str(),
                        freshPool == 1.0
                            ? (basePool == 1.0 ? "baseline and fresh"
                                               : "fresh run")
                            : "baseline");
            continue;
        }
        const Metric *now = find(fresh, base.name);
        if (now == nullptr) {
            std::fprintf(stderr,
                         "REGRESSION %s: present in baseline, "
                         "missing from %s\n",
                         base.name.c_str(), freshPath);
            ++regressions;
            continue;
        }
        const double floor = base.value * (1.0 - maxRegress);
        const char *verdict =
            now->value < floor ? "REGRESSION" : "ok";
        std::printf("%-32s baseline %9.3f  fresh %9.3f  floor "
                    "%9.3f  %s\n",
                    base.name.c_str(), base.value, now->value, floor,
                    verdict);
        if (now->value < floor)
            ++regressions;
    }
    if (gated == 0) {
        std::fprintf(stderr,
                     "%s: no baseline keys match any gated prefix — "
                     "nothing gated\n",
                     baselinePath);
        std::exit(2);
    }
    return regressions;
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <fresh.json> "
                 "[<baseline2.json> <fresh2.json> ...]\n"
                 "       [--max-regress 0.25] "
                 "[--prefix speedup_,serve_]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<const char *> paths;
    double maxRegress = 0.25;
    std::string prefixList = "speedup_";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--max-regress") == 0 &&
            a + 1 < argc) {
            maxRegress = std::atof(argv[++a]);
        } else if (std::strcmp(argv[a], "--prefix") == 0 &&
                   a + 1 < argc) {
            prefixList = argv[++a];
        } else {
            paths.push_back(argv[a]);
        }
    }
    if (paths.empty() || paths.size() % 2 != 0)
        return usage(argv[0]);
    if (maxRegress <= 0.0 || maxRegress >= 1.0) {
        std::fprintf(stderr, "--max-regress must be in (0, 1)\n");
        return 2;
    }
    const std::vector<std::string> prefixes =
        splitPrefixes(prefixList);
    if (prefixes.empty()) {
        std::fprintf(stderr, "--prefix list is empty\n");
        return 2;
    }

    int regressions = 0;
    for (std::size_t p = 0; p + 1 < paths.size(); p += 2)
        regressions +=
            diffPair(paths[p], paths[p + 1], prefixes, maxRegress);

    if (regressions > 0) {
        std::fprintf(stderr,
                     "%d metric(s) regressed more than %.0f%% vs "
                     "baseline\n",
                     regressions, maxRegress * 100.0);
        return 1;
    }
    std::printf("perf trajectory ok: %zu file pair(s) within %.0f%% "
                "of baseline\n",
                paths.size() / 2, maxRegress * 100.0);
    return 0;
}
