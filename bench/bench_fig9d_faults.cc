/**
 * @file
 * Fig. 9(d) extension: hard faults and recovery under storm scenarios.
 *
 * The robustness claim of the fault subsystem: with first-class fault
 * injection on — transfer aborts, gauge outages, agent crashes, DC
 * blackouts — the engine's retry/backoff/replan pipeline and the
 * predictor degradation ladder keep every query completing, at a
 * bounded latency overhead, and the fault-free arm stays bit-identical
 * to pre-fault builds (an empty FaultPlan takes exactly the same code
 * paths as no plan at all).
 *
 * Three arms over the same seeds on the Fig. 9(c) workload (skewed
 * 120 GB TeraSort, WANify-TC + Tetrium, drift-adaptive):
 *
 *   - baseline:   stationary mesh, no faults — and a second pass with
 *                 an explicit empty FaultPlan whose aggregate must be
 *                 bit-identical (the hollow-plan identity gate);
 *   - fault-storm: transfer aborts into the shuffle, a gauge outage
 *                 across the first retrain window, an agent crash,
 *                 under a diurnal swing — the retry + ladder path;
 *   - blackout:   a hard DC3 blackout inside a soft outage — the
 *                 abort + deferred-retry + replan path.
 *
 * Gates enforced by the bench itself (exit 1): every trial of every
 * storm completes all stages with finite latency, the storms actually
 * injected faults and the recovery telemetry (retries, replans, lost
 * bytes) is non-trivial, and the hollow-plan aggregate is bit-equal
 * to the baseline. The committed BENCH_faults.json trajectory is
 * gated by wanify-bench-diff (prefix faults_, higher is better):
 * completion fractions and baseline/storm recovery ratios —
 * virtual-time, deterministic in the seeds, machine-independent.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "fault/fault.hh"
#include "scenario/library.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

namespace {

constexpr std::size_t kTrials = 5;
constexpr std::uint64_t kScenarioSeed = 424242;
constexpr std::uint64_t kTrialSeed = 1000;

/** Per-arm outcome: the aggregate plus the bench's own gates. */
struct ArmResult
{
    Aggregate agg;
    std::size_t completedTrials = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "BENCH_faults.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
            outPath = argv[++a];
        } else {
            std::fprintf(stderr, "usage: %s [--out path]\n", argv[0]);
            return 2;
        }
    }

    auto &ctx = BenchContext::get();
    const auto topo =
        experiments::workerCluster(ctx.topo.dcCount(), 2);
    const std::size_t n = topo.dcCount();
    // The Fig. 9(c) workload: 120 GB stretches the shuffles across
    // the storms' fault windows (aborts at t = 30/75, the blackout at
    // t = 60 must land inside a shuffle to kill anything).
    const auto job = workloads::teraSort(120.0);
    storage::HdfsStore hdfs(topo);
    std::vector<double> skew(n, 0.0);
    double skewSum = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
        skew[d] = std::pow(0.6, static_cast<double>(d));
        skewSum += skew[d];
    }
    for (std::size_t d = 0; d < n; ++d)
        skew[d] /= skewSum;
    hdfs.loadSkewed(job.inputBytes, skew);
    const auto input = hdfs.distribution();
    sched::TetriumScheduler tetrium;

    // Fig. 9(c)'s scenario-sized drift window, so the storms' gauge
    // faults intersect real retrain attempts.
    core::WanifyConfig wcfg;
    wcfg.drift.windowSize = 2 * n * (n - 1);
    wcfg.drift.minObservations = n * (n - 1);
    wcfg.drift.retrainFraction = 0.15;
    core::Wanify tc(wcfg);
    tc.setPredictor(sharedPredictor());

    auto sweep = [&](const scenario::Dynamics *dynamics,
                     const fault::FaultPlan *faults) {
        const auto seeds = deriveSeeds(kTrialSeed, kTrials);
        std::vector<gda::QueryResult> results(kTrials);
        ThreadPool::global().parallelFor(
            kTrials, [&](std::size_t t) {
                gda::Engine engine(topo, ctx.simCfg, seeds[t]);
                gda::RunOptions opts;
                opts.schedulerBw = ctx.staticIndependent;
                opts.wanify = &tc;
                opts.dynamics = dynamics;
                opts.faults = faults;
                opts.adaptOnDrift = true;
                results[t] =
                    engine.run(job, input, tetrium, opts);
            });
        ArmResult arm;
        arm.agg = aggregate(results);
        for (const auto &r : results) {
            bool ok = std::isfinite(r.latency) && r.latency > 0.0 &&
                      !r.stages.empty();
            for (const auto &stage : r.stages)
                ok = ok && stage.end >= stage.transferEnd;
            if (ok)
                ++arm.completedTrials;
        }
        return arm;
    };

    const ArmResult baseline = sweep(nullptr, nullptr);
    const fault::FaultPlan hollowPlan;
    const ArmResult hollow = sweep(nullptr, &hollowPlan);

    const auto stormSpec = scenario::libraryScenario("fault-storm");
    const scenario::ScenarioTimeline stormTimeline(stormSpec, n,
                                                   kScenarioSeed);
    const ArmResult storm = sweep(&stormTimeline, nullptr);

    const auto blackoutSpec = scenario::libraryScenario("blackout");
    const scenario::ScenarioTimeline blackoutTimeline(blackoutSpec, n,
                                                      kScenarioSeed);
    const ArmResult dark = sweep(&blackoutTimeline, nullptr);

    Table table("Fig 9(d): fault storms and recovery (WANify-TC + "
                "Tetrium, skewed TeraSort 120 GB)");
    table.setHeader({"Arm", "Lat (s)", "Faults", "Aborts",
                     "Retries", "Replans", "Lost GB", "Backoff s",
                     "Gauge", "Degraded"});
    auto armRow = [&](const char *name, const ArmResult &arm) {
        const auto &a = arm.agg;
        table.addRow(
            {name,
             Table::num(a.meanLatency, 0) + " +- " +
                 Table::num(a.seLatency, 0),
             Table::num(a.totalFaultsInjected, 0),
             Table::num(a.totalTransferAborts, 0),
             Table::num(a.totalTransferRetries, 0),
             Table::num(a.totalFaultReplans, 0),
             Table::num(a.totalLostBytes / 1.0e9, 2),
             Table::num(a.meanBackoffSeconds, 1),
             Table::num(a.totalGaugeFaults, 0),
             Table::num(a.trialsDegraded, 0)});
    };
    armRow("baseline", baseline);
    armRow("empty plan", hollow);
    armRow("fault-storm", storm);
    armRow("blackout", dark);
    table.print();

    const bool hollowIdentical =
        baseline.agg.meanLatency == hollow.agg.meanLatency &&
        baseline.agg.meanCost == hollow.agg.meanCost &&
        baseline.agg.meanMinBw == hollow.agg.meanMinBw &&
        hollow.agg.totalFaultsInjected == 0;
    const double stormCompletion =
        static_cast<double>(storm.completedTrials) / kTrials;
    const double darkCompletion =
        static_cast<double>(dark.completedTrials) / kTrials;
    const double stormRecovery =
        storm.agg.meanLatency > 0.0
            ? baseline.agg.meanLatency / storm.agg.meanLatency
            : 0.0;
    const double darkRecovery =
        dark.agg.meanLatency > 0.0
            ? baseline.agg.meanLatency / dark.agg.meanLatency
            : 0.0;

    std::printf("\n%zu trials per arm; scenario seed %llu; latencies "
                "are virtual time (deterministic in the seeds), so "
                "completion and recovery ratios are "
                "machine-independent.\n",
                kTrials,
                static_cast<unsigned long long>(kScenarioSeed));

    writeBenchJson(
        outPath,
        {BenchJsonField::text("bench", "fig9d_faults"),
         BenchJsonField::num("trials", kTrials),
         BenchJsonField::num("dc_count", n),
         BenchJsonField::num(
             "pool_threads", ThreadPool::global().threadCount()),
         BenchJsonField::text("determinism", "virtual-time")},
        {{"faults_hollow_identity", hollowIdentical ? 1.0 : 0.0},
         {"faults_storm_completion", stormCompletion},
         {"faults_blackout_completion", darkCompletion},
         {"faults_storm_recovery", stormRecovery},
         {"faults_blackout_recovery", darkRecovery}});
    std::printf("wrote %s\n", outPath.c_str());

    bool ok = true;
    if (!hollowIdentical) {
        std::fprintf(stderr,
                     "GATE: empty-FaultPlan arm diverged from the "
                     "fault-free baseline\n");
        ok = false;
    }
    if (stormCompletion < 1.0 || darkCompletion < 1.0) {
        std::fprintf(stderr,
                     "GATE: a storm trial failed to complete every "
                     "stage (storm %.2f, blackout %.2f)\n",
                     stormCompletion, darkCompletion);
        ok = false;
    }
    if (storm.agg.totalFaultsInjected == 0 ||
        storm.agg.totalTransferAborts == 0 ||
        storm.agg.totalLostBytes <= 0.0 ||
        storm.agg.totalTransferRetries +
                storm.agg.totalFaultReplans ==
            0) {
        std::fprintf(stderr,
                     "GATE: the fault storm injected no recoverable "
                     "damage (faults %zu, aborts %zu, lost %.0f)\n",
                     storm.agg.totalFaultsInjected,
                     storm.agg.totalTransferAborts,
                     storm.agg.totalLostBytes);
        ok = false;
    }
    if (dark.agg.totalFaultsInjected == 0) {
        std::fprintf(stderr,
                     "GATE: the blackout storm injected nothing\n");
        ok = false;
    }
    if (!ok)
        return 1;
    std::printf("all gates pass: storms complete, recovery telemetry "
                "non-trivial, hollow plan bit-identical\n");
    return 0;
}
