/**
 * @file
 * Table 2: Accurate prediction saves ~96% in costs.
 *
 * Reproduces the monitoring-cost accounting of Section 2.2 / Eq. 1:
 * annual runtime monitoring (every 30 minutes, t3.nano probes, 20 s
 * stable measurements at ~200 Mbps) versus the prediction-based
 * alternative (one-time 1000-sample training-set collection plus 1 s
 * snapshots). Paper: $703 / $1055 / $1406 runtime for 4/6/8 DCs
 * (total $3164) versus $69 + $56 on the prediction side.
 *
 * The paper does not fully specify the per-row split of the prediction
 * columns; we allocate the 1000 training samples across cluster sizes
 * proportionally to 1/N^2 and split the shared snapshot cost
 * inversely to N (see EXPERIMENTS.md). The headline — the runtime
 * column and the ~95% saving — is reproduced from Eq. 1 directly.
 *
 * The dollar columns price the probe bytes; the prediction side also
 * spends CPU on forest inference, so the bench measures that too and
 * reports it next to the table — backing the paper's "runtime
 * collection must stay cheap" claim with a number.
 */

#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.hh"
#include "common/table.hh"
#include "cost/cost_model.hh"

using namespace wanify;
using namespace wanify::cost;

int
main()
{
    const std::size_t sizes[] = {4, 6, 8};

    // Eq. 1 parameters (Section 2.2): t3.nano, 30-minute cadence,
    // 20-second measurements moving ~200 Mbps.
    MonitoringCostParams base;
    base.occurrencesPerYear = occurrencesPerYear(30.0);
    base.perInstanceSecond = 0.0052 / 3600.0;
    base.duration = 20.0;
    base.perInstanceNetwork = monitoringNetworkCost(200.0, 20.0, 0.02);

    // Training set: 1000 samples of snapshot (1 s) + stable (20 s)
    // measurement, allocated across sizes ~ 1/N^2.
    const double weights[] = {1.0 / 16.0, 1.0 / 36.0, 1.0 / 64.0};
    const double weightSum = weights[0] + weights[1] + weights[2];

    // Production predictions: 1-second snapshots on the largest
    // cluster at the same cadence, shared across rows ~ 1/N.
    const Dollars annualSnapshots =
        base.occurrencesPerYear * 8.0 *
        (base.perInstanceSecond * 1.0 +
         monitoringNetworkCost(200.0, 1.0, 0.02));
    const double invN[] = {1.0 / 4.0, 1.0 / 6.0, 1.0 / 8.0};
    const double invNSum = invN[0] + invN[1] + invN[2];

    Table table("Table 2: Annual BW monitoring cost vs prediction "
                "[paper: 703/1055/1406 vs 35+29/20+16/14+11]");
    table.setHeader({"Number of DCs", "Runtime Monitoring ($)",
                     "Model Training ($)", "Predictions ($)"});

    Dollars totalRuntime = 0.0, totalTraining = 0.0, totalPredict = 0.0;
    for (int row = 0; row < 3; ++row) {
        MonitoringCostParams p = base;
        p.nodes = sizes[row];
        const Dollars runtime = annualMonitoringCost(p);

        const double samples = 1000.0 * weights[row] / weightSum;
        const Dollars perSample =
            static_cast<double>(sizes[row]) *
            (base.perInstanceSecond * 21.0 +
             monitoringNetworkCost(200.0, 21.0, 0.02));
        const Dollars training = samples * perSample;

        const Dollars predictions =
            annualSnapshots * invN[row] / invNSum;

        totalRuntime += runtime;
        totalTraining += training;
        totalPredict += predictions;
        table.addRow({std::to_string(sizes[row]),
                      Table::num(runtime, 0), Table::num(training, 0),
                      Table::num(predictions, 0)});
    }
    table.addRow({"Total", Table::num(totalRuntime, 0),
                  Table::num(totalTraining, 0),
                  Table::num(totalPredict, 0)});
    table.print();

    const double saving =
        1.0 - (totalTraining + totalPredict) / totalRuntime;
    std::printf("prediction saves %.1f%% of monitoring costs "
                "(paper: ~96%%)\n",
                saving * 100.0);

    // Prediction CPU time: the per-cadence compute the prediction
    // side adds on top of its 1-second snapshots. One full 8-DC
    // matrix (56 pairs, 100 trees) through the batched compiled
    // path, best of 5.
    const auto predictor = bench::syntheticPredictor();
    const auto topo = net::TopologyBuilder::paperTestbed(
        8, net::VmTypeCatalog::t3nano());
    const auto snapshot = bench::syntheticSnapshot(topo);
    volatile double sink = 0.0;
    double bestUs = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        sink = predictor.predictMatrix(topo, snapshot)
                   .offDiagonalMean();
        const auto t1 = std::chrono::steady_clock::now();
        const double us =
            std::chrono::duration<double, std::micro>(t1 - t0)
                .count();
        if (rep == 0 || us < bestUs)
            bestUs = us;
    }
    (void)sink;
    std::printf("prediction CPU time: %.0f us per 8-DC matrix "
                "(%.1f us per pair, 100 trees) — negligible next to "
                "the 1 s snapshot the probes already pay\n",
                bestUs, bestUs / 56.0);

    // Training CPU time: what the prediction side pays once per
    // campaign (full fit) and per drift retrain (25-tree warm
    // start), on a campaign-sized Table 3 dataset through the
    // presorted exact engine — the compute half of the "one-time
    // training" column above.
    Rng trainRng(20250731);
    ml::Dataset campaign = bench::campaignTable3Data(2400, 20250731);
    const auto t0 = std::chrono::steady_clock::now();
    core::RuntimeBwPredictor trained(
        experiments::sharedForestConfig());
    trained.train(campaign, 20250732);
    const auto t1 = std::chrono::steady_clock::now();
    auto grown = campaign;
    for (int s = 0; s < 336; ++s) {
        const std::size_t i =
            static_cast<std::size_t>(trainRng.uniformInt(0, 2399));
        grown.add(campaign.x(i), campaign.y(i)[0]);
    }
    const auto t2 = std::chrono::steady_clock::now();
    trained.retrain(grown, 25, 20250733);
    const auto t3 = std::chrono::steady_clock::now();
    const double fitMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double retrainMs =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    std::printf("training CPU time: %.0f ms per 2400-row campaign "
                "fit (100 trees), %.0f ms per 25-tree warm-start "
                "retrain — the mid-run re-planning stall\n",
                fitMs, retrainMs);
    return 0;
}
