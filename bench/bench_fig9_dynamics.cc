/**
 * @file
 * Fig. 9: Handling dynamics — the local optimizer's target BWs track
 * the monitored runtime BWs across 5-second AIMD epochs.
 *
 * (a) The standard deviation of WANify-determined target BWs from US
 *     East to every other region, versus the SD of the actual runtime
 *     rates (ifTop): the two series move together, showing the AIMD
 *     loop models the network's direction.
 * (b) With 20% random error injected into the optimal connections and
 *     target BWs, significant (> 100 Mbps) deltas appear (paper: 6
 *     marked epochs) and the run needs more epochs.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

namespace {

struct EpochTrace
{
    std::vector<double> targetSd;
    std::vector<double> monitoredSd;
    std::vector<double> trackingError;
    std::size_t significantDeltas = 0;
};

EpochTrace
runTrace(const BenchContext &ctx, bool injectError,
         std::uint64_t seed)
{
    // Fig. 9 isolates the AIMD tracking loop, so the trace runs the
    // Dynamic variant: throttling rewrites rates underneath the
    // optimizer and would confound the comparison.
    core::WanifyFeatures features;
    features.throttling = false;
    auto wanify = makeWanify(features);
    net::NetworkSim sim(ctx.topo, ctx.simCfg, seed);
    Rng rng(seed ^ 0xd1ce);
    auto predicted = wanify->predictRuntimeBw(sim, rng);
    auto plan = wanify->plan(predicted);

    if (injectError) {
        // 20% random error on the optimal connections and target BWs.
        for (std::size_t i = 0; i < plan.maxCons.rows(); ++i) {
            for (std::size_t j = 0; j < plan.maxCons.cols(); ++j) {
                const double f = 1.0 + (rng.bernoulli(0.5) ? 0.2
                                                           : -0.2);
                plan.maxCons.at(i, j) = std::max(
                    1, static_cast<int>(plan.maxCons.at(i, j) * f));
                plan.maxBw.at(i, j) *= f;
                plan.minBw.at(i, j) *= f;
            }
        }
    }
    auto deployment = wanify->deploy(sim, plan, predicted);
    auto &agents = deployment.agents;

    // Long-running transfers out of every DC keep the links loaded
    // for the whole observation window (a Tetrium-style shuffle-heavy
    // phase); both runs observe exactly the same number of epochs so
    // the delta counts compare fairly.
    const std::size_t n = ctx.topo.dcCount();
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i != j) {
                sim.startTransfer(ctx.topo.dc(i).vms.front(),
                                  ctx.topo.dc(j).vms.front(),
                                  units::gigabytes(100.0), 1);
            }
        }
    }
    for (auto &agent : agents) {
        agent->applyTargets();
        agent->resetWindow();
    }

    EpochTrace trace;
    const auto &east = agents.front(); // US East agent
    const int epochs = 20;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        sim.advanceBy(5.0);
        for (auto &agent : agents)
            agent->onEpoch();
        trace.targetSd.push_back(east->targetBwStddev());
        trace.monitoredSd.push_back(east->monitoredBwStddev());
        const double err = east->meanTrackingError();
        trace.trackingError.push_back(err);
        if (err > 100.0)
            ++trace.significantDeltas;
    }
    return trace;
}

void
printTrace(const std::string &title, const EpochTrace &trace)
{
    Table table(title);
    table.setHeader({"Epoch (5 s)", "SD of target BWs",
                     "SD of monitored BWs", "mean |tgt-mon|",
                     "delta > 100?"});
    for (std::size_t e = 0; e < trace.targetSd.size(); ++e) {
        const double err = trace.trackingError[e];
        table.addRow({std::to_string(e + 1),
                      Table::num(trace.targetSd[e], 0),
                      Table::num(trace.monitoredSd[e], 0),
                      Table::num(err, 0), err > 100.0 ? "*" : ""});
    }
    table.print();
    std::printf("epochs: %zu, significant deltas: %zu\n\n",
                trace.targetSd.size(), trace.significantDeltas);
}

} // namespace

int
main()
{
    auto &ctx = BenchContext::get();

    const auto clean = runTrace(ctx, false, 90210);
    printTrace("Fig 9(a): SD of US-East target vs monitored BWs "
               "across AIMD epochs (accurate model)",
               clean);
    std::printf("Pearson(target SD, monitored SD) = %.2f\n\n",
                stats::pearson(clean.targetSd, clean.monitoredSd));

    const auto erred = runTrace(ctx, true, 90210);
    printTrace("Fig 9(b): same with 20% random errors "
               "[paper: 6 significant deltas, more epochs]",
               erred);

    std::printf("error injection: %zu -> %zu significant deltas over "
                "%zu epochs; mean tracking error %.0f -> %.0f Mbps\n",
                clean.significantDeltas, erred.significantDeltas,
                erred.targetSd.size(),
                stats::mean(clean.trackingError),
                stats::mean(erred.trackingError));
    return 0;
}
