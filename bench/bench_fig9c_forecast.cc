/**
 * @file
 * Fig. 9(c) extension: forecast-aware planning vs snapshot planning.
 *
 * The tentpole claim of the forecast subsystem: when the WAN is about
 * to change, a planner that prices transfers against the *predicted
 * trajectory* of per-pair bandwidth (BwForecast: expected transfer
 * time integrated across forecast segments) strictly beats one that
 * divides by the snapshot of "right now". Three library scenarios
 * where the snapshot is most wrong about the future:
 *
 *   - maintenance: DC2 halves for 150 s starting at t = 60 — the
 *     snapshot still shows full capacity while the window is already
 *     announced;
 *   - diurnal: an all-pairs capacity sinusoid starting at the crest —
 *     the snapshot is taken at the best moment the network will ever
 *     have, so every transfer-vs-compute tradeoff is mispriced;
 *   - cascading: diurnal + degradation + DC1 outage + flash crowd —
 *     the adversarial compound case.
 *
 * Both arms run the full adaptive system — WANify-TC, drift-triggered
 * warm-start retraining — over the same seeds on a skewed 120 GB
 * TeraSort (skew forces cross-DC placement; uniform input is happy
 * all-local and never touches the WAN). The arms differ only in what
 * planning sees: the baseline places each stage against the predicted
 * snapshot and keeps that placement until the stage ends, while the
 * forecast arm plans against the scenario timeline's capacity
 * trajectory (Current anchor over the same predicted matrix) and,
 * when a retrain fires mid-stage, incrementally re-places the
 * undelivered bytes under the retrained belief (warm-started from the
 * prior plan). The gated metrics are the virtual-time latency ratios
 * snapshot / forecast per scenario — deterministic in the seeds, so
 * machine-independent — and the bench itself enforces the strict win
 * (> 1.0x) the acceptance criteria name. wanify-bench-diff gates the
 * committed BENCH_fig9c.json trajectory against collapse (prefix
 * forecast_).
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "scenario/library.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

namespace {

constexpr std::size_t kTrials = 5;
constexpr std::uint64_t kScenarioSeed = 424242;

const char *const kScenarios[] = {"maintenance", "diurnal",
                                  "cascading"};

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath = "BENCH_fig9c.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--out") == 0 && a + 1 < argc) {
            outPath = argv[++a];
        } else {
            std::fprintf(stderr, "usage: %s [--out path]\n", argv[0]);
            return 2;
        }
    }

    auto &ctx = BenchContext::get();
    // Two workers per DC so scenario capacity factors bind instead of
    // hiding behind the VM egress cap (same rationale as Fig. 9(b)).
    const auto topo =
        experiments::workerCluster(ctx.topo.dcCount(), 2);
    const std::size_t n = topo.dcCount();
    // 120 GB stretches the shuffles across the scenarios' event
    // windows (cascading's DC1 outage at t = 120 must land inside a
    // shuffle, not a compute phase, for the drift detector to see it).
    const auto job = workloads::teraSort(120.0);
    storage::HdfsStore hdfs(topo);
    // Geometric input skew (front DCs hold the bulk): a uniform
    // TeraSort is happy all-local, and an all-local plan never
    // touches the WAN — skew is what forces cross-DC placement and
    // makes bandwidth trajectories matter.
    std::vector<double> skew(n, 0.0);
    double skewSum = 0.0;
    for (std::size_t d = 0; d < n; ++d) {
        skew[d] = std::pow(0.6, static_cast<double>(d));
        skewSum += skew[d];
    }
    for (std::size_t d = 0; d < n; ++d)
        skew[d] /= skewSum;
    hdfs.loadSkewed(job.inputBytes, skew);
    const auto input = hdfs.distribution();
    sched::TetriumScheduler tetrium;

    // Scenario-sized drift window (Fig. 9(b)'s config, slightly more
    // sensitive): two full meshes, firing at a 15% significant-error
    // fraction — one DC's row+col at n = 8 is 25% of the mesh, so a
    // single-DC event trips within two epochs of entering a shuffle.
    core::WanifyConfig wcfg;
    wcfg.drift.windowSize = 2 * n * (n - 1);
    wcfg.drift.minObservations = n * (n - 1);
    wcfg.drift.retrainFraction = 0.15;
    core::Wanify tc(wcfg);
    tc.setPredictor(sharedPredictor());

    auto sweep = [&](const scenario::Dynamics *dynamics,
                     bool forecastOn) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, ctx.simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = ctx.staticIndependent;
                opts.wanify = &tc;
                opts.dynamics = dynamics;
                opts.adaptOnDrift = true;
                if (forecastOn) {
                    // Current anchor: WANify's predicted matrix
                    // reflects conditions at plan time, so the
                    // forecast scales it by f(t) / f(now).
                    opts.forecast.enabled = true;
                    opts.forecast.horizon = 300.0;
                    opts.forecast.step = 5.0;
                    opts.forecast.anchor =
                        core::ForecastConfig::Anchor::Current;
                }
                return engine.run(job, input, tetrium, opts);
            },
            kTrials);
    };

    Table table("Fig 9(c): snapshot vs forecast-aware planning "
                "(WANify-TC + Tetrium, skewed TeraSort 120 GB)");
    table.setHeader({"Scenario", "Snapshot lat (s)",
                     "Forecast lat (s)", "Speedup", "Snapshot $",
                     "Forecast $", "Retrains"});

    std::vector<std::pair<std::string, double>> results;
    bool strictWin = true;
    for (const char *name : kScenarios) {
        const auto spec = scenario::libraryScenario(name);
        const scenario::ScenarioTimeline timeline(spec, n,
                                                  kScenarioSeed);
        const auto snapshot = sweep(&timeline, false);
        const auto forecast = sweep(&timeline, true);
        const double speedup =
            forecast.meanLatency > 0.0
                ? snapshot.meanLatency / forecast.meanLatency
                : 0.0;
        strictWin = strictWin && speedup > 1.0;
        table.addRow({name,
                      Table::num(snapshot.meanLatency, 0) + " +- " +
                          Table::num(snapshot.seLatency, 0),
                      Table::num(forecast.meanLatency, 0) + " +- " +
                          Table::num(forecast.seLatency, 0),
                      Table::num(speedup, 2) + "x",
                      Table::num(snapshot.meanCost, 2),
                      Table::num(forecast.meanCost, 2),
                      Table::num(forecast.meanRetrainTriggers, 1)});
        results.emplace_back(
            std::string("forecast_speedup_") + name, speedup);
    }
    table.print();
    std::printf("\n%zu trials per cell; scenario seed %llu; latencies "
                "are virtual time (deterministic in the seeds), so "
                "the speedups are machine-independent.\n",
                kTrials,
                static_cast<unsigned long long>(kScenarioSeed));

    writeBenchJson(
        outPath,
        {BenchJsonField::text("bench", "fig9c_forecast"),
         BenchJsonField::num("trials", kTrials),
         BenchJsonField::num("dc_count", n),
         BenchJsonField::num(
             "pool_threads", ThreadPool::global().threadCount()),
         BenchJsonField::text("determinism", "virtual-time")},
        results);
    std::printf("wrote %s\n", outPath.c_str());

    if (!strictWin) {
        std::fprintf(stderr,
                     "forecast-aware planning failed to strictly "
                     "beat snapshot planning on every scenario\n");
        return 1;
    }
    std::printf("strict win: forecast-aware beats snapshot planning "
                "on all %zu scenarios\n",
                sizeof(kScenarios) / sizeof(kScenarios[0]));
    return 0;
}
