/**
 * @file
 * Shared plumbing for the bench binaries: standard testbed + trained
 * predictor + the experiment variants (BW source fed to the scheduler,
 * WANify deployment flavor) used across Table 4 and Figs. 5-10.
 */

#ifndef WANIFY_BENCH_BENCH_UTIL_HH
#define WANIFY_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"
#include "common/thread_pool.hh"
#include "core/wanify.hh"
#include "monitor/features.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/runner.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "monitor/measurement.hh"
#include "sched/kimchi.hh"
#include "sched/locality.hh"
#include "sched/tetrium.hh"
#include "storage/hdfs.hh"

namespace wanify {
namespace bench {

/** Lazily computed per-process context shared by a bench binary. */
struct BenchContext
{
    net::Topology topo;
    net::NetworkSimConfig simCfg;
    std::shared_ptr<const core::RuntimeBwPredictor> predictor;
    Matrix<Mbps> staticIndependent;
    Matrix<Mbps> staticSimultaneous;

    static BenchContext &
    get(std::size_t dcs = 8)
    {
        static BenchContext ctx = make(8);
        (void)dcs;
        return ctx;
    }

    static BenchContext
    make(std::size_t dcs)
    {
        BenchContext ctx{experiments::workerCluster(dcs),
                         experiments::defaultSimConfig(),
                         experiments::sharedPredictor(),
                         {},
                         {}};
        // The two static baselines are independent measurement
        // campaigns; overlap them on the pool (trials themselves run
        // in parallel via experiments::runTrials' default).
        const monitor::MeasurementConfig mc;
        ThreadPool::global().parallelFor(2, [&](std::size_t which) {
            if (which == 0) {
                ctx.staticIndependent = monitor::staticIndependentBw(
                    ctx.topo, ctx.simCfg, mc, 7777);
            } else {
                ctx.staticSimultaneous = monitor::staticSimultaneousBw(
                    ctx.topo, ctx.simCfg, mc, 7777);
            }
        });
        return ctx;
    }
};

/** A Wanify instance wired to the shared predictor. */
inline std::unique_ptr<core::Wanify>
makeWanify(core::WanifyFeatures features = core::WanifyFeatures::all())
{
    core::WanifyConfig cfg;
    cfg.features = features;
    auto w = std::make_unique<core::Wanify>(cfg);
    w->setPredictor(experiments::sharedPredictor());
    return w;
}

/** Mean predicted runtime BW matrix on a fresh sim (for scheduling). */
inline Matrix<Mbps>
predictedBwMatrix(const BenchContext &ctx, std::uint64_t seed = 31337)
{
    net::NetworkSim sim(ctx.topo, ctx.simCfg, seed);
    sim.advanceBy(10.0);
    monitor::MeshMeasurer measurer(sim);
    Rng rng(seed ^ 0xfeed);
    const monitor::MeasurementConfig mc;
    const auto snapshot = measurer.snapshot(mc, rng);
    return ctx.predictor->predictMatrix(ctx.topo, snapshot);
}

/**
 * Campaign-shaped synthetic Table 3 dataset: discrete cluster size
 * (heavy feature ties, as in real analyzer output) plus continuous
 * snapshot/load/retrans/distance features. One definition shared by
 * syntheticPredictor, the training perf bench, and the
 * monitoring-cost bench so they all measure the same workload.
 */
inline ml::Dataset
campaignTable3Data(std::size_t rows, std::uint64_t seed)
{
    Rng rng(seed);
    ml::Dataset data(monitor::kFeatureCount, 1);
    for (std::size_t s = 0; s < rows; ++s) {
        const double n = 2.0 + rng.uniformInt(0, 6);
        const double snap = rng.uniform(20.0, 2000.0);
        const double mem = rng.uniform(0.1, 0.9);
        const double cpu = rng.uniform(0.1, 0.9);
        const double retrans = rng.uniform(0.0, 0.5);
        const double dist = rng.uniform(100.0, 11000.0);
        const double target = snap * (1.1 - 0.3 * retrans) -
                              0.01 * dist + 40.0 * mem +
                              rng.normal(0.0, 25.0);
        data.add({n, snap, mem, cpu, retrans, dist}, target);
    }
    return data;
}

/**
 * A predictor with the production forest shape (100 trees, depth 14)
 * trained on a deterministic synthetic Table 3 dataset — for inference
 * perf measurement, where the forest's shape matters but the analyzer
 * campaign's simulation cost does not.
 */
inline core::RuntimeBwPredictor
syntheticPredictor(std::size_t nEstimators = 100,
                   std::uint64_t seed = 20250731)
{
    const ml::Dataset data = campaignTable3Data(1500, seed);
    ml::ForestConfig cfg = experiments::sharedForestConfig();
    cfg.nEstimators = nEstimators;
    core::RuntimeBwPredictor predictor(cfg);
    predictor.train(data, seed ^ 0x9e3779b97f4a7c15ULL);
    return predictor;
}

/** Deterministic synthetic snapshot mesh for a topology. */
inline Matrix<Mbps>
syntheticSnapshot(const net::Topology &topo, std::uint64_t seed = 99)
{
    const std::size_t n = topo.dcCount();
    Matrix<Mbps> snapshot = Matrix<Mbps>::square(n, 0.0);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            snapshot.at(i, j) =
                i == j ? 5800.0 : rng.uniform(50.0, 1500.0);
    return snapshot;
}

/**
 * BENCH_*.json emission, single-sourced: tools/bench_diff.cc parses
 * exactly this layout (flat top-level fields, then a flat "results"
 * object of "key": number pairs), so every perf bench must emit
 * through here — a format tweak in one place updates the producer
 * side atomically and the parser is the only other party.
 */
struct BenchJsonField
{
    std::string name;

    /** Pre-rendered JSON literal ("true", "42", "\"text\""). */
    std::string value;

    static BenchJsonField
    num(const std::string &name, std::size_t v)
    {
        return {name, std::to_string(v)};
    }
    static BenchJsonField
    boolean(const std::string &name, bool v)
    {
        return {name, v ? "true" : "false"};
    }
    static BenchJsonField
    text(const std::string &name, const std::string &v)
    {
        return {name, "\"" + v + "\""};
    }
};

inline void
writeBenchJson(
    const std::string &path,
    const std::vector<BenchJsonField> &header,
    const std::vector<std::pair<std::string, double>> &results)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    std::fprintf(f, "{\n");
    for (const auto &field : header)
        std::fprintf(f, "  \"%s\": %s,\n", field.name.c_str(),
                     field.value.c_str());
    std::fprintf(f, "  \"results\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i)
        std::fprintf(f, "    \"%s\": %.3f%s\n",
                     results[i].first.c_str(), results[i].second,
                     i + 1 < results.size() ? "," : "");
    std::fprintf(f, "  }\n}\n");
    std::fclose(f);
}

/** Print one aggregate row: latency (s), cost ($), min BW (Mbps). */
inline std::vector<std::string>
aggRow(const std::string &name, const experiments::Aggregate &a)
{
    return {name,
            Table::num(a.meanLatency, 0) + " +- " +
                Table::num(a.seLatency, 0),
            Table::num(a.meanCost, 2),
            Table::num(a.meanMinBw, 0) + " +- " +
                Table::num(a.seMinBw, 0)};
}

} // namespace bench
} // namespace wanify

#endif // WANIFY_BENCH_BENCH_UTIL_HH
