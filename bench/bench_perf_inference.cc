/**
 * @file
 * Inference performance bench: the CompiledForest speedup on the
 * predict→plan hot path, and the seed of the repo's perf trajectory.
 *
 * Three measurements, all on the production forest shape (100 trees,
 * depth 14, Table 3 features):
 *
 *  1. single pair — the pre-PR interpreted path (fresh feature vector
 *     plus one leaf-vector copy per tree per call) vs the compiled
 *     allocation-free walk;
 *  2. full matrix, n = 8 — the pre-PR per-pair predictMatrix loop vs
 *     the batched single-predictBatch path (the acceptance target:
 *     >= 10x);
 *  3. batch throughput — predictBatch sequential vs chunked across
 *     the process-wide ThreadPool.
 *
 * Results are printed as a table and emitted machine-readable to
 * BENCH_inference.json (override with --out) so CI can archive a
 * perf trajectory. CI runs the full mode (its gates are relative —
 * parity and same-machine speedup floors — so they hold on slow
 * runners); --smoke shrinks iteration counts for quick local
 * iteration and gates on parity only. Parity (batched output
 * bit-identical to the legacy per-pair loop) is enforced in every
 * mode and fails the process on mismatch.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "ml/compiled_forest.hh"
#include "monitor/features.hh"

using namespace wanify;

namespace {

using Clock = std::chrono::steady_clock;

/** Defeats dead-code elimination across measurement loops. */
volatile double gSink = 0.0;

/** Best-of-@p reps nanoseconds per op over @p iters iterations. */
template <typename F>
double
nsPerOp(std::size_t reps, std::size_t iters, F fn)
{
    double best = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < iters; ++i)
            fn();
        const auto t1 = Clock::now();
        const double ns =
            std::chrono::duration<double, std::nano>(t1 - t0)
                .count() /
            static_cast<double>(iters);
        if (rep == 0 || ns < best)
            best = ns;
    }
    return best;
}

/**
 * The pre-PR interpreted ensemble prediction: one freshly allocated
 * leaf vector per tree per call plus the accumulated mean vector —
 * exactly the code shape RandomForestRegressor::predict had before
 * DecisionTreeRegressor::predict returned a const reference.
 */
double
legacyPredictScalar(const ml::RandomForestRegressor &forest,
                    const std::vector<double> &x)
{
    std::vector<double> mean;
    for (const auto &tree : forest.trees()) {
        const std::vector<double> y = tree.predict(x);
        if (mean.empty())
            mean.assign(y.size(), 0.0);
        for (std::size_t k = 0; k < y.size(); ++k)
            mean[k] += y[k];
    }
    for (auto &m : mean)
        m /= static_cast<double>(forest.trees().size());
    return mean[0];
}

/** The pre-PR predictMatrix: per-pair features + interpreted walk. */
Matrix<Mbps>
legacyPredictMatrix(const core::RuntimeBwPredictor &predictor,
                    const net::Topology &topo,
                    const Matrix<Mbps> &snapshotBw)
{
    const std::size_t n = topo.dcCount();
    const monitor::HostLoad load;
    Matrix<Mbps> predicted = Matrix<Mbps>::square(n, 0.0);
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j) {
                predicted.at(i, j) = snapshotBw.at(i, j);
                continue;
            }
            const double cap = topo.connCap(i, j);
            const double retrans = std::max(
                0.0,
                1.0 - snapshotBw.at(i, j) / std::max(cap, 1.0));
            predicted.at(i, j) = std::max(
                0.0, legacyPredictScalar(
                         predictor.forest(),
                         monitor::pairFeatures(topo, snapshotBw, i,
                                               j, load, retrans)));
        }
    }
    return predicted;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_inference.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[a], "--out") == 0 &&
                   a + 1 < argc) {
            outPath = argv[++a];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out path]\n",
                         argv[0]);
            return 2;
        }
    }

    const auto predictor = bench::syntheticPredictor();
    const auto topo = net::TopologyBuilder::paperTestbed(
        8, net::VmTypeCatalog::t3nano());
    const auto snapshot = bench::syntheticSnapshot(topo);
    const ml::CompiledForest &compiled =
        predictor.forest().compiled();

    // --- parity first: the batched path must be bit-identical -----------
    const auto batched = predictor.predictMatrix(topo, snapshot);
    const auto legacy = legacyPredictMatrix(predictor, topo, snapshot);
    for (std::size_t i = 0; i < 8; ++i) {
        for (std::size_t j = 0; j < 8; ++j) {
            if (batched.at(i, j) != legacy.at(i, j)) {
                std::fprintf(stderr,
                             "PARITY FAILURE at (%zu, %zu): "
                             "batched %.17g != legacy %.17g\n",
                             i, j, batched.at(i, j),
                             legacy.at(i, j));
                return 1;
            }
        }
    }

    const std::size_t reps = 3;
    const std::size_t scale = smoke ? 10 : 1;

    // Diverse single-pair inputs (a fixed row lets the branch
    // predictor memorize the legacy path and flatters it): the 56
    // matrix feature rows, cycled by both measurements.
    const monitor::HostLoad load;
    std::vector<std::vector<double>> pairRows;
    for (net::DcId i = 0; i < 8; ++i) {
        for (net::DcId j = 0; j < 8; ++j) {
            if (i == j)
                continue;
            const double cap = topo.connCap(i, j);
            const double retrans = std::max(
                0.0, 1.0 - snapshot.at(i, j) / std::max(cap, 1.0));
            pairRows.push_back(monitor::pairFeatures(
                topo, snapshot, i, j, load, retrans));
        }
    }

    // --- 1. single pair ---------------------------------------------------
    std::size_t cursor = 0;
    const double pairLegacyNs =
        nsPerOp(reps, 2000 / scale, [&] {
            gSink = legacyPredictScalar(
                predictor.forest(),
                pairRows[cursor++ % pairRows.size()]);
        });
    cursor = 0;
    const double pairCompiledNs =
        nsPerOp(reps, 20000 / scale, [&] {
            double out = 0.0;
            compiled.predictInto(
                pairRows[cursor++ % pairRows.size()].data(), &out);
            gSink = out;
        });

    // --- 2. full matrix, n = 8 -------------------------------------------
    // Interleaved best-of reps: frequency drift and noisy neighbors
    // hit both paths alike, keeping the ratio honest.
    double matrixLegacyNs = 0.0, matrixBatchedNs = 0.0;
    for (std::size_t rep = 0; rep < 5; ++rep) {
        const double legacyNs = nsPerOp(1, 50 / scale + 1, [&] {
            gSink = legacyPredictMatrix(predictor, topo, snapshot)
                        .offDiagonalMean();
        });
        const double batchedNs = nsPerOp(1, 500 / scale + 1, [&] {
            gSink = predictor.predictMatrix(topo, snapshot)
                        .offDiagonalMean();
        });
        if (rep == 0 || legacyNs < matrixLegacyNs)
            matrixLegacyNs = legacyNs;
        if (rep == 0 || batchedNs < matrixBatchedNs)
            matrixBatchedNs = batchedNs;
    }

    // --- 3. batch throughput, sequential vs pool -------------------------
    const std::size_t rows = smoke ? 512 : 4096;
    std::vector<double> X(rows * monitor::kFeatureCount);
    Rng rng(4242);
    for (auto &v : X)
        v = rng.uniform(0.0, 2000.0);
    std::vector<double> Y(rows, 0.0);
    const double batchSeqNs = nsPerOp(reps, 3, [&] {
        compiled.predictBatch(X.data(), rows, Y.data(),
                              /*parallel=*/false);
        gSink = Y[rows - 1];
    });
    const double batchParNs = nsPerOp(reps, 3, [&] {
        compiled.predictBatch(X.data(), rows, Y.data(),
                              /*parallel=*/true);
        gSink = Y[rows - 1];
    });

    const double pairSpeedup = pairLegacyNs / pairCompiledNs;
    const double matrixSpeedup = matrixLegacyNs / matrixBatchedNs;
    const double batchSpeedup = batchSeqNs / batchParNs;

    Table table("Inference performance (100 trees, Table 3 features)");
    table.setHeader({"path", "before (us)", "after (us)", "speedup"});
    table.addRow({"single pair", Table::num(pairLegacyNs / 1e3, 2),
                  Table::num(pairCompiledNs / 1e3, 2),
                  Table::num(pairSpeedup, 1) + "x"});
    table.addRow({"predictMatrix n=8",
                  Table::num(matrixLegacyNs / 1e3, 2),
                  Table::num(matrixBatchedNs / 1e3, 2),
                  Table::num(matrixSpeedup, 1) + "x"});
    table.addRow({"predictBatch " + std::to_string(rows) + " rows",
                  Table::num(batchSeqNs / 1e3, 2),
                  Table::num(batchParNs / 1e3, 2),
                  Table::num(batchSpeedup, 2) + "x"});
    table.print();
    std::printf("parity: batched predictMatrix bit-identical to the "
                "legacy per-pair loop\n");
    const std::size_t poolThreads = ThreadPool::global().threadCount();
    if (poolThreads == 1) {
        std::printf("pool: 1 thread — predictBatch falls back to the "
                    "sequential range by construction, so the pool "
                    "speedup is ~1.0 and not gated here\n");
    }

    bench::writeBenchJson(
        outPath,
        {bench::BenchJsonField::text("bench", "inference"),
         bench::BenchJsonField::boolean("smoke", smoke),
         bench::BenchJsonField::num("trees",
                                    predictor.forest().treeCount()),
         bench::BenchJsonField::num("pool_threads", poolThreads),
         bench::BenchJsonField::num("feature_count",
                                    monitor::kFeatureCount),
         bench::BenchJsonField::text("parity", "bit-identical")},
        {{"predict_pair_legacy_ns", pairLegacyNs},
         {"predict_pair_compiled_ns", pairCompiledNs},
         {"predict_matrix8_legacy_ns", matrixLegacyNs},
         {"predict_matrix8_batched_ns", matrixBatchedNs},
         {"predict_batch_seq_ns", batchSeqNs},
         {"predict_batch_parallel_ns", batchParNs},
         {"speedup_predict_pair", pairSpeedup},
         {"speedup_predict_matrix8", matrixSpeedup},
         {"speedup_predict_batch_pool", batchSpeedup}});
    std::printf("wrote %s\n", outPath.c_str());

    // Smoke mode gates on parity only. Full runs (CI included)
    // enforce a lenient same-machine floor well under the >= 10x
    // this bench demonstrates on quiet machines, so a real
    // regression still fails loudly.
    if (!smoke && matrixSpeedup < 4.0) {
        std::fprintf(stderr,
                     "predictMatrix speedup %.1fx below the 4x "
                     "regression floor\n",
                     matrixSpeedup);
        return 1;
    }
    // Pool scaling is only assertable where a pool exists: with one
    // thread both paths are the same code path. With several, the
    // lane-aligned chunking must at least not *lose* to sequential —
    // a deliberately loose floor, because on shared CI runners a
    // noisy neighbor can eat the extra cores mid-measurement; the
    // committed-baseline diff gate is what tracks scaling proper.
    if (!smoke && poolThreads > 1 && batchSpeedup < 1.05) {
        std::fprintf(stderr,
                     "predictBatch parallel path slower than "
                     "sequential (%.2fx on %zu threads): chunk "
                     "fan-out is pure overhead\n",
                     batchSpeedup, poolThreads);
        return 1;
    }
    return 0;
}
