/**
 * @file
 * Fig. 8: Validation of WANify's design on TPC-DS query 78.
 *
 * (a) Ablation: Vanilla / Global-only / Local-only / full WANify on
 *     Tetrium and Kimchi. Paper shape: Global-only ~16% better than
 *     Vanilla, Local-only ~11% (worse than Global-only — it cannot
 *     see DC closeness), full WANify best at ~23%.
 * (b) Prediction-error injection: +-100 Mbps random error on the
 *     predicted matrix (WANify-err). Paper: ~18% worse latency, ~5%
 *     worse cost, ~38% lower minimum BW than error-free WANify.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/tpcds.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

int
main()
{
    auto &ctx = BenchContext::get();
    const auto predicted = predictedBwMatrix(ctx);
    const auto job =
        workloads::tpcDsQuery(workloads::TpcDsQuery::Q78, 100.0);
    storage::HdfsStore hdfs(ctx.topo);
    hdfs.loadSkewed(job.inputBytes,
                    experiments::naturalInputFractions(
                        ctx.topo.dcCount()));
    const auto input = hdfs.distribution();

    sched::TetriumScheduler tetrium;
    sched::KimchiScheduler kimchi;
    gda::Scheduler *schedulers[] = {&tetrium, &kimchi};
    const char *schedNames[] = {"Tetrium", "Kimchi"};

    auto sweep = [&](gda::Scheduler &sched, const Matrix<Mbps> &bw,
                     core::Wanify *w,
                     const std::optional<Matrix<Mbps>> &override =
                         std::nullopt) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(ctx.topo, ctx.simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = bw;
                opts.wanify = w;
                opts.predictedBwOverride = override;
                return engine.run(job, input, sched, opts);
            },
            5);
    };

    // ---- (a) ablation ----------------------------------------------------
    Table ablation("Fig 8(a): ablation on query 78 "
                   "[paper: global ~16%, local ~11%, full ~23%]");
    ablation.setHeader({"Variant", "System", "Latency (s)",
                        "Gain vs vanilla %", "Min BW (Mbps)"});

    auto globalOnly = makeWanify(core::WanifyFeatures::globalOnly());
    auto localOnly = makeWanify(core::WanifyFeatures::localOnly());
    auto full = makeWanify();

    for (int s = 0; s < 2; ++s) {
        const auto vanilla =
            sweep(*schedulers[s], ctx.staticIndependent, nullptr);
        struct Variant
        {
            const char *name;
            core::Wanify *wanify;
        } variants[] = {{"Vanilla", nullptr},
                        {"Global only", globalOnly.get()},
                        {"Local only", localOnly.get()},
                        {"WANify", full.get()}};
        for (const auto &v : variants) {
            const auto result =
                v.wanify == nullptr
                    ? vanilla
                    : sweep(*schedulers[s], predicted, v.wanify);
            const double gain =
                (vanilla.meanLatency - result.meanLatency) /
                vanilla.meanLatency * 100.0;
            ablation.addRow({v.name, schedNames[s],
                             Table::num(result.meanLatency, 0),
                             Table::num(gain, 1),
                             Table::num(result.meanMinBw, 0)});
        }
    }
    ablation.print();
    std::printf("\n");

    // ---- (b) prediction-error injection ----------------------------------
    // Randomly add/subtract a significant BW value (100 Mbps) to the
    // predicted matrix, exactly the WANify-err setup.
    Matrix<Mbps> erred = predicted;
    Rng rng(424242);
    for (std::size_t i = 0; i < erred.rows(); ++i) {
        for (std::size_t j = 0; j < erred.cols(); ++j) {
            if (i == j)
                continue;
            const double sign = rng.bernoulli(0.5) ? 1.0 : -1.0;
            erred.at(i, j) =
                std::max(10.0, erred.at(i, j) + sign * 100.0);
        }
    }

    const auto clean = sweep(tetrium, predicted, full.get());
    const auto withErr =
        sweep(tetrium, erred, full.get(), erred);

    Table errTable("Fig 8(b): impact of prediction error (Tetrium, "
                   "query 78) [paper: +18% latency, +5% cost, "
                   "-38% min BW]");
    errTable.setHeader(
        {"Variant", "Latency (s)", "Cost ($)", "Min BW (Mbps)"});
    errTable.addRow(aggRow("WANify", clean));
    errTable.addRow(aggRow("WANify-err", withErr));
    errTable.print();
    std::printf("latency +%.1f%%, cost +%.1f%%, min BW %.1f%%\n",
                (withErr.meanLatency - clean.meanLatency) /
                    clean.meanLatency * 100.0,
                (withErr.meanCost - clean.meanCost) /
                    clean.meanCost * 100.0,
                (withErr.meanMinBw - clean.meanMinBw) /
                    clean.meanMinBw * 100.0);
    return 0;
}
