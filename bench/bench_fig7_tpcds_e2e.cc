/**
 * @file
 * Fig. 7: State-of-the-art GDA systems on TPC-DS (100 GB), with and
 * without WANify.
 *
 * Tetrium and Kimchi run queries 82, 95, 11, 78 twice: the baseline
 * (static-independent BWs, single connection) and WANify-enabled
 * (predicted runtime BWs for scheduling + heterogeneous parallel
 * connections + agents + throttling).
 *
 * Paper shape: latency down by up to 24%, cost by up to 8%, and a
 * ~3.3x lift of the cluster's minimum BW; the light query 82 barely
 * moves.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/tpcds.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

int
main()
{
    auto &ctx = BenchContext::get();
    const auto predicted = predictedBwMatrix(ctx);

    sched::TetriumScheduler tetrium;
    sched::KimchiScheduler kimchi;
    gda::Scheduler *schedulers[] = {&tetrium, &kimchi};
    const char *schedNames[] = {"Tetrium", "Kimchi"};

    auto wanify = makeWanify();

    Table latTable("Fig 7(a): TPC-DS query latencies (s) "
                   "[paper: WANify cuts up to 24%]");
    latTable.setHeader({"Query", "System", "Baseline",
                        "with WANify", "Gain %"});
    Table costTable("Fig 7(b): TPC-DS query costs ($) "
                    "[paper: WANify cuts up to 8%]");
    costTable.setHeader({"Query", "System", "Baseline",
                         "with WANify", "Gain %"});

    double minBwGainWorst = 1.0e18, minBwGainBest = 0.0;
    for (auto q : workloads::allQueries()) {
        const auto job = workloads::tpcDsQuery(q, 100.0);
        storage::HdfsStore hdfs(ctx.topo);
        hdfs.loadSkewed(job.inputBytes,
                    experiments::naturalInputFractions(
                        ctx.topo.dcCount()));
        const auto input = hdfs.distribution();

        for (int s = 0; s < 2; ++s) {
            auto sweep = [&](const Matrix<Mbps> &bw,
                             core::Wanify *w) {
                return runTrials(
                    [&](std::uint64_t seed) {
                        gda::Engine engine(ctx.topo, ctx.simCfg,
                                           seed);
                        gda::RunOptions opts;
                        opts.schedulerBw = bw;
                        opts.wanify = w;
                        return engine.run(job, input,
                                          *schedulers[s], opts);
                    },
                    5);
            };
            const auto baseline =
                sweep(ctx.staticIndependent, nullptr);
            const auto enabled = sweep(predicted, wanify.get());

            const double latGain =
                (baseline.meanLatency - enabled.meanLatency) /
                baseline.meanLatency * 100.0;
            const double costGain =
                (baseline.meanCost - enabled.meanCost) /
                baseline.meanCost * 100.0;
            latTable.addRow({workloads::queryName(q), schedNames[s],
                             Table::num(baseline.meanLatency, 0),
                             Table::num(enabled.meanLatency, 0),
                             Table::num(latGain, 1)});
            costTable.addRow({workloads::queryName(q), schedNames[s],
                              Table::num(baseline.meanCost, 2),
                              Table::num(enabled.meanCost, 2),
                              Table::num(costGain, 1)});
            if (baseline.meanMinBw > 0.0) {
                const double bwGain =
                    enabled.meanMinBw / baseline.meanMinBw;
                minBwGainWorst = std::min(minBwGainWorst, bwGain);
                minBwGainBest = std::max(minBwGainBest, bwGain);
            }
        }
    }
    latTable.print();
    std::printf("\n");
    costTable.print();
    std::printf("minimum-BW lift across queries: %.1fx - %.1fx "
                "(paper: ~3.3x)\n",
                minBwGainWorst, minBwGainBest);
    return 0;
}
