/**
 * @file
 * Fig. 6: Efficacy against various shuffle (intermediate data) sizes.
 *
 * WordCount with all-distinct-word inputs controlling the per-pair
 * intermediate volume. The paper's x-axis values (2.06, 3.63, 7.4 MB
 * and beyond) are per-DC-pair map-output sizes; below ~7.4 MB WANify
 * and vanilla coincide (the WAN barely matters and the <1 MB AIMD
 * skip keeps agents quiet), above it WANify's heterogeneous
 * connections win latency, cost, and minimum BW (120-172 Mbps in the
 * paper).
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/wordcount.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

int
main()
{
    auto &ctx = BenchContext::get();
    const std::size_t n = ctx.topo.dcCount();
    sched::LocalityScheduler locality;

    // Per-pair intermediate sizes (MB), extending the paper's axis.
    const double perPairMb[] = {2.06, 3.63, 7.4, 15.0, 30.0, 60.0};
    const double pairs = static_cast<double>(n * n);

    Table table("Fig 6: WordCount vs shuffle size (paper: WANify ~= "
                "vanilla below ~7.4 MB, wins beyond)");
    table.setHeader({"Per-pair MB", "Vanilla lat (s)",
                     "WANify lat (s)", "Vanilla $", "WANify $",
                     "Vanilla minBW", "WANify minBW"});

    auto wanify = makeWanify();
    for (double mb : perPairMb) {
        const double totalIntermediateMb = mb * pairs;
        const auto job = workloads::wordCount(600.0,
                                              totalIntermediateMb);
        storage::HdfsStore hdfs(ctx.topo);
        hdfs.loadUniform(job.inputBytes);
        const auto input = hdfs.distribution();

        auto sweep = [&](core::Wanify *w) {
            return runTrials(
                [&](std::uint64_t seed) {
                    gda::Engine engine(ctx.topo, ctx.simCfg, seed);
                    gda::RunOptions opts;
                    opts.schedulerBw = ctx.staticIndependent;
                    opts.wanify = w;
                    if (w == nullptr) {
                        opts.staticConnections = Matrix<int>::square(
                            ctx.topo.dcCount(), 1);
                    }
                    return engine.run(job, input, locality, opts);
                },
                5);
        };
        const auto vanilla = sweep(nullptr);
        const auto withWanify = sweep(wanify.get());
        table.addRow({Table::num(mb, 2),
                      Table::num(vanilla.meanLatency, 1),
                      Table::num(withWanify.meanLatency, 1),
                      Table::num(vanilla.meanCost, 3),
                      Table::num(withWanify.meanCost, 3),
                      Table::num(vanilla.meanMinBw, 0),
                      Table::num(withWanify.meanMinBw, 0)});
    }
    table.print();
    return 0;
}
