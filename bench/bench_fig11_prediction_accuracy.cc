/**
 * @file
 * Fig. 11 + Section 5.8.3: prediction accuracy under heterogeneity.
 *
 * (a) Heterogeneous cluster sizes (4/6/8 DCs, 1 VM each): count of
 *     significant (> 100 Mbps) differences from the actual runtime
 *     BWs, for static-independent vs WANify-predicted matrices. The
 *     paper's shape: predicted beats static at every size.
 * (b) Heterogeneous VM counts: 1-5 extra VMs in 3 fixed DCs
 *     (association, Section 3.3.3) — same comparison.
 * (c) Section 5.8.3's scheduling consequence: Tetrium with predicted
 *     single-connection BWs (Tetrium-r) and full WANify vs vanilla
 *     Tetrium on query 78 with an extra VM in US East.
 * (d) ROADMAP "scenario-conditioned predictor features": the same
 *     significant-difference count gauged *inside* drifted regimes
 *     (a DC outage window, a diurnal trough) for the stationary
 *     shared predictor vs one whose Bandwidth Analyzer campaign ran
 *     under scenario::campaignDynamics — the conditioned model has
 *     seen those regimes and should miss less.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "core/heterogeneity.hh"
#include "scenario/library.hh"
#include "workloads/tpcds.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

namespace {

/** Significant-difference counts on one topology across trials. */
std::pair<double, double>
accuracyCounts(const net::Topology &topo,
               const net::NetworkSimConfig &simCfg,
               const core::RuntimeBwPredictor &predictor,
               std::uint64_t baseSeed, int trials)
{
    const monitor::MeasurementConfig mc;
    double staticCount = 0.0, predictedCount = 0.0;
    for (int t = 0; t < trials; ++t) {
        const std::uint64_t seed = baseSeed + 977 * t;
        const auto independent =
            monitor::staticIndependentBw(topo, simCfg, mc, seed);

        net::NetworkSim sim(topo, simCfg, seed ^ 0xace);
        sim.advanceBy(15.0);
        monitor::MeshMeasurer measurer(sim);
        Rng rng(seed ^ 0xbee);
        const auto snapshot = measurer.snapshot(mc, rng);
        const auto predicted =
            predictor.predictMatrix(topo, snapshot);
        const auto runtime = measurer.measureSimultaneous(
            mc.stableDuration, mc.connections);

        staticCount += static_cast<double>(
            core::countSignificantGaps(independent, runtime));
        predictedCount += static_cast<double>(
            core::countSignificantGaps(predicted, runtime));
    }
    return {staticCount / trials, predictedCount / trials};
}

} // namespace

int
main()
{
    const auto simCfg = defaultSimConfig();
    const auto predictor = sharedPredictor();
    const int trials = 5;

    // ---- (a) heterogeneous cluster sizes --------------------------------
    Table sizeTable("Fig 11(a): significant differences vs runtime "
                    "BWs, by cluster size [paper: predicted < "
                    "static everywhere]");
    sizeTable.setHeader({"DCs", "Pairs", "Static-independent",
                         "WANify-predicted"});
    for (std::size_t n : {4UL, 6UL, 8UL}) {
        const auto topo = monitoringCluster(n);
        const auto [stat, pred] = accuracyCounts(
            topo, simCfg, *predictor, 555000 + n, trials);
        sizeTable.addRow({std::to_string(n),
                          std::to_string(n * (n - 1)),
                          Table::num(stat, 1), Table::num(pred, 1)});
    }
    sizeTable.print();
    std::printf("\n");

    // ---- (b) heterogeneous VM counts -------------------------------------
    Table vmTable("Fig 11(b): significant differences with extra VMs "
                  "in 3 DCs (association) [paper: predicted < "
                  "static]");
    vmTable.setHeader({"Extra VMs", "Static-independent",
                       "WANify-predicted"});
    for (std::size_t extra : {1UL, 3UL, 5UL}) {
        net::TopologyBuilder builder;
        const auto regions = net::RegionCatalog::paperSubset(8);
        for (const auto &r : regions)
            builder.addDc(r, net::VmTypeCatalog::t3nano(), 1);
        // Extra VMs in 3 fixed DCs (US East, AP South, EU West).
        for (std::size_t k = 0; k < extra; ++k) {
            builder.addVm(0, net::VmTypeCatalog::t3nano());
            builder.addVm(2, net::VmTypeCatalog::t3nano());
            builder.addVm(6, net::VmTypeCatalog::t3nano());
        }
        const auto topo = builder.build();
        const auto [stat, pred] = accuracyCounts(
            topo, simCfg, *predictor, 777000 + extra, trials);
        vmTable.addRow({std::to_string(extra), Table::num(stat, 1),
                        Table::num(pred, 1)});
    }
    vmTable.print();
    std::printf("\n");

    // ---- (c) Section 5.8.3: heterogeneous compute in GDA ------------------
    net::TopologyBuilder builder;
    for (const auto &r : net::RegionCatalog::paperSubset(8))
        builder.addDc(r, net::VmTypeCatalog::t2medium(), 1);
    builder.addVm(0, net::VmTypeCatalog::t2medium()); // extra in US East
    const auto topo = builder.build();

    const monitor::MeasurementConfig mc;
    const auto staticBw =
        monitor::staticIndependentBw(topo, simCfg, mc, 4321);
    net::NetworkSim sim(topo, simCfg, 9876);
    sim.advanceBy(10.0);
    monitor::MeshMeasurer measurer(sim);
    Rng rng(24);
    const auto predicted =
        predictor->predictMatrix(topo, measurer.snapshot(mc, rng));

    const auto job =
        workloads::tpcDsQuery(workloads::TpcDsQuery::Q78, 100.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadSkewed(job.inputBytes,
                    experiments::naturalInputFractions(
                        topo.dcCount()));
    const auto input = hdfs.distribution();
    sched::TetriumScheduler tetrium;

    auto wanify = makeWanify();
    auto sweep = [&](const Matrix<Mbps> &bw, core::Wanify *w) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = bw;
                opts.wanify = w;
                return engine.run(job, input, tetrium, opts);
            },
            5);
    };
    const auto vanilla = sweep(staticBw, nullptr);
    const auto tetriumR = sweep(predicted, nullptr);
    const auto full = sweep(predicted, wanify.get());

    Table hetero("Sec 5.8.3: heterogeneous compute (extra VM in US "
                 "East), query 78 [paper: Tetrium-r -5% latency, "
                 "full WANify -15%, 2x min BW]");
    hetero.setHeader(
        {"Variant", "Latency (s)", "Cost ($)", "Min BW (Mbps)"});
    hetero.addRow(aggRow("vanilla Tetrium", vanilla));
    hetero.addRow(aggRow("Tetrium-r (predicted)", tetriumR));
    hetero.addRow(aggRow("WANify-Tetrium", full));
    hetero.print();
    std::printf("\n");

    // ---- (d) scenario-conditioned training campaigns ----------------------
    const auto conditioned = scenarioConditionedPredictor();
    Table campTable(
        "Ext (d): significant differences vs runtime BWs gauged "
        "inside drifted regimes [scenario-conditioned campaign < "
        "stationary-trained]");
    campTable.setHeader(
        {"Regime", "Stationary-trained", "Scenario-conditioned"});

    struct Regime
    {
        const char *label;
        const char *scenarioName;
        double t;
    };
    // Regimes where the scripted capacity actually binds the gauged
    // mesh (the monitoring testbed's probes are connection-capability
    // bound, so only deep capacity cuts move runtime BW): inside the
    // outage the conditioned model should win, after recovery the two
    // must tie — conditioning costs nothing in steady state.
    const Regime regimes[] = {
        {"dc-outage, inside window (t=100)", "dc-outage", 100.0},
        {"dc-outage, after recovery (t=200)", "dc-outage", 200.0},
        {"cascading, outage window (t=150)", "cascading", 150.0},
    };
    for (const Regime &regime : regimes) {
        const auto topo = monitoringCluster(8);
        const scenario::ScenarioTimeline timeline(
            scenario::libraryScenario(regime.scenarioName), 8, 99);
        double statCount = 0.0, condCount = 0.0;
        const monitor::MeasurementConfig mc;
        for (int t = 0; t < trials; ++t) {
            net::NetworkSim sim(topo, simCfg, 9100 + 31 * t);
            sim.advanceBy(10.0);
            timeline.applyAt(sim, regime.t);
            monitor::MeshMeasurer measurer(sim);
            Rng rng(771 + t);
            const auto snapshot = measurer.snapshot(mc, rng);
            const auto runtime = measurer.measureSimultaneous(
                mc.stableDuration, mc.connections);
            statCount += static_cast<double>(
                core::countSignificantGaps(
                    predictor->predictMatrix(topo, snapshot),
                    runtime));
            condCount += static_cast<double>(
                core::countSignificantGaps(
                    conditioned->predictMatrix(topo, snapshot),
                    runtime));
        }
        campTable.addRow({regime.label,
                          Table::num(statCount / trials, 1),
                          Table::num(condCount / trials, 1)});
    }
    campTable.print();
    return 0;
}
