/**
 * @file
 * Component micro-benchmarks (google-benchmark): the hot paths of the
 * WANify stack — the weighted max-min flow solver, Random Forest
 * inference, Algorithm 1, and the Eq. 2/3 global optimizer — plus the
 * DESIGN.md ablation showing that the RTT-bias weighting is
 * load-bearing (unweighted max-min erases the Fig. 2(b) starvation).
 */

#include <benchmark/benchmark.h>

#include "core/dc_relations.hh"
#include "core/global_optimizer.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/testbed.hh"
#include "ml/compiled_forest.hh"
#include "monitor/features.hh"
#include "net/flow_solver.hh"
#include "net/network_sim.hh"

using namespace wanify;

namespace {

/** Full-mesh flow set on the n-DC monitoring testbed. */
std::pair<std::vector<net::FlowSpec>, net::SolverInputs>
meshProblem(std::size_t n, int connections, bool rttWeights)
{
    const auto topo = experiments::monitoringCluster(n);
    std::vector<net::FlowSpec> flows;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            net::FlowSpec spec;
            spec.srcVm = topo.dc(i).vms.front();
            spec.dstVm = topo.dc(j).vms.front();
            spec.srcDc = i;
            spec.dstDc = j;
            spec.connections = connections;
            const Seconds rtt = topo.rttSeconds(i, j);
            spec.weightPerConn =
                rttWeights ? 1.0 / (rtt * rtt) : 1.0;
            spec.capPerConn = topo.connCap(i, j);
            flows.push_back(spec);
        }
    }
    net::SolverInputs inputs;
    inputs.dcCount = n;
    inputs.vmEgressCap.assign(topo.vmCount(), 2900.0);
    inputs.vmIngressCap.assign(topo.vmCount(), 2900.0);
    inputs.vmNicCap.assign(topo.vmCount(), 5800.0);
    inputs.pathCap.assign(n * n, 2900.0);
    return {flows, inputs};
}

void
BM_FlowSolverMesh8(benchmark::State &state)
{
    auto [flows, inputs] = meshProblem(8, 4, true);
    for (auto _ : state)
        benchmark::DoNotOptimize(net::solveRates(flows, inputs));
}
BENCHMARK(BM_FlowSolverMesh8);

void
BM_FlowSolverMesh8Unweighted(benchmark::State &state)
{
    // DESIGN ablation: without RTT bias the allocation equalizes and
    // the weak-link starvation of Fig. 2(b) disappears.
    auto [flows, inputs] = meshProblem(8, 4, false);
    for (auto _ : state)
        benchmark::DoNotOptimize(net::solveRates(flows, inputs));
}
BENCHMARK(BM_FlowSolverMesh8Unweighted);

void
BM_NetworkSimAdvance(benchmark::State &state)
{
    const auto topo = experiments::monitoringCluster(8);
    net::NetworkSim sim(topo, experiments::defaultSimConfig(), 5);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            if (i != j)
                sim.startMeasurement(topo.dc(i).vms.front(),
                                     topo.dc(j).vms.front(), 4);
    for (auto _ : state)
        sim.advanceBy(1.0);
}
BENCHMARK(BM_NetworkSimAdvance);

void
BM_RandomForestPredict(benchmark::State &state)
{
    const auto predictor = experiments::sharedPredictor();
    const std::vector<double> features = {8.0, 250.0, 0.4,
                                          0.3, 0.1, 9000.0};
    for (auto _ : state)
        benchmark::DoNotOptimize(predictor->predictPair(features));
}
BENCHMARK(BM_RandomForestPredict);

void
BM_RandomForestPredictCompiled(benchmark::State &state)
{
    // The allocation-free compiled walk of the same ensemble
    // BM_RandomForestPredict evaluates through the batch facade.
    const auto predictor = experiments::sharedPredictor();
    const ml::CompiledForest &compiled =
        predictor->forest().compiled();
    const std::vector<double> features = {8.0, 250.0, 0.4,
                                          0.3, 0.1, 9000.0};
    double out = 0.0;
    for (auto _ : state) {
        compiled.predictInto(features.data(), &out);
        benchmark::DoNotOptimize(out);
    }
}
BENCHMARK(BM_RandomForestPredictCompiled);

void
BM_PredictMatrixBatched8(benchmark::State &state)
{
    // The full predict->plan input: all 56 ordered pairs of an 8-DC
    // mesh through one batched inference.
    const auto predictor = experiments::sharedPredictor();
    const auto topo = experiments::monitoringCluster(8);
    Matrix<Mbps> snapshot = Matrix<Mbps>::square(8, 0.0);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            snapshot.at(i, j) =
                i == j ? 5800.0 : topo.connCap(i, j);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            predictor->predictMatrix(topo, snapshot));
}
BENCHMARK(BM_PredictMatrixBatched8);

void
BM_InferDcRelations(benchmark::State &state)
{
    const auto topo = experiments::monitoringCluster(8);
    Matrix<Mbps> bw = Matrix<Mbps>::square(8, 0.0);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            bw.at(i, j) = i == j ? 5800.0 : topo.connCap(i, j);
    for (auto _ : state)
        benchmark::DoNotOptimize(core::inferDcRelations(bw, 100.0));
}
BENCHMARK(BM_InferDcRelations);

void
BM_GlobalOptimize(benchmark::State &state)
{
    const auto topo = experiments::monitoringCluster(8);
    Matrix<Mbps> bw = Matrix<Mbps>::square(8, 0.0);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            bw.at(i, j) = i == j ? 5800.0 : topo.connCap(i, j);
    core::GlobalOptimizer optimizer;
    for (auto _ : state)
        benchmark::DoNotOptimize(optimizer.optimize(bw));
}
BENCHMARK(BM_GlobalOptimize);

} // namespace

BENCHMARK_MAIN();
