/**
 * @file
 * Table 4: Performance-cost improvements against static BWs.
 *
 * Runs TPC-DS queries 82, 95, 11, 78 (100 GB) on Tetrium and Kimchi
 * three times each — the scheduler fed (1) static-independent BWs (the
 * baseline existing systems use), (2) static-simultaneous BWs, and
 * (3) WANify-predicted runtime BWs. Everything uses a single
 * connection: Table 4 isolates the value of accurate BWs from the
 * value of parallel transfers (Section 5.2).
 *
 * Paper shape: queries 95/11/78 improve up to ~18% latency and ~5%
 * cost; the light query 82 improves ~1%; predicted ~= simultaneous.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/tpcds.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

namespace {

Aggregate
runQuery(const BenchContext &ctx, workloads::TpcDsQuery q,
         gda::Scheduler &sched, const Matrix<Mbps> &bw)
{
    const auto job = workloads::tpcDsQuery(q, 100.0);
    storage::HdfsStore hdfs(ctx.topo);
    hdfs.loadSkewed(job.inputBytes,
                    experiments::naturalInputFractions(
                        ctx.topo.dcCount()));
    const auto input = hdfs.distribution();

    return runTrials(
        [&](std::uint64_t seed) {
            gda::Engine engine(ctx.topo, ctx.simCfg, seed);
            gda::RunOptions opts;
            opts.schedulerBw = bw;
            return engine.run(job, input, sched, opts);
        },
        5);
}

} // namespace

int
main()
{
    auto &ctx = BenchContext::get();
    const auto predicted = predictedBwMatrix(ctx);

    sched::TetriumScheduler tetrium;
    sched::KimchiScheduler kimchi;
    gda::Scheduler *schedulers[] = {&tetrium, &kimchi};
    const char *schedNames[] = {"Tetrium", "Kimchi"};

    Table table("Table 4: Perf/cost improvements against "
                "static-independent BWs (%) "
                "[paper: up to 18% perf / 5.2% cost]");
    table.setHeader({"Query", "System", "Simult. Perf%",
                     "Simult. Cost%", "Predicted Perf%",
                     "Predicted Cost%"});

    for (auto q : workloads::allQueries()) {
        for (int s = 0; s < 2; ++s) {
            const auto baseline = runQuery(
                ctx, q, *schedulers[s], ctx.staticIndependent);
            const auto simultaneous = runQuery(
                ctx, q, *schedulers[s], ctx.staticSimultaneous);
            const auto pred =
                runQuery(ctx, q, *schedulers[s], predicted);

            auto perfGain = [&](const Aggregate &a) {
                return (baseline.meanLatency - a.meanLatency) /
                       baseline.meanLatency * 100.0;
            };
            auto costGain = [&](const Aggregate &a) {
                return (baseline.meanCost - a.meanCost) /
                       baseline.meanCost * 100.0;
            };
            table.addRow({workloads::queryName(q), schedNames[s],
                          Table::num(perfGain(simultaneous), 1),
                          Table::num(costGain(simultaneous), 1),
                          Table::num(perfGain(pred), 1),
                          Table::num(costGain(pred), 1)});
        }
    }
    table.print();
    std::printf("(single connection everywhere; positive = better "
                "than static-independent)\n");
    return 0;
}
