/**
 * @file
 * Fig. 2: BWs and network latency for different transfer approaches on
 * the 3-DC motivation cluster (DC1 = US East, DC2 = US West, DC3 = AP
 * SE Singapore).
 *
 * (a) single-connection BWs: decent between the nearby pair, weak to
 *     the distant DC;
 * (b) uniform 8-connection parallelism: nearby DCs occupy most of each
 *     other's capacity, the weak links barely move (paper: 120.5 Mbps);
 * (c) heterogeneous connections (global-optimizer plan): minimum BW
 *     roughly doubles (paper: 120.5 -> 255.5, ~2.1x) while the maximum
 *     drops;
 * (d) network latency of the paper's example reduce stage under each
 *     BW matrix (data sizes in Gb from Fig. 2(d)).
 */

#include <cstdio>
#include <string>

#include "common/table.hh"
#include "core/global_optimizer.hh"
#include "experiments/testbed.hh"
#include "monitor/measurement.hh"
#include "net/network_sim.hh"

using namespace wanify;
using namespace wanify::experiments;

namespace {

const char *kDcNames[3] = {"DC1(USE)", "DC2(USW)", "DC3(APSE)"};

void
printBwMatrix(const std::string &title, const Matrix<Mbps> &bw)
{
    Table table(title);
    table.setHeader({"from\\to", kDcNames[0], kDcNames[1], kDcNames[2]});
    for (std::size_t i = 0; i < 3; ++i) {
        std::vector<std::string> row = {kDcNames[i]};
        for (std::size_t j = 0; j < 3; ++j) {
            row.push_back(i == j ? "-"
                                 : Table::num(bw.at(i, j), 1));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("  min = %.1f Mbps, max = %.1f Mbps\n\n",
                bw.offDiagonalMin(), bw.offDiagonalMax());
}

/** Steady-state mesh rates under a fixed connection matrix. */
Matrix<Mbps>
meshRates(const net::Topology &topo, const Matrix<int> &conns,
          std::uint64_t seed)
{
    auto simCfg = defaultSimConfig();
    net::NetworkSim sim(topo, simCfg, seed);
    for (net::DcId i = 0; i < 3; ++i) {
        for (net::DcId j = 0; j < 3; ++j) {
            if (i != j) {
                sim.startMeasurement(topo.dc(i).vms.front(),
                                     topo.dc(j).vms.front(),
                                     conns.at(i, j));
            }
        }
    }
    // Average over a 20 s steady window.
    Matrix<Bytes> before = Matrix<Bytes>::square(3, 0.0);
    for (net::DcId i = 0; i < 3; ++i)
        for (net::DcId j = 0; j < 3; ++j)
            before.at(i, j) = sim.pairBytes(i, j);
    sim.advanceBy(20.0);
    Matrix<Mbps> rates = Matrix<Mbps>::square(3, 0.0);
    for (net::DcId i = 0; i < 3; ++i)
        for (net::DcId j = 0; j < 3; ++j)
            rates.at(i, j) = units::rateFor(
                sim.pairBytes(i, j) - before.at(i, j), 20.0);
    return rates;
}

} // namespace

int
main()
{
    const auto topo = fig2Cluster();
    const std::uint64_t seed = 20250611;

    // (a) single connection.
    const auto single =
        meshRates(topo, Matrix<int>::square(3, 1), seed);
    printBwMatrix("Fig 2(a): single-connection BWs (Mbps) "
                  "[paper: weak links ~120]",
                  single);

    // (b) uniform 8 parallel connections.
    const auto uniform =
        meshRates(topo, Matrix<int>::square(3, 8), seed);
    printBwMatrix("Fig 2(b): uniform 8-connection BWs (Mbps) "
                  "[paper: min stays ~120.5]",
                  uniform);

    // (c) heterogeneous connections from the global optimizer.
    core::GlobalOptimizer optimizer;
    const auto plan = optimizer.optimize(single);
    const auto hetero = meshRates(topo, plan.maxCons, seed);
    printBwMatrix("Fig 2(c): heterogeneous-connection BWs (Mbps) "
                  "[paper: min 255.5, ~2.1x the uniform min]",
                  hetero);

    Table consTable("Heterogeneous connection plan (maxCons)");
    consTable.setHeader({"from\\to", kDcNames[0], kDcNames[1],
                         kDcNames[2]});
    for (std::size_t i = 0; i < 3; ++i) {
        std::vector<std::string> row = {kDcNames[i]};
        for (std::size_t j = 0; j < 3; ++j)
            row.push_back(std::to_string(plan.maxCons.at(i, j)));
        consTable.addRow(row);
    }
    consTable.print();

    std::printf("\nmin-BW improvement hetero vs uniform: %.2fx "
                "(paper: ~2.1x)\n\n",
                hetero.offDiagonalMin() / uniform.offDiagonalMin());

    // (d) network latency of the example reduce stage. Paper data
    // sizes (Gb) scheduled for exchange; the slowest link gates the
    // stage.
    const double dataGb[3][3] = {
        {0.0, 4.0, 1.0}, {4.0, 0.0, 1.0}, {1.0, 1.0, 0.0}};
    Table latency("Fig 2(d): network latency of the example reduce "
                  "stage (s)");
    latency.setHeader({"Approach", "slowest-link time (s)"});
    auto stageTime = [&](const Matrix<Mbps> &bw) {
        Seconds worst = 0.0;
        for (std::size_t i = 0; i < 3; ++i) {
            for (std::size_t j = 0; j < 3; ++j) {
                if (i == j)
                    continue;
                worst = std::max(
                    worst, dataGb[i][j] * 1000.0 /
                               std::max(1.0, bw.at(i, j)));
            }
        }
        return worst;
    };
    latency.addRow({"Single connection",
                    Table::num(stageTime(single), 1)});
    latency.addRow({"Uniform parallel (8)",
                    Table::num(stageTime(uniform), 1)});
    latency.addRow({"Heterogeneous (WANify)",
                    Table::num(stageTime(hetero), 1)});
    latency.print();
    return 0;
}
