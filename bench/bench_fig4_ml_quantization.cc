/**
 * @file
 * Fig. 4: Impact on ML in GDA — BW-driven gradient quantization.
 *
 * MNIST-scale training (3 Dense + 3 Activation + 2 Dropout layers,
 * ~6.8 GB dataset, 10 epochs, ~97% test accuracy) on the 8-DC Spark
 * cluster. Five variants (Section 5.6):
 *
 *   NoQ   — full 32-bit gradients
 *   SAGQ  — quantization from static-independent BWs
 *   SimQ  — quantization from static-simultaneous BWs
 *   PredQ — quantization from WANify-predicted BWs
 *   WQ    — PredQ + WANify transport (hetero connections, agents, TC)
 *
 * Paper shape: SAGQ cuts ~22% time / ~15% cost vs NoQ; SimQ and PredQ
 * add 13-14.5% / 7-8% over SAGQ (and track each other); WQ is best —
 * ~26% / 16% over SAGQ with a ~2x minimum-BW boost.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "workloads/ml_quantization.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

int
main()
{
    auto &ctx = BenchContext::get();
    const auto predicted = predictedBwMatrix(ctx);
    const workloads::MlQuantizationJob job;

    auto wanify = makeWanify();

    struct Variant
    {
        const char *name;
        std::optional<Matrix<Mbps>> quantBw;
        core::Wanify *transport;
    } variants[] = {
        {"NoQ", std::nullopt, nullptr},
        {"SAGQ", ctx.staticIndependent, nullptr},
        {"SimQ", ctx.staticSimultaneous, nullptr},
        {"PredQ", predicted, nullptr},
        {"WQ", predicted, wanify.get()},
    };

    Table table("Fig 4: ML training with gradient quantization "
                "[paper: SAGQ -22%/-15% vs NoQ; WQ -26%/-16% vs "
                "SAGQ, ~2x min BW]");
    table.setHeader({"Model", "Training time (s)", "Cost ($)",
                     "Min BW (Mbps)", "Accuracy (%)"});

    double timeNoQ = 0.0, timeSagq = 0.0, costNoQ = 0.0,
           costSagq = 0.0, timeWq = 0.0, costWq = 0.0;
    for (const auto &v : variants) {
        std::vector<double> times, costs, minBws;
        double accuracy = 0.0;
        const int trials = 5;
        for (int t = 0; t < trials; ++t) {
            const auto result =
                job.run(ctx.topo, ctx.simCfg, 60600 + 37 * t,
                        v.quantBw, v.transport);
            times.push_back(result.trainingTime);
            costs.push_back(result.cost.total());
            minBws.push_back(result.minBw);
            accuracy = result.testAccuracy;
        }
        const double meanTime = stats::mean(times);
        const double meanCost = stats::mean(costs);
        table.addRow({v.name,
                      Table::num(meanTime, 0) + " +- " +
                          Table::num(stats::stderrOfMean(times), 0),
                      Table::num(meanCost, 2),
                      Table::num(stats::mean(minBws), 0),
                      Table::num(accuracy, 1)});
        if (std::string(v.name) == "NoQ") {
            timeNoQ = meanTime;
            costNoQ = meanCost;
        } else if (std::string(v.name) == "SAGQ") {
            timeSagq = meanTime;
            costSagq = meanCost;
        } else if (std::string(v.name) == "WQ") {
            timeWq = meanTime;
            costWq = meanCost;
        }
    }
    table.print();

    std::printf("SAGQ vs NoQ: time -%.1f%%, cost -%.1f%% "
                "(paper: ~22%%, ~15%%)\n",
                (timeNoQ - timeSagq) / timeNoQ * 100.0,
                (costNoQ - costSagq) / costNoQ * 100.0);
    std::printf("WQ vs SAGQ:  time -%.1f%%, cost -%.1f%% "
                "(paper: ~26%%, ~16%%)\n",
                (timeSagq - timeWq) / timeSagq * 100.0,
                (costSagq - costWq) / costSagq * 100.0);
    return 0;
}
