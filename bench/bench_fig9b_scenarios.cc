/**
 * @file
 * Fig. 9(b) extension: WANify under non-stationary WAN dynamics.
 *
 * The paper's Fig. 9 shows the AIMD loop tracking a fluctuating but
 * stationary network; this sweep runs TeraSort through every built-in
 * scenario (src/scenario/library.hh) and compares a static baseline
 * (uniform 4 connections, no WANify) against adaptive WANify-TC with
 * the drift-triggered warm-start retraining path enabled (RunOptions::
 * adaptOnDrift). Per scenario it reports latency, cost, minimum BW,
 * the peak drift-error fraction, how often the out-of-date-model
 * detector fired, and the mean BW prediction error of the stale model
 * at each retrain (pre) vs the warm-start retrained model on a fresh
 * out-of-sample gauge (post) — post below pre is the online learning
 * loop genuinely improving accuracy, not just re-anchoring. The
 * summary line checks that contract on the scenarios that retrain.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "scenario/library.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

namespace {

constexpr std::size_t kTrials = 3;
constexpr std::uint64_t kScenarioSeed = 424242;

} // namespace

int
main()
{
    auto &ctx = BenchContext::get();
    // Two workers per DC: aggregate egress (4 Gbps) exceeds the
    // backbone path capacity (2.9 Gbps), so scenario capacity factors
    // actually bind instead of hiding behind the VM egress limit. The
    // shared predictor transfers across cluster shapes (route quality
    // is a region-pair property).
    const auto topo =
        experiments::workerCluster(ctx.topo.dcCount(), 2);
    const std::size_t n = topo.dcCount();
    const auto job = workloads::teraSort(60.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;

    // WANify-TC with a scenario-sized drift window: two full meshes
    // of per-pair observations, firing at a 20% significant-error
    // fraction (one DC's row+col at n=8 is 25% of the mesh).
    core::WanifyConfig wcfg;
    wcfg.drift.windowSize = 2 * n * (n - 1);
    wcfg.drift.minObservations = n * (n - 1);
    wcfg.drift.retrainFraction = 0.2;
    auto tc = std::make_unique<core::Wanify>(wcfg);
    tc->setPredictor(sharedPredictor());

    auto sweep = [&](const scenario::Dynamics *dynamics,
                     core::Wanify *wanify, int staticConns) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, ctx.simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = ctx.staticIndependent;
                opts.wanify = wanify;
                opts.dynamics = dynamics;
                opts.adaptOnDrift = true;
                if (staticConns > 0) {
                    opts.staticConnections =
                        Matrix<int>::square(n, staticConns);
                }
                return engine.run(job, input, locality, opts);
            },
            kTrials);
    };

    Table table(
        "Fig 9(b) ext: TeraSort across WAN scenarios — static 4-conn "
        "baseline vs adaptive WANify-TC (warm-start retrain on "
        "drift)");
    table.setHeader({"Scenario", "System", "Latency (s)", "Cost ($)",
                     "Min BW (Mbps)", "Drift err", "Retrains",
                     "Pre err", "Post err", "Retrain CPU (ms)"});

    bool learned = true;
    std::size_t retrainingScenarios = 0;
    for (const auto &name : scenario::libraryScenarioNames()) {
        const auto spec = scenario::libraryScenario(name);
        const scenario::ScenarioTimeline timeline(spec, n,
                                                  kScenarioSeed);

        const auto baseline = sweep(&timeline, nullptr, 4);
        const auto adaptive = sweep(&timeline, tc.get(), 0);
        if (adaptive.trialsRetrained > 0) {
            ++retrainingScenarios;
            learned = learned && adaptive.meanPostRetrainError <
                                     adaptive.meanPreRetrainError;
        }

        auto row = [&](const char *system, const Aggregate &a) {
            const bool retrained = a.trialsRetrained > 0;
            table.addRow(
                {name, system,
                 Table::num(a.meanLatency, 0) + " +- " +
                     Table::num(a.seLatency, 0),
                 Table::num(a.meanCost, 2),
                 Table::num(a.meanMinBw, 0),
                 Table::pct(a.meanDriftErrorFraction, 0),
                 Table::num(a.meanRetrainTriggers, 1),
                 retrained ? Table::num(a.meanPreRetrainError, 0)
                           : std::string("-"),
                 retrained ? Table::num(a.meanPostRetrainError, 0)
                           : std::string("-"),
                 retrained
                     ? Table::num(a.meanRetrainSeconds * 1.0e3, 0)
                     : std::string("-")});
        };
        row("static-4", baseline);
        row("WANify-TC", adaptive);
    }
    table.print();
    std::printf("\n%zu trials per cell; scenario seed %llu; drift "
                "stats only exist where WANify is deployed; pre/post "
                "err = mean abs BW prediction error (Mbps) before vs "
                "after each warm-start retrain (post gauged "
                "out-of-sample); retrain CPU = mean wall time per "
                "warm start (real re-planning stall, presorted "
                "trainer).\n",
                kTrials,
                static_cast<unsigned long long>(kScenarioSeed));
    std::printf("online learning check (%zu retraining scenarios): "
                "post-retrain error %s pre-retrain error\n",
                retrainingScenarios,
                learned ? "strictly below" : "NOT below");
    return !learned || retrainingScenarios == 0 ? 1 : 0;
}
