/**
 * @file
 * Fig. 9(b) extension: WANify under non-stationary WAN dynamics.
 *
 * The paper's Fig. 9 shows the AIMD loop tracking a fluctuating but
 * stationary network; this sweep runs TeraSort through every built-in
 * scenario (src/scenario/library.hh) and compares a static baseline
 * (uniform 4 connections, no WANify) against adaptive WANify-TC with
 * the drift-triggered retraining path enabled (RunOptions::
 * adaptOnDrift). Per scenario it reports latency, cost, minimum BW,
 * the peak drift-error fraction, and how often the out-of-date-model
 * detector fired — the outage and cascading scenarios are the ones
 * that exercise retraining end to end.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "scenario/library.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

namespace {

constexpr std::size_t kTrials = 3;
constexpr std::uint64_t kScenarioSeed = 424242;

} // namespace

int
main()
{
    auto &ctx = BenchContext::get();
    // Two workers per DC: aggregate egress (4 Gbps) exceeds the
    // backbone path capacity (2.9 Gbps), so scenario capacity factors
    // actually bind instead of hiding behind the VM egress limit. The
    // shared predictor transfers across cluster shapes (route quality
    // is a region-pair property).
    const auto topo =
        experiments::workerCluster(ctx.topo.dcCount(), 2);
    const std::size_t n = topo.dcCount();
    const auto job = workloads::teraSort(60.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;

    // WANify-TC with a scenario-sized drift window: two full meshes
    // of per-pair observations, firing at a 20% significant-error
    // fraction (one DC's row+col at n=8 is 25% of the mesh).
    core::WanifyConfig wcfg;
    wcfg.drift.windowSize = 2 * n * (n - 1);
    wcfg.drift.minObservations = n * (n - 1);
    wcfg.drift.retrainFraction = 0.2;
    auto tc = std::make_unique<core::Wanify>(wcfg);
    tc->setPredictor(sharedPredictor());

    auto sweep = [&](const scenario::Dynamics *dynamics,
                     core::Wanify *wanify, int staticConns) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, ctx.simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = ctx.staticIndependent;
                opts.wanify = wanify;
                opts.dynamics = dynamics;
                opts.adaptOnDrift = true;
                if (staticConns > 0) {
                    opts.staticConnections =
                        Matrix<int>::square(n, staticConns);
                }
                return engine.run(job, input, locality, opts);
            },
            kTrials);
    };

    Table table(
        "Fig 9(b) ext: TeraSort across WAN scenarios — static 4-conn "
        "baseline vs adaptive WANify-TC (retrain-on-drift)");
    table.setHeader({"Scenario", "System", "Latency (s)", "Cost ($)",
                     "Min BW (Mbps)", "Drift err", "Retrains"});

    for (const auto &name : scenario::libraryScenarioNames()) {
        const auto spec = scenario::libraryScenario(name);
        const scenario::ScenarioTimeline timeline(spec, n,
                                                  kScenarioSeed);

        const auto baseline = sweep(&timeline, nullptr, 4);
        const auto adaptive = sweep(&timeline, tc.get(), 0);

        auto row = [&](const char *system, const Aggregate &a) {
            table.addRow({name, system,
                          Table::num(a.meanLatency, 0) + " +- " +
                              Table::num(a.seLatency, 0),
                          Table::num(a.meanCost, 2),
                          Table::num(a.meanMinBw, 0),
                          Table::pct(a.meanDriftErrorFraction, 0),
                          Table::num(a.meanRetrainTriggers, 1)});
        };
        row("static-4", baseline);
        row("WANify-TC", adaptive);
    }
    table.print();
    std::printf("\n%zu trials per cell; scenario seed %llu; drift "
                "stats only exist where WANify is deployed.\n",
                kTrials,
                static_cast<unsigned long long>(kScenarioSeed));
    return 0;
}
