/**
 * @file
 * Mesh-scale performance bench: the 16-256-DC sweep over the flat
 * vectorized hot paths and the event-driven clock, and the fifth leg
 * of the repo's perf gate.
 *
 * Four measurements:
 *
 *  1. parity + determinism — the flat solver-input banks must match
 *     the std::map reference composition bit-exactly after a factor
 *     churn drive, and a repeated event-clock engine run must
 *     reproduce its result bit-identically (enforced in every mode);
 *  2. resolveRates — ns/pair for the flat path across the DC sweep,
 *     plus the flat-vs-reference speedup at 128 and 256 DCs on
 *     identical meshes carrying 2n live flows. The speedups are the
 *     gated keys (speedup_ prefix): the flat migration must stay
 *     >= 4x at 256 DCs or the full run fails outright;
 *  3. whole-mesh prediction — predictMatrix ns/pair across the sweep
 *     with a production-shape forest and a reused PredictScratch
 *     (the batched matrixFeaturesInto + predictBatch path);
 *  4. end-to-end drain — a spread-shuffle query under the cascading
 *     scenario with the EventDriven clock at the sweep's mid scale:
 *     the virtual-time completion is deterministic in the seed and
 *     gated (mesh_scale_ prefix); EventClock push/pop throughput and
 *     all wall-clock rates are recorded ungated.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "gda/event_clock.hh"
#include "scenario/library.hh"
#include "scenario/scenario.hh"

using namespace wanify;

namespace {

using Clock = std::chrono::steady_clock;

double
wallMs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     t0)
        .count();
}

/** Spreads every DC's input uniformly over all DCs — the densest
 *  shuffle mesh a placement can produce (n^2 concurrent pairs). */
class SpreadScheduler : public gda::Scheduler
{
  public:
    std::string name() const override { return "spread"; }

    Matrix<Bytes>
    placeStage(const gda::StageContext &ctx) override
    {
        const std::size_t n = ctx.topo->dcCount();
        Matrix<Bytes> a = Matrix<Bytes>::square(n, 0.0);
        for (net::DcId i = 0; i < n; ++i)
            for (net::DcId j = 0; j < n; ++j)
                a.at(i, j) =
                    ctx.inputByDc[i] / static_cast<double>(n);
        return a;
    }
};

/** Open 2n deterministic measurement flows (they never complete, so
 *  the flow set is stable across every resolve round). */
void
openMeshFlows(net::NetworkSim &sim, const net::Topology &topo)
{
    const std::size_t n = topo.dcCount();
    for (std::size_t i = 0; i < 2 * n; ++i) {
        const net::DcId src = static_cast<net::DcId>(i % n);
        const net::DcId dst =
            static_cast<net::DcId>((i * 7 + 3) % n);
        if (src == dst)
            continue;
        sim.startMeasurement(topo.dc(src).vms.front(),
                             topo.dc(dst).vms.front(),
                             1 + static_cast<int>(i % 4));
    }
}

/**
 * Time @p rounds resolves: each round dirties the factor bank and
 * advanceBy(0) re-runs the solver on the unchanged flow set. Returns
 * wall milliseconds for the whole loop.
 */
double
timeResolveRounds(net::NetworkSim &sim, std::size_t rounds)
{
    const auto t0 = Clock::now();
    for (std::size_t r = 0; r < rounds; ++r) {
        sim.setScenarioCapFactor(0, 1, r % 2 == 0 ? 0.8 : 1.0);
        sim.advanceBy(0.0);
    }
    return wallMs(t0);
}

struct ResolveTiming
{
    double flatMs = 0.0;
    double refMs = 0.0;
    bool parity = false;
};

/** Drive flat and reference sims identically; time both and check
 *  the resulting rate meshes match bit-exactly. */
ResolveTiming
resolveSweepAt(std::size_t n, std::size_t rounds)
{
    const auto topo = experiments::workerCluster(n, 1);
    net::NetworkSimConfig flatCfg = experiments::quietSimConfig();
    net::NetworkSimConfig refCfg = flatCfg;
    refCfg.referenceSolverInputs = true;

    net::NetworkSim flat(topo, flatCfg, 4242);
    net::NetworkSim ref(topo, refCfg, 4242);
    openMeshFlows(flat, topo);
    openMeshFlows(ref, topo);
    flat.advanceBy(0.0);
    ref.advanceBy(0.0);

    ResolveTiming out;
    out.flatMs = timeResolveRounds(flat, rounds);
    out.refMs = timeResolveRounds(ref, rounds);

    out.parity = true;
    const auto a = flat.pairRateMatrix();
    const auto b = ref.pairRateMatrix();
    for (std::size_t i = 0; i < n && out.parity; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (a.at(i, j) != b.at(i, j)) {
                out.parity = false;
                break;
            }
    return out;
}

double
nsPerPair(double ms, std::size_t rounds, std::size_t n)
{
    return ms * 1.0e6 /
           (static_cast<double>(rounds) *
            static_cast<double>(n) * static_cast<double>(n));
}

struct DrainResult
{
    gda::QueryResult result;
    double wallMs = 0.0;
};

/** One spread-shuffle query under the cascading scenario with the
 *  event-driven clock — the end-to-end virtual-time drain. */
DrainResult
drainAt(std::size_t n, gda::ClockMode clock)
{
    const auto topo = experiments::workerCluster(n, 1);
    const scenario::ScenarioTimeline timeline(
        scenario::libraryScenario("cascading"), n, 77);

    gda::JobSpec job;
    job.name = "mesh-drain";
    job.stages.push_back({"shuffle", 1.0, 0.0, true});
    job.inputBytes = units::gigabytes(1.0) * static_cast<double>(n);
    const std::vector<Bytes> input(n, units::gigabytes(1.0));

    SpreadScheduler spread;
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(n, 400.0);
    opts.dynamics = &timeline;
    opts.clock = clock;

    gda::Engine engine(topo, experiments::defaultSimConfig(), 1234);
    const auto t0 = Clock::now();
    DrainResult out;
    out.result = engine.run(job, input, spread, opts);
    out.wallMs = wallMs(t0);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_mesh_scale.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[a], "--out") == 0 &&
                   a + 1 < argc) {
            outPath = argv[++a];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out path]\n",
                         argv[0]);
            return 2;
        }
    }

    const std::vector<std::size_t> sweep =
        smoke ? std::vector<std::size_t>{16, 64}
              : std::vector<std::size_t>{16, 64, 128, 256};
    const std::size_t drainDcs = smoke ? 16 : 64;

    // --- 1. parity + determinism gates (every mode) -----------------------
    {
        const auto parity = resolveSweepAt(16, 8);
        if (!parity.parity) {
            std::fprintf(stderr,
                         "PARITY FAILURE: flat solver inputs "
                         "diverge from reference at 16 DCs\n");
            return 1;
        }
        const auto a = drainAt(16, gda::ClockMode::EventDriven);
        const auto b = drainAt(16, gda::ClockMode::EventDriven);
        if (a.result.latency != b.result.latency ||
            a.result.cost.total() != b.result.cost.total()) {
            std::fprintf(stderr,
                         "DETERMINISM FAILURE: repeated event-clock "
                         "drains differ (%.17g != %.17g)\n",
                         a.result.latency, b.result.latency);
            return 1;
        }
    }

    // --- 2. resolveRates sweep + flat-vs-reference speedup ----------------
    const std::size_t rounds = smoke ? 20 : 60;
    std::vector<ResolveTiming> timings;
    bool parityAll = true;
    for (std::size_t n : sweep) {
        timings.push_back(resolveSweepAt(n, rounds));
        parityAll = parityAll && timings.back().parity;
    }
    if (!parityAll) {
        std::fprintf(stderr, "PARITY FAILURE in sweep\n");
        return 1;
    }
    auto speedupAt = [&](std::size_t n) {
        for (std::size_t k = 0; k < sweep.size(); ++k)
            if (sweep[k] == n && timings[k].flatMs > 0.0)
                return timings[k].refMs / timings[k].flatMs;
        return 0.0;
    };

    // --- 3. predictMatrix ns/pair across the sweep ------------------------
    const auto predictor = bench::syntheticPredictor();
    const std::size_t predictReps = smoke ? 3 : 8;
    std::vector<double> predictNs;
    for (std::size_t n : sweep) {
        const auto topo = experiments::workerCluster(n, 1);
        const auto snapshot = bench::syntheticSnapshot(topo);
        core::PredictScratch scratch;
        // Warm once so buffer growth is outside the timed region.
        (void)predictor.predictMatrix(topo, snapshot, scratch);
        const auto t0 = Clock::now();
        for (std::size_t r = 0; r < predictReps; ++r)
            (void)predictor.predictMatrix(topo, snapshot, scratch);
        predictNs.push_back(
            nsPerPair(wallMs(t0), predictReps, n));
    }

    // --- 4. EventClock micro + end-to-end drain ---------------------------
    double clockEventsPerSec = 0.0;
    {
        const std::size_t events = smoke ? 100000 : 1000000;
        gda::EventClock clock;
        const auto t0 = Clock::now();
        for (std::size_t i = 0; i < events; ++i)
            clock.push(static_cast<double>((i * 31) % events),
                       gda::ClockEventKind::EpochTick);
        while (!clock.empty())
            (void)clock.pop();
        const double ms = wallMs(t0);
        clockEventsPerSec =
            ms > 0.0 ? static_cast<double>(2 * events) * 1000.0 / ms
                     : 0.0;
    }
    const auto drain = drainAt(drainDcs, gda::ClockMode::EventDriven);

    Table table("Mesh scale (" + std::to_string(sweep.front()) +
                "-" + std::to_string(sweep.back()) + " DCs)");
    table.setHeader({"dcs", "resolve ns/pair", "ref ns/pair",
                     "speedup", "predict ns/pair"});
    for (std::size_t k = 0; k < sweep.size(); ++k) {
        const std::size_t n = sweep[k];
        table.addRow(
            {std::to_string(n),
             Table::num(nsPerPair(timings[k].flatMs, rounds, n), 1),
             Table::num(nsPerPair(timings[k].refMs, rounds, n), 1),
             Table::num(speedupAt(n), 2) + "x",
             Table::num(predictNs[k], 1)});
    }
    table.print();
    std::printf("event clock: %.0f events/s\n", clockEventsPerSec);
    std::printf("drain @%zu DCs: virtual %.3f s, wall %.0f ms\n",
                drainDcs, drain.result.latency, drain.wallMs);
    std::printf(
        "parity: flat == reference bit-exact at every scale\n");
    std::printf("determinism: repeated drains bit-identical\n");

    std::vector<std::pair<std::string, double>> results = {
        {"mesh_scale_drain_virtual_s", drain.result.latency},
        {"mesh_scale_drain_cost", drain.result.cost.total()},
        {"clock_events_per_sec", clockEventsPerSec},
        {"drain_wall_ms", drain.wallMs},
    };
    for (std::size_t k = 0; k < sweep.size(); ++k) {
        const std::string n = std::to_string(sweep[k]);
        results.push_back({"resolve_ns_per_pair_" + n,
                           nsPerPair(timings[k].flatMs, rounds,
                                     sweep[k])});
        results.push_back(
            {"predict_ns_per_pair_" + n, predictNs[k]});
    }
    if (!smoke) {
        results.push_back(
            {"speedup_resolve_rates_128", speedupAt(128)});
        results.push_back(
            {"speedup_resolve_rates_256", speedupAt(256)});
    }
    bench::writeBenchJson(
        outPath,
        {bench::BenchJsonField::text("bench", "mesh_scale"),
         bench::BenchJsonField::boolean("smoke", smoke),
         bench::BenchJsonField::num("sweep_max", sweep.back()),
         bench::BenchJsonField::num("resolve_rounds", rounds),
         bench::BenchJsonField::num("drain_dcs", drainDcs),
         bench::BenchJsonField::text("determinism",
                                     "bit-identical")},
        results);
    std::printf("wrote %s\n", outPath.c_str());

    // Smoke gates on parity + determinism only. Full runs also
    // enforce the tentpole's floor: the flat solver-input migration
    // must hold a >= 4x resolve speedup at 256 DCs, and the drain
    // must have actually moved traffic.
    if (!smoke) {
        bool ok = true;
        if (speedupAt(256) < 4.0) {
            std::fprintf(stderr,
                         "FLOOR FAILURE: resolve speedup at 256 DCs "
                         "%.2fx < 4x\n",
                         speedupAt(256));
            ok = false;
        }
        if (!(drain.result.latency > 0.0) ||
            !(drain.result.minObservedBw > 0.0)) {
            std::fprintf(stderr,
                         "FLOOR FAILURE: drain moved no traffic\n");
            ok = false;
        }
        if (!ok)
            return 1;
    }
    return 0;
}
