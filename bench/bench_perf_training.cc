/**
 * @file
 * Training performance bench: the TrainingContext split engines vs the
 * legacy per-node-sorting splitter, on the production forest shape and
 * a campaign-sized Table 3 dataset.
 *
 * Three engines, timed interleaved (best-of so frequency drift hits
 * them alike):
 *
 *  1. nodeSort — the pre-PR splitter, re-sorting the node's index set
 *     per candidate feature at every node (the "before" column);
 *  2. exact — presorted per-feature orderings partitioned down the
 *     tree, bit-identical trees to nodeSort (gated here every run);
 *  3. histogram — <= 256-bin quantization shared across trees, with
 *     the BinIndex *extended* (not rebuilt) on warm starts.
 *
 * Both full fits (the Bandwidth Analyzer campaign path) and 25-tree
 * warm starts on a grown dataset (the Section 3.3.4 drift-retrain
 * stall) are measured. Results are printed as a table and emitted to
 * BENCH_training.json (override with --out) for the perf trajectory.
 * CI runs the full mode, which enforces lenient same-machine speedup
 * floors (exact >= 2x, histogram >= 5x) far under what quiet
 * machines measure, so a real regression fails loudly even on slow
 * shared runners; --smoke shrinks the workload for quick local
 * iteration and applies only the parity and accuracy gates.
 */

#include <cmath>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/table.hh"
#include "ml/random_forest.hh"
#include "monitor/features.hh"

using namespace wanify;

namespace {

using Clock = std::chrono::steady_clock;

volatile double gSink = 0.0;

ml::ForestConfig
forestConfig(std::size_t trees, ml::SplitMode mode)
{
    ml::ForestConfig cfg = experiments::sharedForestConfig();
    cfg.nEstimators = trees;
    cfg.tree.splitMode = mode;
    return cfg;
}

/** Best-of-@p reps milliseconds for one invocation of @p fn. */
template <typename F>
double
bestOfMs(std::size_t reps, F fn)
{
    double best = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        const auto t0 = Clock::now();
        fn();
        const auto t1 = Clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0)
                .count();
        if (rep == 0 || ms < best)
            best = ms;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_training.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[a], "--out") == 0 &&
                   a + 1 < argc) {
            outPath = argv[++a];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out path]\n",
                         argv[0]);
            return 2;
        }
    }

    // Campaign scale: the shared analyzer config collects 24 meshes
    // over sizes {2, 4, 6, 8} -> ~2400 pair rows; warm starts then
    // append runtime gauges. Smoke shrinks both for CI runners.
    const std::size_t rows = smoke ? 800 : 2400;
    const std::size_t extraRows = smoke ? 120 : 336; // ~6 8-DC gauges
    const std::size_t trees = smoke ? 24 : 100;
    const std::size_t extraTrees = 25; // WanifyConfig::retrainExtraTrees
    const std::size_t reps = smoke ? 2 : 3;
    const std::uint64_t seed = 20250731;

    const auto data = bench::campaignTable3Data(rows, seed);
    auto grown = data;
    grown.append(
        bench::campaignTable3Data(extraRows, seed ^ 0xfeedULL));

    // --- parity and accuracy gates first ---------------------------------
    ml::RandomForestRegressor exactForest(
        forestConfig(trees, ml::SplitMode::exact));
    ml::RandomForestRegressor nodeSortForest(
        forestConfig(trees, ml::SplitMode::nodeSort));
    ml::RandomForestRegressor histForest(
        forestConfig(trees, ml::SplitMode::histogram));
    exactForest.fit(data, seed);
    nodeSortForest.fit(data, seed);
    histForest.fit(data, seed);

    Rng probeRng(seed ^ 0xabcdULL);
    for (int p = 0; p < 256; ++p) {
        const std::vector<double> x = {
            2.0 + probeRng.uniformInt(0, 6),
            probeRng.uniform(20.0, 2000.0),
            probeRng.uniform(0.1, 0.9),
            probeRng.uniform(0.1, 0.9),
            probeRng.uniform(0.0, 0.5),
            probeRng.uniform(100.0, 11000.0)};
        const double e = exactForest.predictScalar(x);
        const double l = nodeSortForest.predictScalar(x);
        if (e != l) {
            std::fprintf(stderr,
                         "PARITY FAILURE: exact %.17g != nodeSort "
                         "%.17g\n",
                         e, l);
            return 1;
        }
    }
    if (exactForest.oobR2() != nodeSortForest.oobR2()) {
        std::fprintf(stderr, "PARITY FAILURE: OOB R^2 differs\n");
        return 1;
    }
    // Histogram trees are not bit-identical (bin-edge thresholds) but
    // must match exact-mode accuracy within noise.
    const double oobGap =
        std::abs(histForest.oobR2() - exactForest.oobR2());
    if (!(oobGap < 0.05)) {
        std::fprintf(stderr,
                     "histogram OOB R^2 %.4f strays from exact %.4f\n",
                     histForest.oobR2(), exactForest.oobR2());
        return 1;
    }

    // --- timed fits (interleaved best-of) --------------------------------
    double fitNodeSortMs = 0.0, fitExactMs = 0.0, fitHistMs = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        const double ns = bestOfMs(1, [&] {
            ml::RandomForestRegressor f(
                forestConfig(trees, ml::SplitMode::nodeSort));
            f.fit(data, seed);
            gSink = f.oobR2();
        });
        const double ex = bestOfMs(1, [&] {
            ml::RandomForestRegressor f(
                forestConfig(trees, ml::SplitMode::exact));
            f.fit(data, seed);
            gSink = f.oobR2();
        });
        const double hi = bestOfMs(1, [&] {
            ml::RandomForestRegressor f(
                forestConfig(trees, ml::SplitMode::histogram));
            f.fit(data, seed);
            gSink = f.oobR2();
        });
        if (rep == 0 || ns < fitNodeSortMs)
            fitNodeSortMs = ns;
        if (rep == 0 || ex < fitExactMs)
            fitExactMs = ex;
        if (rep == 0 || hi < fitHistMs)
            fitHistMs = hi;
    }

    // --- timed warm starts (the drift-retrain stall) ---------------------
    // Copy outside the clock (Wanify::retrain copies the base model
    // too, but that cost is mode-independent); the histogram path
    // extends the base's BinIndex instead of re-binning.
    double wsNodeSortMs = 0.0, wsExactMs = 0.0, wsHistMs = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
        {
            auto f = nodeSortForest;
            const double ms = bestOfMs(1, [&] {
                f.warmStart(grown, extraTrees, seed + rep);
                gSink = f.oobR2();
            });
            if (rep == 0 || ms < wsNodeSortMs)
                wsNodeSortMs = ms;
        }
        {
            auto f = exactForest;
            const double ms = bestOfMs(1, [&] {
                f.warmStart(grown, extraTrees, seed + rep);
                gSink = f.oobR2();
            });
            if (rep == 0 || ms < wsExactMs)
                wsExactMs = ms;
        }
        {
            auto f = histForest;
            const double ms = bestOfMs(1, [&] {
                f.warmStart(grown, extraTrees, seed + rep);
                gSink = f.oobR2();
            });
            if (rep == 0 || ms < wsHistMs)
                wsHistMs = ms;
        }
    }

    const double fitSpeedupExact = fitNodeSortMs / fitExactMs;
    const double fitSpeedupHist = fitNodeSortMs / fitHistMs;
    const double wsSpeedupExact = wsNodeSortMs / wsExactMs;
    const double wsSpeedupHist = wsNodeSortMs / wsHistMs;

    Table table("Training performance (" + std::to_string(trees) +
                " trees, depth 14, " + std::to_string(rows) +
                " campaign rows)");
    table.setHeader({"path", "nodeSort (ms)", "exact (ms)",
                     "histogram (ms)", "speedup (ex / hist)"});
    table.addRow({"forest fit", Table::num(fitNodeSortMs, 0),
                  Table::num(fitExactMs, 0),
                  Table::num(fitHistMs, 0),
                  Table::num(fitSpeedupExact, 1) + "x / " +
                      Table::num(fitSpeedupHist, 1) + "x"});
    table.addRow({"warmStart +" + std::to_string(extraTrees),
                  Table::num(wsNodeSortMs, 0),
                  Table::num(wsExactMs, 0), Table::num(wsHistMs, 0),
                  Table::num(wsSpeedupExact, 1) + "x / " +
                      Table::num(wsSpeedupHist, 1) + "x"});
    table.print();
    std::printf("parity: exact-mode forest bit-identical to the "
                "nodeSort reference; histogram OOB R^2 gap %.4f\n",
                oobGap);

    bench::writeBenchJson(
        outPath,
        {bench::BenchJsonField::text("bench", "training"),
         bench::BenchJsonField::boolean("smoke", smoke),
         bench::BenchJsonField::num("trees", trees),
         bench::BenchJsonField::num("rows", rows),
         bench::BenchJsonField::num(
             "pool_threads", ThreadPool::global().threadCount()),
         bench::BenchJsonField::text(
             "parity", "exact bit-identical to nodeSort")},
        {{"fit_nodesort_ms", fitNodeSortMs},
         {"fit_exact_ms", fitExactMs},
         {"fit_histogram_ms", fitHistMs},
         {"warmstart_nodesort_ms", wsNodeSortMs},
         {"warmstart_exact_ms", wsExactMs},
         {"warmstart_histogram_ms", wsHistMs},
         {"speedup_fit_exact", fitSpeedupExact},
         {"speedup_fit_histogram", fitSpeedupHist},
         {"speedup_warmstart_exact", wsSpeedupExact},
         {"speedup_warmstart_histogram", wsSpeedupHist}});
    std::printf("wrote %s\n", outPath.c_str());

    // Smoke mode gates on parity/accuracy only; full runs (CI
    // included) enforce same-machine floors far below quiet-machine
    // measurements (~18x / ~16x).
    if (!smoke && fitSpeedupExact < 2.0) {
        std::fprintf(stderr,
                     "exact fit speedup %.1fx below the 2x floor\n",
                     fitSpeedupExact);
        return 1;
    }
    if (!smoke && fitSpeedupHist < 5.0) {
        std::fprintf(stderr,
                     "histogram fit speedup %.1fx below the 5x "
                     "floor\n",
                     fitSpeedupHist);
        return 1;
    }
    return 0;
}
