/**
 * @file
 * Serve performance bench: the resident multi-query service's
 * behavioral trajectory, and the third leg of the repo's perf gate.
 *
 * Four measurements:
 *
 *  1. determinism — a small mixed drain executed twice must produce
 *     bit-identical aggregate result hashes (the serve analogue of the
 *     inference bench's parity gate; enforced in every mode);
 *  2. throughput — a 256-query mixed workload drained through a
 *     256-slot service over the shared 8-DC mesh: virtual-time
 *     queries/hour, plus the peak-concurrency floor the acceptance
 *     criteria name;
 *  3. fairness — a homogeneous equal-weight small-query workload,
 *     fully concurrent, under MaxMinFair: the Jain index over
 *     per-query attained WAN throughput;
 *  4. priority — the same contended workload with a weight-4 class,
 *     drained under MaxMinFair and WeightedPriority: the priority
 *     class's mean-latency gain from the weighted policy;
 *  5. mixed priority — the same gain on the *mixed* workload with
 *     staggered arrivals and scarce slots, where the adaptive
 *     a-priori share keeps small queries network-differentiable
 *     (under the legacy 1/N share they went compute-bound and the
 *     weighted policy had nothing to bite on).
 *
 * Every gated metric is virtual-time — deterministic in the seed, so
 * identical on any machine — which makes the committed BENCH_serve.json
 * baseline a *behavioral* trajectory: wanify-bench-diff flags a change
 * in what the service computes, not how fast the host ran it. Raw
 * wall-clock drain times are recorded ungated.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "serve/service.hh"
#include "serve/workload.hh"
#include "workloads/tpcds.hh"

using namespace wanify;

namespace {

using Clock = std::chrono::steady_clock;

std::unique_ptr<core::Wanify>
serveWanify()
{
    // The synthetic production-shape forest: deterministic and cheap
    // to train, so the bench measures the service, not an analyzer
    // campaign.
    auto w = std::make_unique<core::Wanify>();
    w->setPredictor(std::make_shared<core::RuntimeBwPredictor>(
        bench::syntheticPredictor()));
    return w;
}

struct DrainResult
{
    serve::ServiceReport report;
    double wallMs = 0.0;
};

DrainResult
drainSpecs(const serve::ServiceConfig &cfg,
           std::vector<serve::QuerySpec> specs, bool fluctuation,
           std::uint64_t seed)
{
    const auto wanify = serveWanify();
    serve::Service service(experiments::workerCluster(8), cfg,
                           fluctuation
                               ? experiments::defaultSimConfig()
                               : experiments::quietSimConfig(),
                           wanify.get(), seed);
    for (serve::QuerySpec &q : specs)
        service.submit(std::move(q));
    const auto t0 = Clock::now();
    DrainResult out;
    out.report = service.drain();
    out.wallMs = std::chrono::duration<double, std::milli>(
                     Clock::now() - t0)
                     .count();
    return out;
}

DrainResult
drain(const serve::ServiceConfig &cfg,
      const serve::WorkloadConfig &wl, bool fluctuation,
      std::uint64_t seed)
{
    return drainSpecs(cfg, serve::mixedWorkload(wl, 8, seed),
                      fluctuation, seed);
}

/**
 * N copies of the same multi-DC TPC-DS proxy, all due at t = 0: a
 * homogeneous WAN-bound workload. mixedWorkload's small queries plan
 * defensively under a 1/N a-priori share — the scheduler keeps their
 * input local and latency goes compute-bound, which tells the Jain
 * index nothing about the allocator. Identical scatter-input
 * analytics jobs *must* shuffle, so every query contends on the same
 * pairs and fairness (and the weighted policy's priority effect) is
 * actually exercised. Priority queries are every fourth one, by
 * index, so the class split is identical across policies.
 */
std::vector<serve::QuerySpec>
uniformWanWorkload(std::size_t count, double inputGb,
                   bool withPriority)
{
    std::vector<serve::QuerySpec> specs;
    specs.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        serve::QuerySpec q;
        q.name = "wan-q" + std::to_string(i);
        q.job = workloads::tpcDsQuery(workloads::TpcDsQuery::Q95,
                                      inputGb);
        q.arrival = 0.0;
        q.weight = withPriority && i % 4 == 0 ? 4.0 : 1.0;
        std::vector<double> frac(8, 0.0);
        double sum = 0.0;
        for (std::size_t d = 0; d < 8; ++d) {
            frac[d] = std::pow(0.6, static_cast<double>(d));
            sum += frac[d];
        }
        q.inputByDc.assign(8, 0.0);
        for (std::size_t d = 0; d < 8; ++d)
            q.inputByDc[d] = q.job.inputBytes * frac[d] / sum;
        specs.push_back(std::move(q));
    }
    return specs;
}

/** Mean execution latency of queries whose weight is @p weight. */
double
classMeanLatency(const serve::ServiceReport &report,
                 const std::vector<serve::QuerySpec> &specs,
                 double weight)
{
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < report.queries.size(); ++i) {
        if (specs[i].weight != weight ||
            report.queries[i].timedOut)
            continue;
        sum += report.queries[i].latency;
        ++count;
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_serve.json";
    for (int a = 1; a < argc; ++a) {
        if (std::strcmp(argv[a], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[a], "--out") == 0 &&
                   a + 1 < argc) {
            outPath = argv[++a];
        } else {
            std::fprintf(stderr,
                         "usage: %s [--smoke] [--out path]\n",
                         argv[0]);
            return 2;
        }
    }

    // --- 1. determinism gate (every mode) ---------------------------------
    {
        serve::ServiceConfig cfg;
        cfg.maxConcurrent = 16;
        serve::WorkloadConfig wl;
        wl.queries = 24;
        wl.arrivalWindow = 20.0;
        const auto a = drain(cfg, wl, true, 17);
        const auto b = drain(cfg, wl, true, 17);
        if (a.report.resultHash != b.report.resultHash) {
            std::fprintf(stderr,
                         "DETERMINISM FAILURE: %016llx != %016llx\n",
                         static_cast<unsigned long long>(
                             a.report.resultHash),
                         static_cast<unsigned long long>(
                             b.report.resultHash));
            return 1;
        }
    }

    // --- 2. throughput at the acceptance scale ----------------------------
    const std::size_t scaleQueries = smoke ? 48 : 256;
    const std::size_t scaleSlots = smoke ? 48 : 256;
    serve::ServiceConfig mixedCfg;
    mixedCfg.maxConcurrent = scaleSlots;
    serve::WorkloadConfig mixedWl;
    mixedWl.queries = scaleQueries;
    mixedWl.arrivalWindow = 0.0; // all due at t = 0: full concurrency
    const auto mixed = drain(mixedCfg, mixedWl, true, 2025);

    // --- 3. fairness under MaxMinFair -------------------------------------
    // Homogeneous demand (identical WAN-bound queries, all
    // concurrent) is where the Jain index cleanly measures the
    // allocator rather than the workload mix.
    const std::size_t fairQueries = smoke ? 12 : 16;
    const double fairGb = 2.0;
    serve::ServiceConfig fairCfg;
    fairCfg.maxConcurrent = fairQueries;
    const auto fair = drainSpecs(
        fairCfg, uniformWanWorkload(fairQueries, fairGb, false),
        false, 71);

    // --- 4. the weighted policy's priority gain ---------------------------
    serve::ServiceConfig prioCfg = fairCfg;
    prioCfg.policy = serve::AllocPolicy::MaxMinFair;
    const auto prioBase = drainSpecs(
        prioCfg, uniformWanWorkload(fairQueries, fairGb, true),
        false, 71);
    prioCfg.policy = serve::AllocPolicy::WeightedPriority;
    const auto prioWeighted = drainSpecs(
        prioCfg, uniformWanWorkload(fairQueries, fairGb, true),
        false, 71);

    const auto prioSpecs =
        uniformWanWorkload(fairQueries, fairGb, true);
    const double prioLatBase =
        classMeanLatency(prioBase.report, prioSpecs, 4.0);
    const double prioLatWeighted =
        classMeanLatency(prioWeighted.report, prioSpecs, 4.0);
    const double priorityGain =
        prioLatWeighted > 0.0 ? prioLatBase / prioLatWeighted : 0.0;

    // --- 5. priority gain on the mixed workload ---------------------------
    // Staggered arrivals and scarce slots keep planning rounds
    // partially occupied, which is where the adaptive a-priori share
    // departs from the legacy 1/N: small queries plan with realistic
    // shares, stay WAN-bound, and the weighted policy can actually
    // speed the priority class up.
    serve::ServiceConfig mixedPrioCfg;
    mixedPrioCfg.maxConcurrent = smoke ? 8 : 12;
    serve::WorkloadConfig mixedPrioWl;
    mixedPrioWl.queries = smoke ? 24 : 64;
    mixedPrioWl.arrivalWindow = 120.0;
    const std::uint64_t mixedPrioSeed = 909;
    const auto mixedPrioSpecs =
        serve::mixedWorkload(mixedPrioWl, 8, mixedPrioSeed);
    mixedPrioCfg.policy = serve::AllocPolicy::MaxMinFair;
    const auto mixedPrioBase =
        drain(mixedPrioCfg, mixedPrioWl, true, mixedPrioSeed);
    mixedPrioCfg.policy = serve::AllocPolicy::WeightedPriority;
    const auto mixedPrioWeighted =
        drain(mixedPrioCfg, mixedPrioWl, true, mixedPrioSeed);
    const double mixedPrioLatBase = classMeanLatency(
        mixedPrioBase.report, mixedPrioSpecs, 4.0);
    const double mixedPrioLatWeighted = classMeanLatency(
        mixedPrioWeighted.report, mixedPrioSpecs, 4.0);
    const double priorityGainMixed =
        mixedPrioLatWeighted > 0.0
            ? mixedPrioLatBase / mixedPrioLatWeighted
            : 0.0;

    Table table("Serve performance (8 DCs, shared mesh)");
    table.setHeader({"measurement", "value"});
    table.addRow({"mixed queries",
                  std::to_string(mixed.report.queries.size())});
    table.addRow({"peak concurrent",
                  std::to_string(mixed.report.peakConcurrent)});
    table.addRow({"throughput (q/h)",
                  Table::num(mixed.report.throughputPerHour, 1)});
    table.addRow({"mixed drain wall (ms)",
                  Table::num(mixed.wallMs, 0)});
    table.addRow({"jain (maxmin, homogeneous)",
                  Table::num(fair.report.jainFairness, 4)});
    table.addRow({"priority lat maxmin (s)",
                  Table::num(prioLatBase, 3)});
    table.addRow({"priority lat weighted (s)",
                  Table::num(prioLatWeighted, 3)});
    table.addRow({"priority gain (weighted)",
                  Table::num(priorityGain, 2) + "x"});
    table.addRow({"priority gain (mixed wl)",
                  Table::num(priorityGainMixed, 2) + "x"});
    table.addRow({"redispatches",
                  std::to_string(mixed.report.redispatches)});
    table.print();
    std::printf("determinism: repeated drains bit-identical\n");

    bench::writeBenchJson(
        outPath,
        {bench::BenchJsonField::text("bench", "serve"),
         bench::BenchJsonField::boolean("smoke", smoke),
         bench::BenchJsonField::num("queries", scaleQueries),
         bench::BenchJsonField::num("max_concurrent", scaleSlots),
         bench::BenchJsonField::num(
             "pool_threads", ThreadPool::global().threadCount()),
         bench::BenchJsonField::text("determinism",
                                     "bit-identical")},
        {{"serve_throughput_qph", mixed.report.throughputPerHour},
         {"serve_jain_maxmin", fair.report.jainFairness},
         {"serve_priority_gain", priorityGain},
         {"serve_priority_gain_mixed", priorityGainMixed},
         {"peak_concurrent",
          static_cast<double>(mixed.report.peakConcurrent)},
         {"mixed_drain_wall_ms", mixed.wallMs},
         {"mixed_redispatches",
          static_cast<double>(mixed.report.redispatches)},
         {"capped_pair_rounds",
          static_cast<double>(mixed.report.cappedPairRounds)}});
    std::printf("wrote %s\n", outPath.c_str());

    // Smoke gates on determinism only. Full runs enforce behavioral
    // floors: the acceptance-scale concurrency must actually be
    // reached, the allocator must produce a recognizably fair split
    // of homogeneous demand, and the weighted policy must help the
    // class it exists to help.
    if (!smoke && mixed.report.peakConcurrent < 256) {
        std::fprintf(stderr,
                     "peak concurrency %zu below the 256-query "
                     "acceptance floor\n",
                     mixed.report.peakConcurrent);
        return 1;
    }
    if (!smoke && fair.report.jainFairness < 0.5) {
        std::fprintf(stderr,
                     "Jain fairness %.3f below the 0.5 floor on "
                     "homogeneous demand\n",
                     fair.report.jainFairness);
        return 1;
    }
    if (!smoke && priorityGain < 1.0) {
        std::fprintf(stderr,
                     "weighted policy made the priority class "
                     "slower (gain %.2fx)\n",
                     priorityGain);
        return 1;
    }
    if (!smoke && priorityGainMixed <= 1.0) {
        std::fprintf(stderr,
                     "weighted policy shows no priority gain on "
                     "the mixed workload (gain %.2fx)\n",
                     priorityGainMixed);
        return 1;
    }
    if (mixed.report.completed + mixed.report.timedOut !=
        mixed.report.queries.size()) {
        std::fprintf(stderr, "drain lost queries\n");
        return 1;
    }
    return 0;
}
