/**
 * @file
 * Table 1: Gaps between static and runtime BWs (Mbps).
 *
 * Measures every DC pair of the 8-DC testbed twice — statically and
 * independently (one pair at a time, as existing GDA systems do) and
 * simultaneously (all pairs concurrently, as happens during shuffle) —
 * and histograms the significant (> 100 Mbps) differences into the
 * paper's intervals. The paper reports 18 significant gaps:
 * (100, 200] -> 7, (200, 250] -> 8, > 250 -> 3.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/bw.hh"
#include "experiments/testbed.hh"
#include "monitor/measurement.hh"

using namespace wanify;
using namespace wanify::experiments;

int
main()
{
    const auto topo = monitoringCluster(8);
    const auto simCfg = defaultSimConfig();
    const monitor::MeasurementConfig mc;

    core::GapHistogram total;
    const int trials = 5;
    for (int t = 0; t < trials; ++t) {
        const std::uint64_t seed = 42001 + 131 * t;
        const auto independent =
            monitor::staticIndependentBw(topo, simCfg, mc, seed);
        const auto simultaneous =
            monitor::staticSimultaneousBw(topo, simCfg, mc, seed);
        const auto hist =
            core::gapHistogram(independent, simultaneous);
        total.low += hist.low;
        total.mid += hist.mid;
        total.high += hist.high;
    }

    const double inv = 1.0 / static_cast<double>(trials);
    Table table(
        "Table 1: Gaps between static and runtime BWs (Mbps), mean of " +
        std::to_string(trials) + " runs [paper: 7 / 8 / 3, total 18]");
    table.setHeader({"Difference Interval", "(100, 200]", "(200, 250]",
                     "> 250"});
    table.addRow({"Count", Table::num(total.low * inv, 1),
                  Table::num(total.mid * inv, 1),
                  Table::num(total.high * inv, 1)});
    table.print();

    std::printf("total significant gaps: %.1f (paper: 18) out of 56 "
                "ordered pairs\n",
                static_cast<double>(total.total()) * inv);
    return 0;
}
