/**
 * @file
 * Fig. 10: Handling skewed input data.
 *
 * WordCount on 600 MB with HDFS blocks moved so that US East, US West,
 * AP South, and AP SE hold the bulk of the input (Section 5.8.1).
 * Four variants per scheduler, all on predicted runtime BWs:
 *
 *   <sched>      — single connection
 *   <sched>-P    — uniform 8 parallel connections
 *   <sched>-WNS  — WANify without skew weights
 *   <sched>-W    — WANify with skew weights (ws)
 *
 * Paper shape (Tetrium): -W improves average latency by 26.5 / 20.3 /
 * 7.1 % over the three others, cost similarly, with 1.2-2.1x higher
 * minimum BW; Kimchi behaves alike.
 */

#include <cstdio>

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/wordcount.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

int
main()
{
    auto &ctx = BenchContext::get();
    const std::size_t n = ctx.topo.dcCount();
    const auto predicted = predictedBwMatrix(ctx);

    // Blocks moved to US East, US West, AP South, AP SE (Section
    // 5.8.1): those four DCs hold 22% each, the rest share 12%.
    std::vector<double> fractions(n, 0.12 / 4.0);
    fractions[0] = fractions[1] = fractions[2] = fractions[3] = 0.22;

    const auto job = workloads::wordCount(600.0, 12000.0);
    storage::HdfsStore hdfs(ctx.topo);
    hdfs.loadSkewed(job.inputBytes, fractions);
    const auto input = hdfs.distribution();
    const auto skewWeights = hdfs.skewWeights();

    sched::TetriumScheduler tetrium;
    sched::KimchiScheduler kimchi;
    gda::Scheduler *schedulers[] = {&tetrium, &kimchi};
    const char *schedNames[] = {"Tetrium", "Kimchi"};

    core::WanifyFeatures noSkew;
    noSkew.skewAware = false;
    auto wanifyNoSkew = makeWanify(noSkew);
    auto wanifySkew = makeWanify();

    for (int s = 0; s < 2; ++s) {
        Table table(std::string("Fig 10: skewed WordCount, ") +
                    schedNames[s] +
                    " [paper: -W best by 26.5/20.3/7.1% latency]");
        table.setHeader({"Variant", "Latency (s)", "Cost ($)",
                         "Min BW (Mbps)"});

        auto sweep = [&](core::Wanify *w, int conns, bool useWs) {
            return runTrials(
                [&](std::uint64_t seed) {
                    gda::Engine engine(ctx.topo, ctx.simCfg, seed);
                    gda::RunOptions opts;
                    opts.schedulerBw = predicted;
                    opts.wanify = w;
                    if (conns > 0) {
                        opts.staticConnections =
                            Matrix<int>::square(n, conns);
                    }
                    if (useWs)
                        opts.skewWeights = skewWeights;
                    return engine.run(job, input, *schedulers[s],
                                      opts);
                },
                5);
        };

        const std::string base = schedNames[s];
        table.addRow(aggRow(base, sweep(nullptr, 1, false)));
        table.addRow(aggRow(base + "-P", sweep(nullptr, 8, false)));
        table.addRow(
            aggRow(base + "-WNS", sweep(wanifyNoSkew.get(), 0,
                                        false)));
        table.addRow(
            aggRow(base + "-W", sweep(wanifySkew.get(), 0, true)));
        table.print();
        std::printf("\n");
    }
    return 0;
}
