/**
 * @file
 * Fig. 5: Comparing data transfer approaches on TeraSort (100 GB,
 * locality scheduling — Section 5.3.1 isolates transfer gains from
 * scheduling gains).
 *
 *   No WAN-aware    — vanilla Spark, single connection
 *   WANify-P        — uniform 8 parallel connections
 *   WANify-Dynamic  — heterogeneous connections + AIMD agents
 *   WANify-TC       — + dynamic BW throttling (the default WANify)
 *
 * Paper shape: WANify-P buys little minimum BW (congestion); Dynamic
 * clearly lifts the minimum; TC is best on latency, cost, and minimum
 * BW (its min BW ~2.2x Dynamic's gain over the baseline).
 */

#include "bench_util.hh"
#include "common/table.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::bench;
using namespace wanify::experiments;

int
main()
{
    auto &ctx = BenchContext::get();
    const auto job = workloads::teraSort(100.0);
    storage::HdfsStore hdfs(ctx.topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;

    auto sweep = [&](core::Wanify *wanify, int staticConns) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(ctx.topo, ctx.simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = ctx.staticIndependent;
                opts.wanify = wanify;
                if (staticConns > 0) {
                    opts.staticConnections = Matrix<int>::square(
                        ctx.topo.dcCount(), staticConns);
                }
                return engine.run(job, input, locality, opts);
            },
            5);
    };

    Table table("Fig 5: TeraSort under different transfer approaches "
                "[paper: TC best — 61 min, $4.7, 790 Mbps min BW]");
    table.setHeader(
        {"Approach", "Latency (s)", "Cost ($)", "Min BW (Mbps)"});

    table.addRow(aggRow("No WAN-aware (1 conn)", sweep(nullptr, 1)));
    table.addRow(aggRow("WANify-P (uniform 8)", sweep(nullptr, 8)));

    core::WanifyFeatures dynFeatures;
    dynFeatures.throttling = false;
    auto dynamic = makeWanify(dynFeatures);
    table.addRow(aggRow("WANify-Dynamic", sweep(dynamic.get(), 0)));

    auto tc = makeWanify();
    table.addRow(aggRow("WANify-TC", sweep(tc.get(), 0)));
    table.print();
    return 0;
}
