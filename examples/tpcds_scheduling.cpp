/**
 * @file
 * WAN-aware scheduling on TPC-DS: how the BW matrix a scheduler
 * believes changes its placements and the query's outcome.
 *
 * Runs the heavy query 78 on the Kimchi (network-cost-aware) scheduler
 * with three different BW sources — static-independent, WANify-
 * predicted, and WANify-predicted plus the full WANify transport — the
 * Table 4 / Fig. 7 pipeline on one query.
 */

#include <cstdio>

#include "core/wanify.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/runner.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "monitor/measurement.hh"
#include "sched/kimchi.hh"
#include "storage/hdfs.hh"
#include "workloads/tpcds.hh"

using namespace wanify;
using namespace wanify::experiments;

int
main()
{
    const auto topo = workerCluster(8);
    const auto simCfg = defaultSimConfig();

    const auto job =
        workloads::tpcDsQuery(workloads::TpcDsQuery::Q78, 100.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadSkewed(job.inputBytes, naturalInputFractions(8));
    const auto input = hdfs.distribution();
    sched::KimchiScheduler kimchi;

    const auto staticBw = monitor::staticIndependentBw(
        topo, simCfg, monitor::MeasurementConfig{}, 11);

    core::Wanify wanify;
    wanify.setPredictor(sharedPredictor());

    // Predicted runtime BW from a snapshot on a fresh network state.
    net::NetworkSim probe(topo, simCfg, 12);
    probe.advanceBy(15.0);
    Rng rng(13);
    const auto predicted = wanify.predictRuntimeBw(probe, rng);

    auto sweep = [&](const char *name, const Matrix<Mbps> &bw,
                     core::Wanify *w) {
        const auto agg = runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = bw;
                opts.wanify = w;
                return engine.run(job, input, kimchi, opts);
            },
            5);
        std::printf("%-34s %7.0f s   $%.2f   min BW %.0f\n",
                    name, agg.meanLatency, agg.meanCost,
                    agg.meanMinBw);
        return agg;
    };

    std::printf("TPC-DS query 78 (heavy), 100 GB, Kimchi "
                "(mean of 5 runs):\n");
    sweep("static-independent BWs", staticBw, nullptr);
    sweep("WANify-predicted BWs", predicted, nullptr);
    sweep("predicted + WANify transport", predicted, &wanify);
    return 0;
}
