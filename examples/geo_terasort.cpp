/**
 * @file
 * Geo-distributed TeraSort: run the paper's Fig. 5 scenario — a 100 GB
 * sort across 8 regions — under vanilla Spark transport and under full
 * WANify (heterogeneous connections + AIMD agents + throttling), and
 * compare latency, cost, and the cluster's minimum bandwidth.
 */

#include <cstdio>

#include "core/wanify.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/runner.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "monitor/measurement.hh"
#include "sched/locality.hh"
#include "storage/hdfs.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::experiments;

int
main()
{
    const auto topo = workerCluster(8);
    const auto simCfg = defaultSimConfig();

    // 100 GB of input blocks spread across the cluster's HDFS.
    const auto job = workloads::teraSort(100.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;

    const auto staticBw = monitor::staticIndependentBw(
        topo, simCfg, monitor::MeasurementConfig{}, 42);

    core::Wanify wanify;
    wanify.setPredictor(sharedPredictor());

    auto sweep = [&](const char *name, core::Wanify *w) {
        const auto agg = runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = staticBw;
                opts.wanify = w;
                if (w == nullptr) {
                    opts.staticConnections =
                        Matrix<int>::square(8, 1);
                }
                return engine.run(job, input, locality, opts);
            },
            5);
        std::printf("%-18s %s   $%.2f   min BW %.0f Mbps\n", name,
                    formatDuration(agg.meanLatency).c_str(),
                    agg.meanCost, agg.meanMinBw);
        return agg;
    };

    std::printf("TeraSort, 100 GB, 8 regions (mean of 5 runs):\n");
    const auto vanilla = sweep("vanilla Spark", nullptr);
    const auto enabled = sweep("with WANify", &wanify);

    std::printf("\nWANify: %.1f%% lower latency, %.1fx minimum BW\n",
                (vanilla.meanLatency - enabled.meanLatency) /
                    vanilla.meanLatency * 100.0,
                enabled.meanMinBw / vanilla.meanMinBw);
    return 0;
}
