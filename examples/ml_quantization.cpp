/**
 * @file
 * Geo-distributed ML training with BW-driven gradient quantization —
 * the SAGQ workload of Fig. 4.
 *
 * Trains an MNIST-scale model synchronously across 8 regions and
 * compares full-precision gradients (NoQ) against quantization driven
 * by WANify-predicted BWs, with and without WANify's heterogeneous
 * parallel transport (WQ).
 */

#include <cstdio>

#include "core/wanify.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/testbed.hh"
#include "monitor/measurement.hh"
#include "workloads/ml_quantization.hh"

using namespace wanify;
using namespace wanify::experiments;

int
main()
{
    const auto topo = workerCluster(8);
    const auto simCfg = defaultSimConfig();
    const workloads::MlQuantizationJob job;

    core::Wanify wanify;
    wanify.setPredictor(sharedPredictor());

    net::NetworkSim probe(topo, simCfg, 21);
    probe.advanceBy(15.0);
    Rng rng(22);
    const auto predicted = wanify.predictRuntimeBw(probe, rng);

    std::printf("model: %zu parameters (%.1f MB full-precision "
                "gradient), %d epochs, %d syncs/epoch\n",
                job.spec().parameters,
                units::toMegabytes(job.gradientBytes()),
                job.spec().epochs, job.spec().syncsPerEpoch);

    auto report = [&](const char *name,
                      const workloads::MlRunResult &r) {
        std::printf("%-22s %6.0f s   $%.2f   min BW %.0f   "
                    "accuracy %.1f%%\n",
                    name, r.trainingTime, r.cost.total(), r.minBw,
                    r.testAccuracy);
    };

    report("NoQ (32-bit)",
           job.run(topo, simCfg, 33, std::nullopt, nullptr));
    report("PredQ (quantized)",
           job.run(topo, simCfg, 33, predicted, nullptr));
    report("WQ (quantized+WANify)",
           job.run(topo, simCfg, 33, predicted, &wanify));
    return 0;
}
