/**
 * @file
 * Quickstart: train the WAN Prediction Model, predict runtime BWs from
 * a 1-second snapshot, plan heterogeneous connections, and watch the
 * minimum bandwidth of an 8-DC cluster rise.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/bandwidth_analyzer.hh"
#include "core/wanify.hh"
#include "experiments/testbed.hh"
#include "monitor/measurement.hh"

using namespace wanify;

int
main()
{
    // 1. An 8-region geo-distributed testbed (the paper's Fig. 1).
    const auto topo = experiments::monitoringCluster(8);
    const auto simCfg = experiments::defaultSimConfig();

    // 2. Offline: the Bandwidth Analyzer collects snapshot/stable BW
    //    pairs across cluster sizes, and the Random Forest learns to
    //    predict stable runtime BW from 1-second snapshots.
    std::printf("training the WAN prediction model...\n");
    core::AnalyzerConfig analyzerCfg;
    analyzerCfg.clusterSizes = {4, 6, 8};
    analyzerCfg.meshesPerSize = 12;
    analyzerCfg.sim = simCfg;

    core::Wanify wanify;
    wanify.train(analyzerCfg, /*seed=*/2025);
    std::printf("  forest OOB R^2: %.3f\n",
                wanify.predictor().forest().oobR2());

    // 3. Online: snapshot the live network (1 s of measurement
    //    instead of 20+), predict the full runtime BW matrix.
    net::NetworkSim sim(topo, simCfg, /*seed=*/7);
    sim.advanceBy(30.0); // let the WAN fluctuate into a fresh state
    Rng rng(99);
    const auto predicted = wanify.predictRuntimeBw(sim, rng);
    std::printf("predicted runtime BW: min %.0f / max %.0f Mbps\n",
                predicted.offDiagonalMin(),
                predicted.offDiagonalMax());

    // 4. Plan heterogeneous parallel connections (Algorithm 1 +
    //    Eq. 2/3): distant, weak pairs receive more connections.
    const auto plan = wanify.plan(predicted);
    std::printf("connection plan (row = from us-east-1): ");
    for (net::DcId j = 0; j < 8; ++j)
        std::printf("%d ", plan.maxCons.at(0, j));
    std::printf("\n");

    // 5. Deploy: local agents fine-tune connections with AIMD and
    //    throttle BW-rich links every 5 s epoch.
    auto deployment = wanify.deploy(sim, plan, predicted);
    auto &agents = deployment.agents;

    // Load every pair and watch the cluster's minimum BW.
    for (net::DcId i = 0; i < 8; ++i)
        for (net::DcId j = 0; j < 8; ++j)
            if (i != j)
                sim.startTransfer(topo.dc(i).vms.front(),
                                  topo.dc(j).vms.front(),
                                  units::gigabytes(4.0), 1);
    for (auto &agent : agents) {
        agent->applyTargets();
        agent->resetWindow();
    }

    for (int epoch = 0; epoch < 8 && !sim.allTransfersDone();
         ++epoch) {
        sim.runUntilAllComplete(sim.now() + 5.0);
        if (sim.allTransfersDone())
            break;
        for (auto &agent : agents)
            agent->onEpoch();
        const auto rates = sim.pairRateMatrix();
        std::printf("  epoch %d: min pair rate %.0f Mbps\n",
                    epoch + 1, rates.offDiagonalMin());
    }
    std::printf("all transfers done at t=%.0fs\n", sim.now());
    return 0;
}
