/**
 * @file
 * First-class fault injection and recovery policy.
 *
 * The scenario engine's capacity factors model *soft* failures — a
 * pair slows down, the job limps through. The runtime setting the
 * paper targets also has *hard* failures: an in-flight transfer dies
 * and its undelivered bytes are lost, a gauge probe times out, an
 * AIMD agent crashes and its pairs fall back to unthrottled
 * contention, a whole DC blacks out. A FaultPlan compiles a list of
 * seeded FaultEvents into a pure function of time that the GDA engine
 * and the serve layer consume through gda::EventClock as first-class
 * timestamped events, keeping every run bit-reproducible.
 *
 * Recovery policy lives here too: RetryPolicy is the capped
 * exponential backoff schedule (deterministic splitmix64 jitter) for
 * aborted transfers, and PredictorHealth is the graceful degradation
 * ladder (healthy model → GaugeTrend extrapolation → static a-priori
 * bandwidth) that prediction steps down when gauges fail and back up
 * on recovery.
 */

#ifndef WANIFY_FAULT_FAULT_HH
#define WANIFY_FAULT_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hh"
#include "net/topology.hh"

namespace wanify {
namespace fault {

/** Wildcard value for a fault's src/dst DC selector. */
constexpr int kAnyDc = -1;

/** What a timed fault does to the system. */
enum class FaultKind
{
    /**
     * Kill every matching in-flight shuffle transfer at `time`;
     * undelivered bytes are lost and must be retried or re-placed.
     * src/dst select the ordered pair (kAnyDc = wildcard).
     */
    TransferAbort,

    /**
     * A drift gauge observation window returns no data: the retrain
     * pipeline sees a failed gauge inside [time, time + duration) and
     * the predictor health ladder records a failure.
     */
    ProbeLoss,

    /**
     * A predict-time gauge times out inside [time, time + duration):
     * like ProbeLoss, but the engine also pays one epoch of wait for
     * the timeout before degrading.
     */
    GaugeTimeout,

    /**
     * DC `dc`'s AIMD agent crashes at `time` and restarts after
     * `duration`; while down its pairs run unthrottled (tc limits
     * cleared, no per-epoch adjustment).
     */
    AgentCrash,

    /**
     * Hard outage of DC `dc` inside [time, time + duration): every
     * in-flight transfer touching the DC is aborted at the start
     * edge, and no transfer to or from it may start until the
     * blackout clears. Unlike the scenario library's soft Outage
     * (a capacity factor), bytes in flight are lost.
     */
    DcBlackout,
};

const char *faultKindName(FaultKind kind);

/** One timed fault of a scenario. */
struct FaultEvent
{
    FaultKind kind = FaultKind::TransferAbort;

    /** Ordered-pair selector for TransferAbort (kAnyDc = wildcard). */
    int src = kAnyDc;
    int dst = kAnyDc;

    /** Target DC for AgentCrash / DcBlackout. */
    int dc = 0;

    /** Fault start (seconds of scenario time). */
    Seconds time = 0.0;

    /** Window length for windowed kinds (crash downtime, blackout,
     *  gauge-outage window). Instant kinds (TransferAbort) ignore it. */
    Seconds duration = 0.0;

    /**
     * Deterministic start jitter: the compiled fault fires at
     * time + U[0, startJitter), drawn from the fault's
     * splitmix64-derived seed. Zero = exact start.
     */
    Seconds startJitter = 0.0;
};

/** A FaultEvent with its jitter resolved against the plan seed. */
struct CompiledFault
{
    FaultEvent ev;
    Seconds start = 0.0;
    Seconds end = 0.0;
};

/**
 * A list of FaultEvents compiled against a cluster size and a seed
 * into a pure function of time. Immutable and safe to share across
 * concurrently running trials; two plans built from the same events,
 * size, and seed are bit-identical. Jitter seeds derive from
 * seed ^ 0xfa017 so adding faults to a scenario never perturbs the
 * scenario's own event-jitter stream.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;
    FaultPlan(std::vector<FaultEvent> events, std::size_t dcCount,
              std::uint64_t seed);

    bool empty() const { return faults_.empty(); }
    std::size_t dcCount() const { return dcCount_; }
    const std::vector<CompiledFault> &events() const { return faults_; }

    /** Start/end edge times inside the half-open window (t0, t1],
     *  appended unordered (consumers push them onto an EventClock,
     *  which orders). Use t0 < 0 to include edges at t = 0. */
    void edgesIn(Seconds t0, Seconds t1,
                 std::vector<Seconds> &out) const;

    /** Indices of faults starting inside (t0, t1], sorted by
     *  (start, index) so same-instant faults fire in spec order. */
    void startsIn(Seconds t0, Seconds t1,
                  std::vector<std::size_t> &out) const;

    /** Is DC `dc` inside a DcBlackout window at t? */
    bool blackoutAt(net::DcId dc, Seconds t) const;

    /** Is any DC blacked out at t? */
    bool anyBlackoutAt(Seconds t) const;

    /** Is either endpoint of ordered pair (i, j) blacked out at t? */
    bool pairBlackedOutAt(net::DcId i, net::DcId j, Seconds t) const;

    /**
     * Earliest time >= t at which neither endpoint of (i, j) is
     * blacked out (t itself when the pair is clear). Chained
     * blackouts are walked; the result is exact, not sampled.
     */
    Seconds blackoutClearTime(net::DcId i, net::DcId j,
                              Seconds t) const;

    /** Is DC `dc`'s agent inside an AgentCrash window at t? */
    bool agentCrashedAt(net::DcId dc, Seconds t) const;

    /**
     * Is a gauge-affecting fault (ProbeLoss / GaugeTimeout) active
     * at t? When yes and @p kind is non-null, reports which kind
     * (GaugeTimeout wins when both overlap: it is the costlier one).
     */
    bool gaugeFaultAt(Seconds t, FaultKind *kind = nullptr) const;

  private:
    std::size_t dcCount_ = 0;
    std::vector<CompiledFault> faults_;
};

/**
 * Capped exponential backoff for aborted transfers. The attempt'th
 * retry (0-based) waits baseBackoff * multiplier^attempt, capped at
 * maxBackoff, then jittered by ±jitterFraction/2 via a splitmix64
 * draw from @p jitterSeed — deterministic given the seed, desynced
 * across transfers given distinct seeds.
 */
struct RetryPolicy
{
    /** Total send attempts before the bytes are re-planned onto an
     *  alternate path (1 initial + maxAttempts-1 retries). */
    std::size_t maxAttempts = 4;

    Seconds baseBackoff = 2.0;
    double multiplier = 2.0;
    Seconds maxBackoff = 60.0;

    /** Jitter band width as a fraction of the backoff (0 = none). */
    double jitterFraction = 0.25;

    /** Backoff before retry number @p attempt (0-based). */
    Seconds backoff(std::size_t attempt, std::uint64_t jitterSeed) const;
};

/** Rungs of the prediction degradation ladder, best to worst. */
enum class PredictorMode
{
    Model = 0,  ///< healthy: gauge + forest prediction
    Trend = 1,  ///< gauges failing: GaugeTrend OLS extrapolation
    Static = 2, ///< trend unusable too: static a-priori bandwidth
};

const char *predictorModeName(PredictorMode mode);

/** When the ladder steps down and back up. */
struct PredictorHealthConfig
{
    /** Consecutive gauge failures before Model → Trend. */
    std::size_t failuresToTrend = 1;

    /** Consecutive gauge failures before → Static. */
    std::size_t failuresToStatic = 3;

    /** Consecutive successes to climb one rung back up. */
    std::size_t successesToRecover = 1;
};

/**
 * Tracks consecutive gauge failures / recoveries and maps them to a
 * PredictorMode. recordFailure / recordSuccess return true when the
 * mode changed, so callers can count ladder transitions.
 */
class PredictorHealth
{
  public:
    PredictorHealth() = default;
    explicit PredictorHealth(PredictorHealthConfig cfg) : cfg_(cfg) {}

    PredictorMode mode() const { return mode_; }

    /** A gauge failed (no data, timeout, or non-finite output). */
    bool recordFailure();

    /** A gauge produced usable data. */
    bool recordSuccess();

  private:
    PredictorHealthConfig cfg_;
    PredictorMode mode_ = PredictorMode::Model;
    std::size_t consecutiveFailures_ = 0;
    std::size_t consecutiveSuccesses_ = 0;
};

} // namespace fault
} // namespace wanify

#endif // WANIFY_FAULT_FAULT_HH
