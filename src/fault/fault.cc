#include "fault/fault.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"

namespace wanify {
namespace fault {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::TransferAbort:
        return "transfer-abort";
    case FaultKind::ProbeLoss:
        return "probe-loss";
    case FaultKind::GaugeTimeout:
        return "gauge-timeout";
    case FaultKind::AgentCrash:
        return "agent-crash";
    case FaultKind::DcBlackout:
        return "dc-blackout";
    }
    return "unknown";
}

const char *
predictorModeName(PredictorMode mode)
{
    switch (mode) {
    case PredictorMode::Model:
        return "model";
    case PredictorMode::Trend:
        return "trend";
    case PredictorMode::Static:
        return "static";
    }
    return "unknown";
}

namespace {

bool
windowed(FaultKind kind)
{
    return kind != FaultKind::TransferAbort;
}

void
validate(const FaultEvent &ev, std::size_t dcCount)
{
    const int n = static_cast<int>(dcCount);
    fatalIf(dcCount == 0, "FaultPlan needs a positive DC count");
    fatalIf(!std::isfinite(ev.time) || ev.time < 0.0,
            "fault time must be finite and non-negative");
    fatalIf(!std::isfinite(ev.duration) || ev.duration < 0.0,
            "fault duration must be finite and non-negative");
    fatalIf(ev.startJitter < 0.0, "fault startJitter must be >= 0");
    if (ev.kind == FaultKind::TransferAbort) {
        fatalIf(ev.src < kAnyDc || ev.src >= n,
                "fault src out of range");
        fatalIf(ev.dst < kAnyDc || ev.dst >= n,
                "fault dst out of range");
    }
    if (ev.kind == FaultKind::AgentCrash ||
        ev.kind == FaultKind::DcBlackout) {
        fatalIf(ev.dc < 0 || ev.dc >= n,
                "fault dc must name a concrete DC");
        fatalIf(ev.duration <= 0.0,
                "windowed DC faults need a positive duration");
    }
}

} // namespace

FaultPlan::FaultPlan(std::vector<FaultEvent> events,
                     std::size_t dcCount, std::uint64_t seed)
    : dcCount_(dcCount)
{
    if (events.empty())
        return;
    // Distinct derivation base from the scenario's own event jitter:
    // declaring faults must not shift existing scenario draws.
    const auto seeds = deriveSeeds(seed ^ 0xfa017ULL, events.size());
    faults_.reserve(events.size());
    for (std::size_t e = 0; e < events.size(); ++e) {
        validate(events[e], dcCount);
        CompiledFault cf;
        cf.ev = events[e];
        cf.start = cf.ev.time;
        if (cf.ev.startJitter > 0.0) {
            Rng rng(seeds[e]);
            cf.start += rng.uniform() * cf.ev.startJitter;
        }
        cf.end = windowed(cf.ev.kind) ? cf.start + cf.ev.duration
                                      : cf.start;
        faults_.push_back(cf);
    }
}

void
FaultPlan::edgesIn(Seconds t0, Seconds t1,
                   std::vector<Seconds> &out) const
{
    for (const CompiledFault &cf : faults_) {
        if (cf.start > t0 && cf.start <= t1)
            out.push_back(cf.start);
        if (windowed(cf.ev.kind) && cf.end > t0 && cf.end <= t1)
            out.push_back(cf.end);
    }
}

void
FaultPlan::startsIn(Seconds t0, Seconds t1,
                    std::vector<std::size_t> &out) const
{
    const std::size_t base = out.size();
    for (std::size_t i = 0; i < faults_.size(); ++i)
        if (faults_[i].start > t0 && faults_[i].start <= t1)
            out.push_back(i);
    std::sort(out.begin() + base, out.end(),
              [this](std::size_t a, std::size_t b) {
                  if (faults_[a].start != faults_[b].start)
                      return faults_[a].start < faults_[b].start;
                  return a < b;
              });
}

bool
FaultPlan::blackoutAt(net::DcId dc, Seconds t) const
{
    for (const CompiledFault &cf : faults_)
        if (cf.ev.kind == FaultKind::DcBlackout &&
            static_cast<net::DcId>(cf.ev.dc) == dc &&
            t >= cf.start && t < cf.end)
            return true;
    return false;
}

bool
FaultPlan::anyBlackoutAt(Seconds t) const
{
    for (const CompiledFault &cf : faults_)
        if (cf.ev.kind == FaultKind::DcBlackout && t >= cf.start &&
            t < cf.end)
            return true;
    return false;
}

bool
FaultPlan::pairBlackedOutAt(net::DcId i, net::DcId j,
                            Seconds t) const
{
    return blackoutAt(i, t) || blackoutAt(j, t);
}

Seconds
FaultPlan::blackoutClearTime(net::DcId i, net::DcId j,
                             Seconds t) const
{
    // Walk chained / overlapping windows: each pass pushes t to the
    // latest end of any window covering it. Terminates because each
    // pass either leaves t unchanged (clear) or strictly advances it
    // past at least one of the finitely many windows.
    bool moved = true;
    while (moved) {
        moved = false;
        for (const CompiledFault &cf : faults_) {
            if (cf.ev.kind != FaultKind::DcBlackout)
                continue;
            const net::DcId dc = static_cast<net::DcId>(cf.ev.dc);
            if (dc != i && dc != j)
                continue;
            if (t >= cf.start && t < cf.end) {
                t = cf.end;
                moved = true;
            }
        }
    }
    return t;
}

bool
FaultPlan::agentCrashedAt(net::DcId dc, Seconds t) const
{
    for (const CompiledFault &cf : faults_)
        if (cf.ev.kind == FaultKind::AgentCrash &&
            static_cast<net::DcId>(cf.ev.dc) == dc &&
            t >= cf.start && t < cf.end)
            return true;
    return false;
}

bool
FaultPlan::gaugeFaultAt(Seconds t, FaultKind *kind) const
{
    bool any = false;
    bool timeout = false;
    for (const CompiledFault &cf : faults_) {
        if (cf.ev.kind != FaultKind::ProbeLoss &&
            cf.ev.kind != FaultKind::GaugeTimeout)
            continue;
        if (t >= cf.start && t < cf.end) {
            any = true;
            timeout |= cf.ev.kind == FaultKind::GaugeTimeout;
        }
    }
    if (any && kind)
        *kind = timeout ? FaultKind::GaugeTimeout
                        : FaultKind::ProbeLoss;
    return any;
}

Seconds
RetryPolicy::backoff(std::size_t attempt,
                     std::uint64_t jitterSeed) const
{
    double d = baseBackoff;
    for (std::size_t k = 0; k < attempt && d < maxBackoff; ++k)
        d *= multiplier;
    d = std::min(d, maxBackoff);
    if (jitterFraction > 0.0) {
        std::uint64_t state = jitterSeed;
        const double u =
            static_cast<double>(splitmix64(state) >> 11) *
            (1.0 / 9007199254740992.0); // 2^-53: u in [0, 1)
        d *= 1.0 + jitterFraction * (u - 0.5);
    }
    return std::max(d, 0.0);
}

bool
PredictorHealth::recordFailure()
{
    consecutiveSuccesses_ = 0;
    ++consecutiveFailures_;
    PredictorMode next = mode_;
    if (consecutiveFailures_ >= cfg_.failuresToStatic)
        next = PredictorMode::Static;
    else if (consecutiveFailures_ >= cfg_.failuresToTrend &&
             mode_ == PredictorMode::Model)
        next = PredictorMode::Trend;
    const bool changed = next != mode_;
    mode_ = next;
    return changed;
}

bool
PredictorHealth::recordSuccess()
{
    consecutiveFailures_ = 0;
    if (mode_ == PredictorMode::Model) {
        consecutiveSuccesses_ = 0;
        return false;
    }
    ++consecutiveSuccesses_;
    if (consecutiveSuccesses_ < cfg_.successesToRecover)
        return false;
    consecutiveSuccesses_ = 0;
    mode_ = mode_ == PredictorMode::Static ? PredictorMode::Trend
                                           : PredictorMode::Model;
    return true;
}

} // namespace fault
} // namespace wanify
