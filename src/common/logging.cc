#include "common/logging.hh"

#include <iostream>

namespace wanify {
namespace logging {

namespace {

LogLevel gLevel = LogLevel::Warn;

} // namespace

void
setLevel(LogLevel level)
{
    gLevel = level;
}

LogLevel
level()
{
    return gLevel;
}

void
inform(const std::string &msg)
{
    if (gLevel >= LogLevel::Info)
        std::cerr << "info: " << msg << "\n";
}

void
warn(const std::string &msg)
{
    if (gLevel >= LogLevel::Warn)
        std::cerr << "warn: " << msg << "\n";
}

void
debug(const std::string &msg)
{
    if (gLevel >= LogLevel::Debug)
        std::cerr << "debug: " << msg << "\n";
}

} // namespace logging
} // namespace wanify
