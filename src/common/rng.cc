#include "common/rng.hh"

#include <cmath>

#include "common/error.hh"

namespace wanify {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::vector<std::uint64_t>
deriveSeeds(std::uint64_t baseSeed, std::size_t count)
{
    std::vector<std::uint64_t> seeds(count);
    std::uint64_t state = baseSeed;
    for (auto &s : seeds)
        s = splitmix64(state);
    return seeds;
}

namespace {

inline std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    panicIf(lo > hi, "uniformInt: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)
        return static_cast<std::int64_t>(next()); // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t draw;
    do {
        draw = next();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(theta);
    hasCachedNormal_ = true;
    return radius * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::split()
{
    // Use two draws so the child stream diverges from the parent even if
    // the parent is not consumed afterwards.
    std::uint64_t seed = next() ^ rotl(next(), 33);
    return Rng(seed);
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    std::vector<std::size_t> idx;
    sampleWithoutReplacementInto(n, k, idx);
    return idx;
}

void
Rng::sampleWithoutReplacementInto(std::size_t n, std::size_t k,
                                  std::vector<std::size_t> &out)
{
    panicIf(k > n, "sampleWithoutReplacement: k > n");
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        out[i] = i;
    // Partial Fisher–Yates: only the first k entries need to be final.
    for (std::size_t i = 0; i < k; ++i) {
        std::size_t j = static_cast<std::size_t>(
            uniformInt(static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(n) - 1));
        std::swap(out[i], out[j]);
    }
    out.resize(k);
}

std::vector<std::size_t>
Rng::sampleWithReplacement(std::size_t n, std::size_t k)
{
    panicIf(n == 0, "sampleWithReplacement: empty population");
    std::vector<std::size_t> idx(k);
    for (auto &i : idx) {
        i = static_cast<std::size_t>(
            uniformInt(0, static_cast<std::int64_t>(n) - 1));
    }
    return idx;
}

} // namespace wanify
