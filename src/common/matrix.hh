/**
 * @file
 * Small dense row-major matrix used for BW matrices, connection matrices,
 * DC-relation matrices, and shuffle-size matrices.
 *
 * WANify structures both predicted bandwidths and connection counts as
 * N x N matrices (Section 2.3 of the paper); this type is the common
 * currency between the predictor, the optimizers, and the GDA engine.
 */

#ifndef WANIFY_COMMON_MATRIX_HH
#define WANIFY_COMMON_MATRIX_HH

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <vector>

#include "common/error.hh"

namespace wanify {

template <typename T>
class Matrix
{
  public:
    Matrix() = default;

    /** rows x cols matrix initialized to @p init. */
    Matrix(std::size_t rows, std::size_t cols, T init = T{})
        : rows_(rows), cols_(cols), data_(rows * cols, init)
    {}

    /** Square n x n matrix initialized to @p init. */
    static Matrix
    square(std::size_t n, T init = T{})
    {
        return Matrix(n, n, init);
    }

    /** Build from nested initializer lists (rows must be equal length). */
    Matrix(std::initializer_list<std::initializer_list<T>> rows)
    {
        rows_ = rows.size();
        cols_ = rows_ ? rows.begin()->size() : 0;
        data_.reserve(rows_ * cols_);
        for (const auto &r : rows) {
            fatalIf(r.size() != cols_, "Matrix: ragged initializer list");
            data_.insert(data_.end(), r.begin(), r.end());
        }
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T &
    at(std::size_t r, std::size_t c)
    {
        panicIf(r >= rows_ || c >= cols_, "Matrix::at out of range");
        return data_[r * cols_ + c];
    }

    const T &
    at(std::size_t r, std::size_t c) const
    {
        panicIf(r >= rows_ || c >= cols_, "Matrix::at out of range");
        return data_[r * cols_ + c];
    }

    T &operator()(std::size_t r, std::size_t c) { return at(r, c); }
    const T &operator()(std::size_t r, std::size_t c) const
    {
        return at(r, c);
    }

    void fill(T v) { std::fill(data_.begin(), data_.end(), v); }

    /** Apply @p f to every element in place. */
    void
    apply(const std::function<T(T)> &f)
    {
        for (auto &v : data_)
            v = f(v);
    }

    /** Element-wise map to a (possibly different) element type. */
    template <typename U, typename F>
    Matrix<U>
    map(F f) const
    {
        Matrix<U> out(rows_, cols_);
        for (std::size_t r = 0; r < rows_; ++r)
            for (std::size_t c = 0; c < cols_; ++c)
                out(r, c) = f(at(r, c));
        return out;
    }

    /** Sum of all elements. */
    T
    sum() const
    {
        T total{};
        for (const auto &v : data_)
            total += v;
        return total;
    }

    /** Maximum element of row r. */
    T
    rowMax(std::size_t r) const
    {
        panicIf(r >= rows_ || cols_ == 0, "Matrix::rowMax out of range");
        T best = at(r, 0);
        for (std::size_t c = 1; c < cols_; ++c)
            best = std::max(best, at(r, c));
        return best;
    }

    /** Minimum over the off-diagonal elements (square matrices only). */
    T
    offDiagonalMin() const
    {
        panicIf(rows_ != cols_ || rows_ < 2,
                "offDiagonalMin needs a square matrix with n >= 2");
        bool first = true;
        T best{};
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) {
                if (r == c)
                    continue;
                if (first || at(r, c) < best) {
                    best = at(r, c);
                    first = false;
                }
            }
        }
        return best;
    }

    /** Maximum over the off-diagonal elements (square matrices only). */
    T
    offDiagonalMax() const
    {
        panicIf(rows_ != cols_ || rows_ < 2,
                "offDiagonalMax needs a square matrix with n >= 2");
        bool first = true;
        T best{};
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) {
                if (r == c)
                    continue;
                if (first || at(r, c) > best) {
                    best = at(r, c);
                    first = false;
                }
            }
        }
        return best;
    }

    /** Mean over the off-diagonal elements (square matrices only). */
    double
    offDiagonalMean() const
    {
        panicIf(rows_ != cols_ || rows_ < 2,
                "offDiagonalMean needs a square matrix with n >= 2");
        double total = 0.0;
        std::size_t count = 0;
        for (std::size_t r = 0; r < rows_; ++r) {
            for (std::size_t c = 0; c < cols_; ++c) {
                if (r == c)
                    continue;
                total += static_cast<double>(at(r, c));
                ++count;
            }
        }
        return total / static_cast<double>(count);
    }

    bool
    operator==(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_ &&
               data_ == other.data_;
    }

    const std::vector<T> &data() const { return data_; }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<T> data_;
};

} // namespace wanify

#endif // WANIFY_COMMON_MATRIX_HH
