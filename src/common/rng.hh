/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in WANify (fluctuation processes, workload
 * generators, the Random Forest's bagging) draws from an explicitly seeded
 * Rng so that benches and tests reproduce bit-for-bit run to run. The
 * generator is xoshiro256** seeded via splitmix64; distributions are
 * implemented in-house (Box–Muller for normals) instead of <random> so the
 * stream does not depend on the standard library implementation.
 */

#ifndef WANIFY_COMMON_RNG_HH
#define WANIFY_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace wanify {

/** splitmix64 step; used for seeding and as a cheap stateless hash. */
std::uint64_t splitmix64(std::uint64_t &state);

/**
 * Derive @p count independent seeds from @p baseSeed via splitmix64.
 *
 * Used wherever parallel components need per-unit seeds fixed up
 * front (the forest's per-tree seeds, the experiment runner's
 * per-trial seeds) so parallel and sequential execution draw the same
 * streams. Unlike affine schemes (base + k * t), adjacent base seeds
 * do not collide with each other's derived seeds.
 */
std::vector<std::uint64_t> deriveSeeds(std::uint64_t baseSeed,
                                       std::size_t count);

/**
 * Deterministic random number generator (xoshiro256**).
 *
 * Cheap to copy; child generators for parallel components should be
 * derived via split() so their streams are independent of the order the
 * parent is consumed in.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive). */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box–Muller. */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli draw with success probability p. */
    bool bernoulli(double p);

    /** Derive an independent child generator. */
    Rng split();

    /** Fisher–Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

    /** Sample k distinct indices from [0, n) (k <= n). */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /**
     * Allocation-free variant: fills @p out (reusing its capacity)
     * with k distinct indices from [0, n). Draws the same stream as
     * sampleWithoutReplacement — hot loops (per-node feature bagging)
     * can pool the buffer without changing any trained model.
     */
    void sampleWithoutReplacementInto(std::size_t n, std::size_t k,
                                      std::vector<std::size_t> &out);

    /** Sample k indices from [0, n) with replacement (bootstrap). */
    std::vector<std::size_t> sampleWithReplacement(std::size_t n,
                                                   std::size_t k);

  private:
    std::uint64_t s_[4];

    /** Cached second Box–Muller variate. */
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace wanify

#endif // WANIFY_COMMON_RNG_HH
