/**
 * @file
 * Fixed-size thread pool with a parallel-for helper.
 *
 * The control-plane hot paths — growing the WAN Prediction Model's
 * trees and fanning out independent experiment trials — are
 * embarrassingly parallel. The pool keeps them cheap (Terra's lesson:
 * cross-layer GDA machinery is only practical when the control plane
 * stays fast) without giving up determinism: callers pre-derive any
 * random seeds, and parallelFor() assigns work by index, so results
 * are bit-identical to a sequential loop regardless of scheduling.
 *
 * The calling thread participates in its own parallelFor() batch, so
 * nested use from a worker thread cannot deadlock: the nested caller
 * drains its own batch even when every pool thread is busy.
 */

#ifndef WANIFY_COMMON_THREAD_POOL_HH
#define WANIFY_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wanify {

class ThreadPool
{
  public:
    /**
     * Create a pool with @p threads total concurrency, including the
     * calling thread: threads - 1 workers are spawned, and the caller
     * contributes the remaining executor inside parallelFor(). A pool
     * of 1 (or 0) spawns no workers and runs batches sequentially on
     * the caller, in index order.
     */
    explicit ThreadPool(std::size_t threads);

    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Process-wide pool sized from the WANIFY_THREADS environment
     * variable when set, otherwise std::thread::hardware_concurrency().
     */
    static ThreadPool &global();

    /** Total concurrency: workers plus the participating caller. */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Invoke @p fn(i) for every i in [0, n), distributing indices
     * across the pool, and block until all complete. The calling
     * thread executes work items too. If any invocation throws, the
     * first exception is rethrown here after the batch drains (the
     * remaining unstarted indices are abandoned).
     */
    void parallelFor(std::size_t n,
                     const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();
    void enqueue(std::function<void()> task);

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace wanify

#endif // WANIFY_COMMON_THREAD_POOL_HH
