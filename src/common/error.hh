/**
 * @file
 * Error reporting primitives, following the gem5 fatal/panic distinction.
 *
 * fatal(): the caller (user of the library) supplied an invalid
 * configuration or argument — recoverable by fixing the input; throws
 * FatalError.
 *
 * panic(): an internal invariant was violated — a WANify bug; throws
 * PanicError. Both are exceptions rather than process exits so the test
 * suite can assert on them.
 */

#ifndef WANIFY_COMMON_ERROR_HH
#define WANIFY_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

namespace wanify {

/** Raised when user-provided configuration or inputs are invalid. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error("fatal: " + msg)
    {}
};

/** Raised when an internal invariant is violated (a WANify bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error("panic: " + msg)
    {}
};

/** Abort with a user-error; see class docs. */
[[noreturn]] void fatal(const std::string &msg);

/** Abort with an internal-invariant violation; see class docs. */
[[noreturn]] void panic(const std::string &msg);

/** fatal(msg) unless cond holds. */
void fatalIf(bool cond, const std::string &msg);

/** panic(msg) unless cond holds. */
void panicIf(bool cond, const std::string &msg);

} // namespace wanify

#endif // WANIFY_COMMON_ERROR_HH
