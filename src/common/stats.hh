/**
 * @file
 * Descriptive statistics helpers: mean, standard deviation, Pearson
 * correlation (used to justify snapshot-based prediction, Section 2.2),
 * percentiles, and a Welford running accumulator.
 */

#ifndef WANIFY_COMMON_STATS_HH
#define WANIFY_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace wanify {
namespace stats {

/** Arithmetic mean; 0 for an empty sample. */
double mean(const std::vector<double> &xs);

/** Unbiased sample variance; 0 for n < 2. */
double variance(const std::vector<double> &xs);

/** Unbiased sample standard deviation. */
double stddev(const std::vector<double> &xs);

/** Standard error of the mean (stddev / sqrt(n)). */
double stderrOfMean(const std::vector<double> &xs);

/**
 * Pearson correlation coefficient between two equal-length samples.
 * Returns 0 when either sample has zero variance.
 */
double pearson(const std::vector<double> &xs, const std::vector<double> &ys);

/** Linear-interpolated percentile, p in [0, 100]. */
double percentile(std::vector<double> xs, double p);

/** Welford online mean/variance accumulator. */
class RunningStats
{
  public:
    void push(double x);

    std::size_t count() const { return n_; }
    double mean() const { return mean_; }
    double variance() const;
    double stddev() const;
    double min() const { return min_; }
    double max() const { return max_; }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace stats
} // namespace wanify

#endif // WANIFY_COMMON_STATS_HH
