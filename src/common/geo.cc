#include "common/geo.hh"

#include <cmath>

namespace wanify {
namespace geo {

namespace {

constexpr double kDegToRad = M_PI / 180.0;

} // namespace

Kilometers
haversineKm(const GeoPoint &a, const GeoPoint &b)
{
    const double lat1 = a.latDeg * kDegToRad;
    const double lat2 = b.latDeg * kDegToRad;
    const double dlat = (b.latDeg - a.latDeg) * kDegToRad;
    const double dlon = (b.lonDeg - a.lonDeg) * kDegToRad;

    const double sinLat = std::sin(dlat / 2.0);
    const double sinLon = std::sin(dlon / 2.0);
    const double h = sinLat * sinLat +
                     std::cos(lat1) * std::cos(lat2) * sinLon * sinLon;
    return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(h));
}

} // namespace geo
} // namespace wanify
