/**
 * @file
 * Unit types and conversions used throughout WANify.
 *
 * Bandwidths are expressed in megabits per second (Mbps), data sizes in
 * bytes, and times in seconds, matching the units the paper reports.
 * Helper functions convert between them so that call sites never multiply
 * raw constants.
 */

#ifndef WANIFY_COMMON_UNITS_HH
#define WANIFY_COMMON_UNITS_HH

#include <cstdint>

namespace wanify {

/** Bandwidth in megabits per second. */
using Mbps = double;

/** Data size in bytes. */
using Bytes = double;

/** Time in seconds. */
using Seconds = double;

/** US dollars. */
using Dollars = double;

/** Distance in kilometers. */
using Kilometers = double;

namespace units {

constexpr double kBitsPerByte = 8.0;
constexpr double kBytesPerKB = 1024.0;
constexpr double kBytesPerMB = 1024.0 * 1024.0;
constexpr double kBytesPerGB = 1024.0 * 1024.0 * 1024.0;
constexpr double kBitsPerMegabit = 1.0e6;
constexpr double kSecondsPerHour = 3600.0;
constexpr double kSecondsPerMinute = 60.0;
constexpr double kMilesPerKilometer = 0.621371;

/** Convert megabytes to bytes. */
constexpr Bytes
megabytes(double mb)
{
    return mb * kBytesPerMB;
}

/** Convert gigabytes to bytes. */
constexpr Bytes
gigabytes(double gb)
{
    return gb * kBytesPerGB;
}

/** Convert gigabits to bytes (the paper's Fig. 2(d) uses Gb). */
constexpr Bytes
gigabits(double gbit)
{
    return gbit * 1.0e9 / kBitsPerByte;
}

/** Convert bytes to megabytes. */
constexpr double
toMegabytes(Bytes b)
{
    return b / kBytesPerMB;
}

/** Convert bytes to gigabytes. */
constexpr double
toGigabytes(Bytes b)
{
    return b / kBytesPerGB;
}

/**
 * Time to move @p size bytes at @p rate Mbps.
 *
 * @return Transfer duration in seconds; 0 for empty transfers and
 *         +infinity when the rate is zero but data remains.
 */
Seconds transferTime(Bytes size, Mbps rate);

/** Bytes moved in @p dt seconds at @p rate Mbps. */
constexpr Bytes
bytesAtRate(Mbps rate, Seconds dt)
{
    return rate * kBitsPerMegabit / kBitsPerByte * dt;
}

/** Achieved rate in Mbps when @p size bytes move in @p dt seconds. */
Mbps rateFor(Bytes size, Seconds dt);

/** Convert kilometers to miles (feature Dij in Table 3 uses miles). */
constexpr double
toMiles(Kilometers km)
{
    return km * kMilesPerKilometer;
}

} // namespace units
} // namespace wanify

#endif // WANIFY_COMMON_UNITS_HH
