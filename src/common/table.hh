/**
 * @file
 * ASCII table printer used by the bench binaries to render paper-style
 * tables and figure series on stdout.
 */

#ifndef WANIFY_COMMON_TABLE_HH
#define WANIFY_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace wanify {

/**
 * Column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t("Table 1: Gaps between static and runtime BWs (Mbps)");
 *   t.setHeader({"Difference Interval", "Count"});
 *   t.addRow({"(100, 200]", "7"});
 *   t.print();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::string title = "");

    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Format a double with @p decimals fraction digits. */
    static std::string num(double v, int decimals = 1);

    /** Format as a percentage string, e.g. "12.5%". */
    static std::string pct(double fraction, int decimals = 1);

    /** Render to a string. */
    std::string str() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace wanify

#endif // WANIFY_COMMON_TABLE_HH
