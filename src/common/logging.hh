/**
 * @file
 * Status messages in the gem5 style: inform() for normal operating
 * messages, warn() for conditions that might indicate a problem. Neither
 * stops execution; fatal()/panic() (error.hh) do.
 */

#ifndef WANIFY_COMMON_LOGGING_HH
#define WANIFY_COMMON_LOGGING_HH

#include <string>

namespace wanify {

/** Verbosity levels, most severe first. */
enum class LogLevel { Silent = 0, Warn = 1, Info = 2, Debug = 3 };

namespace logging {

/** Set the global verbosity (default: Warn — keeps benches tidy). */
void setLevel(LogLevel level);

/** Current global verbosity. */
LogLevel level();

/** Normal operating message; shown at Info and above. */
void inform(const std::string &msg);

/** Something might be off but execution continues; Warn and above. */
void warn(const std::string &msg);

/** Developer tracing; Debug only. */
void debug(const std::string &msg);

} // namespace logging
} // namespace wanify

#endif // WANIFY_COMMON_LOGGING_HH
