#include "common/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace wanify {

namespace {

std::size_t
defaultThreadCount()
{
    if (const char *env = std::getenv("WANIFY_THREADS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

/** Shared state of one parallelFor() batch. */
struct Batch
{
    std::size_t n = 0;
    const std::function<void(std::size_t)> *fn = nullptr;

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::size_t done = 0; // guarded by mutex
    std::exception_ptr error;
    std::mutex mutex;
    std::condition_variable cv;

    /**
     * Claim and run indices until the batch is exhausted. Every index
     * in [0, n) is claimed exactly once, so `done` reaches n exactly
     * when the batch is complete; after a failure the remaining
     * indices are still claimed but their work is skipped.
     */
    void
    drain()
    {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            if (!failed.load(std::memory_order_relaxed)) {
                try {
                    (*fn)(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!error)
                        error = std::current_exception();
                    failed.store(true, std::memory_order_relaxed);
                }
            }
            std::lock_guard<std::mutex> lock(mutex);
            if (++done == n)
                cv.notify_all();
        }
    }
};

} // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    const std::size_t workers = threads <= 1 ? 0 : threads - 1;
    workers_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreadCount());
    return pool;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this] { return stopping_ || !queue_.empty(); });
            if (stopping_ && queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::parallelFor(std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    // No workers (a 1-thread pool, e.g. WANIFY_THREADS=1): the caller
    // runs everything inline, in index order.
    if (n == 1 || workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->n = n;
    batch->fn = &fn;

    // One helper per worker (capped at n - 1: the caller drains too).
    // Helpers that wake after the batch is exhausted exit immediately.
    const std::size_t helpers =
        std::min(workers_.size(), n - 1);
    for (std::size_t i = 0; i < helpers; ++i)
        enqueue([batch] { batch->drain(); });

    batch->drain();

    std::unique_lock<std::mutex> lock(batch->mutex);
    batch->cv.wait(lock, [&] { return batch->done == batch->n; });
    if (batch->error)
        std::rethrow_exception(batch->error);
}

} // namespace wanify
