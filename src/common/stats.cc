#include "common/stats.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace stats {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
variance(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double ss = 0.0;
    for (double x : xs)
        ss += (x - m) * (x - m);
    return ss / static_cast<double>(xs.size() - 1);
}

double
stddev(const std::vector<double> &xs)
{
    return std::sqrt(variance(xs));
}

double
stderrOfMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    return stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
}

double
pearson(const std::vector<double> &xs, const std::vector<double> &ys)
{
    fatalIf(xs.size() != ys.size(), "pearson: length mismatch");
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx <= 0.0 || syy <= 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
percentile(std::vector<double> xs, double p)
{
    fatalIf(xs.empty(), "percentile: empty sample");
    fatalIf(p < 0.0 || p > 100.0, "percentile: p out of [0, 100]");
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

void
RunningStats::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

} // namespace stats
} // namespace wanify
