#include "common/units.hh"

#include <limits>

namespace wanify {
namespace units {

Seconds
transferTime(Bytes size, Mbps rate)
{
    if (size <= 0.0)
        return 0.0;
    if (rate <= 0.0)
        return std::numeric_limits<Seconds>::infinity();
    return size * kBitsPerByte / (rate * kBitsPerMegabit);
}

Mbps
rateFor(Bytes size, Seconds dt)
{
    if (dt <= 0.0)
        return 0.0;
    return size * kBitsPerByte / kBitsPerMegabit / dt;
}

} // namespace units
} // namespace wanify
