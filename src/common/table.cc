#include "common/table.hh"

#include <cstdio>
#include <iostream>
#include <sstream>

#include "common/error.hh"

namespace wanify {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    fatalIf(!header_.empty() && row.size() != header_.size(),
            "Table::addRow: column count mismatch");
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
Table::pct(double fraction, int decimals)
{
    return num(fraction * 100.0, decimals) + "%";
}

std::string
Table::str() const
{
    // Compute column widths over header and all rows.
    std::size_t cols = header_.size();
    for (const auto &r : rows_)
        cols = std::max(cols, r.size());
    std::vector<std::size_t> width(cols, 0);
    auto grow = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream out;
    if (!title_.empty())
        out << title_ << "\n";

    auto emit = [&](const std::vector<std::string> &row) {
        out << "|";
        for (std::size_t c = 0; c < cols; ++c) {
            const std::string &cell = c < row.size() ? row[c] : "";
            out << " " << cell
                << std::string(width[c] - cell.size(), ' ') << " |";
        }
        out << "\n";
    };

    auto rule = [&]() {
        out << "+";
        for (std::size_t c = 0; c < cols; ++c)
            out << std::string(width[c] + 2, '-') << "+";
        out << "\n";
    };

    rule();
    if (!header_.empty()) {
        emit(header_);
        rule();
    }
    for (const auto &r : rows_)
        emit(r);
    rule();
    return out.str();
}

void
Table::print() const
{
    std::cout << str() << std::flush;
}

} // namespace wanify
