#include "common/error.hh"

namespace wanify {

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
fatalIf(bool cond, const std::string &msg)
{
    if (cond)
        fatal(msg);
}

void
panicIf(bool cond, const std::string &msg)
{
    if (cond)
        panic(msg);
}

} // namespace wanify
