/**
 * @file
 * Geographic coordinates and great-circle distance.
 *
 * WANify uses the physical distance between DCs (Table 3, feature Dij) as
 * a primary predictor feature, derived from the geo-coordinates of the VM
 * IPs. Here distances come from the region catalog's coordinates via the
 * haversine formula.
 */

#ifndef WANIFY_COMMON_GEO_HH
#define WANIFY_COMMON_GEO_HH

#include "common/units.hh"

namespace wanify {

/** A point on the globe in decimal degrees. */
struct GeoPoint
{
    double latDeg = 0.0;
    double lonDeg = 0.0;
};

namespace geo {

/** Mean Earth radius used by the haversine computation. */
constexpr Kilometers kEarthRadiusKm = 6371.0;

/** Great-circle distance between two points. */
Kilometers haversineKm(const GeoPoint &a, const GeoPoint &b);

} // namespace geo
} // namespace wanify

#endif // WANIFY_COMMON_GEO_HH
