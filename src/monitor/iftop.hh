/**
 * @file
 * ifTop-like node-level runtime traffic monitor.
 *
 * WANify's local agents use a lightweight per-node monitor (the paper
 * cites ifTop) to observe the achieved egress rate toward every peer DC
 * during query execution. This implementation differences the
 * simulator's cumulative per-pair byte counters across a sampling
 * window, which mirrors how ifTop computes rates from interface
 * counters.
 */

#ifndef WANIFY_MONITOR_IFTOP_HH
#define WANIFY_MONITOR_IFTOP_HH

#include <vector>

#include "common/matrix.hh"
#include "common/units.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace monitor {

/** Windowed rate monitor for one source DC. */
class IfTop
{
  public:
    /** Monitor egress of @p sourceDc on @p sim. */
    IfTop(const net::NetworkSim &sim, net::DcId sourceDc);

    /** Begin a sampling window at the current sim time. */
    void beginWindow();

    /**
     * Close the window and return the average egress rate to every
     * destination DC (index = DcId; the source's own entry is 0).
     * Returns zeros if no time elapsed.
     */
    std::vector<Mbps> endWindow();

    /** Instantaneous egress rates (no window needed). */
    std::vector<Mbps> instantaneous() const;

    net::DcId sourceDc() const { return sourceDc_; }

  private:
    const net::NetworkSim &sim_;
    net::DcId sourceDc_;
    Seconds windowStart_ = 0.0;
    std::vector<Bytes> bytesAtStart_;
    bool windowOpen_ = false;
};

} // namespace monitor
} // namespace wanify

#endif // WANIFY_MONITOR_IFTOP_HH
