#include "monitor/iftop.hh"

#include "common/error.hh"

namespace wanify {
namespace monitor {

using net::DcId;

IfTop::IfTop(const net::NetworkSim &sim, DcId sourceDc)
    : sim_(sim), sourceDc_(sourceDc)
{
    fatalIf(sourceDc >= sim.topology().dcCount(),
            "IfTop: source DC out of range");
}

void
IfTop::beginWindow()
{
    const std::size_t n = sim_.topology().dcCount();
    bytesAtStart_.assign(n, 0.0);
    for (DcId j = 0; j < n; ++j)
        bytesAtStart_[j] = sim_.pairBytes(sourceDc_, j);
    windowStart_ = sim_.now();
    windowOpen_ = true;
}

std::vector<Mbps>
IfTop::endWindow()
{
    panicIf(!windowOpen_, "IfTop::endWindow without beginWindow");
    windowOpen_ = false;
    const std::size_t n = sim_.topology().dcCount();
    std::vector<Mbps> rates(n, 0.0);
    const Seconds dt = sim_.now() - windowStart_;
    if (dt <= 0.0)
        return rates;
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        const Bytes moved =
            sim_.pairBytes(sourceDc_, j) - bytesAtStart_[j];
        rates[j] = units::rateFor(moved, dt);
    }
    return rates;
}

std::vector<Mbps>
IfTop::instantaneous() const
{
    const std::size_t n = sim_.topology().dcCount();
    std::vector<Mbps> rates(n, 0.0);
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        rates[j] = sim_.pairRate(sourceDc_, j);
    }
    return rates;
}

} // namespace monitor
} // namespace wanify
