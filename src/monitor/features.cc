#include "monitor/features.hh"

#include "common/error.hh"

namespace wanify {
namespace monitor {

const std::array<std::string, kFeatureCount> &
featureNames()
{
    static const std::array<std::string, kFeatureCount> names = {
        "N", "S_BWij", "Md", "Ci", "Nr", "Dij",
    };
    return names;
}

std::vector<double>
pairFeatures(const net::Topology &topo, const Matrix<Mbps> &snapshotBw,
             net::DcId i, net::DcId j, const HostLoad &load,
             double retransRate)
{
    fatalIf(i >= topo.dcCount() || j >= topo.dcCount(),
            "pairFeatures: DC out of range");
    fatalIf(snapshotBw.rows() != topo.dcCount() ||
                snapshotBw.cols() != topo.dcCount(),
            "pairFeatures: snapshot matrix shape mismatch");

    std::vector<double> f(kFeatureCount, 0.0);
    f[FeatN] = static_cast<double>(topo.dcCount());
    f[FeatSnapshotBw] = snapshotBw.at(i, j);
    f[FeatMemUtil] = load.memUtil;
    f[FeatCpuLoad] = load.cpuLoad;
    f[FeatRetrans] = retransRate;
    f[FeatDistance] = units::toMiles(topo.distanceKm(i, j));
    return f;
}

} // namespace monitor
} // namespace wanify
