#include "monitor/features.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace monitor {

const std::array<std::string, kFeatureCount> &
featureNames()
{
    static const std::array<std::string, kFeatureCount> names = {
        "N", "S_BWij", "Md", "Ci", "Nr", "Dij",
    };
    return names;
}

void
pairFeaturesInto(const net::Topology &topo,
                 const Matrix<Mbps> &snapshotBw, net::DcId i,
                 net::DcId j, const HostLoad &load, double retransRate,
                 double *out)
{
    fatalIf(i >= topo.dcCount() || j >= topo.dcCount(),
            "pairFeatures: DC out of range");
    fatalIf(snapshotBw.rows() != topo.dcCount() ||
                snapshotBw.cols() != topo.dcCount(),
            "pairFeatures: snapshot matrix shape mismatch");

    out[FeatN] = static_cast<double>(topo.dcCount());
    out[FeatSnapshotBw] = snapshotBw.at(i, j);
    out[FeatMemUtil] = load.memUtil;
    out[FeatCpuLoad] = load.cpuLoad;
    out[FeatRetrans] = retransRate;
    out[FeatDistance] = units::toMiles(topo.distanceKm(i, j));
}

std::vector<double>
pairFeatures(const net::Topology &topo, const Matrix<Mbps> &snapshotBw,
             net::DcId i, net::DcId j, const HostLoad &load,
             double retransRate)
{
    std::vector<double> f(kFeatureCount, 0.0);
    pairFeaturesInto(topo, snapshotBw, i, j, load, retransRate,
                     f.data());
    return f;
}

std::size_t
matrixFeaturesInto(const net::Topology &topo,
                   const Matrix<Mbps> &snapshotBw,
                   const HostLoad &load, double *X)
{
    const std::size_t n = topo.dcCount();
    fatalIf(snapshotBw.rows() != n || snapshotBw.cols() != n,
            "matrixFeaturesInto: snapshot matrix shape mismatch");

    // One validated pass; per-pair fields read unchecked from the
    // row-major backing stores.
    const double *snap = snapshotBw.data().data();
    const auto dcs = static_cast<double>(n);
    double *row = X;
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const double s = snap[i * n + j];
            const double cap = topo.connCap(i, j);
            // Congestion proxy: how far the snapshot fell below the
            // pair's single-connection capability.
            const double retrans =
                std::max(0.0, 1.0 - s / std::max(cap, 1.0));
            row[FeatN] = dcs;
            row[FeatSnapshotBw] = s;
            row[FeatMemUtil] = load.memUtil;
            row[FeatCpuLoad] = load.cpuLoad;
            row[FeatRetrans] = retrans;
            row[FeatDistance] =
                units::toMiles(topo.distanceKm(i, j));
            row += kFeatureCount;
        }
    }
    return static_cast<std::size_t>(row - X) / kFeatureCount;
}

} // namespace monitor
} // namespace wanify
