/**
 * @file
 * Feature extraction for the runtime BW prediction model (Table 3).
 *
 * Per DC pair (i, j) the model sees:
 *   N      — number of DCs in the cluster
 *   S_BWij — 1-second snapshot BW between the probe VMs at i and j
 *   Md     — memory utilization at the receiving end
 *   Ci     — CPU load at the VM in DC i
 *   Nr     — retransmission rate (congestion proxy)
 *   Dij    — physical distance in miles between the VMs at i and j
 *
 * A single per-pair model with N as a feature serves every cluster size
 * (Section 3.3.2).
 */

#ifndef WANIFY_MONITOR_FEATURES_HH
#define WANIFY_MONITOR_FEATURES_HH

#include <array>
#include <string>
#include <vector>

#include "common/matrix.hh"
#include "common/units.hh"
#include "net/topology.hh"

namespace wanify {
namespace monitor {

/** Number of model features (Table 3). */
constexpr std::size_t kFeatureCount = 6;

/** Feature indices, in Table 3 order. */
enum Feature : std::size_t {
    FeatN = 0,
    FeatSnapshotBw = 1,
    FeatMemUtil = 2,
    FeatCpuLoad = 3,
    FeatRetrans = 4,
    FeatDistance = 5,
};

/** Human-readable feature names. */
const std::array<std::string, kFeatureCount> &featureNames();

/** Host-level load observed while sampling (synthetic or from GDA). */
struct HostLoad
{
    double memUtil = 0.3;  ///< [0, 1] at the receiving end
    double cpuLoad = 0.3;  ///< [0, 1] at the sending DC's VM
};

/**
 * Assemble the feature vector for pair (i, j).
 *
 * @param topo        cluster topology (for N and Dij)
 * @param snapshotBw  1-second snapshot matrix
 * @param load        host load at sampling time
 * @param retransRate congestion proxy in [0, 1] for the pair
 */
std::vector<double> pairFeatures(const net::Topology &topo,
                                 const Matrix<Mbps> &snapshotBw,
                                 net::DcId i, net::DcId j,
                                 const HostLoad &load,
                                 double retransRate);

/**
 * Allocation-free variant: emit the pair's feature vector into
 * @p out, which must hold kFeatureCount slots. The batched
 * predict→plan hot path fills one row-major feature matrix for all
 * n*(n-1) pairs through this overload.
 */
void pairFeaturesInto(const net::Topology &topo,
                      const Matrix<Mbps> &snapshotBw, net::DcId i,
                      net::DcId j, const HostLoad &load,
                      double retransRate, double *out);

/**
 * Fill the row-major feature matrix for every ordered DC pair —
 * row per (i, j), i != j, in row-major pair order — deriving each
 * pair's retransmission proxy from its connection capability (how
 * far the snapshot fell below it), exactly as pairFeatures callers
 * do individually. @p X must hold n*(n-1) * kFeatureCount slots.
 * Shape checks run once per matrix, not once per pair: this is the
 * batched predictMatrix hot path. Returns the rows written.
 */
std::size_t matrixFeaturesInto(const net::Topology &topo,
                               const Matrix<Mbps> &snapshotBw,
                               const HostLoad &load, double *X);

} // namespace monitor
} // namespace wanify

#endif // WANIFY_MONITOR_FEATURES_HH
