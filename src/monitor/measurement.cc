#include "monitor/measurement.hh"

#include <algorithm>
#include <vector>

#include "common/error.hh"

namespace wanify {
namespace monitor {

using net::DcId;
using net::NetworkSim;
using net::Topology;
using net::TransferId;
using net::VmId;

namespace {

/** First VM of a DC — the monitoring probe host. */
VmId
probeVm(const Topology &topo, DcId dc)
{
    panicIf(topo.dc(dc).vms.empty(), "probeVm: DC has no VMs");
    return topo.dc(dc).vms.front();
}

} // namespace

MeshMeasurer::MeshMeasurer(NetworkSim &sim) : sim_(sim) {}

Matrix<Mbps>
MeshMeasurer::measureSimultaneous(Seconds duration, int connections)
{
    fatalIf(duration <= 0.0, "measureSimultaneous: duration must be > 0");
    const Topology &topo = sim_.topology();
    const std::size_t n = topo.dcCount();

    // Record byte counters before the measurement window.
    Matrix<Bytes> before = Matrix<Bytes>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i)
        for (DcId j = 0; j < n; ++j)
            before.at(i, j) = sim_.pairBytes(i, j);

    std::vector<TransferId> probes;
    probes.reserve(n * n);
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            probes.push_back(sim_.startMeasurement(
                probeVm(topo, i), probeVm(topo, j), connections));
        }
    }

    sim_.advanceBy(duration);

    Matrix<Mbps> bw = Matrix<Mbps>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j) {
                bw.at(i, j) = topo.vm(probeVm(topo, i)).type.nicCapMbps;
                continue;
            }
            const Bytes moved = sim_.pairBytes(i, j) - before.at(i, j);
            bw.at(i, j) = units::rateFor(moved, duration);
        }
    }

    for (TransferId id : probes)
        sim_.stopTransfer(id);
    return bw;
}

Matrix<Mbps>
MeshMeasurer::snapshot(const MeasurementConfig &cfg, Rng &rng)
{
    Matrix<Mbps> bw =
        measureSimultaneous(cfg.snapshotDuration, cfg.connections);
    if (cfg.snapshotNoiseSd > 0.0) {
        const std::size_t n = bw.rows();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                const double noise =
                    1.0 + rng.normal(0.0, cfg.snapshotNoiseSd);
                bw.at(i, j) *= std::max(0.05, noise);
            }
        }
    }
    return bw;
}

Matrix<Mbps>
staticIndependentBw(const Topology &topo,
                    const net::NetworkSimConfig &simCfg,
                    const MeasurementConfig &cfg, std::uint64_t seed)
{
    const std::size_t n = topo.dcCount();
    Matrix<Mbps> bw = Matrix<Mbps>::square(n, 0.0);
    std::uint64_t pairSeed = seed;
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j) {
                bw.at(i, j) = topo.vm(probeVm(topo, i)).type.nicCapMbps;
                continue;
            }
            // Fresh sim per pair: nothing else is active, exactly like
            // running iPerf between two idle probe VMs.
            NetworkSim sim(topo, simCfg, splitmix64(pairSeed));
            const TransferId id = sim.startMeasurement(
                probeVm(topo, i), probeVm(topo, j), cfg.connections);
            const Bytes before = sim.pairBytes(i, j);
            sim.advanceBy(cfg.stableDuration);
            const Bytes moved = sim.pairBytes(i, j) - before;
            bw.at(i, j) = units::rateFor(moved, cfg.stableDuration);
            sim.stopTransfer(id);
        }
    }
    return bw;
}

Matrix<Mbps>
staticSimultaneousBw(const Topology &topo,
                     const net::NetworkSimConfig &simCfg,
                     const MeasurementConfig &cfg, std::uint64_t seed)
{
    NetworkSim sim(topo, simCfg, seed);
    MeshMeasurer measurer(sim);
    return measurer.measureSimultaneous(cfg.stableDuration,
                                        cfg.connections);
}

} // namespace monitor
} // namespace wanify
