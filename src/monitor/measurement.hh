/**
 * @file
 * iPerf-style bandwidth measurement on top of the network simulator.
 *
 * Reproduces the three measurement regimes the paper contrasts:
 *
 *  - static-independent: one DC pair at a time, in isolation — what
 *    existing GDA systems (Tetrium, Kimchi, Iridium) use;
 *  - static-simultaneous: all DC pairs concurrently — what actually
 *    happens during all-to-all shuffles;
 *  - snapshot: a 1-second simultaneous sample with measurement noise —
 *    WANify's cheap model input (Section 2.2: stable BW needs >= 20 s,
 *    but 1-s snapshots correlate positively with it);
 *  - runtime/stable: a >= 20-second simultaneous average.
 *
 * Measurements probe between the first VM of each DC (the paper deploys
 * one monitoring VM per region); association for multi-VM DCs is handled
 * by WANify (Section 3.3.3).
 */

#ifndef WANIFY_MONITOR_MEASUREMENT_HH
#define WANIFY_MONITOR_MEASUREMENT_HH

#include <cstdint>

#include "common/matrix.hh"
#include "common/rng.hh"
#include "common/units.hh"
#include "net/network_sim.hh"
#include "net/topology.hh"

namespace wanify {
namespace monitor {

/** Parameters shared by the measurement helpers. */
struct MeasurementConfig
{
    /** Duration of a stable measurement (paper: >= 20 s). */
    Seconds stableDuration = 20.0;

    /** Duration of a snapshot (paper: 1 s). */
    Seconds snapshotDuration = 1.0;

    /** Relative white noise added to snapshot readings. */
    double snapshotNoiseSd = 0.05;

    /** Parallel connections per probed pair. */
    int connections = 1;
};

/**
 * Mesh measurement bound to a live simulator.
 *
 * Starts measurement flows between the first VM of every DC pair,
 * advances the sim, and reads the averaged achieved rates. The sim's
 * fluctuation state carries across calls, which is what lets a snapshot
 * and a subsequent stable measurement share a network trajectory when
 * generating training data.
 */
class MeshMeasurer
{
  public:
    explicit MeshMeasurer(net::NetworkSim &sim);

    /**
     * Measure all ordered DC pairs simultaneously for @p duration.
     * Diagonal entries are set to the intra-DC NIC capacity.
     */
    Matrix<Mbps> measureSimultaneous(Seconds duration,
                                     int connections = 1);

    /** 1-second simultaneous sample with multiplicative noise. */
    Matrix<Mbps> snapshot(const MeasurementConfig &cfg, Rng &rng);

  private:
    net::NetworkSim &sim_;
};

/**
 * Static-independent BW matrix: each ordered pair measured alone in a
 * fresh simulator (fluctuation seeded from @p seed), as existing GDA
 * systems do.
 */
Matrix<Mbps> staticIndependentBw(const net::Topology &topo,
                                 const net::NetworkSimConfig &simCfg,
                                 const MeasurementConfig &cfg,
                                 std::uint64_t seed);

/**
 * Static-simultaneous BW matrix: the full mesh measured concurrently in
 * a fresh simulator.
 */
Matrix<Mbps> staticSimultaneousBw(const net::Topology &topo,
                                  const net::NetworkSimConfig &simCfg,
                                  const MeasurementConfig &cfg,
                                  std::uint64_t seed);

} // namespace monitor
} // namespace wanify

#endif // WANIFY_MONITOR_MEASUREMENT_HH
