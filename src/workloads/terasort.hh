/**
 * @file
 * TeraSort workload model.
 *
 * The canonical shuffle-heavy benchmark the paper uses to compare data
 * transfer approaches (Section 5.3.1): every input byte crosses the
 * shuffle (selectivity 1.0), so the reduce stage's WAN behaviour
 * dominates JCT. Compute densities are calibrated for t2.medium-class
 * workers so a 100 GB sort lands in the paper's ~1 hour range.
 */

#ifndef WANIFY_WORKLOADS_TERASORT_HH
#define WANIFY_WORKLOADS_TERASORT_HH

#include "gda/job.hh"

namespace wanify {
namespace workloads {

/** Build a TeraSort job over @p inputGb gigabytes. */
gda::JobSpec teraSort(double inputGb = 100.0);

} // namespace workloads
} // namespace wanify

#endif // WANIFY_WORKLOADS_TERASORT_HH
