#include "workloads/ml_quantization.hh"

#include <algorithm>
#include <map>

#include "common/error.hh"

namespace wanify {
namespace workloads {

using net::DcId;
using net::NetworkSim;
using net::TransferId;
using net::VmId;

int
quantizationBits(Mbps linkBw)
{
    // SAGQ-style self-adaptive precision: weak links ship coarse
    // gradients; strong links keep full precision.
    if (linkBw < 150.0)
        return 8;
    if (linkBw < 400.0)
        return 16;
    return 32;
}

MlQuantizationJob::MlQuantizationJob(MlModelSpec spec) : spec_(spec)
{
    fatalIf(spec_.parameters == 0, "MlQuantizationJob: no parameters");
    fatalIf(spec_.epochs <= 0, "MlQuantizationJob: epochs must be > 0");
    fatalIf(spec_.syncsPerEpoch <= 0,
            "MlQuantizationJob: syncsPerEpoch must be > 0");
}

Bytes
MlQuantizationJob::gradientBytes() const
{
    return static_cast<double>(spec_.parameters) * 4.0; // float32
}

MlRunResult
MlQuantizationJob::run(const net::Topology &topo,
                       const net::NetworkSimConfig &simCfg,
                       std::uint64_t seed,
                       const std::optional<Matrix<Mbps>> &quantBw,
                       const core::Wanify *wanify) const
{
    const std::size_t n = topo.dcCount();
    fatalIf(n < 2, "MlQuantizationJob: need at least 2 DCs");
    fatalIf(quantBw.has_value() &&
                (quantBw->rows() != n || quantBw->cols() != n),
            "MlQuantizationJob: quantBw shape mismatch");
    fatalIf(wanify != nullptr && !quantBw.has_value(),
            "MlQuantizationJob: WQ needs a BW matrix for planning");

    NetworkSim sim(topo, simCfg, seed);
    Rng rng(seed ^ 0x5eed);

    // WQ transport: heterogeneous connections + agents + throttles.
    core::GlobalPlan plan;
    core::Wanify::Deployment deployment;
    auto &agents = deployment.agents;
    Seconds epochInterval = 1.0;
    if (wanify != nullptr) {
        plan = wanify->plan(*quantBw);
        deployment = wanify->deploy(sim, plan, *quantBw);
        epochInterval = wanify->config().aimd.epoch;
    }

    // Per-link per-epoch gradient traffic.
    Matrix<Bytes> linkBytes = Matrix<Bytes>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const int bits =
                quantBw.has_value()
                    ? quantizationBits(quantBw->at(i, j))
                    : 32;
            linkBytes.at(i, j) =
                gradientBytes() * (static_cast<double>(bits) / 32.0) *
                static_cast<double>(spec_.syncsPerEpoch);
        }
    }

    // Local compute per epoch, gated by the slowest DC.
    Seconds computePerEpoch = 0.0;
    const double perDcMb =
        units::toMegabytes(spec_.datasetBytes) / static_cast<double>(n);
    for (DcId dc = 0; dc < n; ++dc) {
        double rate = 0.0;
        for (VmId v : topo.dc(dc).vms)
            rate += topo.vm(v).type.computeRate;
        computePerEpoch = std::max(
            computePerEpoch, perDcMb * spec_.workPerMb / rate);
    }

    MlRunResult result;
    Matrix<Bytes> bytesBefore = Matrix<Bytes>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i)
        for (DcId j = 0; j < n; ++j)
            bytesBefore.at(i, j) = sim.pairBytes(i, j);
    const Seconds start = sim.now();

    for (int epoch = 0; epoch < spec_.epochs; ++epoch) {
        const Seconds epochStart = sim.now();

        // Compute phase (network idle).
        sim.advanceBy(computePerEpoch);

        // Gradient exchange: all-to-all, transported per variant.
        std::map<TransferId, std::pair<DcId, DcId>> pending;
        for (DcId i = 0; i < n; ++i) {
            for (DcId j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                int conns = 1;
                if (wanify != nullptr && agents.empty())
                    conns = plan.maxCons.at(i, j);
                const TransferId id = sim.startTransfer(
                    topo.dc(i).vms.front(), topo.dc(j).vms.front(),
                    linkBytes.at(i, j), conns);
                pending[id] = {i, j};
            }
        }
        for (auto &agent : agents) {
            agent->applyTargets();
            agent->resetWindow();
        }

        const Seconds exchangeStart = sim.now();
        Seconds nextAgentEpoch = exchangeStart + epochInterval;
        while (!sim.allTransfersDone()) {
            sim.runUntilAllComplete(nextAgentEpoch);
            if (sim.allTransfersDone())
                break;
            for (auto &agent : agents)
                agent->onEpoch();
            nextAgentEpoch += epochInterval;
        }

        // Track the weakest link's average exchange rate.
        for (const auto &rec : sim.drainCompletions()) {
            auto it = pending.find(rec.id);
            if (it == pending.end())
                continue;
            const auto [i, j] = it->second;
            const Seconds duration =
                std::max(1.0e-6, rec.time - exchangeStart);
            const Mbps avg =
                units::rateFor(linkBytes.at(i, j), duration);
            result.minBw = result.minBw == 0.0
                               ? avg
                               : std::min(result.minBw, avg);
        }
        result.epochTimes.push_back(sim.now() - epochStart);
    }

    if (wanify != nullptr)
        deployment.clear(sim);

    result.trainingTime = sim.now() - start;

    Matrix<Bytes> moved = Matrix<Bytes>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i)
        for (DcId j = 0; j < n; ++j)
            moved.at(i, j) = sim.pairBytes(i, j) - bytesBefore.at(i, j);

    const cost::CostModel costModel(topo);
    result.cost = costModel.queryCost(
        result.trainingTime, moved,
        units::toGigabytes(spec_.datasetBytes));

    // Quantization is self-adaptive: it keeps test accuracy at the
    // full-precision level (~97% on MNIST after 10 epochs, Fig. 4).
    result.testAccuracy = 96.8 + 0.4 * rng.uniform();
    return result;
}

} // namespace workloads
} // namespace wanify
