/**
 * @file
 * WordCount workload with controllable intermediate data size.
 *
 * Section 5.3.2 controls shuffle volume with all-distinct-word inputs:
 * the intermediate (map output) size per DC pair is the experiment's
 * x-axis. The factory takes the desired total intermediate size and
 * derives the map selectivity.
 */

#ifndef WANIFY_WORKLOADS_WORDCOUNT_HH
#define WANIFY_WORKLOADS_WORDCOUNT_HH

#include "gda/job.hh"

namespace wanify {
namespace workloads {

/**
 * Build a WordCount job.
 *
 * @param inputMb          total input size (paper: 100-600 MB)
 * @param intermediateMb   total map-output size across the cluster
 *                         (all-distinct words make this controllable)
 */
gda::JobSpec wordCount(double inputMb, double intermediateMb);

} // namespace workloads
} // namespace wanify

#endif // WANIFY_WORKLOADS_WORDCOUNT_HH
