#include "workloads/wordcount.hh"

#include "common/error.hh"

namespace wanify {
namespace workloads {

gda::JobSpec
wordCount(double inputMb, double intermediateMb)
{
    fatalIf(inputMb <= 0.0, "wordCount: inputMb must be positive");
    fatalIf(intermediateMb <= 0.0,
            "wordCount: intermediateMb must be positive");

    gda::JobSpec job;
    job.name = "wordcount";
    job.inputBytes = units::megabytes(inputMb);
    // Map: tokenize + local combine. Selectivity reproduces the
    // requested intermediate volume.
    const double selectivity = intermediateMb / inputMb;
    job.stages.push_back({"tokenize-map", selectivity, 2.0, true});
    // Reduce: aggregate counts; output is a small count table.
    job.stages.push_back({"count-reduce", 0.05, 1.0, true});
    return job;
}

} // namespace workloads
} // namespace wanify
