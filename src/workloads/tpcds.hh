/**
 * @file
 * TPC-DS query proxies.
 *
 * The paper evaluates three classes of TPC-DS queries on 100 GB input:
 * light-weight (query 82), average-weight (queries 11, 95), and
 * heavy-weight (query 78) [refs 26, 30, 32]. We model each query as a
 * stage DAG with the class's characteristic scan/join/aggregate
 * selectivities — the scheduler/WANify interaction depends only on the
 * resulting stage shuffle volumes, which these proxies generate at the
 * paper's scale (see DESIGN.md's substitution table).
 */

#ifndef WANIFY_WORKLOADS_TPCDS_HH
#define WANIFY_WORKLOADS_TPCDS_HH

#include <vector>

#include "gda/job.hh"

namespace wanify {
namespace workloads {

/** The paper's query set, in its Table 4 order. */
enum class TpcDsQuery { Q82, Q95, Q11, Q78 };

/** Paper weight classes. */
enum class QueryWeight { Light, Average, Heavy };

/** Build a TPC-DS query proxy over @p inputGb (paper: 100 or 40). */
gda::JobSpec tpcDsQuery(TpcDsQuery query, double inputGb = 100.0);

/** Class of a query (82 light; 11, 95 average; 78 heavy). */
QueryWeight queryWeight(TpcDsQuery query);

/** Display name, e.g. "q82". */
std::string queryName(TpcDsQuery query);

/** All four evaluated queries. */
std::vector<TpcDsQuery> allQueries();

} // namespace workloads
} // namespace wanify

#endif // WANIFY_WORKLOADS_TPCDS_HH
