#include "workloads/tpcds.hh"

#include "common/error.hh"

namespace wanify {
namespace workloads {

gda::JobSpec
tpcDsQuery(TpcDsQuery query, double inputGb)
{
    fatalIf(inputGb <= 0.0, "tpcDsQuery: inputGb must be positive");
    gda::JobSpec job;
    job.inputBytes = units::gigabytes(inputGb);
    job.name = queryName(query);

    switch (query) {
      case TpcDsQuery::Q82:
        // Light: selective item/inventory scan, one small join.
        job.stages.push_back({"scan-filter", 0.03, 0.020, true});
        job.stages.push_back({"join-agg", 0.30, 0.030, true});
        break;
      case TpcDsQuery::Q95:
        // Average: web_sales self-joins over ship-date window.
        job.stages.push_back({"scan-filter", 0.22, 0.024, true});
        job.stages.push_back({"join-ws", 0.60, 0.040, true});
        job.stages.push_back({"dedup-agg", 0.20, 0.030, true});
        break;
      case TpcDsQuery::Q11:
        // Average: customer/year total over store + web channels.
        job.stages.push_back({"scan-union", 0.26, 0.028, true});
        job.stages.push_back({"join-customer", 0.70, 0.040, true});
        job.stages.push_back({"year-window", 0.40, 0.034, true});
        job.stages.push_back({"final-agg", 0.10, 0.024, true});
        break;
      case TpcDsQuery::Q78:
        // Heavy: store/web/catalog sales three-way join sweep.
        job.stages.push_back({"scan-sales", 0.45, 0.028, true});
        job.stages.push_back({"join-sw", 0.85, 0.044, true});
        job.stages.push_back({"join-cs", 0.65, 0.040, true});
        job.stages.push_back({"ratio-agg", 0.30, 0.028, true});
        break;
    }
    return job;
}

QueryWeight
queryWeight(TpcDsQuery query)
{
    switch (query) {
      case TpcDsQuery::Q82:
        return QueryWeight::Light;
      case TpcDsQuery::Q95:
      case TpcDsQuery::Q11:
        return QueryWeight::Average;
      case TpcDsQuery::Q78:
        return QueryWeight::Heavy;
    }
    panic("queryWeight: unknown query");
}

std::string
queryName(TpcDsQuery query)
{
    switch (query) {
      case TpcDsQuery::Q82:
        return "q82";
      case TpcDsQuery::Q95:
        return "q95";
      case TpcDsQuery::Q11:
        return "q11";
      case TpcDsQuery::Q78:
        return "q78";
    }
    panic("queryName: unknown query");
}

std::vector<TpcDsQuery>
allQueries()
{
    return {TpcDsQuery::Q82, TpcDsQuery::Q95, TpcDsQuery::Q11,
            TpcDsQuery::Q78};
}

} // namespace workloads
} // namespace wanify
