#include "workloads/terasort.hh"

#include "common/error.hh"

namespace wanify {
namespace workloads {

gda::JobSpec
teraSort(double inputGb)
{
    fatalIf(inputGb <= 0.0, "teraSort: inputGb must be positive");
    gda::JobSpec job;
    job.name = "terasort";
    job.inputBytes = units::gigabytes(inputGb);
    // Map: sample + partition records in place; all bytes survive.
    job.stages.push_back({"map-partition", 1.0, 0.06, true});
    // Reduce: merge-sort the shuffled partitions; sort dominates.
    job.stages.push_back({"sort-reduce", 1.0, 0.12, true});
    return job;
}

} // namespace workloads
} // namespace wanify
