/**
 * @file
 * Geo-distributed ML training with BW-driven gradient quantization —
 * the SAGQ workload (Fan et al., TCC'23, the paper's ref 15; Sections
 * 5.6 and Fig. 4).
 *
 * A synchronous data-parallel model (3 Dense + 3 Activation + 2 Dropout
 * layers on an MNIST-scale dataset) trains across the 8-DC cluster.
 * Every epoch alternates local compute with all-to-all gradient
 * exchange; the precision (bits) of the gradients on each link is
 * chosen from a BW estimate without compromising accuracy. The five
 * evaluated variants differ in where that estimate comes from and how
 * the exchange is transported:
 *
 *   NoQ   — full 32-bit gradients
 *   SAGQ  — quantization driven by static-independent BWs
 *   SimQ  — quantization driven by static-simultaneous BWs
 *   PredQ — quantization driven by WANify-predicted BWs
 *   WQ    — PredQ plus WANify's heterogeneous parallel connections,
 *           throttling, and AIMD agents
 */

#ifndef WANIFY_WORKLOADS_ML_QUANTIZATION_HH
#define WANIFY_WORKLOADS_ML_QUANTIZATION_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "core/wanify.hh"
#include "cost/cost_model.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace workloads {

/** Model/training shape. */
struct MlModelSpec
{
    /** Dense 784x512 + 512x256 + 256x10 (+biases) ~= 535k params. */
    std::size_t parameters = 535000;

    int epochs = 10;

    /** Gradient synchronizations per epoch (mini-batch cadence). */
    int syncsPerEpoch = 600;

    /** Compute work per MB of local data per epoch. */
    double workPerMb = 0.55;

    /** Dataset size (MNIST after PySpark union ~= 6.8 GB). */
    Bytes datasetBytes = 6.8 * 1024.0 * 1024.0 * 1024.0;
};

/** Per-run outcome. */
struct MlRunResult
{
    Seconds trainingTime = 0.0;
    cost::CostBreakdown cost;
    Mbps minBw = 0.0;
    double testAccuracy = 0.0;
    std::vector<Seconds> epochTimes;
};

/**
 * Map a link BW estimate to gradient precision — lower-BW links get
 * coarser gradients (8/16/32 bits), per SAGQ's self-adaptive rule.
 */
int quantizationBits(Mbps linkBw);

/** One ML training job. */
class MlQuantizationJob
{
  public:
    explicit MlQuantizationJob(MlModelSpec spec = {});

    /**
     * Train on @p topo.
     *
     * @param quantBw WHERE quantization bits come from: empty optional
     *                = NoQ (32-bit everywhere)
     * @param wanify  non-null = WQ transport (plan + agents +
     *                throttling); the plan uses @p quantBw as the
     *                predicted matrix
     */
    MlRunResult run(const net::Topology &topo,
                    const net::NetworkSimConfig &simCfg,
                    std::uint64_t seed,
                    const std::optional<Matrix<Mbps>> &quantBw,
                    const core::Wanify *wanify = nullptr) const;

    const MlModelSpec &spec() const { return spec_; }

    /** Full-precision gradient size in bytes. */
    Bytes gradientBytes() const;

  private:
    MlModelSpec spec_;
};

} // namespace workloads
} // namespace wanify

#endif // WANIFY_WORKLOADS_ML_QUANTIZATION_HH
