/**
 * @file
 * Built-in library of named WAN scenarios.
 *
 * Each scenario is a declarative ScenarioSpec reproducing a class of
 * runtime dynamics the paper motivates (Section 2.2, Fig. 9) or that
 * related geo-distributed systems evaluate against: steady state,
 * diurnal cycles, progressive degradation, DC outage/recovery, flash
 * crowds, maintenance windows, RTT storms, and a cascading failure.
 * All specs reference only DC ids 0-3 so they compile for any cluster
 * of >= 4 DCs; timings assume the paper's 5-second AIMD epoch.
 */

#ifndef WANIFY_SCENARIO_LIBRARY_HH
#define WANIFY_SCENARIO_LIBRARY_HH

#include <string>
#include <vector>

#include "core/bandwidth_analyzer.hh"
#include "scenario/scenario.hh"

namespace wanify {
namespace scenario {

/** Names of the built-in scenarios, in presentation order. */
std::vector<std::string> libraryScenarioNames();

/**
 * Names of the built-in hard-fault scenarios (transfer aborts, gauge
 * outages, agent crashes, DC blackouts), in presentation order.
 * Deliberately a separate list: campaignDynamics() cycles
 * libraryScenarioNames() by index, so growing that list would
 * silently re-condition every scenario-trained predictor. Fault
 * scenarios resolve through the same libraryScenario() /
 * isLibraryScenario() lookups.
 */
std::vector<std::string> faultScenarioNames();

/** Look up a built-in scenario by name; fatal() on unknown names. */
ScenarioSpec libraryScenario(const std::string &name);

/** True when @p name is a built-in scenario. */
bool isLibraryScenario(const std::string &name);

/**
 * Bandwidth Analyzer dynamics hook cycling the whole library (steady
 * included): mesh k of a campaign is conditioned on scenario
 * names[k % names.size()], compiled for the mesh's cluster size with
 * a seed derived from the mesh seed. Clusters smaller than 4 DCs
 * collect stationary meshes (library specs reference DC ids up to 3).
 * Pure and thread-safe — safe for parallel campaigns.
 */
core::AnalyzerConfig::DynamicsHook campaignDynamics();

} // namespace scenario
} // namespace wanify

#endif // WANIFY_SCENARIO_LIBRARY_HH
