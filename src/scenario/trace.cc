#include "scenario/trace.hh"

#include <algorithm>
#include <cstring>

#include "common/error.hh"
#include "common/rng.hh"
#include "ml/csv.hh"

namespace wanify {
namespace scenario {

namespace {

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "64-bit doubles");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

} // namespace

void
BwTrace::add(Seconds t, std::vector<double> multipliers)
{
    fatalIf(dcs == 0, "BwTrace::add: dcs not set");
    fatalIf(multipliers.size() != dcs * dcs,
            "BwTrace::add: multiplier count mismatch");
    fatalIf(!times.empty() && t <= times.back(),
            "BwTrace::add: times must be strictly increasing");
    times.push_back(t);
    rows.push_back(std::move(multipliers));
}

bool
BwTrace::identical(const BwTrace &other) const
{
    return dcs == other.dcs && times == other.times &&
           rows == other.rows;
}

std::uint64_t
BwTrace::hash() const
{
    std::uint64_t state = 0x77414e6966790000ULL ^ dcs;
    for (std::size_t k = 0; k < times.size(); ++k) {
        state ^= doubleBits(times[k]);
        splitmix64(state);
        for (double m : rows[k]) {
            state ^= doubleBits(m);
            splitmix64(state);
        }
    }
    std::uint64_t digest = state;
    return splitmix64(digest);
}

ml::Dataset
BwTrace::toDataset() const
{
    fatalIf(dcs == 0, "BwTrace::toDataset: empty trace");
    ml::Dataset data(1, dcs * dcs);
    for (std::size_t k = 0; k < times.size(); ++k)
        data.add({times[k]}, rows[k]);
    return data;
}

BwTrace
BwTrace::fromDataset(const ml::Dataset &data)
{
    fatalIf(data.featureCount() != 1,
            "BwTrace::fromDataset: expected a single `t` feature");
    std::size_t n = 0;
    while (n * n < data.outputCount())
        ++n;
    fatalIf(n * n != data.outputCount() || n < 2,
            "BwTrace::fromDataset: target count is not a DC-pair "
            "square");
    BwTrace trace;
    trace.dcs = n;
    for (std::size_t i = 0; i < data.size(); ++i)
        trace.add(data.x(i)[0], data.y(i));
    return trace;
}

void
writeTraceCsv(const std::string &path, const BwTrace &trace)
{
    ml::writeCsvFile(path, trace.toDataset(), {"t"});
}

BwTrace
readTraceCsv(const std::string &path)
{
    return BwTrace::fromDataset(ml::readCsvFile(path));
}

std::vector<double>
capturedMultipliers(const net::NetworkSim &sim)
{
    const auto &topo = sim.topology();
    const std::size_t n = topo.dcCount();
    std::vector<double> out(n * n, 1.0);
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const Mbps nominal = topo.pathCap(i, j);
            if (nominal > 0.0)
                out[i * n + j] =
                    sim.effectivePathCap(i, j) / nominal;
        }
    }
    return out;
}

TraceReplay::TraceReplay(BwTrace trace) : trace_(std::move(trace))
{
    fatalIf(trace_.empty(), "TraceReplay: empty trace");
}

void
TraceReplay::applyAt(net::NetworkSim &sim, Seconds t) const
{
    const std::size_t n = trace_.dcs;
    fatalIf(sim.topology().dcCount() != n,
            "TraceReplay: trace recorded for a different cluster "
            "size");
    // Interval-end semantics: the row whose window (t_{k-1}, t_k]
    // contains the *next* instant after t. The microsecond slack
    // absorbs accumulated float error between the recording and the
    // replaying simulator clocks at epoch boundaries.
    const auto it = std::upper_bound(trace_.times.begin(),
                                     trace_.times.end(), t + 1.0e-6);
    const std::size_t k =
        it == trace_.times.end()
            ? trace_.times.size() - 1
            : static_cast<std::size_t>(it - trace_.times.begin());
    const auto &row = trace_.rows[k];
    for (net::DcId i = 0; i < n; ++i)
        for (net::DcId j = 0; j < n; ++j)
            if (i != j)
                sim.setScenarioCapFactor(i, j, row[i * n + j]);
}

} // namespace scenario
} // namespace wanify
