#include "scenario/trace.hh"

#include <algorithm>
#include <cstring>

#include "common/error.hh"
#include "common/rng.hh"
#include "ml/csv.hh"

namespace wanify {
namespace scenario {

namespace {

std::uint64_t
doubleBits(double v)
{
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "64-bit doubles");
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

/**
 * The struct's fields are public (hand-built traces predate the RTT
 * schema), so every consumer that indexes rttRows parallel to rows
 * validates the invariant first instead of walking off the end.
 */
void
checkParallelRows(const BwTrace &trace, const char *who)
{
    fatalIf(trace.rows.size() != trace.times.size() ||
                trace.rttRows.size() != trace.rows.size(),
            std::string(who) +
                ": times/rows/rttRows must stay parallel (build "
                "traces through BwTrace::add)");
}

} // namespace

void
BwTrace::add(Seconds t, std::vector<double> multipliers,
             std::vector<double> rttFactors)
{
    fatalIf(dcs == 0, "BwTrace::add: dcs not set");
    fatalIf(multipliers.size() != dcs * dcs,
            "BwTrace::add: multiplier count mismatch");
    if (rttFactors.empty())
        rttFactors.assign(dcs * dcs, 1.0);
    fatalIf(rttFactors.size() != dcs * dcs,
            "BwTrace::add: RTT factor count mismatch");
    fatalIf(!times.empty() && t <= times.back(),
            "BwTrace::add: times must be strictly increasing");
    times.push_back(t);
    rows.push_back(std::move(multipliers));
    rttRows.push_back(std::move(rttFactors));
}

namespace {

bool
sameBursts(const std::vector<BurstFlow> &a,
           const std::vector<BurstFlow> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k].start != b[k].start ||
            a[k].duration != b[k].duration || a[k].src != b[k].src ||
            a[k].dst != b[k].dst ||
            a[k].connections != b[k].connections)
            return false;
    }
    return true;
}

} // namespace

namespace {

bool
sameFaults(const std::vector<fault::FaultEvent> &a,
           const std::vector<fault::FaultEvent> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t k = 0; k < a.size(); ++k) {
        if (a[k].kind != b[k].kind || a[k].src != b[k].src ||
            a[k].dst != b[k].dst || a[k].dc != b[k].dc ||
            a[k].time != b[k].time ||
            a[k].duration != b[k].duration ||
            a[k].startJitter != b[k].startJitter)
            return false;
    }
    return true;
}

} // namespace

bool
BwTrace::identical(const BwTrace &other) const
{
    return dcs == other.dcs && times == other.times &&
           rows == other.rows && rttRows == other.rttRows &&
           sameBursts(bursts, other.bursts) &&
           sameFaults(faults, other.faults);
}

std::uint64_t
BwTrace::hash() const
{
    checkParallelRows(*this, "BwTrace::hash");
    std::uint64_t state = 0x77414e6966790000ULL ^ dcs;
    for (std::size_t k = 0; k < times.size(); ++k) {
        state ^= doubleBits(times[k]);
        splitmix64(state);
        for (double m : rows[k]) {
            state ^= doubleBits(m);
            splitmix64(state);
        }
        for (double f : rttRows[k]) {
            state ^= doubleBits(f);
            splitmix64(state);
        }
    }
    for (const auto &b : bursts) {
        state ^= doubleBits(b.start) ^ doubleBits(b.duration) ^
                 (static_cast<std::uint64_t>(b.src) << 32) ^
                 static_cast<std::uint64_t>(b.dst) ^
                 (static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(b.connections))
                  << 16);
        splitmix64(state);
    }
    for (const auto &f : faults) {
        state ^= doubleBits(f.time) ^ doubleBits(f.duration) ^
                 doubleBits(f.startJitter) ^
                 (static_cast<std::uint64_t>(f.kind) << 48) ^
                 (static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(f.src)) << 32) ^
                 (static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(f.dst)) << 16) ^
                 static_cast<std::uint64_t>(
                     static_cast<std::uint32_t>(f.dc));
        splitmix64(state);
    }
    std::uint64_t digest = state;
    return splitmix64(digest);
}

ml::Dataset
BwTrace::toDataset() const
{
    fatalIf(dcs == 0, "BwTrace::toDataset: empty trace");
    checkParallelRows(*this, "BwTrace::toDataset");
    const std::size_t pairs = dcs * dcs;
    ml::Dataset data(1, 2 * pairs);
    for (std::size_t k = 0; k < times.size(); ++k) {
        std::vector<double> y = rows[k];
        y.insert(y.end(), rttRows[k].begin(), rttRows[k].end());
        data.add({times[k]}, std::move(y));
    }
    // Burst markers after the samples: t < 0, payload in the first
    // five target slots (2 n^2 >= 8 for any n >= 2, so they fit).
    for (std::size_t k = 0; k < bursts.size(); ++k) {
        std::vector<double> y(2 * pairs, 0.0);
        y[0] = bursts[k].start;
        y[1] = bursts[k].duration;
        y[2] = static_cast<double>(bursts[k].src);
        y[3] = static_cast<double>(bursts[k].dst);
        y[4] = static_cast<double>(bursts[k].connections);
        data.add({-static_cast<double>(k + 1)}, std::move(y));
    }
    // Fault markers after the bursts: also t < 0, distinguished by a
    // nonzero sixth slot (kind + 1; burst markers leave it 0).
    for (std::size_t k = 0; k < faults.size(); ++k) {
        std::vector<double> y(2 * pairs, 0.0);
        y[0] = faults[k].time;
        y[1] = faults[k].duration;
        y[2] = static_cast<double>(faults[k].src);
        y[3] = static_cast<double>(faults[k].dst);
        y[4] = static_cast<double>(faults[k].dc);
        y[5] = static_cast<double>(
                   static_cast<int>(faults[k].kind)) + 1.0;
        y[6] = faults[k].startJitter;
        data.add({-static_cast<double>(bursts.size() + k + 1)},
                 std::move(y));
    }
    return data;
}

BwTrace
BwTrace::fromDataset(const ml::Dataset &data)
{
    fatalIf(data.featureCount() != 1,
            "BwTrace::fromDataset: expected a single `t` feature");
    // n^2 targets = legacy capacity-only layout; 2 n^2 = capacity +
    // RTT. The two are never ambiguous (n1^2 == 2 n2^2 has no integer
    // solutions).
    const std::size_t out = data.outputCount();
    std::size_t n = 0;
    while (n * n < out)
        ++n;
    bool withRtt = false;
    if (n * n != out) {
        n = 0;
        while (2 * n * n < out)
            ++n;
        withRtt = true;
    }
    fatalIf((withRtt ? 2 * n * n : n * n) != out || n < 2,
            "BwTrace::fromDataset: target count is not a DC-pair "
            "square");
    BwTrace trace;
    trace.dcs = n;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double t = data.x(i)[0];
        const auto &y = data.y(i);
        if (t < 0.0) {
            fatalIf(!withRtt,
                    "BwTrace::fromDataset: marker row in a legacy "
                    "trace");
            if (y[5] != 0.0) {
                // Fault marker: kind rides in the sixth slot as
                // kind + 1 so burst markers (slot = 0) stay distinct.
                const int kind = static_cast<int>(y[5]) - 1;
                fatalIf(kind < 0 ||
                            kind > static_cast<int>(
                                       fault::FaultKind::DcBlackout),
                        "BwTrace::fromDataset: unknown fault kind "
                        "marker");
                fault::FaultEvent fe;
                fe.kind = static_cast<fault::FaultKind>(kind);
                fe.time = y[0];
                fe.duration = y[1];
                fe.src = static_cast<int>(y[2]);
                fe.dst = static_cast<int>(y[3]);
                fe.dc = static_cast<int>(y[4]);
                fe.startJitter = y[6];
                trace.faults.push_back(fe);
                continue;
            }
            BurstFlow burst;
            burst.start = y[0];
            burst.duration = y[1];
            burst.src = static_cast<net::DcId>(y[2]);
            burst.dst = static_cast<net::DcId>(y[3]);
            burst.connections = static_cast<int>(y[4]);
            trace.bursts.push_back(burst);
            continue;
        }
        if (!withRtt) {
            trace.add(t, y);
            continue;
        }
        std::vector<double> caps(y.begin(), y.begin() + n * n);
        std::vector<double> rtts(y.begin() + n * n, y.end());
        trace.add(t, std::move(caps), std::move(rtts));
    }
    return trace;
}

void
writeTraceCsv(const std::string &path, const BwTrace &trace)
{
    ml::writeCsvFile(path, trace.toDataset(), {"t"});
}

BwTrace
readTraceCsv(const std::string &path)
{
    // Re-raise parse/layout failures with the file path attached:
    // "unreadable CSV" without a name is useless from the CLI.
    try {
        return BwTrace::fromDataset(ml::readCsvFile(path));
    } catch (const FatalError &e) {
        std::string what = e.what();
        const std::string prefix = "fatal: ";
        if (what.rfind(prefix, 0) == 0)
            what = what.substr(prefix.size());
        fatal("cannot read trace '" + path + "': " + what);
    }
}

std::vector<double>
capturedMultipliers(const net::NetworkSim &sim)
{
    const auto &topo = sim.topology();
    const std::size_t n = topo.dcCount();
    std::vector<double> out(n * n, 1.0);
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const Mbps nominal = topo.pathCap(i, j);
            if (nominal > 0.0)
                out[i * n + j] =
                    sim.effectivePathCap(i, j) / nominal;
        }
    }
    return out;
}

TraceReplay::TraceReplay(BwTrace trace) : trace_(std::move(trace))
{
    fatalIf(trace_.empty(), "TraceReplay: empty trace");
    checkParallelRows(trace_, "TraceReplay");
    if (!trace_.faults.empty())
        faults_ = fault::FaultPlan(trace_.faults, trace_.dcs, 0);
}

const fault::FaultPlan *
TraceReplay::faultPlan() const
{
    return faults_.empty() ? nullptr : &faults_;
}

void
TraceReplay::applyAt(net::NetworkSim &sim, Seconds t) const
{
    const std::size_t n = trace_.dcs;
    fatalIf(sim.topology().dcCount() != n,
            "TraceReplay: trace recorded for a different cluster "
            "size");
    // Interval-end semantics: the row whose window (t_{k-1}, t_k]
    // contains the *next* instant after t. The microsecond slack
    // absorbs accumulated float error between the recording and the
    // replaying simulator clocks at epoch boundaries.
    const auto it = std::upper_bound(trace_.times.begin(),
                                     trace_.times.end(), t + 1.0e-6);
    const std::size_t k =
        it == trace_.times.end()
            ? trace_.times.size() - 1
            : static_cast<std::size_t>(it - trace_.times.begin());
    const auto &row = trace_.rows[k];
    const auto &rtt = trace_.rttRows[k];
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            sim.setScenarioCapFactor(i, j, row[i * n + j]);
            sim.setScenarioRttFactor(i, j, rtt[i * n + j]);
        }
    }
}

double
TraceReplay::capFactorAt(net::DcId i, net::DcId j, Seconds t) const
{
    const std::size_t n = trace_.dcs;
    fatalIf(i >= n || j >= n,
            "TraceReplay::capFactorAt: pair out of range");
    // Row k holds over (t_{k-1}, t_k]: the first sample with time
    // >= t, clamped to the last row past the end of the recording.
    const auto it = std::lower_bound(trace_.times.begin(),
                                     trace_.times.end(), t);
    const std::size_t k =
        it == trace_.times.end()
            ? trace_.times.size() - 1
            : static_cast<std::size_t>(it - trace_.times.begin());
    return trace_.rows[k][i * n + j];
}

std::vector<BurstFlow>
TraceReplay::burstsIn(Seconds t0, Seconds t1) const
{
    std::vector<BurstFlow> out;
    for (const auto &b : trace_.bursts)
        if (b.start > t0 && b.start <= t1)
            out.push_back(b);
    return out;
}

void
TraceReplay::changePointsIn(Seconds t0, Seconds t1,
                            std::vector<ChangePoint> &out) const
{
    // Each sample timestamp ends one hold interval and starts the
    // next, so the medium steps exactly there.
    const auto lo = std::upper_bound(trace_.times.begin(),
                                     trace_.times.end(), t0);
    for (auto it = lo; it != trace_.times.end() && *it <= t1; ++it)
        out.push_back({*it, ChangeKind::Factor});
    for (const auto &b : trace_.bursts) {
        if (b.start > t0 && b.start <= t1)
            out.push_back({b.start, ChangeKind::BurstStart});
        const Seconds end = b.start + b.duration;
        if (end > t0 && end <= t1)
            out.push_back({end, ChangeKind::BurstEnd});
    }
}

} // namespace scenario
} // namespace wanify
