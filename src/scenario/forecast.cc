#include "scenario/forecast.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace scenario {

core::BwForecast
forecastFromDynamics(const Dynamics &dyn,
                     const Matrix<Mbps> &believed, Seconds now,
                     const core::ForecastConfig &cfg)
{
    const std::size_t n = dyn.dcCount();
    fatalIf(believed.rows() != n || believed.cols() != n,
            "forecastFromDynamics: believed matrix size mismatch");
    fatalIf(!(cfg.horizon > 0.0) || !(cfg.step > 0.0),
            "forecastFromDynamics: horizon and step must be > 0");

    // Current anchor: divide each pair by the factor holding now,
    // floored so a belief gauged mid-outage still forecasts recovery.
    Matrix<double> nowFactor;
    if (cfg.anchor == core::ForecastConfig::Anchor::Current) {
        nowFactor = Matrix<double>::square(n, 1.0);
        for (net::DcId i = 0; i < n; ++i)
            for (net::DcId j = 0; j < n; ++j)
                if (i != j)
                    nowFactor.at(i, j) = std::max(
                        kMinAnchorFactor, dyn.capFactorAt(i, j, now));
    }

    core::BwForecast fc;
    const std::size_t steps = static_cast<std::size_t>(
        std::max(1.0, std::floor(cfg.horizon / cfg.step + 0.5)));
    for (std::size_t s = 1; s <= steps; ++s) {
        const Seconds end = now + static_cast<double>(s) * cfg.step;
        Matrix<Mbps> seg = believed;
        for (net::DcId i = 0; i < n; ++i) {
            for (net::DcId j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                double factor = dyn.capFactorAt(i, j, end);
                if (cfg.anchor ==
                    core::ForecastConfig::Anchor::Current)
                    factor /= nowFactor.at(i, j);
                seg.at(i, j) =
                    std::max(0.0, believed.at(i, j) * factor);
            }
        }
        fc.addSegment(end, std::move(seg));
    }
    return fc;
}

} // namespace scenario
} // namespace wanify
