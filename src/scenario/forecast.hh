/**
 * @file
 * Simulation-mode forecast source: sample a Dynamics object's pure
 * capacity factors into a core::BwForecast.
 *
 * A ScenarioTimeline already knows the future — capFactor(i, j, t) is
 * a pure function of time — and a TraceReplay knows it for recorded
 * history. forecastFromDynamics turns that knowledge into the
 * piecewise-constant BwForecast the schedulers consume: each segment's
 * matrix is the believed bandwidth scaled by the capacity factor
 * sampled at the segment's end (the trace interval-end convention).
 *
 * The anchor distinguishes what the believed matrix means: statically
 * measured matrices were taken under nominal (factor-1) conditions and
 * scale by capFactorAt(t) directly; freshly predicted/gauged matrices
 * already embed the factor holding *now* and scale by the ratio
 * capFactorAt(t) / capFactorAt(now). The now-factor is floored so a
 * belief gauged mid-outage can still forecast the recovery.
 */

#ifndef WANIFY_SCENARIO_FORECAST_HH
#define WANIFY_SCENARIO_FORECAST_HH

#include "core/forecast.hh"
#include "scenario/scenario.hh"

namespace wanify {
namespace scenario {

/** Smallest now-factor the Current anchor divides by; factors below
 *  it (hard outages) would otherwise explode the recovery ratio. */
constexpr double kMinAnchorFactor = 0.01;

/**
 * Build a BwForecast for @p believed (square, one row per DC of
 * @p dyn) covering (now, now + cfg.horizon] at cfg.step granularity.
 * cfg.enabled is not consulted — callers gate before building.
 */
core::BwForecast forecastFromDynamics(const Dynamics &dyn,
                                      const Matrix<Mbps> &believed,
                                      Seconds now,
                                      const core::ForecastConfig &cfg);

} // namespace scenario
} // namespace wanify

#endif // WANIFY_SCENARIO_FORECAST_HH
