#include "scenario/scenario.hh"

#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"

namespace wanify {
namespace scenario {

namespace {

constexpr double kTwoPi = 6.283185307179586476925;

bool
inWindow(const ScenarioEvent &ev, Seconds start, Seconds t)
{
    return t >= start && t < start + ev.duration;
}

} // namespace

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
    case EventKind::Diurnal:
        return "diurnal";
    case EventKind::Degradation:
        return "degradation";
    case EventKind::Outage:
        return "outage";
    case EventKind::RttInflation:
        return "rtt-inflation";
    case EventKind::Maintenance:
        return "maintenance";
    case EventKind::FlashCrowd:
        return "flash-crowd";
    }
    return "unknown";
}

std::vector<BurstFlow>
Dynamics::burstsIn(Seconds, Seconds) const
{
    return {};
}

double
Dynamics::capFactorAt(net::DcId, net::DcId, Seconds) const
{
    return 1.0;
}

void
Dynamics::changePointsIn(Seconds, Seconds,
                         std::vector<ChangePoint> &) const
{}

const fault::FaultPlan *
Dynamics::faultPlan() const
{
    return nullptr;
}

BurstCursor::BurstCursor(const Dynamics *dynamics)
    : dynamics_(dynamics)
{}

void
BurstCursor::advanceTo(net::NetworkSim &sim, Seconds t,
                       Matrix<Bytes> *movedBytes)
{
    if (dynamics_ == nullptr)
        return;
    const auto &topo = sim.topology();
    for (const BurstFlow &flow : dynamics_->burstsIn(last_, t)) {
        panicIf(topo.dc(flow.src).vms.empty() ||
                    topo.dc(flow.dst).vms.empty(),
                "BurstCursor: DC without VMs");
        ActiveFlow active;
        active.id = sim.startMeasurement(
            topo.dc(flow.src).vms.front(),
            topo.dc(flow.dst).vms.front(), flow.connections);
        active.src = flow.src;
        active.dst = flow.dst;
        active.end = flow.start + flow.duration;
        flows_.push_back(active);
    }
    last_ = t;
    for (std::size_t i = 0; i < flows_.size();) {
        if (t >= flows_[i].end - 1.0e-9)
            stop(sim, i, movedBytes);
        else
            ++i;
    }
}

void
BurstCursor::finish(net::NetworkSim &sim, Matrix<Bytes> *movedBytes)
{
    while (!flows_.empty())
        stop(sim, flows_.size() - 1, movedBytes);
}

void
BurstCursor::accumulateMoved(const net::NetworkSim &sim,
                             Matrix<Bytes> &out) const
{
    for (const auto &flow : flows_)
        out.at(flow.src, flow.dst) +=
            sim.status(flow.id).bytesMoved;
}

void
BurstCursor::stop(net::NetworkSim &sim, std::size_t index,
                  Matrix<Bytes> *movedBytes)
{
    const ActiveFlow flow = flows_[index];
    if (movedBytes != nullptr)
        movedBytes->at(flow.src, flow.dst) +=
            sim.status(flow.id).bytesMoved;
    sim.stopTransfer(flow.id);
    flows_[index] = flows_.back();
    flows_.pop_back();
}

ScenarioTimeline::ScenarioTimeline(ScenarioSpec spec,
                                   std::size_t dcCount,
                                   std::uint64_t seed)
    : spec_(std::move(spec)), dcCount_(dcCount), seed_(seed)
{
    fatalIf(dcCount_ < 2, "ScenarioTimeline: need at least 2 DCs");
    fatalIf(spec_.epoch <= 0.0, "ScenarioTimeline: epoch must be > 0");
    fatalIf(spec_.horizon <= 0.0,
            "ScenarioTimeline: horizon must be > 0");

    // Per-event seeds come from the same splitmix64 derivation the
    // forest and trial runner use: jitter draws are independent of
    // event order and of any other consumer of the base seed.
    const auto seeds = deriveSeeds(seed_, spec_.events.size());
    events_.reserve(spec_.events.size());
    for (std::size_t e = 0; e < spec_.events.size(); ++e) {
        const ScenarioEvent &ev = spec_.events[e];
        fatalIf(ev.src != kAnyDc &&
                    (ev.src < 0 ||
                     static_cast<std::size_t>(ev.src) >= dcCount_),
                "ScenarioTimeline: event src out of range");
        fatalIf(ev.dst != kAnyDc &&
                    (ev.dst < 0 ||
                     static_cast<std::size_t>(ev.dst) >= dcCount_),
                "ScenarioTimeline: event dst out of range");
        fatalIf(!std::isfinite(ev.start) || ev.start < 0.0 ||
                    std::isnan(ev.duration) || ev.duration < 0.0,
                "ScenarioTimeline: bad event time");
        fatalIf(std::isnan(ev.magnitude) ||
                    std::isnan(ev.residual) ||
                    std::isnan(ev.period) || !std::isfinite(ev.phase),
                "ScenarioTimeline: non-finite event field");
        // Capacity events scale a fraction away; RTT inflation can
        // exceed 100%.
        const double maxMagnitude =
            ev.kind == EventKind::RttInflation ? 100.0 : 1.0;
        fatalIf(ev.magnitude < 0.0 || ev.magnitude > maxMagnitude,
                "ScenarioTimeline: magnitude out of range");
        fatalIf(ev.residual < 0.0 || ev.residual > 1.0,
                "ScenarioTimeline: residual must be in [0, 1]");
        fatalIf(ev.kind == EventKind::Diurnal && ev.period <= 0.0,
                "ScenarioTimeline: diurnal period must be > 0");
        fatalIf(ev.kind == EventKind::FlashCrowd &&
                    ev.burstConnections < 1,
                "ScenarioTimeline: burstConnections must be >= 1");
        fatalIf(!std::isfinite(ev.startJitter) ||
                    ev.startJitter < 0.0,
                "ScenarioTimeline: bad startJitter");

        CompiledEvent ce;
        ce.ev = ev;
        ce.jitteredStart = ev.start;
        if (ev.startJitter > 0.0) {
            Rng rng(seeds[e]);
            ce.jitteredStart += rng.uniform() * ev.startJitter;
        }
        events_.push_back(ce);
    }

    // Faults compile through their own seed derivation (see
    // FaultPlan): a spec that adds faults draws the same scenario
    // event jitter as one that doesn't.
    if (!spec_.faults.empty())
        faults_ = fault::FaultPlan(spec_.faults, dcCount_, seed_);
}

const fault::FaultPlan *
ScenarioTimeline::faultPlan() const
{
    return faults_.empty() ? nullptr : &faults_;
}

bool
ScenarioTimeline::matches(const CompiledEvent &ce, net::DcId i,
                          net::DcId j) const
{
    const auto &ev = ce.ev;
    return (ev.src == kAnyDc ||
            static_cast<net::DcId>(ev.src) == i) &&
           (ev.dst == kAnyDc || static_cast<net::DcId>(ev.dst) == j);
}

double
ScenarioTimeline::capFactor(net::DcId i, net::DcId j, Seconds t) const
{
    if (i == j)
        return 1.0;
    double factor = 1.0;
    for (const auto &ce : events_) {
        if (!matches(ce, i, j))
            continue;
        const ScenarioEvent &ev = ce.ev;
        const Seconds start = ce.jitteredStart;
        switch (ev.kind) {
        case EventKind::Diurnal: {
            if (t < start)
                break;
            // Crest (factor 1) at phase 0; trough (1 - magnitude)
            // half a period later.
            const double angle =
                kTwoPi * (t - start + ev.phase) / ev.period;
            factor *= 1.0 -
                      0.5 * ev.magnitude * (1.0 - std::cos(angle));
            break;
        }
        case EventKind::Degradation: {
            if (t < start)
                break;
            const double frac =
                ev.duration <= 0.0
                    ? 1.0
                    : std::min(1.0, (t - start) / ev.duration);
            factor *= 1.0 - ev.magnitude * frac;
            break;
        }
        case EventKind::Outage:
            if (inWindow(ev, start, t))
                factor *= ev.residual;
            break;
        case EventKind::Maintenance:
            if (inWindow(ev, start, t))
                factor *= 1.0 - ev.magnitude;
            break;
        case EventKind::RttInflation:
        case EventKind::FlashCrowd:
            break; // no capacity contribution
        }
    }
    return factor;
}

double
ScenarioTimeline::rttFactor(net::DcId i, net::DcId j, Seconds t) const
{
    if (i == j)
        return 1.0;
    double factor = 1.0;
    for (const auto &ce : events_) {
        if (ce.ev.kind != EventKind::RttInflation ||
            !matches(ce, i, j))
            continue;
        if (inWindow(ce.ev, ce.jitteredStart, t))
            factor *= 1.0 + ce.ev.magnitude;
    }
    return factor;
}

void
ScenarioTimeline::applyAt(net::NetworkSim &sim, Seconds t) const
{
    fatalIf(sim.topology().dcCount() != dcCount_,
            "ScenarioTimeline: compiled for a different cluster size");
    for (net::DcId i = 0; i < dcCount_; ++i) {
        for (net::DcId j = 0; j < dcCount_; ++j) {
            if (i == j)
                continue;
            sim.setScenarioCapFactor(i, j, capFactor(i, j, t));
            sim.setScenarioRttFactor(i, j, rttFactor(i, j, t));
        }
    }
}

void
ScenarioTimeline::changePointsIn(Seconds t0, Seconds t1,
                                 std::vector<ChangePoint> &out) const
{
    auto emit = [&](Seconds t, ChangeKind kind) {
        if (t > t0 && t <= t1)
            out.push_back({t, kind});
    };
    for (const auto &ce : events_) {
        const ScenarioEvent &ev = ce.ev;
        const Seconds start = ce.jitteredStart;
        const Seconds end = start + ev.duration;
        switch (ev.kind) {
        case EventKind::Diurnal:
            // Continuous everywhere after its start; the clock's
            // regular epoch ticks sample it. Only the onset is a
            // discrete edge.
            emit(start, ChangeKind::Factor);
            break;
        case EventKind::Degradation:
            // The ramp itself is continuous (epoch-sampled); its
            // endpoints are kinks worth hitting exactly.
            emit(start, ChangeKind::Factor);
            if (ev.duration < kForever)
                emit(end, ChangeKind::Factor);
            break;
        case EventKind::Outage:
        case EventKind::Maintenance:
        case EventKind::RttInflation:
            emit(start, ChangeKind::Factor);
            if (ev.duration < kForever)
                emit(end, ChangeKind::Factor);
            break;
        case EventKind::FlashCrowd:
            emit(start, ChangeKind::BurstStart);
            if (ev.duration < kForever)
                emit(end, ChangeKind::BurstEnd);
            break;
        }
    }
}

std::vector<BurstFlow>
ScenarioTimeline::burstsIn(Seconds t0, Seconds t1) const
{
    std::vector<BurstFlow> out;
    for (const auto &ce : events_) {
        if (ce.ev.kind != EventKind::FlashCrowd)
            continue;
        if (!(ce.jitteredStart > t0 && ce.jitteredStart <= t1))
            continue;
        for (net::DcId i = 0; i < dcCount_; ++i) {
            for (net::DcId j = 0; j < dcCount_; ++j) {
                if (i == j || !matches(ce, i, j))
                    continue;
                BurstFlow flow;
                flow.start = ce.jitteredStart;
                flow.duration = ce.ev.duration;
                flow.src = i;
                flow.dst = j;
                flow.connections = ce.ev.burstConnections;
                out.push_back(flow);
            }
        }
    }
    return out;
}

} // namespace scenario
} // namespace wanify
