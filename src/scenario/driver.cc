#include "scenario/driver.hh"

#include <algorithm>

#include "common/error.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace scenario {

DriveResult
drive(const Dynamics &dynamics, const net::Topology &topo,
      const DriveConfig &cfg, const std::string &name, Seconds epoch,
      Seconds horizon)
{
    const std::size_t n = topo.dcCount();
    fatalIf(epoch <= 0.0, "scenario::drive: epoch must be > 0");
    fatalIf(horizon <= 0.0, "scenario::drive: horizon must be > 0");
    fatalIf(dynamics.dcCount() != 0 && dynamics.dcCount() != n,
            "scenario::drive: dynamics/topology size mismatch");
    fatalIf(cfg.meshConnections < 1,
            "scenario::drive: meshConnections must be >= 1");

    net::NetworkSimConfig simCfg;
    simCfg.fluctuation.enabled = cfg.fluctuation;
    net::NetworkSim sim(topo, simCfg, cfg.seed);

    // Auto-size the drift window so one epoch's mesh of observations
    // never evicts the previous epoch's.
    core::DriftConfig driftCfg = cfg.drift;
    const std::size_t mesh = n * (n - 1);
    if (driftCfg.windowSize == 0)
        driftCfg.windowSize = 2 * mesh;
    if (driftCfg.minObservations == 0)
        driftCfg.minObservations = mesh;
    core::CapacityDriftGauge gauge(driftCfg, n);

    // Full measurement mesh: every ordered pair stays loaded so the
    // trace and the drift signal cover the whole cluster.
    for (net::DcId i = 0; i < n; ++i)
        for (net::DcId j = 0; j < n; ++j)
            if (i != j)
                sim.startMeasurement(topo.dc(i).vms.front(),
                                     topo.dc(j).vms.front(),
                                     cfg.meshConnections);

    DriveResult result;
    result.name = name;
    result.trace.dcs = n;
    // Bursts scheduled over the horizon become part of the recorded
    // trace, so a replay re-launches the same background flows.
    result.trace.bursts = dynamics.burstsIn(-1.0, horizon);

    // The gauge's baseline starts at 1 everywhere: the "model" is
    // calibrated on the static (nominal) measurement.
    BurstCursor bursts(&dynamics);

    for (Seconds t = epoch; t <= horizon + 1.0e-9; t += epoch) {
        // Conditions for the epoch (sim.now(), t] are those of its
        // start; the cursor opens bursts whose scheduled start has
        // been reached — the same semantics the GDA engine uses.
        dynamics.applyAt(sim, sim.now());
        bursts.advanceTo(sim, sim.now());

        sim.advanceBy(epoch);

        std::vector<double> rttFactors(n * n, 1.0);
        for (net::DcId i = 0; i < n; ++i)
            for (net::DcId j = 0; j < n; ++j)
                if (i != j)
                    rttFactors[i * n + j] =
                        sim.scenarioRttFactor(i, j);
        result.trace.add(sim.now(), capturedMultipliers(sim),
                         std::move(rttFactors));

        EpochStats stats;
        stats.t = sim.now();
        stats.minCapFactor = 1.0;
        double sum = 0.0;
        stats.minPairRate = -1.0;
        for (net::DcId i = 0; i < n; ++i) {
            for (net::DcId j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                const double factor = sim.scenarioCapFactor(i, j);
                stats.minCapFactor =
                    std::min(stats.minCapFactor, factor);
                sum += factor;
                const Mbps rate = sim.pairRate(i, j);
                stats.minPairRate = stats.minPairRate < 0.0
                                        ? rate
                                        : std::min(stats.minPairRate,
                                                   rate);
            }
        }
        gauge.observe(sim);
        stats.meanCapFactor = sum / static_cast<double>(mesh);
        stats.minPairRate = std::max(0.0, stats.minPairRate);
        stats.errorFraction = gauge.errorFraction();
        result.maxErrorFraction =
            std::max(result.maxErrorFraction, stats.errorFraction);

        if (gauge.needsRetraining()) {
            // "Retrain": re-baseline the model on current conditions
            // and clear the window, the facade's warm-restart path.
            stats.retrainFired = true;
            ++result.retrainTriggers;
            gauge.rebase(sim);
        }
        result.epochs.push_back(stats);
    }
    return result;
}

DriveResult
driveScenario(const ScenarioSpec &spec, const net::Topology &topo,
              const DriveConfig &cfg)
{
    const ScenarioTimeline timeline(spec, topo.dcCount(), cfg.seed);
    const Seconds epoch = cfg.epoch > 0.0 ? cfg.epoch : spec.epoch;
    const Seconds horizon =
        cfg.horizon > 0.0 ? cfg.horizon : spec.horizon;
    return drive(timeline, topo, cfg, spec.name, epoch, horizon);
}

DriveResult
driveReplay(const BwTrace &trace, const net::Topology &topo,
            DriveConfig cfg)
{
    fatalIf(trace.empty(), "driveReplay: empty trace");
    const TraceReplay replay(trace);

    // Replay owns the dynamics completely: OU noise stays off and the
    // epoch grid is the trace's own timestamp grid.
    cfg.fluctuation = false;
    const Seconds epoch = trace.times.front();
    fatalIf(epoch <= 0.0, "driveReplay: trace must start after t=0");
    for (std::size_t k = 1; k < trace.times.size(); ++k)
        fatalIf(std::abs((trace.times[k] - trace.times[k - 1]) -
                         epoch) > 1.0e-6,
                "driveReplay: trace is not on a uniform epoch grid");
    const Seconds horizon = trace.times.back();
    return drive(replay, topo, cfg, "replay", epoch, horizon);
}

} // namespace scenario
} // namespace wanify
