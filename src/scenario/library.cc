#include "scenario/library.hh"

#include "common/error.hh"
#include "common/rng.hh"

namespace wanify {
namespace scenario {

namespace {

ScenarioEvent
event(EventKind kind, int src, int dst, Seconds start,
      Seconds duration, double magnitude)
{
    ScenarioEvent ev;
    ev.kind = kind;
    ev.src = src;
    ev.dst = dst;
    ev.start = start;
    ev.duration = duration;
    ev.magnitude = magnitude;
    return ev;
}

ScenarioSpec
steady()
{
    ScenarioSpec spec;
    spec.name = "steady";
    spec.description =
        "No scripted events: stationary OU noise only. The control "
        "every other scenario is compared against.";
    spec.horizon = 120.0;
    return spec;
}

ScenarioSpec
diurnal()
{
    ScenarioSpec spec;
    spec.name = "diurnal";
    spec.description =
        "All-pairs sinusoidal capacity cycle (trough 55% of nominal), "
        "a compressed day: runtime BW drifts away from any static "
        "measurement taken at the crest.";
    spec.horizon = 480.0;
    ScenarioEvent ev =
        event(EventKind::Diurnal, kAnyDc, kAnyDc, 0.0, kForever, 0.45);
    ev.period = 240.0;
    spec.events.push_back(ev);
    return spec;
}

ScenarioSpec
degradingLink()
{
    ScenarioSpec spec;
    spec.name = "degrading-link";
    spec.description =
        "The DC0<->DC3 backbone path loses 80% of its capacity over a "
        "2-minute ramp and stays degraded — the slow-burn failure a "
        "one-shot measurement can never reflect.";
    spec.horizon = 300.0;
    spec.events.push_back(
        event(EventKind::Degradation, 0, 3, 40.0, 120.0, 0.8));
    spec.events.push_back(
        event(EventKind::Degradation, 3, 0, 40.0, 120.0, 0.8));
    return spec;
}

ScenarioSpec
dcOutage()
{
    ScenarioSpec spec;
    spec.name = "dc-outage";
    spec.description =
        "DC3 drops to 2% of nominal capacity in both directions for "
        "90 s, then recovers — the hard failure/recovery cycle that "
        "must trip the drift detector.";
    spec.horizon = 240.0;
    ScenarioEvent out = event(EventKind::Outage, 3, kAnyDc, 60.0,
                              90.0, 0.0);
    out.residual = 0.02;
    spec.events.push_back(out);
    out.src = kAnyDc;
    out.dst = 3;
    spec.events.push_back(out);
    return spec;
}

ScenarioSpec
flashCrowd()
{
    ScenarioSpec spec;
    spec.name = "flash-crowd";
    spec.description =
        "Background flows from every DC flood into DC0 for 90 s while "
        "its RTTs inflate 50% — tenant contention the job's transfers "
        "must share the WAN with.";
    spec.horizon = 240.0;
    ScenarioEvent crowd = event(EventKind::FlashCrowd, kAnyDc, 0,
                                45.0, 90.0, 0.0);
    crowd.burstConnections = 6;
    spec.events.push_back(crowd);
    spec.events.push_back(
        event(EventKind::RttInflation, kAnyDc, 0, 45.0, 90.0, 0.5));
    return spec;
}

ScenarioSpec
maintenance()
{
    ScenarioSpec spec;
    spec.name = "maintenance";
    spec.description =
        "Provider maintenance halves DC2's capacity (both directions) "
        "for 150 s with mild RTT inflation — the scheduled partial "
        "outage operators announce but schedulers rarely honor.";
    spec.horizon = 300.0;
    spec.events.push_back(
        event(EventKind::Maintenance, 2, kAnyDc, 60.0, 150.0, 0.5));
    spec.events.push_back(
        event(EventKind::Maintenance, kAnyDc, 2, 60.0, 150.0, 0.5));
    spec.events.push_back(
        event(EventKind::RttInflation, 2, kAnyDc, 60.0, 150.0, 0.25));
    return spec;
}

ScenarioSpec
rttStorm()
{
    ScenarioSpec spec;
    spec.name = "rtt-storm";
    spec.description =
        "Route flaps inflate every pair's RTT 150% for 2 minutes with "
        "a shallow capacity dip: loss-free slowdown that reshuffles "
        "TCP's bandwidth shares without changing link capacity much.";
    spec.horizon = 240.0;
    spec.events.push_back(
        event(EventKind::RttInflation, kAnyDc, kAnyDc, 30.0, 120.0,
              1.5));
    spec.events.push_back(
        event(EventKind::Maintenance, kAnyDc, kAnyDc, 30.0, 120.0,
              0.15));
    return spec;
}

ScenarioSpec
cascading()
{
    ScenarioSpec spec;
    spec.name = "cascading";
    spec.description =
        "Compound failure: a diurnal baseline, DC0->DC1 degrading "
        "from t=20, a DC1 outage at t=120, and a flash crowd into DC0 "
        "at t=220 — the adversarial everything-at-once case.";
    spec.horizon = 360.0;
    ScenarioEvent day =
        event(EventKind::Diurnal, kAnyDc, kAnyDc, 0.0, kForever, 0.3);
    day.period = 200.0;
    spec.events.push_back(day);
    spec.events.push_back(
        event(EventKind::Degradation, 0, 1, 20.0, 60.0, 0.6));
    ScenarioEvent out =
        event(EventKind::Outage, 1, kAnyDc, 120.0, 60.0, 0.0);
    out.residual = 0.05;
    spec.events.push_back(out);
    out.src = kAnyDc;
    out.dst = 1;
    spec.events.push_back(out);
    ScenarioEvent crowd = event(EventKind::FlashCrowd, kAnyDc, 0,
                                220.0, 60.0, 0.0);
    crowd.burstConnections = 4;
    spec.events.push_back(crowd);
    return spec;
}

fault::FaultEvent
faultAt(fault::FaultKind kind, Seconds time, Seconds duration)
{
    fault::FaultEvent fe;
    fe.kind = kind;
    fe.time = time;
    fe.duration = duration;
    return fe;
}

ScenarioSpec
faultStorm()
{
    ScenarioSpec spec;
    spec.name = "fault-storm";
    spec.description =
        "Hard-failure storm on a mild diurnal baseline: in-flight "
        "transfers into DC1 aborted at t=30 and t=75, every gauge "
        "lost in [50, 140), and DC2's AIMD agent down for 60 s — "
        "retry/backoff, the prediction degradation ladder, and "
        "unthrottled-fallback all at once.";
    spec.horizon = 300.0;
    ScenarioEvent day =
        event(EventKind::Diurnal, kAnyDc, kAnyDc, 0.0, kForever, 0.2);
    day.period = 240.0;
    spec.events.push_back(day);

    fault::FaultEvent abortIn =
        faultAt(fault::FaultKind::TransferAbort, 30.0, 0.0);
    abortIn.dst = 1;
    spec.faults.push_back(abortIn);
    abortIn.time = 75.0;
    spec.faults.push_back(abortIn);
    spec.faults.push_back(
        faultAt(fault::FaultKind::ProbeLoss, 50.0, 90.0));
    fault::FaultEvent crash =
        faultAt(fault::FaultKind::AgentCrash, 60.0, 60.0);
    crash.dc = 2;
    spec.faults.push_back(crash);
    return spec;
}

ScenarioSpec
blackout()
{
    ScenarioSpec spec;
    spec.name = "blackout";
    spec.description =
        "DC3 goes dark, hard: a 75-s blackout aborts every in-flight "
        "transfer touching DC3 and blocks new ones until it clears, "
        "layered on the soft capacity outage — lost bytes must be "
        "retried or re-placed on alternate paths.";
    spec.horizon = 240.0;
    ScenarioEvent out =
        event(EventKind::Outage, 3, kAnyDc, 60.0, 75.0, 0.0);
    out.residual = 0.02;
    spec.events.push_back(out);
    out.src = kAnyDc;
    out.dst = 3;
    spec.events.push_back(out);
    fault::FaultEvent dark =
        faultAt(fault::FaultKind::DcBlackout, 60.0, 75.0);
    dark.dc = 3;
    spec.faults.push_back(dark);
    return spec;
}

} // namespace

std::vector<std::string>
libraryScenarioNames()
{
    return {"steady",      "diurnal",     "degrading-link",
            "dc-outage",   "flash-crowd", "maintenance",
            "rtt-storm",   "cascading"};
}

std::vector<std::string>
faultScenarioNames()
{
    return {"fault-storm", "blackout"};
}

ScenarioSpec
libraryScenario(const std::string &name)
{
    if (name == "steady")
        return steady();
    if (name == "diurnal")
        return diurnal();
    if (name == "degrading-link")
        return degradingLink();
    if (name == "dc-outage")
        return dcOutage();
    if (name == "flash-crowd")
        return flashCrowd();
    if (name == "maintenance")
        return maintenance();
    if (name == "rtt-storm")
        return rttStorm();
    if (name == "cascading")
        return cascading();
    if (name == "fault-storm")
        return faultStorm();
    if (name == "blackout")
        return blackout();
    fatal("unknown scenario: " + name +
          " (see wanify-scenario list)");
}

bool
isLibraryScenario(const std::string &name)
{
    for (const auto &n : libraryScenarioNames())
        if (n == name)
            return true;
    for (const auto &n : faultScenarioNames())
        if (n == name)
            return true;
    return false;
}

core::AnalyzerConfig::DynamicsHook
campaignDynamics()
{
    return [](std::size_t clusterSize, std::size_t meshIndex,
              std::uint64_t meshSeed)
               -> std::shared_ptr<const Dynamics> {
        if (clusterSize < 4)
            return nullptr;
        const auto names = libraryScenarioNames();
        const auto &name = names[meshIndex % names.size()];

        // Training wants the scenario's *regime*, not its schedule:
        // every event starts at t = 0 and windowed capacity events
        // hold open, so a conditioned mesh is guaranteed to gauge
        // inside the drifted state instead of depending on where the
        // analyzer's random instant lands relative to the scripted
        // windows. The sampled instant still matters where the
        // regime itself is time-varying (diurnal phase, degradation
        // ramp depth).
        ScenarioSpec spec = libraryScenario(name);
        for (auto &ev : spec.events) {
            ev.start = 0.0;
            ev.startJitter = 0.0;
            if (ev.kind != EventKind::Diurnal &&
                ev.kind != EventKind::Degradation)
                ev.duration = kForever;
        }

        std::uint64_t state = meshSeed ^ 0x5ca1ab1eULL;
        return std::make_shared<ScenarioTimeline>(
            std::move(spec), clusterSize, splitmix64(state));
    };
}

} // namespace scenario
} // namespace wanify
