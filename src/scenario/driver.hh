/**
 * @file
 * Scenario driver: runs non-stationary dynamics against a live
 * NetworkSim, records the bandwidth trace, and feeds the drift
 * detector — the standalone (engine-free) harness behind the
 * `wanify-scenario` CLI and the scenario tests.
 *
 * The driver keeps a full measurement mesh loaded, advances the sim
 * epoch by epoch, applies the dynamics before each epoch, and samples
 * the effective capacity multipliers after it. Drift is gauged on the
 * core::kDriftReferenceBw capacity-ratio scale (same calibration as
 * the GDA engine's drift path): with the paper's 100 Mbps
 * significance threshold a pair drifts exactly when its scripted
 * capacity leaves the +-40% band — deterministic, independent of the
 * OU noise, and zero for `steady`. When the detector trips, the
 * driver "retrains": it re-baselines and resets, mirroring the
 * facade's warm-restart path.
 */

#ifndef WANIFY_SCENARIO_DRIVER_HH
#define WANIFY_SCENARIO_DRIVER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/drift.hh"
#include "net/topology.hh"
#include "scenario/library.hh"
#include "scenario/trace.hh"

namespace wanify {
namespace scenario {

/** Driver knobs. */
struct DriveConfig
{
    /** Epoch length; 0 = the spec's recommendation. */
    Seconds epoch = 0.0;

    /** Run length; 0 = the spec's recommendation. */
    Seconds horizon = 0.0;

    /** Seed for the sim, the OU processes, and event jitter. */
    std::uint64_t seed = 1;

    /** Keep the stationary OU noise on underneath the scenario. */
    bool fluctuation = true;

    /** Parallel connections of each background mesh flow. */
    int meshConnections = 2;

    /**
     * Drift detector configuration. windowSize 0 = auto-size to two
     * full meshes of observations (2 n (n-1)) with minObservations
     * one mesh, so one epoch's worth of pairs never evicts another's.
     */
    core::DriftConfig drift = autoDrift();

    static core::DriftConfig
    autoDrift()
    {
        core::DriftConfig cfg;
        cfg.windowSize = 0;
        cfg.minObservations = 0;
        cfg.retrainFraction = 0.2;
        return cfg;
    }
};

/** Per-epoch observations. */
struct EpochStats
{
    Seconds t = 0.0;
    double minCapFactor = 1.0;
    double meanCapFactor = 1.0;
    Mbps minPairRate = 0.0;
    double errorFraction = 0.0;
    bool retrainFired = false;
};

/** One scenario drive's outcome. */
struct DriveResult
{
    std::string name;
    BwTrace trace;
    std::vector<EpochStats> epochs;
    std::size_t retrainTriggers = 0;
    double maxErrorFraction = 0.0;
};

/** Drive arbitrary dynamics over @p topo. @p name labels the result;
 *  @p epoch / @p horizon must be positive. */
DriveResult drive(const Dynamics &dynamics, const net::Topology &topo,
                  const DriveConfig &cfg, const std::string &name,
                  Seconds epoch, Seconds horizon);

/** Compile @p spec with cfg.seed and drive it. */
DriveResult driveScenario(const ScenarioSpec &spec,
                          const net::Topology &topo,
                          const DriveConfig &cfg = {});

/** Replay a recorded trace (fluctuation forced off, epochs taken
 *  from the trace timestamps). */
DriveResult driveReplay(const BwTrace &trace,
                        const net::Topology &topo,
                        DriveConfig cfg = {});

} // namespace scenario
} // namespace wanify

#endif // WANIFY_SCENARIO_DRIVER_HH
