/**
 * @file
 * Deterministic non-stationary WAN dynamics (the scenario engine).
 *
 * The OU fluctuation process (net/fluctuation.hh) models stationary
 * second-scale jitter; the paper's motivation, however, rests on
 * *non-stationary* divergence between statically measured and runtime
 * bandwidth — diurnal cycles, link degradation, outages, flash crowds
 * (Section 2.2, Fig. 9). A ScenarioSpec is a declarative list of timed
 * events; a ScenarioTimeline compiles it against a cluster size and a
 * seed into a pure function of time that the GDA engine and the
 * experiment runner apply to a NetworkSim every epoch via the
 * scenario-override hooks. Everything is deterministic: event jitter
 * derives from the spec seed through the same splitmix64 scheme the
 * forest and the trial runner use, so parallel and sequential runs are
 * bit-identical.
 */

#ifndef WANIFY_SCENARIO_SCENARIO_HH
#define WANIFY_SCENARIO_SCENARIO_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hh"
#include "fault/fault.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace scenario {

/** Wildcard value for an event's src/dst DC selector. */
constexpr int kAnyDc = -1;

/** Event duration that never ends within any simulated horizon. */
constexpr Seconds kForever = 1.0e18;

/** What a timed event does to the network. */
enum class EventKind
{
    /**
     * Sinusoidal capacity cycle: the factor swings between 1 and
     * (1 - magnitude) with the given period, starting at the crest.
     * Models diurnal backbone load.
     */
    Diurnal,

    /**
     * Linear capacity ramp from 1 down to (1 - magnitude) over
     * `duration` seconds starting at `start`; holds the floor
     * afterwards. Models progressive link degradation.
     */
    Degradation,

    /**
     * Hard outage: capacity collapses to `residual` (fraction of
     * nominal) inside [start, start + duration), then recovers fully.
     */
    Outage,

    /**
     * RTT inflation: the pair's RTT is multiplied by (1 + magnitude)
     * inside the window. Slower feedback loops make the pair timid
     * under contention without touching its capacity.
     */
    RttInflation,

    /**
     * Maintenance window: capacity capped at (1 - magnitude) of
     * nominal inside [start, start + duration) — a scheduled,
     * flat-bottomed partial outage.
     */
    Maintenance,

    /**
     * Flash crowd: background measurement-style flows appear on the
     * selected pairs at `start` and persist for `duration`, competing
     * with the job's transfers for capacity.
     */
    FlashCrowd,
};

const char *eventKindName(EventKind kind);

/** One timed event of a scenario. */
struct ScenarioEvent
{
    EventKind kind = EventKind::Maintenance;

    /** Ordered-pair selector; kAnyDc matches every DC on that side. */
    int src = kAnyDc;
    int dst = kAnyDc;

    /** Event start (seconds of scenario time). */
    Seconds start = 0.0;

    /** Window length (Degradation: ramp length; then holds). */
    Seconds duration = kForever;

    /** Depth/amplitude in [0, 1] for capacity events; RTT events use
     *  it as the inflation fraction (factor = 1 + magnitude). */
    double magnitude = 0.5;

    /** Diurnal period (must be > 0 for Diurnal events). */
    Seconds period = 240.0;

    /** Diurnal phase offset (seconds into the cycle at `start`). */
    Seconds phase = 0.0;

    /** Remaining capacity fraction during an Outage. */
    double residual = 0.02;

    /** Parallel connections of each FlashCrowd background flow. */
    int burstConnections = 4;

    /**
     * Deterministic start jitter: the compiled event starts at
     * start + U[0, startJitter), with U drawn from the event's
     * splitmix64-derived seed. Zero = exact start.
     */
    Seconds startJitter = 0.0;
};

/** A named, declarative scenario. */
struct ScenarioSpec
{
    std::string name;
    std::string description;

    /** Recommended application granularity for drivers. */
    Seconds epoch = 5.0;

    /** Recommended run length for drivers. */
    Seconds horizon = 300.0;

    std::vector<ScenarioEvent> events;

    /** Hard-fault storm riding along with the capacity events
     *  (compiled into a fault::FaultPlan by the timeline). */
    std::vector<fault::FaultEvent> faults;
};

/** A background flow a dynamics source wants started. */
struct BurstFlow
{
    Seconds start = 0.0;
    Seconds duration = 30.0;
    net::DcId src = 0;
    net::DcId dst = 0;
    int connections = 4;
};

/** What changes at a discrete dynamics change point. */
enum class ChangeKind
{
    Factor,     ///< a capacity/RTT factor window opens or closes
    BurstStart, ///< a flash-crowd burst opens
    BurstEnd,   ///< a flash-crowd burst expires
};

/**
 * A discrete instant at which a dynamics source changes the network
 * in a way that is invisible between samples: a scripted window edge
 * or a burst boundary. The event-driven clock (gda::EventClock)
 * schedules these as timestamped events so they take effect at their
 * true times instead of the next epoch tick. Continuous dynamics
 * (diurnal cycles, degradation ramps) have no discrete points inside
 * their windows and stay epoch-sampled.
 */
struct ChangePoint
{
    Seconds time = 0.0;
    ChangeKind kind = ChangeKind::Factor;
};

/**
 * Abstract time-varying network conditions, applied to a NetworkSim
 * via its scenario-override hooks. Implementations are immutable and
 * safe to share across concurrently running trials; per-run state
 * (which bursts have been started) belongs to the caller, which is
 * why bursts are exposed as a pure interval query.
 */
class Dynamics
{
  public:
    virtual ~Dynamics() = default;

    /** Cluster size this dynamics object was compiled for. */
    virtual std::size_t dcCount() const = 0;

    /**
     * Install the per-pair capacity/RTT factors of scenario time
     * @p t onto @p sim. Idempotent and deterministic in (sim, t).
     */
    virtual void applyAt(net::NetworkSim &sim, Seconds t) const = 0;

    /**
     * Pure capacity factor of pair (i, j) at the exact instant
     * @p t — the forecast-sampling hook. Note the deliberate
     * asymmetry with applyAt: replay-style sources install the
     * conditions governing the interval *after* t (with float slack),
     * whereas this answers "what multiplier holds at t itself" with
     * exact closed-right boundaries, so forecast segments can't be
     * off-by-one at segment edges. Defaults to 1 (no information:
     * forecast-neutral).
     */
    virtual double capFactorAt(net::DcId i, net::DcId j,
                               Seconds t) const;

    /** Background flows starting inside the half-open window
     *  (t0, t1]. Use t0 < 0 to include flows at t = 0. */
    virtual std::vector<BurstFlow> burstsIn(Seconds t0,
                                            Seconds t1) const;

    /**
     * Append every discrete change point inside the half-open window
     * (t0, t1] to @p out. Unordered and possibly duplicated (two
     * windows may share an edge) — consumers order them; applying a
     * factor twice at the same instant is idempotent. Default: none
     * (purely continuous or static dynamics).
     */
    virtual void changePointsIn(Seconds t0, Seconds t1,
                                std::vector<ChangePoint> &out) const;

    /**
     * Hard-fault schedule riding along with this dynamics source, or
     * nullptr when it carries none (the default — fault-free sources
     * stay structurally identical to before faults existed). The
     * plan's lifetime is the dynamics object's.
     */
    virtual const fault::FaultPlan *faultPlan() const;
};

/**
 * Per-run burst cursor: tracks which of a Dynamics object's
 * background flows have been started on a simulator and stops them
 * once they expire. Flows scheduled inside an elapsed window
 * (lastT, t] open at the first advanceTo(t) that covers them — the
 * GDA engine and the standalone driver share this cursor so flash
 * crowds hit at identical times in either harness.
 */
class BurstCursor
{
  public:
    explicit BurstCursor(const Dynamics *dynamics);

    /**
     * Open flows due in (lastT, t] (from each DC's first VM) and
     * stop the expired ones. When @p movedBytes is non-null, each
     * stopped flow's transferred bytes accumulate into it per
     * ordered pair (burst traffic is other tenants' data and must
     * not be billed to the job).
     */
    void advanceTo(net::NetworkSim &sim, Seconds t,
                   Matrix<Bytes> *movedBytes = nullptr);

    /** Stop every remaining flow and settle the accounting. */
    void finish(net::NetworkSim &sim,
                Matrix<Bytes> *movedBytes = nullptr);

    /**
     * Accumulate each *active* flow's bytes moved so far into
     * @p out per ordered pair — lets callers net burst progress out
     * of a measurement window without stopping the flows.
     */
    void accumulateMoved(const net::NetworkSim &sim,
                         Matrix<Bytes> &out) const;

  private:
    struct ActiveFlow
    {
        net::TransferId id = 0;
        net::DcId src = 0;
        net::DcId dst = 0;
        Seconds end = 0.0;
    };

    void stop(net::NetworkSim &sim, std::size_t index,
              Matrix<Bytes> *movedBytes);

    const Dynamics *dynamics_;
    Seconds last_ = -1.0;
    std::vector<ActiveFlow> flows_;
};

/**
 * A ScenarioSpec compiled against a cluster size and a seed.
 *
 * capFactor / rttFactor are pure functions of (pair, time): the
 * product (resp. max-of-inflation product) of every active event's
 * contribution. Two timelines built from the same spec, size, and
 * seed are bit-identical.
 */
class ScenarioTimeline : public Dynamics
{
  public:
    ScenarioTimeline(ScenarioSpec spec, std::size_t dcCount,
                     std::uint64_t seed);

    /** Capacity factor for pair (i, j) at scenario time t. */
    double capFactor(net::DcId i, net::DcId j, Seconds t) const;

    /** RTT factor for pair (i, j) at scenario time t. */
    double rttFactor(net::DcId i, net::DcId j, Seconds t) const;

    std::size_t dcCount() const override { return dcCount_; }
    void applyAt(net::NetworkSim &sim, Seconds t) const override;
    double capFactorAt(net::DcId i, net::DcId j,
                       Seconds t) const override
    {
        return capFactor(i, j, t);
    }
    std::vector<BurstFlow> burstsIn(Seconds t0,
                                    Seconds t1) const override;
    void changePointsIn(Seconds t0, Seconds t1,
                        std::vector<ChangePoint> &out) const override;
    const fault::FaultPlan *faultPlan() const override;

    const ScenarioSpec &spec() const { return spec_; }
    std::uint64_t seed() const { return seed_; }

  private:
    struct CompiledEvent
    {
        ScenarioEvent ev;
        Seconds jitteredStart = 0.0;
    };

    bool matches(const CompiledEvent &ce, net::DcId i,
                 net::DcId j) const;

    ScenarioSpec spec_;
    std::size_t dcCount_ = 0;
    std::uint64_t seed_ = 0;
    std::vector<CompiledEvent> events_;
    fault::FaultPlan faults_;
};

} // namespace scenario
} // namespace wanify

#endif // WANIFY_SCENARIO_SCENARIO_HH
