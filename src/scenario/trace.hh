/**
 * @file
 * Bandwidth trace record and replay.
 *
 * A BwTrace is a time series of effective per-pair capacity
 * multipliers sampled from a live simulation (OU fluctuation ×
 * scenario factors), plus the per-pair RTT factors and the background
 * burst events active over the recording. Persisted as CSV through
 * the dataset round-trip in ml/csv.* (one feature column `t`; per
 * sample one capacity-multiplier column and one RTT-factor column per
 * ordered DC pair; burst events ride along as marker rows with t < 0;
 * written at max_digits10 so doubles survive the round trip exactly),
 * a captured timeline can be re-run: TraceReplay plays the samples
 * back through the NetworkSim scenario hooks on a fluctuation-free
 * simulator, reproducing each recorded effective capacity to within
 * one floating-point rounding (the nominal cap is divided out on
 * record and multiplied back on replay) and re-launching the recorded
 * bursts through Dynamics::burstsIn. Sample timestamps mark interval
 * *ends*: replay holds row k over (t_{k-1}, t_k]. Legacy traces
 * (capacity columns only) still load: their RTT factors default to 1
 * and their burst list is empty. Two caveats: replaying a replayed
 * trace IS bit-exact (the medium is closed under replay), and a
 * replay's *drift telemetry* is recomputed on the replayed medium —
 * recorded OU noise rides in the multipliers and reads as scenario
 * capacity there, so a replay can report slightly different drift
 * fractions than the original run while the trace itself matches.
 */

#ifndef WANIFY_SCENARIO_TRACE_HH
#define WANIFY_SCENARIO_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ml/dataset.hh"
#include "scenario/scenario.hh"

namespace wanify {
namespace scenario {

/** A recorded timeline of per-pair capacity multipliers, RTT factors,
 *  and background burst events. */
struct BwTrace
{
    /** Cluster size; rows hold dcs * dcs multipliers (src * n + dst). */
    std::size_t dcs = 0;

    std::vector<Seconds> times;
    std::vector<std::vector<double>> rows;

    /** Per-sample RTT factors, parallel to `rows` (src * n + dst). */
    std::vector<std::vector<double>> rttRows;

    /** Background flows recorded over the trace's horizon. */
    std::vector<BurstFlow> bursts;

    /**
     * Hard-fault events riding along with the trace. Store resolved
     * times (startJitter = 0) when recording: replay compiles them
     * with a fixed seed, so unresolved jitter would not reproduce
     * the recorded run.
     */
    std::vector<fault::FaultEvent> faults;

    /**
     * Append one sample; multipliers.size() must equal dcs * dcs.
     * An empty @p rttFactors means "no inflation" (all factors 1).
     */
    void add(Seconds t, std::vector<double> multipliers,
             std::vector<double> rttFactors = {});

    std::size_t size() const { return times.size(); }
    bool empty() const { return times.empty(); }

    /** Exact (bitwise) equality with another trace. */
    bool identical(const BwTrace &other) const;

    /** Order-sensitive splitmix64 digest of every sample bit. */
    std::uint64_t hash() const;

    /**
     * Convert to a dataset: feature `t`, 2 n^2 targets (capacity
     * multipliers then RTT factors, both src * n + dst). Burst events
     * are appended as marker rows with t < 0 carrying (start,
     * duration, src, dst, connections) in the first five targets;
     * fault events follow as marker rows whose sixth target is the
     * fault kind + 1 (nonzero — burst markers leave it 0).
     */
    ml::Dataset toDataset() const;

    /** Rebuild from a dataset written by toDataset(). Also accepts
     *  the legacy capacity-only layout (n^2 targets, no markers). */
    static BwTrace fromDataset(const ml::Dataset &data);
};

/** Write a trace as CSV; throws FatalError on I/O failure. */
void writeTraceCsv(const std::string &path, const BwTrace &trace);

/** Read a trace written by writeTraceCsv; throws FatalError naming
 *  @p path on a missing, truncated, or malformed file. */
BwTrace readTraceCsv(const std::string &path);

/**
 * Sample the effective capacity multiplier of every ordered pair of
 * @p sim right now (effectivePathCap / nominal pathCap; 1 on the
 * diagonal and wherever the nominal capacity is not positive).
 */
std::vector<double> capturedMultipliers(const net::NetworkSim &sim);

/** Replays a recorded trace through the scenario-override hooks. */
class TraceReplay : public Dynamics
{
  public:
    explicit TraceReplay(BwTrace trace);

    std::size_t dcCount() const override { return trace_.dcs; }

    /** Install the capacity and RTT row covering time @p t
     *  (interval-end semantics: the earliest sample with time > t;
     *  the last row once t is at or beyond the final timestamp). */
    void applyAt(net::NetworkSim &sim, Seconds t) const override;

    /**
     * Recorded capacity multiplier at the exact instant @p t: the row
     * held over (t_{k-1}, t_k] with closed-right boundaries (t = t_k
     * reads row k, not k+1), the first row at or before t_0, the last
     * row past t_last. This is the forecast-sampling view; applyAt
     * keeps its microsecond forward slack because it answers "what
     * governs the interval starting at t" for bit-exact replay.
     */
    double capFactorAt(net::DcId i, net::DcId j,
                       Seconds t) const override;

    /** Recorded burst events starting inside (t0, t1]. */
    std::vector<BurstFlow> burstsIn(Seconds t0,
                                    Seconds t1) const override;

    /** Sample timestamps (row boundaries) and burst edges in
     *  (t0, t1] — every instant the replayed medium changes. */
    void changePointsIn(Seconds t0, Seconds t1,
                        std::vector<ChangePoint> &out) const override;

    /** Fault plan compiled from the trace's recorded fault events
     *  (fixed seed: recorded times are already resolved). */
    const fault::FaultPlan *faultPlan() const override;

    const BwTrace &trace() const { return trace_; }

  private:
    BwTrace trace_;
    fault::FaultPlan faults_;
};

} // namespace scenario
} // namespace wanify

#endif // WANIFY_SCENARIO_TRACE_HH
