#include "gda/event_clock.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace gda {

namespace {

/** "a pops after b": lexicographic (time, kind, seq), ascending pop
 *  order. Used as the heap comparator (std::push_heap keeps the
 *  *largest* element first under `<`, so the comparator is the pop
 *  order reversed). */
bool
popsAfter(const ClockEvent &a, const ClockEvent &b)
{
    if (a.time != b.time)
        return a.time > b.time;
    if (a.kind != b.kind)
        return a.kind > b.kind;
    return a.seq > b.seq;
}

} // namespace

void
EventClock::push(Seconds time, ClockEventKind kind)
{
    fatalIf(!(time == time), "EventClock::push: NaN time");
    ClockEvent ev;
    ev.time = time;
    ev.kind = kind;
    ev.seq = nextSeq_++;
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), popsAfter);
}

const ClockEvent &
EventClock::top() const
{
    panicIf(heap_.empty(), "EventClock::top: empty queue");
    return heap_.front();
}

ClockEvent
EventClock::pop()
{
    panicIf(heap_.empty(), "EventClock::pop: empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), popsAfter);
    const ClockEvent ev = heap_.back();
    heap_.pop_back();
    return ev;
}

} // namespace gda
} // namespace wanify
