#include "gda/scheduler.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace gda {

Seconds
estimateStageTime(const StageContext &ctx,
                  const Matrix<Bytes> &assignment)
{
    panicIf(ctx.topo == nullptr || ctx.bw == nullptr ||
                ctx.stage == nullptr,
            "estimateStageTime: incomplete context");
    const std::size_t n = ctx.topo->dcCount();
    fatalIf(assignment.rows() != n || assignment.cols() != n,
            "estimateStageTime: assignment shape mismatch");
    fatalIf(!(ctx.wanShare > 0.0) || ctx.wanShare > 1.0,
            "estimateStageTime: wanShare must be in (0, 1]");
    const core::BwForecast *fc =
        ctx.forecast != nullptr && !ctx.forecast->empty()
            ? ctx.forecast
            : nullptr;
    fatalIf(fc != nullptr && fc->dcCount() != n,
            "estimateStageTime: forecast size mismatch");

    // Aggregate WAN capacity per DC (first VM's throttle; transfers
    // into/out of a DC share its NIC no matter what the per-pair BW
    // says).
    // The shuffle-endpoint NIC is shared across concurrent queries
    // exactly like the links are (every query bills traffic to the
    // same first VM), so the granted share scales it too.
    std::vector<Mbps> wanCap(n, 1.0);
    for (std::size_t d = 0; d < n; ++d) {
        const auto &vms = ctx.topo->dc(d).vms;
        if (!vms.empty())
            wanCap[d] = std::max(
                1.0,
                ctx.topo->vm(vms.front()).type.wanCapMbps * ctx.wanShare);
    }

    // Per destination: slowest inbound link (transfers overlap),
    // floored by the aggregate ingress time, plus local compute on
    // everything assigned there. Egress aggregation is folded in via
    // the source side of the same pass.
    std::vector<Bytes> outBytes(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            if (i != j)
                outBytes[i] += assignment.at(i, j);

    Seconds worst = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        Seconds slowestIn = 0.0;
        Bytes atJ = 0.0;
        Bytes inbound = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const Bytes bytes = assignment.at(i, j);
            atJ += bytes;
            if (i == j || bytes <= 0.0)
                continue;
            inbound += bytes;
            // Plan with only the WAN share this query was granted:
            // concurrent queries consume the rest of the link, so
            // assuming the full believed BW would systematically
            // under-estimate transfer time under a resident service.
            // The rate floor is kMinFeasibleMbps, not 1 Mbps: a
            // zero/near-zero pair (outage) must look infeasible —
            // astronomically slow yet finite, so the fraction search
            // keeps a gradient away from it — rather than like a
            // slow-but-usable 1 Mbps link.
            const Seconds linkTime =
                fc != nullptr
                    ? fc->transferTime(i, j, bytes, ctx.wanShare,
                                       ctx.planTime)
                    : units::transferTime(
                          bytes,
                          std::max(core::BwForecast::kMinFeasibleMbps,
                                   ctx.bw->at(i, j) * ctx.wanShare));
            slowestIn = std::max(slowestIn, linkTime);
        }
        const Seconds aggregateIn =
            units::transferTime(inbound, wanCap[j]);
        const Seconds aggregateOut =
            units::transferTime(outBytes[j], wanCap[j]);
        const Seconds network =
            std::max({slowestIn, aggregateIn, aggregateOut});
        const double rate = std::max(1.0e-9, ctx.computeRate[j]);
        const Seconds compute =
            units::toMegabytes(atJ) * ctx.stage->workPerMb / rate;
        worst = std::max(worst, network + compute);
    }
    return worst;
}

Dollars
estimateStageCost(const StageContext &ctx,
                  const Matrix<Bytes> &assignment)
{
    panicIf(ctx.topo == nullptr, "estimateStageCost: missing topology");
    const std::size_t n = ctx.topo->dcCount();
    Dollars total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const double gb = assignment.at(i, j) / 1.0e9;
            total += gb * ctx.egressPrice[i];
        }
    }
    return total;
}

void
assignmentFromFractionsInto(const std::vector<Bytes> &inputByDc,
                            const std::vector<double> &fractions,
                            Matrix<Bytes> &out)
{
    const std::size_t n = inputByDc.size();
    fatalIf(fractions.size() != n,
            "assignmentFromFractions: size mismatch");
    if (out.rows() != n || out.cols() != n)
        out = Matrix<Bytes>::square(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            out.at(i, j) = inputByDc[i] * fractions[j];
}

Matrix<Bytes>
assignmentFromFractions(const std::vector<Bytes> &inputByDc,
                        const std::vector<double> &fractions)
{
    Matrix<Bytes> a;
    assignmentFromFractionsInto(inputByDc, fractions, a);
    return a;
}

} // namespace gda
} // namespace wanify
