/**
 * @file
 * GDA job model: a chain of stages with per-stage selectivity and
 * compute density, the abstraction level at which the paper's
 * schedulers operate. A stage consumes the (geo-distributed) output of
 * its predecessor, redistributes it according to the scheduler's
 * placement (the shuffle), and produces output scaled by its
 * selectivity.
 */

#ifndef WANIFY_GDA_JOB_HH
#define WANIFY_GDA_JOB_HH

#include <string>
#include <vector>

#include "common/units.hh"

namespace wanify {
namespace gda {

/** One stage of a job. */
struct StageSpec
{
    std::string name;

    /** Output bytes per input byte. */
    double selectivity = 1.0;

    /** Compute work (units) per MB of stage input. */
    double workPerMb = 0.1;

    /**
     * Whether the scheduler may move this stage's input across DCs.
     * First stages read block-resident input (movable at migration
     * cost); later stages always shuffle.
     */
    bool allowsPlacement = true;
};

/** A complete job. */
struct JobSpec
{
    std::string name;
    std::vector<StageSpec> stages;

    /** Total input bytes (distribution comes from the HDFS store). */
    Bytes inputBytes = 0.0;
};

} // namespace gda
} // namespace wanify

#endif // WANIFY_GDA_JOB_HH
