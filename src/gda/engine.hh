/**
 * @file
 * GDA execution engine: runs a job stage by stage against the WAN
 * simulator.
 *
 * Per stage: the scheduler picks an assignment (where each DC's resident
 * input is processed), the engine opens one WAN transfer per
 * off-diagonal assignment cell, drives the network simulator — waking
 * WANify's local agents every AIMD epoch when WANify is deployed — and
 * finally advances through the compute phase whose duration depends on
 * each DC's aggregate compute rate. Job completion time is gated by the
 * slowest DC, which is gated by the weakest WAN link: exactly the
 * coupling the paper exploits.
 *
 * The engine reports latency, the cost breakdown (compute incl. burst
 * surcharge, network egress, storage) and the minimum per-pair average
 * shuffle BW — the paper's three headline metrics.
 */

#ifndef WANIFY_GDA_ENGINE_HH
#define WANIFY_GDA_ENGINE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/forecast.hh"
#include "core/wanify.hh"
#include "cost/cost_model.hh"
#include "fault/fault.hh"
#include "gda/job.hh"
#include "gda/scheduler.hh"
#include "net/network_sim.hh"

namespace wanify {

namespace scenario {
class Dynamics;
} // namespace scenario

namespace gda {

/** Per-stage outcome. */
struct StageResult
{
    std::string name;
    Seconds start = 0.0;
    Seconds transferEnd = 0.0;
    Seconds end = 0.0;
    Bytes wanBytes = 0.0;

    /** Min average pair BW among pairs moving >= 1 MB (0 if none). */
    Mbps minPairBw = 0.0;
};

/** Whole-query outcome. */
struct QueryResult
{
    Seconds latency = 0.0;
    cost::CostBreakdown cost;

    /** Min observed shuffle BW across stages (the paper's "minimum
     *  BW of the cluster"; 0 if the job moved no WAN data). */
    Mbps minObservedBw = 0.0;

    // --- drift telemetry (Section 3.3.4; WANify runs only) -----------

    /** Peak significant-error fraction the drift detector saw. */
    double driftErrorFraction = 0.0;

    /** Predicted-vs-monitored comparisons recorded. */
    std::size_t driftObservations = 0;

    /** Times the detector raised the retrain flag during the run. */
    std::size_t retrainTriggers = 0;

    // --- online learning telemetry (adaptOnDrift runs only) ----------

    /** Warm-start retrains actually performed during the run. */
    std::size_t retrainsApplied = 0;

    /**
     * Mean absolute BW prediction error (Mbps, off-diagonal pairs)
     * of the *stale* model against the stable BW gauged when each
     * retrain fired, averaged over this run's retrains. 0 when no
     * retrain happened.
     */
    double preRetrainError = 0.0;

    /**
     * Same error for the *retrained* model, measured against a fresh
     * gauge taken after the warm start — out-of-sample with respect
     * to the rows the new trees just trained on, so a drop means the
     * model genuinely learned the regime rather than re-anchoring.
     */
    double postRetrainError = 0.0;

    /**
     * Wall-clock seconds each warm-start retrain spent inside
     * Wanify::retrain (model copy + extra-tree growth + publish), in
     * firing order. This is real compute stall, not simulated time:
     * the query is stalled waiting to re-plan while the trees grow,
     * so it bounds how often WANify can afford to adapt.
     */
    std::vector<double> retrainLatencies;

    /** Sum of retrainLatencies (0 when no retrain fired). */
    double retrainCpuSeconds = 0.0;

    // --- fault & recovery telemetry (runs with a FaultPlan only) -----

    /** Fault events that fired inside this run's horizon. */
    std::size_t faultsInjected = 0;

    /** In-flight transfers killed by TransferAbort / DcBlackout. */
    std::size_t transferAborts = 0;

    /** Aborted transfers re-sent after backoff. */
    std::size_t transferRetries = 0;

    /** Residual re-placements after a transfer exhausted its retry
     *  budget (the replan-of-undelivered-bytes path). */
    std::size_t faultReplans = 0;

    /** Bytes that were in flight when an abort struck and had to be
     *  re-sent via retry or replan (the delivered prefix of each
     *  aborted transfer stays where it landed). */
    Bytes lostBytes = 0.0;

    /** Total simulated seconds spent waiting out retry backoffs. */
    Seconds backoffSeconds = 0.0;

    /** Gauge attempts lost to ProbeLoss / GaugeTimeout windows. */
    std::size_t gaugeFaults = 0;

    /** Degradation-ladder transitions (down or up) this run. */
    std::size_t predictorModeSwitches = 0;

    /** Worst rung reached: 0 model, 1 trend, 2 static. */
    int worstPredictorMode = 0;

    /** Replans served by GaugeTrend extrapolation (trend rung). */
    std::size_t trendPlans = 0;

    /** Replans served by the static a-priori matrix (static rung). */
    std::size_t staticPlans = 0;

    /** AgentCrash faults that took an AIMD agent down. */
    std::size_t agentCrashes = 0;

    /** DcBlackout faults that fired. */
    std::size_t blackouts = 0;

    std::vector<StageResult> stages;
    Matrix<Bytes> wanBytesByPair;
};

/**
 * How the engine advances scenario time.
 *
 * EpochQuantized is the legacy clock: the simulator runs in AIMD-epoch
 * strides and dynamics are applied at whatever instant each stride
 * ends, so a scripted change taking effect mid-epoch is seen up to one
 * epoch late and a burst opening inside a compute phase is missed
 * until the phase ends. EventDriven schedules epoch ticks, the stage
 * guard, and the dynamics' discrete change points
 * (Dynamics::changePointsIn) on a gda::EventClock and pops them in
 * deterministic (time, kind, seq) order, so conditions change at
 * their true times and flash crowds can open mid-compute and span
 * stage boundaries. When every change point lands on the epoch grid
 * the two modes are bit-identical (the golden parity test holds the
 * engine to that).
 */
enum class ClockMode
{
    EpochQuantized,
    EventDriven,
};

/** Per-run options — the experiment variables. */
struct RunOptions
{
    /** BW matrix the *scheduler* believes (the Table 4 variable). */
    Matrix<Mbps> schedulerBw;

    /**
     * Deploy WANify (plan + agents + throttles per its feature set).
     * Null = plain data transfer with staticConnections.
     */
    const core::Wanify *wanify = nullptr;

    /**
     * Predicted BW matrix for WANify planning; empty = let WANify
     * snapshot-and-predict on the live sim. Fig. 8(b) injects errors
     * here.
     */
    std::optional<Matrix<Mbps>> predictedBwOverride;

    /** Static connection counts when WANify is absent (empty = 1). */
    Matrix<int> staticConnections;

    /** Skew weights forwarded to WANify's global optimizer. */
    std::vector<double> skewWeights;

    /** Refactoring matrix forwarded to WANify (empty = identity). */
    Matrix<double> rvec;

    /**
     * Non-stationary WAN dynamics (scenario timeline or trace
     * replay) advanced every AIMD epoch. Scenario time zero is
     * simulator start: WANify's initial measurement snapshot (~1 s)
     * runs *inside* scenario time, so prediction sees the scenario's
     * opening conditions and the job starts shortly after t = 0.
     * Null = stationary OU noise only.
     */
    const scenario::Dynamics *dynamics = nullptr;

    /**
     * Forecast-aware planning (opt-in: off keeps snapshot planning,
     * and therefore every existing bench and golden, bit-identical).
     * When enabled, each placement carries a BwForecast — built from
     * `dynamics`' pure capacity factors when a scenario/trace is
     * attached (simulation mode), else from the per-pair trend of
     * this run's predicted/gauged matrices (deployed mode) — and the
     * fraction-search schedulers warm-start each stage from the plan
     * they previously found for it.
     */
    core::ForecastConfig forecast;

    /**
     * With forecast planning and adaptOnDrift both on: after a
     * retrain redeploys, stop the stage's unfinished transfers,
     * re-place the undelivered bytes under the retrained belief
     * (warm-started from the original plan) and restart them — the
     * incremental re-plan, instead of letting a stale placement run
     * to completion.
     */
    bool replanOnRetrain = true;

    /**
     * When the drift detector trips mid-run (WANify deployed, no
     * predictedBwOverride), run the full retraining path of Section
     * 3.3.4: gauge snapshot + stable BW on the live network, convert
     * the gauge into training rows, warm-start retrain the run's
     * pinned model, then re-predict, re-plan, and redeploy the
     * agents. Off by default so the paper's static-conditions benches
     * keep their exact semantics; scenario runs turn it on.
     */
    bool adaptOnDrift = false;

    /**
     * Publish each warm-start retrained model back to the shared
     * Wanify facade (atomic swap) so *later* runs start from it. Off
     * by default: publishing makes a run's starting model depend on
     * which earlier trials already finished, which would break the
     * bit-identical sequential-vs-parallel contract of
     * experiments::runTrials. Enable for deliberately sequential
     * online-learning campaigns (the CLI's --retrain mode does).
     */
    bool publishRetrainedModel = false;

    /**
     * Optional cross-run campaign accumulator: when set, every
     * runtime gauge is absorbed into this analyzer's incremental
     * dataset and warm starts train on the accumulated union — so a
     * sequential campaign's later runs learn from every earlier
     * run's gauges, not only their own. Mutable shared state: only
     * valid for sequential campaigns (pair it with
     * publishRetrainedModel; never share across parallel trials).
     * Null = each run keeps a private dataset.
     */
    core::BandwidthAnalyzer *campaign = nullptr;

    /**
     * Hard-fault schedule. Null = consume the dynamics source's
     * faultPlan() (itself null for fault-free sources); an explicit
     * plan overrides it. Empty plans are treated as null, so a
     * fault-free run stays structurally identical to pre-fault
     * builds.
     */
    const fault::FaultPlan *faults = nullptr;

    /** Backoff schedule for aborted transfers. */
    fault::RetryPolicy retry;

    /** Degradation-ladder thresholds for gauge failures. */
    fault::PredictorHealthConfig predictorHealth;

    /** Safety cap per stage. */
    Seconds maxStageSeconds = 6.0 * 3600.0;

    /**
     * Dynamics clock (see ClockMode). EpochQuantized by default so
     * every existing bench and golden keeps its exact trajectory;
     * scenario studies that care about sub-epoch timing opt into
     * EventDriven.
     */
    ClockMode clock = ClockMode::EpochQuantized;
};

/**
 * First VM of a DC carries that DC's shuffle endpoints — the shared
 * convention of the one-shot engine and the serve layer's per-query
 * executions, so both bill traffic to the same VM pairs.
 */
net::VmId shuffleEndpointVm(const net::Topology &topo, net::DcId dc);

/**
 * Build the scheduler-facing context for stage @p stageIdx of @p job:
 * compute rates and egress prices from the topology, the stage's
 * input distribution, and the BW matrix the scheduler should believe.
 * Shared by Engine::run (one query, private simulator) and the serve
 * layer (many queries, shared simulator) — the engine split that lets
 * per-query execution live anywhere while the planning inputs stay
 * identical. ctx.wanShare is left at its single-query default (1);
 * multi-query callers scale it to their allocated share.
 */
StageContext makeStageContext(const net::Topology &topo,
                              const JobSpec &job, std::size_t stageIdx,
                              const std::vector<Bytes> &inputByDc,
                              const Matrix<Mbps> &bw);

class Engine
{
  public:
    Engine(net::Topology topo, net::NetworkSimConfig simCfg = {},
           std::uint64_t seed = 1);

    /**
     * Execute @p job whose input is distributed as @p inputByDc, using
     * @p scheduler for placement under @p opts.
     */
    QueryResult run(const JobSpec &job,
                    const std::vector<Bytes> &inputByDc,
                    Scheduler &scheduler, const RunOptions &opts);

    const net::Topology &topology() const { return topo_; }

  private:
    StageContext makeContext(const JobSpec &job, std::size_t stageIdx,
                             const std::vector<Bytes> &inputByDc,
                             const Matrix<Mbps> &bw) const;

    net::Topology topo_;
    net::NetworkSimConfig simCfg_;
    std::uint64_t seed_;
    std::uint64_t runCounter_ = 0;
};

} // namespace gda
} // namespace wanify

#endif // WANIFY_GDA_ENGINE_HH
