/**
 * @file
 * Deterministic event queue for the engine's event-driven clock.
 *
 * The epoch-quantized stage loop advances the simulator in fixed
 * strides and applies scenario dynamics at whatever instant the stride
 * happens to end — a scripted outage starting mid-epoch takes effect
 * up to one epoch late, and a flash crowd opening inside a compute
 * phase is missed entirely. The event clock instead schedules every
 * instant the loop must wake at — epoch ticks, the per-stage guard,
 * and the dynamics' discrete change points — as timestamped events
 * popped in order, so conditions change at their true times and bursts
 * can span stage boundaries.
 *
 * Determinism contract (the tie-break rule): events are popped by
 * (time, kind, push sequence), all ascending. Two events at the same
 * instant therefore resolve in a *documented* order — the stage guard
 * fires before a coincident epoch tick (a stage that dies exactly at
 * its guard never runs one extra agent epoch), the tick before any
 * coincident dynamics edge (the edge is then an idempotent no-op,
 * which is what makes the event clock bit-identical to the epoch
 * clock when every edge lands on the tick grid), and same-kind
 * collisions pop in push order. Nothing about the ordering depends on
 * heap internals or pointer values, so sequential and parallel trials
 * see identical schedules.
 */

#ifndef WANIFY_GDA_EVENT_CLOCK_HH
#define WANIFY_GDA_EVENT_CLOCK_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.hh"

namespace wanify {
namespace gda {

/** What a scheduled wake-up is for. Enumerator order is the same-time
 *  pop order — renumbering changes engine behavior. */
enum class ClockEventKind
{
    StageGuard = 0,    ///< the per-stage safety cap
    EpochTick = 1,     ///< AIMD epoch: agents, drift gauge, retrain
    DynamicsChange = 2,///< a scripted factor window opens or closes
    BurstEdge = 3,     ///< a flash-crowd burst starts or expires
    FaultEdge = 4,     ///< a hard fault fires or its window clears
    RetryDue = 5,      ///< an aborted transfer's backoff expires
};

/** One scheduled wake-up of the stage loop. */
struct ClockEvent
{
    Seconds time = 0.0;
    ClockEventKind kind = ClockEventKind::EpochTick;

    /** Push order, breaking (time, kind) ties deterministically. */
    std::uint64_t seq = 0;
};

/**
 * Min-queue of ClockEvents with the documented (time, kind, seq)
 * pop order. A thin binary heap: push/pop are O(log n) and the
 * container never allocates on pop, so the stage loop's steady state
 * is allocation-free.
 */
class EventClock
{
  public:
    /** Schedule a wake-up; later pushes at the same (time, kind)
     *  pop later. */
    void push(Seconds time, ClockEventKind kind);

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** The next event without removing it; panics when empty. */
    const ClockEvent &top() const;

    /** Remove and return the next event; panics when empty. */
    ClockEvent pop();

    /** Drop every scheduled event (the seq counter keeps running so
     *  cross-stage determinism never depends on clearing). */
    void clear() { heap_.clear(); }

  private:
    std::vector<ClockEvent> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace gda
} // namespace wanify

#endif // WANIFY_GDA_EVENT_CLOCK_HH
