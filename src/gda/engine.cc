#include "gda/engine.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "gda/event_clock.hh"
#include "monitor/features.hh"
#include "scenario/forecast.hh"
#include "scenario/scenario.hh"

namespace wanify {
namespace gda {

using net::DcId;
using net::NetworkSim;
using net::TransferId;
using net::VmId;

namespace {

constexpr Bytes kMinAccountedBytes = 1024.0 * 1024.0; // 1 MB

/** Mean absolute gap between two BW matrices over off-diagonal
 *  pairs — the pre/post-retrain prediction-error metric. */
double
meanAbsOffDiag(const Matrix<Mbps> &a, const Matrix<Mbps> &b)
{
    const std::size_t n = a.rows();
    double sum = 0.0;
    std::size_t pairs = 0;
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            sum += std::abs(a.at(i, j) - b.at(i, j));
            ++pairs;
        }
    }
    return pairs == 0 ? 0.0 : sum / static_cast<double>(pairs);
}

/**
 * Per-run dynamics state: applies the (shared, immutable) scenario
 * timeline to this run's simulator and drives the shared burst
 * cursor, accounting burst bytes so flash-crowd traffic is not
 * billed to the query.
 */
class DynamicsState
{
  public:
    DynamicsState(const scenario::Dynamics *dyn, NetworkSim &sim,
                  const net::Topology &topo)
        : dyn_(dyn),
          sim_(sim),
          cursor_(dyn),
          burstBytes_(Matrix<Bytes>::square(topo.dcCount(), 0.0))
    {
        fatalIf(dyn_ != nullptr && dyn_->dcCount() != 0 &&
                    dyn_->dcCount() != topo.dcCount(),
                "Engine: dynamics compiled for a different cluster "
                "size");
    }

    /** Install conditions of scenario time @p t; open bursts due in
     *  (lastT, t] and close the expired ones. */
    void
    advanceTo(Seconds t)
    {
        if (dyn_ == nullptr)
            return;
        dyn_->applyAt(sim_, t);
        cursor_.advanceTo(sim_, t, &burstBytes_);
    }

    /** Stop every remaining burst and settle the byte accounting. */
    void
    finish()
    {
        cursor_.finish(sim_, &burstBytes_);
    }

    const Matrix<Bytes> &burstBytes() const { return burstBytes_; }

    /** Bytes the currently active bursts have moved so far. */
    Matrix<Bytes>
    activeBurstMoved(std::size_t n) const
    {
        Matrix<Bytes> out = Matrix<Bytes>::square(n, 0.0);
        cursor_.accumulateMoved(sim_, out);
        return out;
    }

  private:
    const scenario::Dynamics *dyn_;
    NetworkSim &sim_;
    scenario::BurstCursor cursor_;
    Matrix<Bytes> burstBytes_;
};

/** One in-flight shuffle transfer of the current stage. */
struct PendingTransfer
{
    DcId src, dst;
    Bytes bytes;
    Seconds done = 0.0;

    /** 0-based send attempt this flight is (retries increment). */
    std::size_t attempt = 0;
};

/** An aborted (or blackout-deferred) transfer waiting out backoff.
 *  Its bytes live here, not in the stage assignment, until it flies:
 *  a retry the stage guard drops never reaches the compute phase. */
struct RetryItem
{
    DcId src, dst;
    Bytes bytes;
    std::size_t attempt = 0;
    Seconds due = 0.0;
};

/**
 * Brackets a control-plane measurement window. Construction records
 * the per-pair byte counters, the job transfers' progress, and the
 * active bursts' progress; destruction bills the window's *extra*
 * bytes (probe traffic = growth minus job minus bursts) to
 * controlBytes, never to the query. RAII keeps the two halves of the
 * accounting paired however the gauging code between them evolves.
 */
class ControlProbe
{
  public:
    ControlProbe(NetworkSim &sim, const DynamicsState &dynamics,
                 const std::map<TransferId, PendingTransfer> &pending,
                 Matrix<Bytes> &controlBytes)
        : sim_(sim),
          dynamics_(dynamics),
          pending_(pending),
          controlBytes_(controlBytes),
          n_(controlBytes.rows()),
          probe_(Matrix<Bytes>::square(n_, 0.0)),
          burstBefore_(dynamics.activeBurstMoved(n_))
    {
        for (DcId i = 0; i < n_; ++i)
            for (DcId j = 0; j < n_; ++j)
                probe_.at(i, j) = -sim_.pairBytes(i, j);
        for (const auto &[id, t] : pending_)
            jobMoved_[id] = sim_.status(id).bytesMoved;
    }

    ~ControlProbe()
    {
        // Bursts settle their own bill via burstBytes when they
        // stop; here only their in-window progress is netted out.
        const Matrix<Bytes> burstAfter =
            dynamics_.activeBurstMoved(n_);
        for (DcId i = 0; i < n_; ++i)
            for (DcId j = 0; j < n_; ++j)
                probe_.at(i, j) += sim_.pairBytes(i, j) -
                                   (burstAfter.at(i, j) -
                                    burstBefore_.at(i, j));
        for (const auto &[id, t] : pending_)
            probe_.at(t.src, t.dst) -=
                sim_.status(id).bytesMoved - jobMoved_[id];
        for (DcId i = 0; i < n_; ++i)
            for (DcId j = 0; j < n_; ++j)
                controlBytes_.at(i, j) +=
                    std::max(0.0, probe_.at(i, j));
    }

    ControlProbe(const ControlProbe &) = delete;
    ControlProbe &operator=(const ControlProbe &) = delete;

  private:
    NetworkSim &sim_;
    const DynamicsState &dynamics_;
    const std::map<TransferId, PendingTransfer> &pending_;
    Matrix<Bytes> &controlBytes_;
    std::size_t n_;
    Matrix<Bytes> probe_;
    Matrix<Bytes> burstBefore_;
    std::map<TransferId, Bytes> jobMoved_;
};

} // namespace

VmId
shuffleEndpointVm(const net::Topology &topo, DcId dc)
{
    panicIf(topo.dc(dc).vms.empty(), "engine: DC without VMs");
    return topo.dc(dc).vms.front();
}

StageContext
makeStageContext(const net::Topology &topo, const JobSpec &job,
                 std::size_t stageIdx,
                 const std::vector<Bytes> &inputByDc,
                 const Matrix<Mbps> &bw)
{
    StageContext ctx;
    ctx.topo = &topo;
    ctx.bw = &bw;
    ctx.inputByDc = inputByDc;
    ctx.stage = &job.stages[stageIdx];
    ctx.stageIndex = stageIdx;

    const std::size_t n = topo.dcCount();
    ctx.computeRate.assign(n, 0.0);
    ctx.egressPrice.assign(n, 0.0);
    for (DcId dc = 0; dc < n; ++dc) {
        for (VmId v : topo.dc(dc).vms)
            ctx.computeRate[dc] += topo.vm(v).type.computeRate;
        ctx.egressPrice[dc] = topo.dc(dc).region.egressPerGb;
    }
    return ctx;
}

Engine::Engine(net::Topology topo, net::NetworkSimConfig simCfg,
               std::uint64_t seed)
    : topo_(std::move(topo)), simCfg_(simCfg), seed_(seed)
{}

StageContext
Engine::makeContext(const JobSpec &job, std::size_t stageIdx,
                    const std::vector<Bytes> &inputByDc,
                    const Matrix<Mbps> &bw) const
{
    return makeStageContext(topo_, job, stageIdx, inputByDc, bw);
}

QueryResult
Engine::run(const JobSpec &job, const std::vector<Bytes> &inputByDc,
            Scheduler &scheduler, const RunOptions &opts)
{
    const std::size_t n = topo_.dcCount();
    fatalIf(job.stages.empty(), "Engine::run: job has no stages");
    fatalIf(inputByDc.size() != n,
            "Engine::run: input distribution size mismatch");
    fatalIf(opts.schedulerBw.rows() != n ||
                opts.schedulerBw.cols() != n,
            "Engine::run: scheduler BW matrix shape mismatch");

    std::uint64_t runSeed = seed_ + 0x9e37 * (++runCounter_);
    NetworkSim sim(topo_, simCfg_, runSeed);
    Rng rng(runSeed ^ 0xc0ffee);
    const bool eventClock = opts.clock == ClockMode::EventDriven;

    // Scenario time zero is job start: install initial conditions
    // before WANify snapshots the network, so prediction and planning
    // see the scenario's opening state.
    DynamicsState dynamics(opts.dynamics, sim, topo_);
    dynamics.advanceTo(sim.now());

    // --- WANify deployment (Section 4.1) ---------------------------------
    core::GlobalPlan plan;
    core::Wanify::Deployment deployment;
    auto &agents = deployment.agents;
    Matrix<Mbps> predicted;
    Seconds epoch = 1.0;
    // The run pins one predictor snapshot up front: retrains by
    // concurrent trials may swap the facade's published model at any
    // time, but this run's predictions (and its own warm starts)
    // evolve only from the pinned lineage, keeping every trial
    // deterministic in its seed alone.
    std::shared_ptr<const core::RuntimeBwPredictor> model;
    if (opts.wanify != nullptr) {
        model = opts.wanify->predictorSnapshot();
        if (opts.predictedBwOverride.has_value()) {
            predicted = *opts.predictedBwOverride;
        } else {
            fatalIf(model == nullptr || !model->trained(),
                    "Engine::run: WANify predictor not trained");
            predicted = opts.wanify->predictRuntimeBw(sim, rng,
                                                      *model);
        }
        plan = opts.wanify->plan(predicted, opts.skewWeights,
                                 opts.rvec);
        deployment = opts.wanify->deploy(sim, plan, predicted);
        epoch = opts.wanify->config().aimd.epoch;
    }

    // Out-of-date model detection (Section 3.3.4): the paper
    // intermittently compares predicted BWs against observed runtime
    // values on the monitoring plane. The simulator's stand-in for
    // that re-measurement is the shared capacity-factor gauge
    // (core/drift.hh): quiet under stationary noise and WANify's own
    // throttling, firing when the scenario moves real capacity away
    // from what the model was calibrated on.
    core::CapacityDriftGauge drift(
        opts.wanify != nullptr ? opts.wanify->config().drift
                               : core::DriftConfig{},
        n);
    drift.rebase(sim);

    auto connectionsFor = [&](DcId i, DcId j) -> int {
        if (!agents.empty())
            return 1; // agents overwrite via applyTargets()
        if (opts.wanify != nullptr &&
            opts.wanify->config().features.globalOptimization) {
            // Global-only ablation: fixed at the plan's maximum.
            return plan.maxCons.at(i, j);
        }
        if (!opts.staticConnections.empty())
            return std::max(1, opts.staticConnections.at(i, j));
        return 1;
    };

    QueryResult result;
    result.wanBytesByPair = Matrix<Bytes>::square(n, 0.0);
    Matrix<Bytes> bytesAtStart = Matrix<Bytes>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i)
        for (DcId j = 0; j < n; ++j)
            bytesAtStart.at(i, j) = sim.pairBytes(i, j);

    // WANify's own mid-run re-measurement probes (retrain path) are
    // control-plane traffic: collected here and excluded from the
    // query's bill, consistent with the initial snapshot (measured
    // before bytesAtStart) and with flash-crowd bursts.
    Matrix<Bytes> controlBytes = Matrix<Bytes>::square(n, 0.0);

    // Training rows gauged at runtime accumulate across this run's
    // retrains (Section 3.3.4: "the additionally collected samples");
    // each warm start trains its extra trees on the union so far.
    ml::Dataset gaugedRows(monitor::kFeatureCount, 1);
    double preErrSum = 0.0, postErrSum = 0.0;

    const Seconds jobStart = sim.now();
    std::vector<Bytes> stageInput = inputByDc;
    bool sawWanTraffic = false;

    // --- fault injection & recovery state ----------------------------
    // Null `faults` keeps every code path below structurally identical
    // to a fault-free build: the lambdas exist but are never invoked
    // with work to do, and the stage loop schedules no extra events.
    const fault::FaultPlan *faults = opts.faults;
    if (faults == nullptr && opts.dynamics != nullptr)
        faults = opts.dynamics->faultPlan();
    if (faults != nullptr && faults->empty())
        faults = nullptr;
    fatalIf(faults != nullptr && faults->dcCount() != n,
            "Engine::run: fault plan compiled for a different cluster "
            "size");
    fault::PredictorHealth health(opts.predictorHealth);
    std::vector<char> agentCrashed(n, 0);
    Seconds faultCursor = -1.0;
    std::uint64_t retryRngState = runSeed ^ 0xfa177e7ULL;
    auto notePredictorMode = [&]() {
        ++result.predictorModeSwitches;
        result.worstPredictorMode =
            std::max(result.worstPredictorMode,
                     static_cast<int>(health.mode()));
    };

    // Per-stage execution state, hoisted to run scope so the recovery
    // lambdas and the retrain path share one view of the in-flight
    // stage; reset at the top of each stage. The EventClock's seq
    // counter keeps running across clear(), so hoisting it preserves
    // the pre-fault pop order bit for bit.
    std::map<TransferId, PendingTransfer> pending;
    std::vector<PendingTransfer> retired;
    Matrix<Bytes> assignment;
    EventClock clock;
    std::vector<RetryItem> retries;
    std::size_t stageIdx = 0;

    // Forecast-aware planning state: warm-start memory for the
    // fraction-search schedulers (per run, because scheduler
    // instances are shared across parallel trials and must stay
    // stateless) and the gauge trend that backs deployed-mode
    // forecasts when no dynamics timetable exists.
    PlanMemory planMemory;
    core::GaugeTrend trend;
    if (opts.wanify != nullptr && !predicted.empty())
        trend.record(sim.now(), predicted);
    auto buildForecast = [&]() -> core::BwForecast {
        if (!opts.forecast.enabled)
            return {};
        if (opts.dynamics != nullptr)
            return scenario::forecastFromDynamics(
                *opts.dynamics, opts.schedulerBw, sim.now(),
                opts.forecast);
        if (trend.ready())
            return trend.forecast(sim.now(), opts.forecast.horizon,
                                  opts.forecast.step);
        return {};
    };

    // --- fault recovery machinery ------------------------------------
    // Start (or blackout-defer) one shuffle transfer whose bytes are
    // already counted in `assignment`. A pair that is dark right now
    // holds its bytes back in the retry queue (and out of the
    // assignment) until the blackout clears.
    auto startShuffleTransfer = [&](DcId i, DcId j, Bytes bytes,
                                    std::size_t attempt) -> bool {
        if (faults != nullptr &&
            faults->pairBlackedOutAt(i, j, sim.now())) {
            assignment.at(i, j) -= bytes;
            const Seconds due =
                faults->blackoutClearTime(i, j, sim.now());
            result.backoffSeconds += due - sim.now();
            retries.push_back({i, j, bytes, attempt, due});
            clock.push(due, ClockEventKind::RetryDue);
            return false;
        }
        const TransferId id = sim.startTransfer(
            shuffleEndpointVm(topo_, i), shuffleEndpointVm(topo_, j),
            bytes, connectionsFor(i, j));
        pending[id] = {i, j, bytes, 0.0, attempt};
        return true;
    };

    // A transfer that exhausted its retry budget re-places its
    // undelivered bytes as a fresh residual placement with the dead
    // pair's believed bandwidth floored, so the fraction search routes
    // around it (the replan-of-undelivered-bytes path, alternate-path
    // flavor). No warm-start memory: the penalized belief has a
    // different shape than the stage's original plan.
    auto replanResidual = [&](DcId src, DcId dst, Bytes bytes) {
        ++result.faultReplans;
        std::vector<Bytes> residual(n, 0.0);
        residual[src] = bytes;
        Matrix<Mbps> penalized = opts.schedulerBw;
        penalized.at(src, dst) = core::BwForecast::kMinFeasibleMbps;
        StageContext rctx =
            makeContext(job, stageIdx, residual, penalized);
        const core::BwForecast fc = buildForecast();
        if (!fc.empty()) {
            rctx.forecast = &fc;
            rctx.planTime = sim.now();
        }
        const Matrix<Bytes> placed = scheduler.placeStage(rctx);
        for (DcId i = 0; i < n; ++i) {
            for (DcId j = 0; j < n; ++j) {
                const Bytes b = placed.at(i, j);
                if (b < 1.0)
                    continue;
                assignment.at(i, j) += b;
                if (i == j)
                    continue;
                startShuffleTransfer(i, j, b, 0);
            }
        }
    };

    // Kill one in-flight transfer: retire its delivered part, drop the
    // remainder from the assignment, and either queue a backed-off
    // retry or fall through to the residual replan.
    auto abortTransfer = [&](TransferId id) {
        auto it = pending.find(id);
        if (it == pending.end())
            return;
        const auto status = sim.status(id);
        if (!status.exists || status.done ||
            status.bytesRemaining < 1.0)
            return; // effectively delivered; completion handling owns it
        const PendingTransfer t = it->second;
        assignment.at(t.src, t.dst) -= status.bytesRemaining;
        if (status.bytesMoved >= 1.0) {
            PendingTransfer part = t;
            part.bytes = status.bytesMoved;
            part.done = sim.now();
            retired.push_back(part);
        }
        sim.stopTransfer(id);
        pending.erase(it);
        ++result.transferAborts;
        result.lostBytes += status.bytesRemaining;
        if (t.attempt + 1 < opts.retry.maxAttempts) {
            Seconds due = sim.now() +
                          opts.retry.backoff(t.attempt,
                                             splitmix64(retryRngState));
            if (faults != nullptr)
                due = std::max(due, faults->blackoutClearTime(
                                        t.src, t.dst, due));
            result.backoffSeconds += due - sim.now();
            retries.push_back({t.src, t.dst, status.bytesRemaining,
                               t.attempt + 1, due});
            clock.push(due, ClockEventKind::RetryDue);
        } else {
            replanResidual(t.src, t.dst, status.bytesRemaining);
        }
    };

    // Launch every queued retry whose backoff has expired. A retry
    // that finds its pair dark again nets back out of the assignment
    // and re-queues with a later due time, so the index scan below
    // never revisits it this pass.
    auto startDueRetries = [&]() {
        for (std::size_t k = 0; k < retries.size();) {
            if (retries[k].due > sim.now() + 1.0e-9) {
                ++k;
                continue;
            }
            const RetryItem item = retries[k];
            retries.erase(retries.begin() +
                          static_cast<std::ptrdiff_t>(k));
            assignment.at(item.src, item.dst) += item.bytes;
            if (startShuffleTransfer(item.src, item.dst, item.bytes,
                                     item.attempt) &&
                item.attempt > 0)
                ++result.transferRetries;
        }
    };

    auto crashAgentAt = [&](int dc) {
        ++result.agentCrashes;
        if (agentCrashed[static_cast<std::size_t>(dc)])
            return;
        agentCrashed[static_cast<std::size_t>(dc)] = 1;
        // The dead agent's throttles dissolve: its outgoing pairs fall
        // back to unthrottled contention until it restarts.
        for (DcId j = 0; j < n; ++j)
            if (static_cast<DcId>(dc) != j)
                sim.setTcLimit(static_cast<DcId>(dc), j, 0.0);
    };
    auto restartCrashedAgents = [&](Seconds t) {
        for (DcId dc = 0; dc < n; ++dc) {
            if (!agentCrashed[dc] || faults->agentCrashedAt(
                                         static_cast<int>(dc), t))
                continue;
            agentCrashed[dc] = 0;
            for (auto &agent : agents) {
                if (agent->sourceDc() != dc)
                    continue;
                agent->applyTargets();
                agent->resetWindow();
            }
        }
    };
    // Crashed agents must not re-throttle, so a redeploy (which
    // installs fresh static throttles for every DC) re-clears theirs.
    auto clearCrashedThrottles = [&]() {
        for (DcId dc = 0; dc < n; ++dc)
            if (agentCrashed[dc])
                for (DcId j = 0; j < n; ++j)
                    if (dc != j)
                        sim.setTcLimit(dc, j, 0.0);
    };

    // Fire every fault whose start lies in (faultCursor, t], then
    // restart agents whose crash windows have closed. ProbeLoss /
    // GaugeTimeout have no edge action — the retrain path queries
    // their windows at gauge time.
    auto applyFaultsUpTo = [&](Seconds t) {
        if (faults == nullptr)
            return;
        std::vector<std::size_t> started;
        faults->startsIn(faultCursor, t, started);
        for (std::size_t fi : started) {
            const fault::CompiledFault &cf = faults->events()[fi];
            ++result.faultsInjected;
            switch (cf.ev.kind) {
            case fault::FaultKind::TransferAbort: {
                std::vector<TransferId> hit;
                for (const auto &[id, tr] : pending)
                    if ((cf.ev.src == fault::kAnyDc ||
                         static_cast<DcId>(cf.ev.src) == tr.src) &&
                        (cf.ev.dst == fault::kAnyDc ||
                         static_cast<DcId>(cf.ev.dst) == tr.dst))
                        hit.push_back(id);
                for (const TransferId id : hit)
                    abortTransfer(id);
                break;
            }
            case fault::FaultKind::DcBlackout: {
                ++result.blackouts;
                std::vector<TransferId> hit;
                for (const auto &[id, tr] : pending)
                    if (tr.src == static_cast<DcId>(cf.ev.dc) ||
                        tr.dst == static_cast<DcId>(cf.ev.dc))
                        hit.push_back(id);
                for (const TransferId id : hit)
                    abortTransfer(id);
                break;
            }
            case fault::FaultKind::AgentCrash:
                crashAgentAt(cf.ev.dc);
                break;
            case fault::FaultKind::ProbeLoss:
            case fault::FaultKind::GaugeTimeout:
                break;
            }
        }
        faultCursor = std::max(faultCursor, t);
        restartCrashedAgents(t);
    };

    // The online learning loop (Section 3.3.4), invoked when the
    // drift gauge fires under adaptOnDrift: clear the stale
    // throttles, gauge the live network (snapshot + one epoch of
    // stable mesh BW — this costs measurement time, as in the
    // paper), convert the gauge into training rows, warm-start
    // retrain the pinned model, then re-predict from a second
    // out-of-sample gauge, re-plan, and redeploy fresh agents. The
    // ControlProbe brackets the whole window so the probes bill to
    // WANify's control plane, not the query.
    auto retrainAndRedeploy =
        [&](Seconds &nextEpoch) {
            fault::FaultKind gaugeKind = fault::FaultKind::ProbeLoss;
            if (faults != nullptr &&
                faults->gaugeFaultAt(sim.now(), &gaugeKind)) {
                // The gauge never lands: no training rows, no fresh
                // prediction. A hung probe (GaugeTimeout) still costs
                // the measurement epoch; a fast error (ProbeLoss)
                // does not. Step the health ladder down and re-plan
                // from the best belief the ladder still allows —
                // trend extrapolation, then the static a-priori
                // matrix.
                ++result.gaugeFaults;
                if (gaugeKind == fault::FaultKind::GaugeTimeout)
                    sim.runUntilAllComplete(sim.now() + epoch);
                if (health.recordFailure())
                    notePredictorMode();
                Matrix<Mbps> belief;
                if (health.mode() == fault::PredictorMode::Trend &&
                    trend.size() > 0) {
                    belief = trend.extrapolateAt(sim.now());
                    ++result.trendPlans;
                } else {
                    belief = opts.schedulerBw;
                    ++result.staticPlans;
                }
                // Sanitize: the ladder exists precisely because bad
                // data shows up on this path.
                for (DcId i = 0; i < n; ++i)
                    for (DcId j = 0; j < n; ++j)
                        if (!std::isfinite(belief.at(i, j)) ||
                            belief.at(i, j) < 0.0)
                            belief.at(i, j) =
                                opts.schedulerBw.at(i, j);
                deployment.clear(sim);
                plan = opts.wanify->plan(belief, opts.skewWeights,
                                         opts.rvec);
                deployment = opts.wanify->deploy(sim, plan, belief);
                for (auto &agent : agents) {
                    if (agentCrashed[agent->sourceDc()])
                        continue;
                    agent->applyTargets();
                    agent->resetWindow();
                }
                clearCrashedThrottles();
                predicted = belief;
                // Do not trend.record(): feeding extrapolations back
                // into the trend would let the ladder hallucinate.
                nextEpoch = sim.now();
                return;
            }
            // Scoped so the probe settles its control-plane bill
            // before any re-planned transfer starts; a transfer
            // opened inside the window would otherwise be misread
            // as probe traffic.
            {
            deployment.clear(sim);
            const ControlProbe probe(sim, dynamics, pending,
                                     controlBytes);

            // Gauge A: the stale model's error under current
            // conditions, and the training rows.
            const auto gaugeA =
                opts.wanify->gaugeRuntime(sim, rng, *model);
            preErrSum +=
                meanAbsOffDiag(gaugeA.predicted, gaugeA.stable);
            core::CollectedMesh mesh;
            mesh.clusterSize = n;
            mesh.snapshotBw = gaugeA.snapshot;
            mesh.stableBw = gaugeA.stable;
            std::uint64_t retrainState =
                runSeed ^ (0x9e3779b97f4a7c15ULL *
                           (result.retrainsApplied + 1));
            const std::uint64_t retrainSeed =
                splitmix64(retrainState);
            const ml::Dataset *trainingRows;
            if (opts.campaign != nullptr) {
                // Cross-run campaign: the gauge joins the shared
                // incremental dataset and the warm start learns from
                // every run's gauges.
                opts.campaign->absorb(topo_, {mesh}, retrainSeed);
                trainingRows = &opts.campaign->incremental();
            } else {
                core::BandwidthAnalyzer::appendRows(gaugedRows,
                                                    topo_, mesh,
                                                    rng);
                trainingRows = &gaugedRows;
            }

            // Warm-start retrain the pinned lineage; publishing
            // (opt-in) atomically swaps the facade's model for
            // future runs. The wall time is real control-plane
            // stall (the query waits to re-plan), reported per
            // retrain so benches can show what adapting costs.
            const auto retrainT0 =
                std::chrono::steady_clock::now();
            model = opts.wanify->retrain(
                *trainingRows, retrainSeed, model,
                opts.publishRetrainedModel);
            const double retrainSecs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - retrainT0)
                    .count();
            result.retrainLatencies.push_back(retrainSecs);
            result.retrainCpuSeconds += retrainSecs;

            // Gauge B: fresh snapshot + stable mesh, out-of-sample
            // for the new trees — the post-retrain error, and the
            // matrix the redeployment plans from.
            const auto gaugeB =
                opts.wanify->gaugeRuntime(sim, rng, *model);
            postErrSum +=
                meanAbsOffDiag(gaugeB.predicted, gaugeB.stable);
            ++result.retrainsApplied;
            predicted = gaugeB.predicted;

            plan = opts.wanify->plan(predicted, opts.skewWeights,
                                     opts.rvec);
            deployment =
                opts.wanify->deploy(sim, plan, predicted);
            for (auto &agent : agents) {
                if (faults != nullptr &&
                    agentCrashed[agent->sourceDc()])
                    continue;
                agent->applyTargets();
                agent->resetWindow();
            }
            if (faults != nullptr)
                clearCrashedThrottles();
            }
            trend.record(sim.now(), predicted);
            // A gauge landed: the predictor proved itself, so the
            // degradation ladder steps one rung back up.
            if (faults != nullptr && health.recordSuccess())
                notePredictorMode();

            // Incremental re-plan: stop what is still in flight,
            // re-place only the undelivered bytes under the
            // retrained belief (warm-started from this stage's
            // previous plan), and restart. Delivered bytes stay
            // where they landed; the effective assignment matrix is
            // updated so the compute phase and the next stage's
            // input see the true landing spots.
            if (opts.forecast.enabled && opts.replanOnRetrain) {
                std::vector<Bytes> residual(n, 0.0);
                std::vector<TransferId> liveIds;
                for (const auto &[id, t] : pending) {
                    const auto st = sim.status(id);
                    if (!st.exists || st.done ||
                        st.bytesRemaining < 1.0)
                        continue;
                    residual[t.src] += st.bytesRemaining;
                    liveIds.push_back(id);
                }
                if (!liveIds.empty()) {
                    for (const TransferId id : liveIds) {
                        const auto st = sim.status(id);
                        PendingTransfer part = pending.at(id);
                        assignment.at(part.src, part.dst) -=
                            st.bytesRemaining;
                        part.bytes = st.bytesMoved;
                        part.done = sim.now();
                        sim.stopTransfer(id);
                        retired.push_back(part);
                        pending.erase(id);
                    }
                    StageContext rctx = makeContext(
                        job, stageIdx, residual, opts.schedulerBw);
                    rctx.memory = &planMemory;
                    const core::BwForecast fc = buildForecast();
                    if (!fc.empty()) {
                        rctx.forecast = &fc;
                        rctx.planTime = sim.now();
                    }
                    const Matrix<Bytes> replaced =
                        scheduler.placeStage(rctx);
                    for (DcId i = 0; i < n; ++i) {
                        for (DcId j = 0; j < n; ++j) {
                            const Bytes bytes = replaced.at(i, j);
                            if (bytes < 1.0)
                                continue;
                            assignment.at(i, j) += bytes;
                            if (i == j)
                                continue;
                            startShuffleTransfer(i, j, bytes, 0);
                        }
                    }
                }
            }
            nextEpoch = sim.now();
        };

    for (std::size_t s = 0; s < job.stages.size(); ++s) {
        const StageSpec &spec = job.stages[s];
        StageResult stageResult;
        stageResult.name = spec.name;
        stageResult.start = sim.now();

        stageIdx = s;
        pending.clear();
        retired.clear();
        retries.clear();
        clock.clear();
        // Faults due before the shuffle opens (e.g. a crash during the
        // previous compute phase's tail) take effect now, so placement
        // and the blackout check below see the true fault state.
        applyFaultsUpTo(sim.now());

        StageContext ctx =
            makeContext(job, s, stageInput, opts.schedulerBw);
        ctx.memory = &planMemory;
        const core::BwForecast stageForecast = buildForecast();
        if (!stageForecast.empty()) {
            ctx.forecast = &stageForecast;
            ctx.planTime = sim.now();
        }
        assignment = scheduler.placeStage(ctx);
        fatalIf(assignment.rows() != n || assignment.cols() != n,
                "Engine::run: scheduler assignment shape mismatch");

        // --- shuffle phase ------------------------------------------------
        for (DcId i = 0; i < n; ++i) {
            for (DcId j = 0; j < n; ++j) {
                const Bytes bytes = assignment.at(i, j);
                if (i == j || bytes < 1.0)
                    continue;
                startShuffleTransfer(i, j, bytes, 0);
            }
        }
        for (auto &agent : agents) {
            if (faults != nullptr && agentCrashed[agent->sourceDc()])
                continue;
            agent->applyTargets();
            agent->resetWindow();
        }

        const Seconds shuffleStart = sim.now();
        const Seconds guardEnd = shuffleStart + opts.maxStageSeconds;

        // Both clock modes run the same loop over an EventClock; the
        // epoch-quantized mode simply never schedules dynamics edges,
        // which reduces the queue to the legacy min(nextEpoch,
        // guardEnd) stride — identical runUntilAllComplete targets,
        // identical arithmetic (each tick is pushed at the popped
        // tick's time + epoch, the same accumulation the legacy
        // `nextEpoch += epoch` performed).
        clock.push(guardEnd, ClockEventKind::StageGuard);
        clock.push(shuffleStart + epoch, ClockEventKind::EpochTick);
        if (eventClock && opts.dynamics != nullptr) {
            std::vector<scenario::ChangePoint> edges;
            opts.dynamics->changePointsIn(shuffleStart, guardEnd,
                                          edges);
            for (const scenario::ChangePoint &cp : edges)
                clock.push(cp.time,
                           cp.kind == scenario::ChangeKind::Factor
                               ? ClockEventKind::DynamicsChange
                               : ClockEventKind::BurstEdge);
        }
        if (faults != nullptr) {
            // Fault starts and window-clear instants are first-class
            // events in BOTH clock modes: recovery must not wait for
            // the epoch grid.
            std::vector<Seconds> faultEdges;
            faults->edgesIn(shuffleStart, guardEnd, faultEdges);
            for (const Seconds t : faultEdges)
                clock.push(t, ClockEventKind::FaultEdge);
        }

        while (!sim.allTransfersDone() || !retries.empty()) {
            panicIf(clock.empty(),
                    "engine: event clock ran dry before the guard");
            const ClockEvent ev = clock.pop();
            // Stale events (a retrain consumed simulated time past
            // them) make this a no-op; the handler below then applies
            // dynamics at now() rather than rewinding to ev.time.
            sim.runUntilAllComplete(ev.time);
            if (sim.allTransfersDone() && retries.empty())
                break;
            if (faults != nullptr && sim.allTransfersDone() &&
                ev.time > sim.now()) {
                // Nothing in flight but retries are waiting out their
                // backoff: runUntilAllComplete returns without moving
                // an idle sim, so idle-wait explicitly.
                sim.advanceBy(ev.time - sim.now());
            }
            if (ev.kind == ClockEventKind::StageGuard) {
                logging::warn("stage '" + spec.name +
                              "' hit the per-stage guard");
                // Abort stragglers so they cannot leak into later
                // stages; they are billed as if finishing now.
                // Queued retries die with the stage — their bytes
                // already left the assignment.
                for (const auto &[id, t] : pending)
                    sim.stopTransfer(id);
                retries.clear();
                break;
            }
            if (ev.kind == ClockEventKind::FaultEdge) {
                dynamics.advanceTo(sim.now());
                applyFaultsUpTo(sim.now());
                startDueRetries();
                continue;
            }
            if (ev.kind == ClockEventKind::RetryDue) {
                dynamics.advanceTo(sim.now());
                startDueRetries();
                continue;
            }
            if (ev.kind != ClockEventKind::EpochTick) {
                // A dynamics edge at its true instant: install the
                // new conditions (and open/close bursts) mid-epoch.
                // When the edge coincides with a tick, the tick pops
                // first (kind order) and this is an idempotent no-op.
                dynamics.advanceTo(sim.now());
                continue;
            }
            Seconds tickBase = ev.time;
            applyFaultsUpTo(sim.now());
            for (auto &agent : agents) {
                if (faults != nullptr &&
                    agentCrashed[agent->sourceDc()])
                    continue;
                agent->onEpoch();
            }
            dynamics.advanceTo(sim.now());

            if (opts.wanify != nullptr) {
                drift.observe(sim);
                result.driftObservations += drift.meshSize();
                result.driftErrorFraction =
                    std::max(result.driftErrorFraction,
                             drift.errorFraction());
                if (drift.needsRetraining()) {
                    ++result.retrainTriggers;
                    if (opts.adaptOnDrift &&
                        !opts.predictedBwOverride.has_value() &&
                        model != nullptr && model->trained()) {
                        retrainAndRedeploy(tickBase);
                    }
                    // With or without the adaptive path, the model
                    // is considered recalibrated on current
                    // conditions from here.
                    drift.rebase(sim);
                }
            }
            if (faults != nullptr) {
                // A retrain may have consumed time past queued retry
                // deadlines; launch the stale ones now.
                startDueRetries();
            }
            clock.push(tickBase + epoch, ClockEventKind::EpochTick);
        }

        // Collect completion times per transfer.
        for (const auto &rec : sim.drainCompletions()) {
            auto it = pending.find(rec.id);
            if (it != pending.end())
                it->second.done = rec.time;
        }

        // Min pair BW: the paper's "minimum BW of the cluster" — the
        // slowest pair's average achieved rate over its active period.
        std::vector<Seconds> transferDone(n, shuffleStart);
        Mbps minPairBw = 0.0;
        auto accountTransfer = [&](const PendingTransfer &t) {
            const Seconds done = t.done > 0.0 ? t.done : sim.now();
            transferDone[t.dst] = std::max(transferDone[t.dst], done);
            stageResult.wanBytes += t.bytes;
            if (t.bytes >= kMinAccountedBytes) {
                const Seconds duration =
                    std::max(1.0e-6, done - shuffleStart);
                const Mbps avg = units::rateFor(t.bytes, duration);
                minPairBw = minPairBw == 0.0
                                ? avg
                                : std::min(minPairBw, avg);
            }
        };
        for (const auto &[id, t] : pending)
            accountTransfer(t);
        // Transfers retired mid-stage by an incremental re-plan:
        // their delivered portion is real WAN traffic of this stage.
        for (const PendingTransfer &t : retired)
            accountTransfer(t);
        stageResult.minPairBw = minPairBw;
        stageResult.transferEnd = sim.now();
        if (minPairBw > 0.0) {
            sawWanTraffic = true;
            result.minObservedBw =
                result.minObservedBw == 0.0
                    ? minPairBw
                    : std::min(result.minObservedBw, minPairBw);
        }

        // --- compute phase ------------------------------------------------
        std::vector<Bytes> nextInput(n, 0.0);
        Seconds stageEnd = sim.now();
        for (DcId j = 0; j < n; ++j) {
            Bytes atJ = 0.0;
            for (DcId i = 0; i < n; ++i)
                atJ += assignment.at(i, j);
            const double rate = std::max(1.0e-9, ctx.computeRate[j]);
            const Seconds compute =
                units::toMegabytes(atJ) * spec.workPerMb / rate;
            stageEnd = std::max(stageEnd, transferDone[j] + compute);
            nextInput[j] = atJ * spec.selectivity;
        }
        if (eventClock && opts.dynamics != nullptr) {
            // Step through the window's burst edges so flash crowds
            // open and close at their true instants even though the
            // job itself moves no bytes here — the case the epoch
            // clock structurally cannot express (a burst opening
            // mid-compute used to wait for the phase to end). Factor
            // edges only matter mid-compute while burst flows are
            // live; with an idle mesh they are batched to the phase
            // end exactly as the epoch clock does, which keeps the
            // two clocks bit-identical on burst-free windows (no
            // extra advanceBy splits).
            std::vector<scenario::ChangePoint> edges;
            opts.dynamics->changePointsIn(sim.now(), stageEnd, edges);
            std::stable_sort(
                edges.begin(), edges.end(),
                [](const scenario::ChangePoint &a,
                   const scenario::ChangePoint &b) {
                    return a.time != b.time ? a.time < b.time
                                            : a.kind < b.kind;
                });
            for (const scenario::ChangePoint &cp : edges) {
                if (cp.kind == scenario::ChangeKind::Factor &&
                    sim.activeTransferCount() == 0)
                    continue;
                if (cp.time > sim.now())
                    sim.advanceBy(cp.time - sim.now());
                dynamics.advanceTo(sim.now());
            }
        }
        if (stageEnd > sim.now())
            sim.advanceBy(stageEnd - sim.now());
        // Keep the scenario clock current through the compute phase
        // so the next stage's shuffle starts under the right
        // conditions (for the epoch clock this is the only dynamics
        // application of the phase: rates only matter while
        // transfers are active).
        dynamics.advanceTo(sim.now());
        // Crashes and recoveries during the compute phase land here;
        // transfer-killing faults are no-ops (everything delivered).
        applyFaultsUpTo(sim.now());
        stageResult.end = sim.now();

        result.stages.push_back(stageResult);
        stageInput = std::move(nextInput);
    }

    if (opts.wanify != nullptr)
        deployment.clear(sim);
    dynamics.finish();

    result.latency = sim.now() - jobStart;
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            // Flash-crowd bursts are other tenants' data and the
            // retrain probes are WANify's control plane: neither is
            // billed to the query.
            result.wanBytesByPair.at(i, j) = std::max(
                0.0, sim.pairBytes(i, j) - bytesAtStart.at(i, j) -
                         dynamics.burstBytes().at(i, j) -
                         controlBytes.at(i, j));
        }
    }

    const cost::CostModel costModel(topo_);
    result.cost = costModel.queryCost(
        result.latency, result.wanBytesByPair,
        units::toGigabytes(job.inputBytes));

    if (result.retrainsApplied > 0) {
        result.preRetrainError =
            preErrSum / static_cast<double>(result.retrainsApplied);
        result.postRetrainError =
            postErrSum / static_cast<double>(result.retrainsApplied);
    }

    if (!sawWanTraffic)
        result.minObservedBw = 0.0;
    return result;
}

} // namespace gda
} // namespace wanify
