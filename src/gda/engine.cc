#include "gda/engine.hh"

#include <algorithm>
#include <map>

#include "common/error.hh"
#include "common/logging.hh"
#include "scenario/scenario.hh"

namespace wanify {
namespace gda {

using net::DcId;
using net::NetworkSim;
using net::TransferId;
using net::VmId;

namespace {

constexpr Bytes kMinAccountedBytes = 1024.0 * 1024.0; // 1 MB

/** First VM of a DC carries that DC's shuffle endpoints. */
VmId
endpointVm(const net::Topology &topo, DcId dc)
{
    panicIf(topo.dc(dc).vms.empty(), "engine: DC without VMs");
    return topo.dc(dc).vms.front();
}

/**
 * Per-run dynamics state: applies the (shared, immutable) scenario
 * timeline to this run's simulator and drives the shared burst
 * cursor, accounting burst bytes so flash-crowd traffic is not
 * billed to the query.
 */
class DynamicsState
{
  public:
    DynamicsState(const scenario::Dynamics *dyn, NetworkSim &sim,
                  const net::Topology &topo)
        : dyn_(dyn),
          sim_(sim),
          cursor_(dyn),
          burstBytes_(Matrix<Bytes>::square(topo.dcCount(), 0.0))
    {
        fatalIf(dyn_ != nullptr && dyn_->dcCount() != 0 &&
                    dyn_->dcCount() != topo.dcCount(),
                "Engine: dynamics compiled for a different cluster "
                "size");
    }

    /** Install conditions of scenario time @p t; open bursts due in
     *  (lastT, t] and close the expired ones. */
    void
    advanceTo(Seconds t)
    {
        if (dyn_ == nullptr)
            return;
        dyn_->applyAt(sim_, t);
        cursor_.advanceTo(sim_, t, &burstBytes_);
    }

    /** Stop every remaining burst and settle the byte accounting. */
    void
    finish()
    {
        cursor_.finish(sim_, &burstBytes_);
    }

    const Matrix<Bytes> &burstBytes() const { return burstBytes_; }

    /** Bytes the currently active bursts have moved so far. */
    Matrix<Bytes>
    activeBurstMoved(std::size_t n) const
    {
        Matrix<Bytes> out = Matrix<Bytes>::square(n, 0.0);
        cursor_.accumulateMoved(sim_, out);
        return out;
    }

  private:
    const scenario::Dynamics *dyn_;
    NetworkSim &sim_;
    scenario::BurstCursor cursor_;
    Matrix<Bytes> burstBytes_;
};

} // namespace

Engine::Engine(net::Topology topo, net::NetworkSimConfig simCfg,
               std::uint64_t seed)
    : topo_(std::move(topo)), simCfg_(simCfg), seed_(seed)
{}

StageContext
Engine::makeContext(const JobSpec &job, std::size_t stageIdx,
                    const std::vector<Bytes> &inputByDc,
                    const Matrix<Mbps> &bw) const
{
    StageContext ctx;
    ctx.topo = &topo_;
    ctx.bw = &bw;
    ctx.inputByDc = inputByDc;
    ctx.stage = &job.stages[stageIdx];
    ctx.stageIndex = stageIdx;

    const std::size_t n = topo_.dcCount();
    ctx.computeRate.assign(n, 0.0);
    ctx.egressPrice.assign(n, 0.0);
    for (DcId dc = 0; dc < n; ++dc) {
        for (VmId v : topo_.dc(dc).vms)
            ctx.computeRate[dc] += topo_.vm(v).type.computeRate;
        ctx.egressPrice[dc] = topo_.dc(dc).region.egressPerGb;
    }
    return ctx;
}

QueryResult
Engine::run(const JobSpec &job, const std::vector<Bytes> &inputByDc,
            Scheduler &scheduler, const RunOptions &opts)
{
    const std::size_t n = topo_.dcCount();
    fatalIf(job.stages.empty(), "Engine::run: job has no stages");
    fatalIf(inputByDc.size() != n,
            "Engine::run: input distribution size mismatch");
    fatalIf(opts.schedulerBw.rows() != n ||
                opts.schedulerBw.cols() != n,
            "Engine::run: scheduler BW matrix shape mismatch");

    std::uint64_t runSeed = seed_ + 0x9e37 * (++runCounter_);
    NetworkSim sim(topo_, simCfg_, runSeed);
    Rng rng(runSeed ^ 0xc0ffee);

    // Scenario time zero is job start: install initial conditions
    // before WANify snapshots the network, so prediction and planning
    // see the scenario's opening state.
    DynamicsState dynamics(opts.dynamics, sim, topo_);
    dynamics.advanceTo(sim.now());

    // --- WANify deployment (Section 4.1) ---------------------------------
    core::GlobalPlan plan;
    core::Wanify::Deployment deployment;
    auto &agents = deployment.agents;
    Matrix<Mbps> predicted;
    Seconds epoch = 1.0;
    if (opts.wanify != nullptr) {
        if (opts.predictedBwOverride.has_value()) {
            predicted = *opts.predictedBwOverride;
        } else {
            predicted = opts.wanify->predictRuntimeBw(sim, rng);
        }
        plan = opts.wanify->plan(predicted, opts.skewWeights,
                                 opts.rvec);
        deployment = opts.wanify->deploy(sim, plan, predicted);
        epoch = opts.wanify->config().aimd.epoch;
    }

    // Out-of-date model detection (Section 3.3.4): the paper
    // intermittently compares predicted BWs against observed runtime
    // values on the monitoring plane. The simulator's stand-in for
    // that re-measurement is the shared capacity-factor gauge
    // (core/drift.hh): quiet under stationary noise and WANify's own
    // throttling, firing when the scenario moves real capacity away
    // from what the model was calibrated on.
    core::CapacityDriftGauge drift(
        opts.wanify != nullptr ? opts.wanify->config().drift
                               : core::DriftConfig{},
        n);
    drift.rebase(sim);

    auto connectionsFor = [&](DcId i, DcId j) -> int {
        if (!agents.empty())
            return 1; // agents overwrite via applyTargets()
        if (opts.wanify != nullptr &&
            opts.wanify->config().features.globalOptimization) {
            // Global-only ablation: fixed at the plan's maximum.
            return plan.maxCons.at(i, j);
        }
        if (!opts.staticConnections.empty())
            return std::max(1, opts.staticConnections.at(i, j));
        return 1;
    };

    QueryResult result;
    result.wanBytesByPair = Matrix<Bytes>::square(n, 0.0);
    Matrix<Bytes> bytesAtStart = Matrix<Bytes>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i)
        for (DcId j = 0; j < n; ++j)
            bytesAtStart.at(i, j) = sim.pairBytes(i, j);

    // WANify's own mid-run re-measurement probes (retrain path) are
    // control-plane traffic: collected here and excluded from the
    // query's bill, consistent with the initial snapshot (measured
    // before bytesAtStart) and with flash-crowd bursts.
    Matrix<Bytes> controlBytes = Matrix<Bytes>::square(n, 0.0);

    const Seconds jobStart = sim.now();
    std::vector<Bytes> stageInput = inputByDc;
    bool sawWanTraffic = false;

    for (std::size_t s = 0; s < job.stages.size(); ++s) {
        const StageSpec &spec = job.stages[s];
        StageResult stageResult;
        stageResult.name = spec.name;
        stageResult.start = sim.now();

        const StageContext ctx =
            makeContext(job, s, stageInput, opts.schedulerBw);
        const Matrix<Bytes> assignment = scheduler.placeStage(ctx);
        fatalIf(assignment.rows() != n || assignment.cols() != n,
                "Engine::run: scheduler assignment shape mismatch");

        // --- shuffle phase ------------------------------------------------
        struct PendingTransfer
        {
            DcId src, dst;
            Bytes bytes;
            Seconds done = 0.0;
        };
        std::map<TransferId, PendingTransfer> pending;
        for (DcId i = 0; i < n; ++i) {
            for (DcId j = 0; j < n; ++j) {
                const Bytes bytes = assignment.at(i, j);
                if (i == j || bytes < 1.0)
                    continue;
                const TransferId id = sim.startTransfer(
                    endpointVm(topo_, i), endpointVm(topo_, j),
                    bytes, connectionsFor(i, j));
                pending[id] = {i, j, bytes, 0.0};
            }
        }
        for (auto &agent : agents) {
            agent->applyTargets();
            agent->resetWindow();
        }

        const Seconds shuffleStart = sim.now();
        Seconds nextEpoch = shuffleStart + epoch;
        const Seconds guardEnd = shuffleStart + opts.maxStageSeconds;

        while (!sim.allTransfersDone()) {
            const Seconds target = std::min(nextEpoch, guardEnd);
            sim.runUntilAllComplete(target);
            if (sim.allTransfersDone())
                break;
            if (sim.now() >= guardEnd) {
                logging::warn("stage '" + spec.name +
                              "' hit the per-stage guard");
                // Abort stragglers so they cannot leak into later
                // stages; they are billed as if finishing now.
                for (const auto &[id, t] : pending)
                    sim.stopTransfer(id);
                break;
            }
            for (auto &agent : agents)
                agent->onEpoch();
            dynamics.advanceTo(sim.now());

            if (opts.wanify != nullptr) {
                drift.observe(sim);
                result.driftObservations += drift.meshSize();
                result.driftErrorFraction =
                    std::max(result.driftErrorFraction,
                             drift.errorFraction());
                if (drift.needsRetraining()) {
                    ++result.retrainTriggers;
                    if (opts.adaptOnDrift &&
                        !opts.predictedBwOverride.has_value() &&
                        opts.wanify->trained()) {
                        // The retraining path end to end: clear the
                        // stale throttles, re-snapshot the live
                        // network (this costs measurement time, as
                        // in the paper), re-predict, re-plan, and
                        // redeploy fresh agents.
                        deployment.clear(sim);
                        // Probe bytes = pair-byte growth over the
                        // snapshot minus what the job's transfers
                        // and any active scenario bursts moved
                        // during it (bursts settle their own bill
                        // via burstBytes when they stop).
                        Matrix<Bytes> probe =
                            Matrix<Bytes>::square(n, 0.0);
                        for (DcId i = 0; i < n; ++i)
                            for (DcId j = 0; j < n; ++j)
                                probe.at(i, j) =
                                    -sim.pairBytes(i, j);
                        std::map<TransferId, Bytes> jobMoved;
                        for (const auto &[id, t] : pending)
                            jobMoved[id] =
                                sim.status(id).bytesMoved;
                        const Matrix<Bytes> burstBefore =
                            dynamics.activeBurstMoved(n);
                        predicted =
                            opts.wanify->predictRuntimeBw(sim, rng);
                        const Matrix<Bytes> burstAfter =
                            dynamics.activeBurstMoved(n);
                        for (DcId i = 0; i < n; ++i)
                            for (DcId j = 0; j < n; ++j)
                                probe.at(i, j) +=
                                    sim.pairBytes(i, j) -
                                    (burstAfter.at(i, j) -
                                     burstBefore.at(i, j));
                        for (const auto &[id, t] : pending)
                            probe.at(t.src, t.dst) -=
                                sim.status(id).bytesMoved -
                                jobMoved[id];
                        for (DcId i = 0; i < n; ++i)
                            for (DcId j = 0; j < n; ++j)
                                controlBytes.at(i, j) += std::max(
                                    0.0, probe.at(i, j));
                        plan = opts.wanify->plan(
                            predicted, opts.skewWeights, opts.rvec);
                        deployment = opts.wanify->deploy(sim, plan,
                                                         predicted);
                        for (auto &agent : agents) {
                            agent->applyTargets();
                            agent->resetWindow();
                        }
                        nextEpoch = sim.now();
                    }
                    // With or without the adaptive path, the model
                    // is considered recalibrated on current
                    // conditions from here.
                    drift.rebase(sim);
                }
            }
            nextEpoch += epoch;
        }

        // Collect completion times per transfer.
        for (const auto &rec : sim.drainCompletions()) {
            auto it = pending.find(rec.id);
            if (it != pending.end())
                it->second.done = rec.time;
        }

        // Min pair BW: the paper's "minimum BW of the cluster" — the
        // slowest pair's average achieved rate over its active period.
        std::vector<Seconds> transferDone(n, shuffleStart);
        Mbps minPairBw = 0.0;
        for (const auto &[id, t] : pending) {
            const Seconds done = t.done > 0.0 ? t.done : sim.now();
            transferDone[t.dst] = std::max(transferDone[t.dst], done);
            stageResult.wanBytes += t.bytes;
            if (t.bytes >= kMinAccountedBytes) {
                const Seconds duration =
                    std::max(1.0e-6, done - shuffleStart);
                const Mbps avg = units::rateFor(t.bytes, duration);
                minPairBw = minPairBw == 0.0
                                ? avg
                                : std::min(minPairBw, avg);
            }
        }
        stageResult.minPairBw = minPairBw;
        stageResult.transferEnd = sim.now();
        if (minPairBw > 0.0) {
            sawWanTraffic = true;
            result.minObservedBw =
                result.minObservedBw == 0.0
                    ? minPairBw
                    : std::min(result.minObservedBw, minPairBw);
        }

        // --- compute phase ------------------------------------------------
        std::vector<Bytes> nextInput(n, 0.0);
        Seconds stageEnd = sim.now();
        for (DcId j = 0; j < n; ++j) {
            Bytes atJ = 0.0;
            for (DcId i = 0; i < n; ++i)
                atJ += assignment.at(i, j);
            const double rate = std::max(1.0e-9, ctx.computeRate[j]);
            const Seconds compute =
                units::toMegabytes(atJ) * spec.workPerMb / rate;
            stageEnd = std::max(stageEnd, transferDone[j] + compute);
            nextInput[j] = atJ * spec.selectivity;
        }
        if (stageEnd > sim.now())
            sim.advanceBy(stageEnd - sim.now());
        // Keep the scenario clock current through the compute phase
        // so the next stage's shuffle starts under the right
        // conditions (epoch-level granularity is enough: rates only
        // matter while transfers are active).
        dynamics.advanceTo(sim.now());
        stageResult.end = sim.now();

        result.stages.push_back(stageResult);
        stageInput = std::move(nextInput);
    }

    if (opts.wanify != nullptr)
        deployment.clear(sim);
    dynamics.finish();

    result.latency = sim.now() - jobStart;
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            // Flash-crowd bursts are other tenants' data and the
            // retrain probes are WANify's control plane: neither is
            // billed to the query.
            result.wanBytesByPair.at(i, j) = std::max(
                0.0, sim.pairBytes(i, j) - bytesAtStart.at(i, j) -
                         dynamics.burstBytes().at(i, j) -
                         controlBytes.at(i, j));
        }
    }

    const cost::CostModel costModel(topo_);
    result.cost = costModel.queryCost(
        result.latency, result.wanBytesByPair,
        units::toGigabytes(job.inputBytes));

    if (!sawWanTraffic)
        result.minObservedBw = 0.0;
    return result;
}

} // namespace gda
} // namespace wanify
