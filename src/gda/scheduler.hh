/**
 * @file
 * Scheduler interface: where a stage's work runs and hence which bytes
 * cross which WAN links.
 *
 * A scheduler receives the stage context — the current geo-distribution
 * of the stage's input, the BW matrix it *believes* (static-independent,
 * static-simultaneous, or WANify-predicted: the experiment variable of
 * Table 4), compute rates, and egress prices — and returns the
 * assignment matrix A where A(i, j) is the bytes of input resident at
 * DC i to be processed at DC j. Off-diagonal entries become WAN
 * transfers.
 */

#ifndef WANIFY_GDA_SCHEDULER_HH
#define WANIFY_GDA_SCHEDULER_HH

#include <map>
#include <string>
#include <vector>

#include "common/matrix.hh"
#include "common/units.hh"
#include "core/forecast.hh"
#include "gda/job.hh"
#include "net/topology.hh"

namespace wanify {
namespace gda {

/**
 * Caller-owned warm-start memory for the fraction-search schedulers.
 *
 * Tetrium/Kimchi seed the search from the fractions they found the
 * last time they placed the same stage (re-plans on retrain, repeat
 * placements under drifted beliefs) instead of searching from
 * scratch. The memory lives with the caller — the engine keeps one
 * per run, the serve layer one per query — because scheduler
 * instances are shared across concurrently running trials and must
 * stay stateless.
 */
struct PlanMemory
{
    /** Best fractions found per stage index. */
    std::map<std::size_t, std::vector<double>> fractionsByStage;

    /** Improvement iterations the most recent search used. */
    std::size_t lastIterations = 0;
};

/** Everything a scheduler may consider for one stage. */
struct StageContext
{
    const net::Topology *topo = nullptr;

    /** BW matrix the scheduler believes (Mbps). */
    const Matrix<Mbps> *bw = nullptr;

    /** Stage input bytes currently resident per DC. */
    std::vector<Bytes> inputByDc;

    /** Aggregate compute rate per DC (work units / s). */
    std::vector<double> computeRate;

    /** Egress price per DC ($ / GB). */
    std::vector<Dollars> egressPrice;

    const StageSpec *stage = nullptr;
    std::size_t stageIndex = 0;

    /**
     * Fraction of each pair's believed BW this query may assume, in
     * (0, 1]: the cross-query WAN share granted by the serve layer's
     * BandwidthAllocator. The single-query default of 1 claims whole
     * links, which is exactly the one-shot engine's semantics; under
     * a resident service the fraction search plans with the share it
     * was actually allocated, so placement stops assuming bandwidth
     * that concurrent queries are consuming.
     */
    double wanShare = 1.0;

    /**
     * Optional per-pair bandwidth forecast. When set (and non-empty),
     * estimateStageTime integrates each transfer across the forecast
     * segments starting at planTime instead of dividing by the single
     * believed snapshot rate — so placement sees the maintenance
     * window that starts mid-shuffle. Null keeps snapshot planning.
     */
    const core::BwForecast *forecast = nullptr;

    /** Absolute time the plan is made (forecast integration start). */
    Seconds planTime = 0.0;

    /** Optional warm-start memory (see PlanMemory). */
    PlanMemory *memory = nullptr;
};

/** Estimated completion time of an assignment under the believed BW. */
Seconds estimateStageTime(const StageContext &ctx,
                          const Matrix<Bytes> &assignment);

/** Egress cost ($) of an assignment. */
Dollars estimateStageCost(const StageContext &ctx,
                          const Matrix<Bytes> &assignment);

/** Assignment from per-destination fractions: A(i,j) = in_i * r_j. */
Matrix<Bytes> assignmentFromFractions(const std::vector<Bytes> &inputByDc,
                                      const std::vector<double> &fractions);

/**
 * In-place variant: overwrite @p out with the assignment, reshaping
 * it only when its shape differs. The fraction search evaluates up to
 * maxIterations x dcCount^2 candidate moves per stage; reusing one
 * scratch matrix keeps that inner loop allocation-free.
 */
void assignmentFromFractionsInto(const std::vector<Bytes> &inputByDc,
                                 const std::vector<double> &fractions,
                                 Matrix<Bytes> &out);

class Scheduler
{
  public:
    virtual ~Scheduler() = default;

    virtual std::string name() const = 0;

    /** Decide the stage assignment matrix. */
    virtual Matrix<Bytes> placeStage(const StageContext &ctx) = 0;
};

} // namespace gda
} // namespace wanify

#endif // WANIFY_GDA_SCHEDULER_HH
