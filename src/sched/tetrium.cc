#include "sched/tetrium.hh"

namespace wanify {
namespace sched {

TetriumScheduler::TetriumScheduler(FractionSearchConfig search)
    : search_(search)
{}

Matrix<Bytes>
TetriumScheduler::placeStage(const gda::StageContext &ctx)
{
    const std::size_t n = ctx.inputByDc.size();

    // Objective: estimated stage completion time (network + compute).
    const AssignmentObjective objective =
        [&ctx](const Matrix<Bytes> &assignment) {
            return gda::estimateStageTime(ctx, assignment);
        };

    // Seed compute-proportionally (Spark's slot-driven default); the
    // search then pulls work away from DCs with weak inbound links.
    std::vector<double> seed(n, 0.0);
    double totalRate = 0.0;
    for (double r : ctx.computeRate)
        totalRate += r;
    for (std::size_t j = 0; j < n; ++j) {
        seed[j] = totalRate > 0.0
                      ? ctx.computeRate[j] / totalRate
                      : 1.0 / static_cast<double>(n);
    }

    // A remembered plan for this stage (re-plan on retrain, repeat
    // placement under drifted beliefs) beats the cold seed.
    applyWarmStart(ctx, seed);

    const auto result =
        searchFractionsDetailed(ctx, objective, seed, search_);
    rememberResult(ctx, result);
    return gda::assignmentFromFractions(ctx.inputByDc,
                                        result.fractions);
}

} // namespace sched
} // namespace wanify
