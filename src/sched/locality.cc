#include "sched/locality.hh"

namespace wanify {
namespace sched {

Matrix<Bytes>
LocalityScheduler::placeStage(const gda::StageContext &ctx)
{
    const std::size_t n = ctx.inputByDc.size();

    if (ctx.stageIndex == 0) {
        // Map stage: process blocks in place.
        Matrix<Bytes> a = Matrix<Bytes>::square(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            a.at(i, i) = ctx.inputByDc[i];
        return a;
    }

    // Shuffled stage: reduce fractions proportional to compute slots
    // (Spark's default executor-count-driven partitioning).
    double totalRate = 0.0;
    for (double r : ctx.computeRate)
        totalRate += r;
    std::vector<double> fractions(n, 1.0 / static_cast<double>(n));
    if (totalRate > 0.0) {
        for (std::size_t j = 0; j < n; ++j)
            fractions[j] = ctx.computeRate[j] / totalRate;
    }
    return gda::assignmentFromFractions(ctx.inputByDc, fractions);
}

} // namespace sched
} // namespace wanify
