#include "sched/kimchi.hh"

#include "common/error.hh"

namespace wanify {
namespace sched {

KimchiScheduler::KimchiScheduler(double costWeight,
                                 FractionSearchConfig search)
    : costWeight_(costWeight), search_(search)
{
    fatalIf(costWeight < 0.0, "KimchiScheduler: negative costWeight");
}

Matrix<Bytes>
KimchiScheduler::placeStage(const gda::StageContext &ctx)
{
    const std::size_t n = ctx.inputByDc.size();

    const double weight = costWeight_;
    const AssignmentObjective objective =
        [&ctx, weight](const Matrix<Bytes> &assignment) {
            return gda::estimateStageTime(ctx, assignment) +
                   weight * gda::estimateStageCost(ctx, assignment);
        };

    std::vector<double> seed(n, 0.0);
    Bytes total = 0.0;
    for (Bytes b : ctx.inputByDc)
        total += b;
    for (std::size_t j = 0; j < n; ++j) {
        seed[j] = total > 0.0
                      ? ctx.inputByDc[j] / total
                      : 1.0 / static_cast<double>(n);
    }

    applyWarmStart(ctx, seed);

    const auto result =
        searchFractionsDetailed(ctx, objective, seed, search_);
    rememberResult(ctx, result);
    return gda::assignmentFromFractions(ctx.inputByDc,
                                        result.fractions);
}

} // namespace sched
} // namespace wanify
