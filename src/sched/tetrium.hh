/**
 * @file
 * Tetrium-style multi-resource WAN-aware scheduler (Hung et al.,
 * EuroSys'18 — the paper's ref 21).
 *
 * Tetrium places both map and reduce tasks to minimize the estimated
 * stage completion time, jointly considering network transfer times
 * (over the BW matrix it is given) and per-DC compute capacity. Fed
 * static-independent BWs it reproduces the paper's baseline; fed
 * static-simultaneous or WANify-predicted BWs it makes the better
 * decisions Table 4 quantifies.
 */

#ifndef WANIFY_SCHED_TETRIUM_HH
#define WANIFY_SCHED_TETRIUM_HH

#include "gda/scheduler.hh"
#include "sched/fraction_search.hh"

namespace wanify {
namespace sched {

class TetriumScheduler : public gda::Scheduler
{
  public:
    explicit TetriumScheduler(FractionSearchConfig search = {});

    std::string name() const override { return "tetrium"; }

    Matrix<Bytes> placeStage(const gda::StageContext &ctx) override;

  private:
    FractionSearchConfig search_;
};

} // namespace sched
} // namespace wanify

#endif // WANIFY_SCHED_TETRIUM_HH
