/**
 * @file
 * Shared greedy fraction search used by the Tetrium and Kimchi
 * schedulers.
 *
 * Both schedulers choose per-DC processing fractions r on the simplex;
 * they differ only in the objective (Tetrium: estimated stage
 * completion time; Kimchi: time plus weighted egress cost). The search
 * starts from a compute-balanced allocation and repeatedly shifts a
 * small fraction of work from the DC whose marginal removal helps most
 * to the DC whose marginal addition hurts least, until no move
 * improves the objective — a deterministic projected coordinate
 * descent.
 */

#ifndef WANIFY_SCHED_FRACTION_SEARCH_HH
#define WANIFY_SCHED_FRACTION_SEARCH_HH

#include <functional>
#include <vector>

#include "gda/scheduler.hh"

namespace wanify {
namespace sched {

/** Objective over an assignment matrix; lower is better. */
using AssignmentObjective =
    std::function<double(const Matrix<Bytes> &)>;

/** Search tunables. */
struct FractionSearchConfig
{
    /** Fraction moved per step. */
    double step = 0.02;

    /** Maximum improvement iterations. */
    std::size_t maxIterations = 400;

    /** Minimum relative improvement to keep iterating. */
    double tolerance = 1.0e-4;
};

/** Outcome of one fraction search. */
struct FractionSearchResult
{
    std::vector<double> fractions;

    /** Improvement iterations executed (warm starts use fewer). */
    std::size_t iterations = 0;

    /** Objective value of the returned fractions. */
    double objective = 0.0;
};

/**
 * Minimize @p objective over fractions r (sum 1, r >= 0), returning
 * the best fractions found. @p seedFractions is the starting point
 * (normalized internally).
 */
std::vector<double> searchFractions(
    const gda::StageContext &ctx, const AssignmentObjective &objective,
    std::vector<double> seedFractions,
    const FractionSearchConfig &cfg = {});

/** As searchFractions, but reporting iterations and the final
 *  objective — the warm-start effectiveness surface. */
FractionSearchResult searchFractionsDetailed(
    const gda::StageContext &ctx, const AssignmentObjective &objective,
    std::vector<double> seedFractions,
    const FractionSearchConfig &cfg = {});

/**
 * Replace @p seed with the fractions remembered for ctx.stageIndex
 * when ctx.memory holds a size-matching entry — the incremental
 * re-plan warm start. Returns true when the warm start applied.
 */
bool applyWarmStart(const gda::StageContext &ctx,
                    std::vector<double> &seed);

/** Store a search outcome into ctx.memory (no-op without memory). */
void rememberResult(const gda::StageContext &ctx,
                    const FractionSearchResult &result);

} // namespace sched
} // namespace wanify

#endif // WANIFY_SCHED_FRACTION_SEARCH_HH
