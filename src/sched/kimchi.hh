/**
 * @file
 * Kimchi-style network-cost-aware scheduler (Oh et al., TPDS'21 — the
 * paper's ref 30).
 *
 * Kimchi balances query latency against the dollar cost of WAN
 * transfers: its objective adds the (egress-priced) network cost of an
 * assignment, weighted into seconds, to the estimated completion time.
 * With costWeight = 0 it degenerates to Tetrium's objective; the
 * default weight makes it avoid expensive egress regions (e.g. Sao
 * Paulo) unless the latency win justifies them.
 */

#ifndef WANIFY_SCHED_KIMCHI_HH
#define WANIFY_SCHED_KIMCHI_HH

#include "gda/scheduler.hh"
#include "sched/fraction_search.hh"

namespace wanify {
namespace sched {

class KimchiScheduler : public gda::Scheduler
{
  public:
    /**
     * @param costWeight seconds of estimated latency the scheduler
     *                   will trade for one dollar of network cost.
     */
    explicit KimchiScheduler(double costWeight = 120.0,
                             FractionSearchConfig search = {});

    std::string name() const override { return "kimchi"; }

    Matrix<Bytes> placeStage(const gda::StageContext &ctx) override;

    double costWeight() const { return costWeight_; }

  private:
    double costWeight_;
    FractionSearchConfig search_;
};

} // namespace sched
} // namespace wanify

#endif // WANIFY_SCHED_KIMCHI_HH
