/**
 * @file
 * Vanilla Spark locality-aware scheduling.
 *
 * Map stages run where the blocks live (data locality, no input
 * migration); shuffled stages spread reduce work across DCs in
 * proportion to compute slots, oblivious to WAN bandwidth — the "No
 * WAN-aware" baseline of Fig. 5 and the substrate under every
 * WANify-only variant (Section 5.3 isolates parallel-data-transfer
 * gains from scheduling gains this way).
 */

#ifndef WANIFY_SCHED_LOCALITY_HH
#define WANIFY_SCHED_LOCALITY_HH

#include "gda/scheduler.hh"

namespace wanify {
namespace sched {

class LocalityScheduler : public gda::Scheduler
{
  public:
    std::string name() const override { return "locality"; }

    Matrix<Bytes> placeStage(const gda::StageContext &ctx) override;
};

} // namespace sched
} // namespace wanify

#endif // WANIFY_SCHED_LOCALITY_HH
