#include "sched/fraction_search.hh"

#include <algorithm>
#include <utility>

#include "common/error.hh"

namespace wanify {
namespace sched {

std::vector<double>
searchFractions(const gda::StageContext &ctx,
                const AssignmentObjective &objective,
                std::vector<double> seedFractions,
                const FractionSearchConfig &cfg)
{
    return searchFractionsDetailed(ctx, objective,
                                   std::move(seedFractions), cfg)
        .fractions;
}

FractionSearchResult
searchFractionsDetailed(const gda::StageContext &ctx,
                        const AssignmentObjective &objective,
                        std::vector<double> seedFractions,
                        const FractionSearchConfig &cfg)
{
    const std::size_t n = ctx.inputByDc.size();
    fatalIf(seedFractions.size() != n,
            "searchFractions: seed size mismatch");

    // Normalize the seed onto the simplex.
    double sum = 0.0;
    for (double f : seedFractions)
        sum += std::max(0.0, f);
    if (sum <= 0.0) {
        seedFractions.assign(n, 1.0 / static_cast<double>(n));
    } else {
        for (auto &f : seedFractions)
            f = std::max(0.0, f) / sum;
    }

    // One scratch assignment matrix reused across every objective
    // evaluation (up to maxIterations x n^2 candidate moves), and one
    // scratch candidate vector overwritten per move: the search's
    // inner loop allocates nothing after the first evaluation.
    Matrix<Bytes> scratch;
    auto evaluate = [&](const std::vector<double> &r) {
        gda::assignmentFromFractionsInto(ctx.inputByDc, r, scratch);
        return objective(scratch);
    };

    std::vector<double> best = seedFractions;
    double bestValue = evaluate(best);
    std::vector<double> candidate(n);
    std::size_t iterations = 0;

    for (std::size_t iter = 0; iter < cfg.maxIterations; ++iter) {
        // Try every (from, to) move of cfg.step and take the best.
        double roundBest = bestValue;
        std::size_t moveFrom = n, moveTo = n;
        for (std::size_t from = 0; from < n; ++from) {
            if (best[from] < cfg.step)
                continue;
            for (std::size_t to = 0; to < n; ++to) {
                if (to == from)
                    continue;
                candidate = best;
                candidate[from] -= cfg.step;
                candidate[to] += cfg.step;
                const double value = evaluate(candidate);
                if (value < roundBest - 1.0e-12) {
                    roundBest = value;
                    moveFrom = from;
                    moveTo = to;
                }
            }
        }
        if (moveFrom == n)
            break; // no improving move
        ++iterations;
        best[moveFrom] -= cfg.step;
        best[moveTo] += cfg.step;
        const double improvement = (bestValue - roundBest) /
                                   std::max(bestValue, 1.0e-12);
        bestValue = roundBest;
        if (improvement < cfg.tolerance)
            break;
    }
    return {std::move(best), iterations, bestValue};
}

bool
applyWarmStart(const gda::StageContext &ctx,
               std::vector<double> &seed)
{
    if (ctx.memory == nullptr)
        return false;
    const auto it = ctx.memory->fractionsByStage.find(ctx.stageIndex);
    if (it == ctx.memory->fractionsByStage.end() ||
        it->second.size() != seed.size())
        return false;
    seed = it->second;
    return true;
}

void
rememberResult(const gda::StageContext &ctx,
               const FractionSearchResult &result)
{
    if (ctx.memory == nullptr)
        return;
    ctx.memory->fractionsByStage[ctx.stageIndex] = result.fractions;
    ctx.memory->lastIterations = result.iterations;
}

} // namespace sched
} // namespace wanify
