#include "core/predictor.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace core {

RuntimeBwPredictor::RuntimeBwPredictor(ml::ForestConfig config)
    : forest_(config)
{}

void
RuntimeBwPredictor::train(const ml::Dataset &data, std::uint64_t seed)
{
    fatalIf(data.featureCount() != monitor::kFeatureCount,
            "RuntimeBwPredictor: dataset feature count mismatch");
    fatalIf(data.outputCount() != 1,
            "RuntimeBwPredictor: dataset must be single-output");
    forest_.fit(data, seed);
}

void
RuntimeBwPredictor::retrain(const ml::Dataset &data,
                            std::size_t extraTrees, std::uint64_t seed)
{
    fatalIf(data.featureCount() != monitor::kFeatureCount,
            "RuntimeBwPredictor: dataset feature count mismatch");
    forest_.warmStart(data, extraTrees, seed);
}

Mbps
RuntimeBwPredictor::predictPair(
    const std::vector<double> &features) const
{
    panicIf(!forest_.trained(), "RuntimeBwPredictor: not trained");
    const ml::CompiledForest &compiled = forest_.compiled();
    fatalIf(features.size() != compiled.featureCount(),
            "RuntimeBwPredictor: feature count mismatch");
    panicIf(compiled.outputCount() != 1,
            "RuntimeBwPredictor: multi-output forest");
    double y = 0.0;
    compiled.predictInto(features.data(), &y);
    return std::max(0.0, y);
}

BwMatrix
RuntimeBwPredictor::predictMatrix(const net::Topology &topo,
                                  const BwMatrix &snapshotBw,
                                  const monitor::HostLoad &load) const
{
    PredictScratch scratch;
    return predictMatrix(topo, snapshotBw, scratch, load);
}

BwMatrix
RuntimeBwPredictor::predictMatrix(const net::Topology &topo,
                                  const BwMatrix &snapshotBw,
                                  PredictScratch &scratch,
                                  const monitor::HostLoad &load) const
{
    panicIf(!forest_.trained(), "RuntimeBwPredictor: not trained");
    const std::size_t n = topo.dcCount();
    fatalIf(snapshotBw.rows() != n || snapshotBw.cols() != n,
            "predictMatrix: snapshot shape mismatch");

    // One row-major feature matrix for all n*(n-1) ordered pairs,
    // one batched inference over it: the per-pair allocations of the
    // interpreted path (feature vector + a leaf vector per tree) are
    // gone, and the batch fans out across the process-wide pool while
    // staying bit-identical to a sequential per-pair loop.
    const ml::CompiledForest &compiled = forest_.compiled();
    panicIf(compiled.featureCount() != monitor::kFeatureCount ||
                compiled.outputCount() != 1,
            "predictMatrix: forest shape mismatch");
    const std::size_t pairs = n * (n - 1);
    scratch.features.resize(pairs * monitor::kFeatureCount);
    scratch.outputs.resize(pairs);
    std::vector<double> &features = scratch.features;
    std::vector<double> &outputs = scratch.outputs;

    const std::size_t rows =
        monitor::matrixFeaturesInto(topo, snapshotBw, load,
                                    features.data());
    panicIf(rows != pairs, "predictMatrix: pair row count mismatch");
    compiled.predictBatch(features.data(), pairs, outputs.data());

    BwMatrix predicted = BwMatrix::square(n, 0.0);
    std::size_t row = 0;
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            predicted.at(i, j) = i == j
                                     ? snapshotBw.at(i, j)
                                     : std::max(0.0, outputs[row++]);
        }
    }
    return predicted;
}

} // namespace core
} // namespace wanify
