#include "core/predictor.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace core {

RuntimeBwPredictor::RuntimeBwPredictor(ml::ForestConfig config)
    : forest_(config)
{}

void
RuntimeBwPredictor::train(const ml::Dataset &data, std::uint64_t seed)
{
    fatalIf(data.featureCount() != monitor::kFeatureCount,
            "RuntimeBwPredictor: dataset feature count mismatch");
    fatalIf(data.outputCount() != 1,
            "RuntimeBwPredictor: dataset must be single-output");
    forest_.fit(data, seed);
}

void
RuntimeBwPredictor::retrain(const ml::Dataset &data,
                            std::size_t extraTrees, std::uint64_t seed)
{
    fatalIf(data.featureCount() != monitor::kFeatureCount,
            "RuntimeBwPredictor: dataset feature count mismatch");
    forest_.warmStart(data, extraTrees, seed);
}

Mbps
RuntimeBwPredictor::predictPair(
    const std::vector<double> &features) const
{
    panicIf(!forest_.trained(), "RuntimeBwPredictor: not trained");
    return std::max(0.0, forest_.predictScalar(features));
}

BwMatrix
RuntimeBwPredictor::predictMatrix(const net::Topology &topo,
                                  const BwMatrix &snapshotBw,
                                  const monitor::HostLoad &load) const
{
    const std::size_t n = topo.dcCount();
    fatalIf(snapshotBw.rows() != n || snapshotBw.cols() != n,
            "predictMatrix: snapshot shape mismatch");

    BwMatrix predicted = BwMatrix::square(n, 0.0);
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j) {
                predicted.at(i, j) = snapshotBw.at(i, j);
                continue;
            }
            const double cap = topo.connCap(i, j);
            const double retrans = std::max(
                0.0,
                1.0 - snapshotBw.at(i, j) / std::max(cap, 1.0));
            predicted.at(i, j) = predictPair(monitor::pairFeatures(
                topo, snapshotBw, i, j, load, retrans));
        }
    }
    return predicted;
}

} // namespace core
} // namespace wanify
