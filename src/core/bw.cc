#include "core/bw.hh"

#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace core {

std::size_t
countSignificantGaps(const BwMatrix &a, const BwMatrix &b, Mbps threshold)
{
    fatalIf(a.rows() != b.rows() || a.cols() != b.cols(),
            "countSignificantGaps: shape mismatch");
    std::size_t count = 0;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            if (i == j)
                continue;
            if (std::abs(a.at(i, j) - b.at(i, j)) > threshold)
                ++count;
        }
    }
    return count;
}

GapHistogram
gapHistogram(const BwMatrix &a, const BwMatrix &b)
{
    fatalIf(a.rows() != b.rows() || a.cols() != b.cols(),
            "gapHistogram: shape mismatch");
    GapHistogram hist;
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < a.cols(); ++j) {
            if (i == j)
                continue;
            const double gap = std::abs(a.at(i, j) - b.at(i, j));
            if (gap > 250.0)
                ++hist.high;
            else if (gap > 200.0)
                ++hist.mid;
            else if (gap > 100.0)
                ++hist.low;
        }
    }
    return hist;
}

} // namespace core
} // namespace wanify
