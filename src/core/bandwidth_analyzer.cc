#include "core/bandwidth_analyzer.hh"

#include "common/error.hh"
#include "monitor/features.hh"

namespace wanify {
namespace core {

using net::DcId;
using net::NetworkSim;
using net::Topology;
using net::TopologyBuilder;

BandwidthAnalyzer::BandwidthAnalyzer(AnalyzerConfig config)
    : config_(std::move(config))
{
    fatalIf(config_.clusterSizes.empty(),
            "BandwidthAnalyzer: no cluster sizes configured");
    for (std::size_t n : config_.clusterSizes)
        fatalIf(n < 2 || n > 8,
                "BandwidthAnalyzer: cluster sizes must be in [2, 8]");
    fatalIf(config_.meshesPerSize == 0,
            "BandwidthAnalyzer: meshesPerSize must be > 0");
}

std::vector<CollectedMesh>
BandwidthAnalyzer::collectMeshes(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<CollectedMesh> meshes;
    meshes.reserve(config_.clusterSizes.size() * config_.meshesPerSize);

    for (std::size_t n : config_.clusterSizes) {
        const Topology topo =
            TopologyBuilder::paperTestbed(n, config_.vmType);
        for (std::size_t m = 0; m < config_.meshesPerSize; ++m) {
            NetworkSim sim(topo, config_.sim, rng.next());
            // Random fluctuation phase so samples cover the network's
            // state space the way a week of collection does.
            sim.advanceBy(rng.uniform(0.0, config_.maxWarmup));

            monitor::MeshMeasurer measurer(sim);
            Rng noiseRng = rng.split();
            CollectedMesh mesh;
            mesh.clusterSize = n;
            mesh.snapshotBw =
                measurer.snapshot(config_.measurement, noiseRng);
            mesh.stableBw = measurer.measureSimultaneous(
                config_.measurement.stableDuration,
                config_.measurement.connections);
            meshes.push_back(std::move(mesh));
        }
    }
    return meshes;
}

ml::Dataset
BandwidthAnalyzer::flatten(const std::vector<CollectedMesh> &meshes,
                           std::uint64_t seed) const
{
    Rng rng(seed ^ 0x5bd1e995UL);
    ml::Dataset data(monitor::kFeatureCount, 1);
    for (const auto &mesh : meshes) {
        const std::size_t n = mesh.clusterSize;
        const Topology topo =
            TopologyBuilder::paperTestbed(n, config_.vmType);
        for (DcId i = 0; i < n; ++i) {
            for (DcId j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                monitor::HostLoad load;
                load.memUtil = rng.uniform(0.15, 0.75);
                load.cpuLoad = rng.uniform(0.1, 0.8);
                // Congestion proxy: how far the snapshot fell below
                // the single-connection capability of the pair.
                const double cap = topo.connCap(i, j);
                const double retrans = std::max(
                    0.0, 1.0 - mesh.snapshotBw.at(i, j) /
                                   std::max(cap, 1.0));
                data.add(monitor::pairFeatures(topo, mesh.snapshotBw,
                                               i, j, load, retrans),
                         mesh.stableBw.at(i, j));
            }
        }
    }
    return data;
}

ml::Dataset
BandwidthAnalyzer::collect(std::uint64_t seed)
{
    return flatten(collectMeshes(seed), seed);
}

} // namespace core
} // namespace wanify
