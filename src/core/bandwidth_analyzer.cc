#include "core/bandwidth_analyzer.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/thread_pool.hh"
#include "monitor/features.hh"
#include "scenario/scenario.hh"

namespace wanify {
namespace core {

using net::DcId;
using net::NetworkSim;
using net::Topology;
using net::TopologyBuilder;

BandwidthAnalyzer::BandwidthAnalyzer(AnalyzerConfig config)
    : config_(std::move(config)),
      incremental_(monitor::kFeatureCount, 1)
{
    fatalIf(config_.clusterSizes.empty(),
            "BandwidthAnalyzer: no cluster sizes configured");
    for (std::size_t n : config_.clusterSizes)
        fatalIf(n < 2 || n > 256,
                "BandwidthAnalyzer: cluster sizes must be in [2, 256]");
    fatalIf(config_.meshesPerSize == 0,
            "BandwidthAnalyzer: meshesPerSize must be > 0");
    fatalIf(config_.dynamics != nullptr &&
                config_.dynamicsHorizon <= 0.0,
            "BandwidthAnalyzer: dynamicsHorizon must be > 0");
}

std::vector<std::uint64_t>
BandwidthAnalyzer::meshSeeds(const AnalyzerConfig &config,
                             std::uint64_t seed)
{
    return deriveSeeds(seed,
                       config.clusterSizes.size() *
                           config.meshesPerSize);
}

std::vector<CollectedMesh>
BandwidthAnalyzer::collectMeshes(std::uint64_t seed)
{
    const auto seeds = meshSeeds(config_, seed);
    const std::size_t perSize = config_.meshesPerSize;
    std::vector<CollectedMesh> meshes(seeds.size());

    // Meshes are independent simulations whose seeds are fixed up
    // front, so the campaign fans out on the pool and stays
    // bit-identical to a sequential collection.
    ThreadPool::global().parallelFor(
        seeds.size(), [&](std::size_t k) {
            const std::size_t n = config_.clusterSizes[k / perSize];
            const Topology topo =
                TopologyBuilder::paperTestbed(n, config_.vmType);
            Rng rng(seeds[k]);
            NetworkSim sim(topo, config_.sim, rng.next());
            // Random fluctuation phase so samples cover the network's
            // state space the way a week of collection does.
            sim.advanceBy(rng.uniform(0.0, config_.maxWarmup));

            std::shared_ptr<const scenario::Dynamics> dyn;
            if (config_.dynamics)
                dyn = config_.dynamics(n, k, seeds[k]);
            if (dyn != nullptr) {
                fatalIf(dyn->dcCount() != 0 && dyn->dcCount() != n,
                        "BandwidthAnalyzer: dynamics compiled for a "
                        "different cluster size");
                // Condition the mesh on a random instant of the
                // scenario, held through the gauge; bursts active at
                // that instant load the pairs they target.
                const Seconds t0 =
                    rng.uniform(0.0, config_.dynamicsHorizon);
                dyn->applyAt(sim, t0);
                for (const auto &b : dyn->burstsIn(-1.0, t0)) {
                    if (b.start + b.duration <= t0)
                        continue;
                    sim.startMeasurement(topo.dc(b.src).vms.front(),
                                         topo.dc(b.dst).vms.front(),
                                         b.connections);
                }
            }

            monitor::MeshMeasurer measurer(sim);
            Rng noiseRng = rng.split();
            CollectedMesh mesh;
            mesh.clusterSize = n;
            mesh.snapshotBw =
                measurer.snapshot(config_.measurement, noiseRng);
            mesh.stableBw = measurer.measureSimultaneous(
                config_.measurement.stableDuration,
                config_.measurement.connections);
            meshes[k] = std::move(mesh);
        });
    return meshes;
}

void
BandwidthAnalyzer::appendRows(ml::Dataset &out,
                              const net::Topology &topo,
                              const CollectedMesh &mesh, Rng &rng)
{
    const std::size_t n = mesh.clusterSize;
    fatalIf(topo.dcCount() != n,
            "BandwidthAnalyzer::appendRows: topology/mesh size "
            "mismatch");
    // One scratch row reused across the mesh's pairs; emitted through
    // the same into-buffer feature path the batched predictor uses.
    std::vector<double> row(monitor::kFeatureCount, 0.0);
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            monitor::HostLoad load;
            load.memUtil = rng.uniform(0.15, 0.75);
            load.cpuLoad = rng.uniform(0.1, 0.8);
            // Congestion proxy: how far the snapshot fell below
            // the single-connection capability of the pair.
            const double cap = topo.connCap(i, j);
            const double retrans = std::max(
                0.0, 1.0 - mesh.snapshotBw.at(i, j) /
                               std::max(cap, 1.0));
            monitor::pairFeaturesInto(topo, mesh.snapshotBw, i, j,
                                      load, retrans, row.data());
            out.add(row, mesh.stableBw.at(i, j));
        }
    }
}

ml::Dataset
BandwidthAnalyzer::flatten(const std::vector<CollectedMesh> &meshes,
                           std::uint64_t seed) const
{
    Rng rng(seed ^ 0x5bd1e995UL);
    ml::Dataset data(monitor::kFeatureCount, 1);
    for (const auto &mesh : meshes) {
        const Topology topo = TopologyBuilder::paperTestbed(
            mesh.clusterSize, config_.vmType);
        appendRows(data, topo, mesh, rng);
    }
    return data;
}

std::size_t
BandwidthAnalyzer::absorb(const net::Topology &topo,
                          const std::vector<CollectedMesh> &meshes,
                          std::uint64_t seed)
{
    Rng rng(seed ^ 0xa2c68b19UL);
    const std::size_t before = incremental_.size();
    for (const auto &mesh : meshes)
        appendRows(incremental_, topo, mesh, rng);
    return incremental_.size() - before;
}

void
BandwidthAnalyzer::clearIncremental()
{
    incremental_ = ml::Dataset(monitor::kFeatureCount, 1);
}

ml::Dataset
BandwidthAnalyzer::collect(std::uint64_t seed)
{
    return flatten(collectMeshes(seed), seed);
}

} // namespace core
} // namespace wanify
