#include "core/wanify.hh"

#include "common/error.hh"

namespace wanify {
namespace core {

WanifyFeatures
WanifyFeatures::globalOnly()
{
    WanifyFeatures f;
    f.localOptimization = false;
    f.throttling = false;
    return f;
}

WanifyFeatures
WanifyFeatures::localOnly()
{
    WanifyFeatures f;
    f.globalOptimization = false;
    f.throttling = false;
    return f;
}

Wanify::Wanify(WanifyConfig config)
    : config_(std::move(config)), drift_(config_.drift)
{}

void
Wanify::train(const AnalyzerConfig &analyzerCfg, std::uint64_t seed)
{
    BandwidthAnalyzer analyzer(analyzerCfg);
    const ml::Dataset data = analyzer.collect(seed);
    auto predictor =
        std::make_shared<RuntimeBwPredictor>(config_.forest);
    predictor->train(data, seed ^ 0x9e3779b9UL);
    std::lock_guard<std::mutex> lock(predictorMu_);
    predictor_ = std::move(predictor);
}

void
Wanify::setPredictor(std::shared_ptr<const RuntimeBwPredictor> p)
{
    fatalIf(!p || !p->trained(),
            "Wanify::setPredictor: predictor not trained");
    std::lock_guard<std::mutex> lock(predictorMu_);
    predictor_ = std::move(p);
}

std::shared_ptr<const RuntimeBwPredictor>
Wanify::predictorSnapshot() const
{
    std::lock_guard<std::mutex> lock(predictorMu_);
    return predictor_;
}

bool
Wanify::trained() const
{
    const auto p = predictorSnapshot();
    return p && p->trained();
}

const RuntimeBwPredictor &
Wanify::predictor() const
{
    fatalIf(!trained(), "Wanify: predictor not trained");
    std::lock_guard<std::mutex> lock(predictorMu_);
    return *predictor_;
}

std::shared_ptr<const RuntimeBwPredictor>
Wanify::retrain(const ml::Dataset &data, std::uint64_t seed,
                std::shared_ptr<const RuntimeBwPredictor> base,
                bool publish) const
{
    fatalIf(data.empty(), "Wanify::retrain: no gauged samples");
    if (base == nullptr)
        base = predictorSnapshot();
    // An untrained facade warm-starts from an empty forest: the extra
    // trees become the whole ensemble.
    auto next = base != nullptr
                    ? std::make_shared<RuntimeBwPredictor>(*base)
                    : std::make_shared<RuntimeBwPredictor>(
                          config_.forest);
    next->retrain(data, config_.retrainExtraTrees, seed);
    if (publish) {
        std::lock_guard<std::mutex> lock(predictorMu_);
        predictor_ = next;
    }
    return next;
}

BwMatrix
Wanify::predictRuntimeBw(net::NetworkSim &sim, Rng &rng) const
{
    const auto p = predictorSnapshot();
    fatalIf(!p || !p->trained(), "Wanify: predictor not trained");
    return predictRuntimeBw(sim, rng, *p);
}

BwMatrix
Wanify::predictRuntimeBw(net::NetworkSim &sim, Rng &rng,
                         const RuntimeBwPredictor &model) const
{
    monitor::MeshMeasurer measurer(sim);
    const BwMatrix snapshot =
        measurer.snapshot(config_.measurement, rng);
    return model.predictMatrix(sim.topology(), snapshot);
}

Wanify::RuntimeGauge
Wanify::gaugeRuntime(net::NetworkSim &sim, Rng &rng,
                     const RuntimeBwPredictor &model) const
{
    monitor::MeshMeasurer measurer(sim);
    RuntimeGauge gauge;
    gauge.snapshot = measurer.snapshot(config_.measurement, rng);
    // "Stable from the current epoch": the gauge observes one AIMD
    // epoch of simultaneous mesh traffic rather than the offline
    // campaign's 20 s — runtime collection must stay cheap.
    gauge.stable = measurer.measureSimultaneous(
        config_.aimd.epoch, config_.measurement.connections);
    gauge.predicted =
        model.predictMatrix(sim.topology(), gauge.snapshot);
    return gauge;
}

GlobalPlan
Wanify::plan(const BwMatrix &predictedBw,
             const std::vector<double> &skewWeights,
             const Matrix<double> &rvec) const
{
    const std::size_t n = predictedBw.rows();
    GlobalOptimizer optimizer(config_.global);
    const std::vector<double> &ws =
        config_.features.skewAware ? skewWeights
                                   : std::vector<double>{};

    if (config_.features.globalOptimization)
        return optimizer.optimize(predictedBw, ws, rvec);

    // Local-only ablation: a static [1, M] range for every pair with
    // achievable BWs scaled linearly, exactly the Fig. 8 baseline.
    GlobalPlan plan;
    plan.dcRel = Matrix<int>::square(n, 1);
    plan.minCons = ConnMatrix::square(n, 1);
    plan.maxCons = ConnMatrix::square(n, config_.global.maxConnections);
    for (std::size_t i = 0; i < n; ++i)
        plan.maxCons.at(i, i) = 1;
    plan.minBw = predictedBw;
    plan.maxBw = BwMatrix::square(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            plan.maxBw.at(i, j) =
                predictedBw.at(i, j) *
                static_cast<double>(plan.maxCons.at(i, j));
        }
    }
    return plan;
}

Wanify::Deployment
Wanify::deploy(net::NetworkSim &sim, const GlobalPlan &plan,
               const BwMatrix &predictedBw) const
{
    const std::size_t n = sim.topology().dcCount();
    fatalIf(plan.minCons.rows() != n,
            "deploy: plan/topology mismatch");

    Deployment deployment;
    if (!config_.features.localOptimization) {
        // Without agents, throttling can only be static: thresholds
        // from the predicted per-pair BWs (row means), applied once.
        if (config_.features.throttling)
            deployment.throttles.apply(sim, predictedBw);
        return deployment;
    }
    // With agents deployed, they own throttling end to end: thresholds
    // are re-derived every epoch from monitored rates (Section 3.2.2,
    // "Throttling BW") — dynamic throttling is what makes WANify-TC
    // the best variant in Fig. 5.

    deployment.agents.reserve(n);
    for (net::DcId dc = 0; dc < n; ++dc) {
        std::vector<Mbps> row(n, 0.0);
        for (net::DcId j = 0; j < n; ++j)
            row[j] = predictedBw.at(dc, j);
        deployment.agents.push_back(std::make_unique<LocalAgent>(
            sim, dc, plan, std::move(row), config_.aimd,
            config_.features.throttling));
    }
    return deployment;
}

} // namespace core
} // namespace wanify
