#include "core/wanify.hh"

#include "common/error.hh"

namespace wanify {
namespace core {

WanifyFeatures
WanifyFeatures::globalOnly()
{
    WanifyFeatures f;
    f.localOptimization = false;
    f.throttling = false;
    return f;
}

WanifyFeatures
WanifyFeatures::localOnly()
{
    WanifyFeatures f;
    f.globalOptimization = false;
    f.throttling = false;
    return f;
}

Wanify::Wanify(WanifyConfig config)
    : config_(std::move(config)), drift_(config_.drift)
{}

void
Wanify::train(const AnalyzerConfig &analyzerCfg, std::uint64_t seed)
{
    BandwidthAnalyzer analyzer(analyzerCfg);
    const ml::Dataset data = analyzer.collect(seed);
    auto predictor =
        std::make_shared<RuntimeBwPredictor>(config_.forest);
    predictor->train(data, seed ^ 0x9e3779b9UL);
    predictor_ = std::move(predictor);
}

void
Wanify::setPredictor(std::shared_ptr<const RuntimeBwPredictor> p)
{
    fatalIf(!p || !p->trained(),
            "Wanify::setPredictor: predictor not trained");
    predictor_ = std::move(p);
}

bool
Wanify::trained() const
{
    return predictor_ && predictor_->trained();
}

const RuntimeBwPredictor &
Wanify::predictor() const
{
    fatalIf(!trained(), "Wanify: predictor not trained");
    return *predictor_;
}

BwMatrix
Wanify::predictRuntimeBw(net::NetworkSim &sim, Rng &rng) const
{
    fatalIf(!trained(), "Wanify: predictor not trained");
    monitor::MeshMeasurer measurer(sim);
    const BwMatrix snapshot =
        measurer.snapshot(config_.measurement, rng);
    return predictor_->predictMatrix(sim.topology(), snapshot);
}

GlobalPlan
Wanify::plan(const BwMatrix &predictedBw,
             const std::vector<double> &skewWeights,
             const Matrix<double> &rvec) const
{
    const std::size_t n = predictedBw.rows();
    GlobalOptimizer optimizer(config_.global);
    const std::vector<double> &ws =
        config_.features.skewAware ? skewWeights
                                   : std::vector<double>{};

    if (config_.features.globalOptimization)
        return optimizer.optimize(predictedBw, ws, rvec);

    // Local-only ablation: a static [1, M] range for every pair with
    // achievable BWs scaled linearly, exactly the Fig. 8 baseline.
    GlobalPlan plan;
    plan.dcRel = Matrix<int>::square(n, 1);
    plan.minCons = ConnMatrix::square(n, 1);
    plan.maxCons = ConnMatrix::square(n, config_.global.maxConnections);
    for (std::size_t i = 0; i < n; ++i)
        plan.maxCons.at(i, i) = 1;
    plan.minBw = predictedBw;
    plan.maxBw = BwMatrix::square(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            plan.maxBw.at(i, j) =
                predictedBw.at(i, j) *
                static_cast<double>(plan.maxCons.at(i, j));
        }
    }
    return plan;
}

Wanify::Deployment
Wanify::deploy(net::NetworkSim &sim, const GlobalPlan &plan,
               const BwMatrix &predictedBw) const
{
    const std::size_t n = sim.topology().dcCount();
    fatalIf(plan.minCons.rows() != n,
            "deploy: plan/topology mismatch");

    Deployment deployment;
    if (!config_.features.localOptimization) {
        // Without agents, throttling can only be static: thresholds
        // from the predicted per-pair BWs (row means), applied once.
        if (config_.features.throttling)
            deployment.throttles.apply(sim, predictedBw);
        return deployment;
    }
    // With agents deployed, they own throttling end to end: thresholds
    // are re-derived every epoch from monitored rates (Section 3.2.2,
    // "Throttling BW") — dynamic throttling is what makes WANify-TC
    // the best variant in Fig. 5.

    deployment.agents.reserve(n);
    for (net::DcId dc = 0; dc < n; ++dc) {
        std::vector<Mbps> row(n, 0.0);
        for (net::DcId j = 0; j < n; ++j)
            row[j] = predictedBw.at(dc, j);
        deployment.agents.push_back(std::make_unique<LocalAgent>(
            sim, dc, plan, std::move(row), config_.aimd,
            config_.features.throttling));
    }
    return deployment;
}

} // namespace core
} // namespace wanify
