/**
 * @file
 * Dynamic local optimization (Section 3.2.2): AIMD fine-tuning of the
 * per-destination connection counts and target BWs within the range the
 * global optimizer provided.
 *
 * Every epoch (5 s) the optimizer compares the monitored egress rate to
 * the current target. If the monitored BW falls short by more than the
 * significance threshold (100 Mbps — congestion), it enters
 * multiplicative-decrease mode: connections and target BW drop to the
 * max of the configured minimum and half the previous value. Otherwise
 * it additively increases: +1 connection and a linear BW bump (target BW
 * tracks predicted-BW x connections, the same linearity the global
 * optimizer relies on) until the maximum configuration is reached.
 * Pairs with less than 1 MB pending skip the update entirely (their
 * monitored rate says nothing about the network).
 */

#ifndef WANIFY_CORE_LOCAL_OPTIMIZER_HH
#define WANIFY_CORE_LOCAL_OPTIMIZER_HH

#include <vector>

#include "core/global_optimizer.hh"

namespace wanify {
namespace core {

/** AIMD tunables. */
struct AimdConfig
{
    /** Epoch between target updates (Fig. 9 uses 5 s). */
    Seconds epoch = 5.0;

    /** Congestion significance threshold (Mbps). */
    Mbps significantDelta = 100.0;

    /** Pairs with fewer pending bytes than this are skipped. */
    Bytes minTransferSize = 1024.0 * 1024.0;
};

/** Mode taken for a destination in the last epoch. */
enum class AimdMode { Hold, Increase, Decrease, Skipped };

/**
 * AIMD controller for one source DC.
 *
 * Targets start at the *maximum* configuration (the system begins from
 * maximum throughput and backs off on congestion, reducing RTT bias).
 */
class LocalOptimizer
{
  public:
    /**
     * @param sourceDc    DC this agent runs in
     * @param plan        global plan (whole matrices; rows for sourceDc
     *                    are used)
     * @param predictedBw predicted runtime BW row for sourceDc,
     *                    indexed by destination DC
     */
    LocalOptimizer(std::size_t sourceDc, const GlobalPlan &plan,
                   std::vector<Mbps> predictedBw, AimdConfig cfg = {});

    /**
     * One AIMD epoch.
     *
     * @param monitoredBw  achieved egress rate per destination DC
     *                     (ifTop window average)
     * @param pendingBytes bytes still queued per destination DC
     */
    void epochUpdate(const std::vector<Mbps> &monitoredBw,
                     const std::vector<Bytes> &pendingBytes);

    int targetConnections(std::size_t dst) const;
    Mbps targetBw(std::size_t dst) const;
    AimdMode lastMode(std::size_t dst) const;

    /** Full target vectors (index = destination DC). */
    const std::vector<int> &targetConnectionVector() const
    {
        return cons_;
    }
    const std::vector<Mbps> &targetBwVector() const { return bw_; }

    std::size_t sourceDc() const { return sourceDc_; }
    std::size_t dcCount() const { return cons_.size(); }
    const AimdConfig &config() const { return cfg_; }

  private:
    std::size_t sourceDc_;
    AimdConfig cfg_;

    std::vector<int> minCons_, maxCons_;
    std::vector<Mbps> minBw_, maxBw_;
    std::vector<Mbps> predictedBw_;

    std::vector<int> cons_;
    std::vector<Mbps> bw_;
    std::vector<AimdMode> mode_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_LOCAL_OPTIMIZER_HH
