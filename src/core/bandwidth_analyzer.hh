/**
 * @file
 * Offline Bandwidth Analyzer (Section 4.1.1): collects training data for
 * the WAN Prediction Model.
 *
 * For each sample the analyzer spins up the configured testbed, lets the
 * fluctuation process reach a random phase, takes a 1-second snapshot
 * mesh measurement, then measures the stable (>= 20 s) runtime BW on the
 * same network trajectory. Each ordered DC pair contributes one training
 * row: Table 3 features -> stable runtime BW. Cluster sizes are cycled
 * through [2, Nmax] so a single model serves any cluster size (Section
 * 3.3.2).
 */

#ifndef WANIFY_CORE_BANDWIDTH_ANALYZER_HH
#define WANIFY_CORE_BANDWIDTH_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "ml/dataset.hh"
#include "monitor/measurement.hh"
#include "net/network_sim.hh"
#include "net/topology.hh"

namespace wanify {
namespace core {

/** Analyzer configuration. */
struct AnalyzerConfig
{
    /** Cluster sizes to collect for (paper: [2, Nmax]). */
    std::vector<std::size_t> clusterSizes = {4, 6, 8};

    /** Mesh measurements per cluster size. */
    std::size_t meshesPerSize = 40;

    /** VM type hosting the probes. */
    net::VmType vmType = net::VmTypeCatalog::t3nano();

    monitor::MeasurementConfig measurement;
    net::NetworkSimConfig sim;

    /** Random warm-up before sampling, so phases differ. */
    Seconds maxWarmup = 120.0;
};

/** One collected mesh: features context plus both BW matrices. */
struct CollectedMesh
{
    std::size_t clusterSize = 0;
    Matrix<Mbps> snapshotBw;
    Matrix<Mbps> stableBw;
};

class BandwidthAnalyzer
{
  public:
    explicit BandwidthAnalyzer(AnalyzerConfig config = {});

    /**
     * Collect meshes and flatten them into a per-pair training dataset
     * (features of Table 3 -> stable runtime BW).
     */
    ml::Dataset collect(std::uint64_t seed);

    /** Collect raw meshes (used by accuracy experiments). */
    std::vector<CollectedMesh> collectMeshes(std::uint64_t seed);

    /** Flatten meshes into the per-pair dataset. */
    ml::Dataset flatten(const std::vector<CollectedMesh> &meshes,
                        std::uint64_t seed) const;

    const AnalyzerConfig &config() const { return config_; }

  private:
    AnalyzerConfig config_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_BANDWIDTH_ANALYZER_HH
