/**
 * @file
 * Offline Bandwidth Analyzer (Section 4.1.1): collects training data for
 * the WAN Prediction Model.
 *
 * For each sample the analyzer spins up the configured testbed, lets the
 * fluctuation process reach a random phase, takes a 1-second snapshot
 * mesh measurement, then measures the stable (>= 20 s) runtime BW on the
 * same network trajectory. Each ordered DC pair contributes one training
 * row: Table 3 features -> stable runtime BW. Cluster sizes are cycled
 * through [2, Nmax] so a single model serves any cluster size (Section
 * 3.3.2).
 *
 * Two extensions beyond the paper's offline campaign:
 *
 *  - scenario conditioning: an AnalyzerConfig::dynamics hook applies a
 *    scenario timeline (outages, diurnal troughs, degradations) to each
 *    mesh's simulator before gauging, so the training distribution
 *    covers the non-stationary regimes the drift detector later fires
 *    on instead of only stationary noise;
 *  - incremental mode: meshes gauged mid-run (the Section 3.3.4
 *    retraining path) are flattened against the live cluster's topology
 *    and appended into a growing dataset for warm-start retraining.
 */

#ifndef WANIFY_CORE_BANDWIDTH_ANALYZER_HH
#define WANIFY_CORE_BANDWIDTH_ANALYZER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ml/dataset.hh"
#include "monitor/measurement.hh"
#include "net/network_sim.hh"
#include "net/topology.hh"

namespace wanify {

namespace scenario {
class Dynamics;
} // namespace scenario

namespace core {

/** Analyzer configuration. */
struct AnalyzerConfig
{
    /**
     * Cluster sizes to collect for (paper: [2, Nmax]). Sizes beyond
     * the 8 paper regions use RegionCatalog::scaledMesh metro zones,
     * up to the 256-DC scale the mesh sweep exercises.
     */
    std::vector<std::size_t> clusterSizes = {4, 6, 8};

    /** Mesh measurements per cluster size. */
    std::size_t meshesPerSize = 40;

    /** VM type hosting the probes. */
    net::VmType vmType = net::VmTypeCatalog::t3nano();

    monitor::MeasurementConfig measurement;
    net::NetworkSimConfig sim;

    /** Random warm-up before sampling, so phases differ. */
    Seconds maxWarmup = 120.0;

    /**
     * Optional scenario conditioning: invoked once per mesh with the
     * cluster size, the campaign-wide mesh index, and the mesh's
     * derived seed. The returned dynamics (null = stationary mesh) is
     * applied at a random scenario time in [0, dynamicsHorizon) and
     * held through the snapshot and the stable measurement
     * (epoch-quasistatic, the same convention the drivers use); any
     * bursts active at that instant run as background flows competing
     * with the probes. Must be thread-safe: meshes are collected in
     * parallel (scenario::campaignDynamics() qualifies).
     */
    using DynamicsHook =
        std::function<std::shared_ptr<const scenario::Dynamics>(
            std::size_t clusterSize, std::size_t meshIndex,
            std::uint64_t meshSeed)>;
    DynamicsHook dynamics;

    /** Scenario-time window sampled per conditioned mesh. */
    Seconds dynamicsHorizon = 300.0;
};

/** One collected mesh: features context plus both BW matrices. */
struct CollectedMesh
{
    std::size_t clusterSize = 0;
    Matrix<Mbps> snapshotBw;
    Matrix<Mbps> stableBw;
};

class BandwidthAnalyzer
{
  public:
    explicit BandwidthAnalyzer(AnalyzerConfig config = {});

    /**
     * Collect meshes and flatten them into a per-pair training dataset
     * (features of Table 3 -> stable runtime BW).
     */
    ml::Dataset collect(std::uint64_t seed);

    /** Collect raw meshes (used by accuracy experiments). */
    std::vector<CollectedMesh> collectMeshes(std::uint64_t seed);

    /** Flatten meshes into the per-pair dataset. */
    ml::Dataset flatten(const std::vector<CollectedMesh> &meshes,
                        std::uint64_t seed) const;

    /**
     * Per-mesh seeds: one splitmix64-derived seed per collected mesh
     * across every cluster size, fixed before collection starts —
     * parallel and sequential campaigns gauge identical meshes, and
     * no two meshes (within or across sizes) share a warm-up stream.
     * Exposed so tests can assert non-collision.
     */
    static std::vector<std::uint64_t>
    meshSeeds(const AnalyzerConfig &config, std::uint64_t seed);

    /**
     * Flatten one mesh against an explicit topology, appending its
     * per-pair rows to @p out. Runtime gauges flow through here: the
     * live cluster's topology supplies N/distance/capability, unlike
     * the offline path which rebuilds the paper testbed.
     */
    static void appendRows(ml::Dataset &out,
                           const net::Topology &topo,
                           const CollectedMesh &mesh, Rng &rng);

    // --- incremental mode -------------------------------------------------

    /**
     * Append mid-run meshes (gauged against @p topo) into the
     * analyzer's growing dataset; returns the rows appended. The
     * accumulated dataset is what warm-start retraining trains its
     * extra trees on. Strictly append-only: histogram-mode forests
     * rely on that to *extend* their shared ml::BinIndex across
     * campaign retrains instead of re-binning every accumulated row.
     */
    std::size_t absorb(const net::Topology &topo,
                       const std::vector<CollectedMesh> &meshes,
                       std::uint64_t seed);

    /** The growing mid-run dataset (empty until absorb() is called). */
    const ml::Dataset &incremental() const { return incremental_; }

    /** Drop the accumulated mid-run samples. */
    void clearIncremental();

    const AnalyzerConfig &config() const { return config_; }

  private:
    AnalyzerConfig config_;
    ml::Dataset incremental_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_BANDWIDTH_ANALYZER_HH
