#include "core/global_optimizer.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "core/dc_relations.hh"

namespace wanify {
namespace core {

GlobalOptimizer::GlobalOptimizer(GlobalOptimizerConfig config)
    : config_(config)
{
    fatalIf(config_.maxConnections < 1,
            "GlobalOptimizer: maxConnections must be >= 1");
    fatalIf(config_.absoluteMaxConnections < config_.maxConnections,
            "GlobalOptimizer: absolute clamp below maxConnections");
}

GlobalPlan
GlobalOptimizer::optimize(const BwMatrix &predictedBw,
                          const std::vector<double> &skewWeights,
                          const Matrix<double> &rvec) const
{
    fatalIf(predictedBw.rows() != predictedBw.cols(),
            "GlobalOptimizer: non-square BW matrix");
    const std::size_t n = predictedBw.rows();
    fatalIf(n < 2, "GlobalOptimizer: need at least 2 DCs");
    fatalIf(!skewWeights.empty() && skewWeights.size() != n,
            "GlobalOptimizer: skew weight size mismatch");
    fatalIf(!rvec.empty() && (rvec.rows() != n || rvec.cols() != n),
            "GlobalOptimizer: rvec shape mismatch");

    GlobalPlan plan;
    plan.dcRel = inferDcRelations(predictedBw, config_.minDifference);

    // Eq. 2: sumall skips closeness index 1 on the diagonal; maxri is
    // the row-wise maximum closeness.
    double sumAll = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            sumAll += plan.dcRel.at(i, j);
    sumAll -= static_cast<double>(n);
    panicIf(sumAll <= 0.0, "GlobalOptimizer: degenerate DCrel matrix");

    std::vector<double> maxRow(n, 1.0);
    for (std::size_t i = 0; i < n; ++i)
        maxRow[i] = static_cast<double>(plan.dcRel.rowMax(i));

    const int m = config_.maxConnections;
    plan.minCons = ConnMatrix::square(n, 1);
    plan.maxCons = ConnMatrix::square(n, 1);
    plan.minBw = BwMatrix::square(n, 0.0);
    plan.maxBw = BwMatrix::square(n, 0.0);

    auto pairWeight = [&](std::size_t i, std::size_t j) {
        if (skewWeights.empty())
            return 1.0;
        return std::max(skewWeights[i], skewWeights[j]);
    };
    auto pairRvec = [&](std::size_t i, std::size_t j) {
        return rvec.empty() ? 1.0 : rvec.at(i, j);
    };
    auto clampCons = [&](double c) {
        return std::clamp(static_cast<int>(std::lround(c)), 1,
                          config_.absoluteMaxConnections);
    };

    // Skew weights *re-allocate* the per-row connection budget
    // (Section 3.3.1) — data-heavy DCs' links gain connections at the
    // expense of the rest, but the row's total budget (and hence the
    // host's congestion exposure) stays what Eq. 3 computed.
    for (std::size_t i = 0; i < n; ++i) {
        double rawMinSum = 0.0, rawMaxSum = 0.0;
        double weightedMinSum = 0.0, weightedMaxSum = 0.0;
        std::vector<double> rawMin(n, 1.0), rawMax(n, 1.0);
        for (std::size_t j = 0; j < n; ++j) {
            const double rel =
                static_cast<double>(plan.dcRel.at(i, j));
            // Eq. 3: minCandidate / minCons (unweighted).
            const double minCandidate =
                std::floor(rel / sumAll * static_cast<double>(m - 1));
            rawMin[j] = std::max(minCandidate, 1.0);
            // Eq. 3: maxCons; diagonal pairs need one connection only
            // (a single connection saturates intra-DC links).
            rawMax[j] =
                i == j ? 1.0
                       : std::ceil(static_cast<double>(m) * rel /
                                   maxRow[i]);
            if (i != j) {
                rawMinSum += rawMin[j];
                rawMaxSum += rawMax[j];
                weightedMinSum += rawMin[j] * pairWeight(i, j);
                weightedMaxSum += rawMax[j] * pairWeight(i, j);
            }
        }

        const double minScale =
            weightedMinSum > 0.0 ? rawMinSum / weightedMinSum : 1.0;
        const double maxScale =
            weightedMaxSum > 0.0 ? rawMaxSum / weightedMaxSum : 1.0;

        for (std::size_t j = 0; j < n; ++j) {
            int minCons = 1, maxCons = 1;
            if (i == j) {
                minCons = clampCons(rawMin[j]);
            } else {
                const double ws = pairWeight(i, j);
                minCons = clampCons(rawMin[j] * ws * minScale);
                maxCons = clampCons(rawMax[j] * ws * maxScale);
            }
            maxCons = std::max(maxCons, minCons);

            plan.minCons.at(i, j) = minCons;
            plan.maxCons.at(i, j) = maxCons;

            // Achievable BW grows linearly with connections (empirical
            // observation backing Eq. 3), modulated by rvec.
            const double rv = pairRvec(i, j);
            plan.minBw.at(i, j) =
                predictedBw.at(i, j) * minCons * rv;
            plan.maxBw.at(i, j) =
                predictedBw.at(i, j) * maxCons * rv;
        }
    }
    return plan;
}

} // namespace core
} // namespace wanify
