#include "core/dc_relations.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hh"

namespace wanify {
namespace core {

Matrix<int>
inferDcRelations(const BwMatrix &bw, Mbps minDifference)
{
    fatalIf(bw.rows() != bw.cols(), "inferDcRelations: non-square matrix");
    fatalIf(bw.rows() < 2, "inferDcRelations: need at least 2 DCs");
    fatalIf(minDifference < 0.0,
            "inferDcRelations: negative minDifference");
    const std::size_t n = bw.rows();

    // bwu = sort(set(bw)): unique sorted BW levels.
    std::vector<Mbps> levels(bw.data());
    std::sort(levels.begin(), levels.end());
    levels.erase(std::unique(levels.begin(), levels.end()),
                 levels.end());

    // Reverse traversal removing levels closer than D to their
    // predecessor (Algorithm 1 lines 4-8).
    for (std::size_t i = levels.size(); i >= 2; --i) {
        if (levels[i - 1] - levels[i - 2] < minDifference)
            levels.erase(levels.begin() + static_cast<long>(i - 1));
    }
    panicIf(levels.empty(), "inferDcRelations: no BW levels left");
    const std::size_t len = levels.size();

    Matrix<int> rel = Matrix<int>::square(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            const Mbps v = bw.at(i, j);
            // Binary search for v; on a miss, pick the nearer of the
            // two bracketing levels (lines 12-19).
            const auto it =
                std::lower_bound(levels.begin(), levels.end(), v);
            std::size_t idx; // 0-based index of the chosen level
            if (it != levels.end() && *it == v) {
                idx = static_cast<std::size_t>(it - levels.begin());
            } else if (it == levels.begin()) {
                idx = 0;
            } else if (it == levels.end()) {
                idx = len - 1;
            } else {
                const std::size_t above =
                    static_cast<std::size_t>(it - levels.begin());
                const std::size_t below = above - 1;
                // Ties resolve to the lower level (farther relation).
                idx = (std::abs(levels[above] - v) <
                       std::abs(v - levels[below]))
                          ? above
                          : below;
            }
            // DCrel = len(bwu) - k + 1 with 1-based k = idx + 1.
            rel.at(i, j) = static_cast<int>(len - idx);
        }
    }
    return rel;
}

} // namespace core
} // namespace wanify
