/**
 * @file
 * Runtime BW predictor — the WAN Prediction Model (Sections 3.1, 4.1.1).
 *
 * A Random Forest regressor over the Table 3 features predicts the
 * stable runtime BW of each DC pair from a cheap 1-second snapshot.
 * Existing WAN-aware GDA systems consume the predicted matrix exactly
 * where they previously used static iPerf measurements.
 */

#ifndef WANIFY_CORE_PREDICTOR_HH
#define WANIFY_CORE_PREDICTOR_HH

#include <cstdint>

#include "core/bw.hh"
#include "ml/random_forest.hh"
#include "monitor/features.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace core {

/**
 * Caller-owned scratch for predictMatrix: the flat per-pair feature
 * matrix and the batched-inference output buffer. A resident caller
 * predicting every planning round (serve::Service) keeps one scratch
 * per query and the hot path stops reallocating ~n^2 * kFeatureCount
 * doubles per call; buffers grow to the largest mesh seen and stay.
 * Not shareable across concurrent predictMatrix calls — give each
 * worker its own.
 */
struct PredictScratch
{
    std::vector<double> features;
    std::vector<double> outputs;
};

class RuntimeBwPredictor
{
  public:
    /** Default forest: 100 estimators (the paper's best setting). */
    explicit RuntimeBwPredictor(ml::ForestConfig config = {});

    /** Train on an analyzer-produced dataset. */
    void train(const ml::Dataset &data, std::uint64_t seed);

    /**
     * Warm-start retraining (Sections 3.3.2 / 3.3.4) on a combined
     * dataset, adding @p extraTrees trees.
     */
    void retrain(const ml::Dataset &data, std::size_t extraTrees,
                 std::uint64_t seed);

    /** Predict one pair's runtime BW from a Table 3 feature vector. */
    Mbps predictPair(const std::vector<double> &features) const;

    /**
     * Predict the full runtime BW matrix from a snapshot mesh.
     * Host loads default to the analyzer's training midpoint; callers
     * with live telemetry pass their own.
     */
    BwMatrix predictMatrix(const net::Topology &topo,
                           const BwMatrix &snapshotBw,
                           const monitor::HostLoad &load = {}) const;

    /** predictMatrix with caller-owned buffers (see PredictScratch);
     *  bit-identical to the allocating overload. */
    BwMatrix predictMatrix(const net::Topology &topo,
                           const BwMatrix &snapshotBw,
                           PredictScratch &scratch,
                           const monitor::HostLoad &load = {}) const;

    bool trained() const { return forest_.trained(); }
    const ml::RandomForestRegressor &forest() const { return forest_; }

  private:
    ml::RandomForestRegressor forest_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_PREDICTOR_HH
