/**
 * @file
 * Out-of-date model detection (Section 3.3.4).
 *
 * Prediction error is tracked by intermittently comparing predicted BWs
 * with observed runtime values; when the fraction of significant errors
 * (> 100 Mbps) within a sliding window crosses the configured
 * threshold, a retrain flag is raised. The GDA application then
 * retrains the forest with warm start on the additionally collected
 * samples.
 */

#ifndef WANIFY_CORE_DRIFT_HH
#define WANIFY_CORE_DRIFT_HH

#include <cstddef>
#include <deque>

#include "common/units.hh"

namespace wanify {
namespace core {

/** Drift detector configuration. */
struct DriftConfig
{
    /** Error magnitude considered significant (Mbps). */
    Mbps significantError = 100.0;

    /** Sliding window length in recorded comparisons. */
    std::size_t windowSize = 64;

    /** Fraction of significant errors that triggers retraining. */
    double retrainFraction = 0.3;

    /** Minimum observations before the detector may trigger. */
    std::size_t minObservations = 16;
};

class ModelDriftDetector
{
  public:
    explicit ModelDriftDetector(DriftConfig config = {});

    /** Record one predicted/actual comparison. */
    void record(Mbps predicted, Mbps actual);

    /** True when the retrain flag is raised. */
    bool needsRetraining() const;

    /** Current significant-error fraction over the window. */
    double errorFraction() const;

    std::size_t observations() const { return window_.size(); }

    /** Clear state after a retrain. */
    void reset();

  private:
    DriftConfig config_;
    std::deque<bool> window_;
    std::size_t significantCount_ = 0;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_DRIFT_HH
