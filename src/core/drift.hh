/**
 * @file
 * Out-of-date model detection (Section 3.3.4).
 *
 * Prediction error is tracked by intermittently comparing predicted BWs
 * with observed runtime values; when the fraction of significant errors
 * (> 100 Mbps) within a sliding window crosses the configured
 * threshold, a retrain flag is raised. The GDA application then
 * retrains the forest with warm start on the additionally collected
 * samples.
 */

#ifndef WANIFY_CORE_DRIFT_HH
#define WANIFY_CORE_DRIFT_HH

#include <cstddef>
#include <deque>
#include <vector>

#include "common/units.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace core {

/**
 * Reference link scale for capacity-ratio drift checks: callers that
 * gauge drift on capacity *factors* (current vs at-prediction-time)
 * record (kDriftReferenceBw * base, kDriftReferenceBw * current), so
 * with the default 100 Mbps significance threshold a pair drifts
 * exactly when its capacity leaves the +-40% band around what the
 * model was calibrated on. Stationary OU noise (log-sigma 0.16) stays
 * comfortably inside the band; scripted outages, deep degradation,
 * and diurnal troughs leave it.
 */
constexpr Mbps kDriftReferenceBw = 250.0;

/** Drift detector configuration. */
struct DriftConfig
{
    /** Error magnitude considered significant (Mbps). */
    Mbps significantError = 100.0;

    /** Sliding window length in recorded comparisons. */
    std::size_t windowSize = 64;

    /** Fraction of significant errors that triggers retraining. */
    double retrainFraction = 0.3;

    /** Minimum observations before the detector may trigger. */
    std::size_t minObservations = 16;
};

class ModelDriftDetector
{
  public:
    explicit ModelDriftDetector(DriftConfig config = {});

    /** Record one predicted/actual comparison. */
    void record(Mbps predicted, Mbps actual);

    /** True when the retrain flag is raised. */
    bool needsRetraining() const;

    /** Current significant-error fraction over the window. */
    double errorFraction() const;

    std::size_t observations() const { return window_.size(); }

    /** Clear state after a retrain. */
    void reset();

  private:
    DriftConfig config_;
    std::deque<bool> window_;
    std::size_t significantCount_ = 0;
};

/**
 * Capacity-factor drift gauge shared by the GDA engine and the
 * scenario driver: every ordered pair's current scenario capacity
 * factor is compared against the factor the model was last
 * calibrated on, scaled by kDriftReferenceBw (see above for the
 * resulting +-40% band). Holding the calibration convention in one
 * place keeps the engine's and the CLI driver's drift scales in
 * lockstep.
 */
class CapacityDriftGauge
{
  public:
    CapacityDriftGauge(DriftConfig config, std::size_t dcCount);

    /** Record one full mesh of factor observations. */
    void observe(const net::NetworkSim &sim);

    /** Re-anchor the baseline on current factors and clear the
     *  window (the post-retrain "model recalibrated" step). */
    void rebase(const net::NetworkSim &sim);

    double errorFraction() const
    {
        return detector_.errorFraction();
    }
    bool needsRetraining() const
    {
        return detector_.needsRetraining();
    }

    /** Observations one observe() call records. */
    std::size_t meshSize() const
    {
        return dcCount_ * (dcCount_ - 1);
    }

  private:
    std::size_t dcCount_;
    ModelDriftDetector detector_;
    std::vector<double> baseline_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_DRIFT_HH
