/**
 * @file
 * Dynamic BW throttling (Section 3.2.2, "Throttling BW").
 *
 * To stop nearby DCs from consuming the bulk of the available network,
 * local agents compute, per source DC, a threshold T = mean achievable
 * BW from that DC; destinations whose achievable BW exceeds T are capped
 * at T with Traffic Control. Fig. 5 shows this (WANify-TC) giving the
 * best minimum BW, latency, and cost.
 */

#ifndef WANIFY_CORE_THROTTLE_HH
#define WANIFY_CORE_THROTTLE_HH

#include "core/bw.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace core {

class ThrottleController
{
  public:
    ThrottleController() = default;

    /**
     * Compute the per-source thresholds from @p achievableBw (the
     * plan's maxBw matrix) and install tc limits on @p sim for every
     * BW-rich pair. Returns the matrix of applied limits (0 = no
     * limit).
     */
    BwMatrix apply(net::NetworkSim &sim, const BwMatrix &achievableBw);

    /** Remove every limit this controller installed. */
    void clear(net::NetworkSim &sim);

    /** Threshold used for a source DC in the last apply() (0 if none). */
    Mbps threshold(std::size_t srcDc) const;

  private:
    std::vector<Mbps> thresholds_;
    std::vector<std::pair<std::size_t, std::size_t>> limitedPairs_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_THROTTLE_HH
