#include "core/throttle.hh"

#include "common/error.hh"

namespace wanify {
namespace core {

BwMatrix
ThrottleController::apply(net::NetworkSim &sim,
                          const BwMatrix &achievableBw)
{
    const std::size_t n = achievableBw.rows();
    fatalIf(achievableBw.cols() != n, "ThrottleController: non-square");
    fatalIf(n != sim.topology().dcCount(),
            "ThrottleController: matrix/topology mismatch");

    clear(sim);
    thresholds_.assign(n, 0.0);
    BwMatrix limits = BwMatrix::square(n, 0.0);

    for (std::size_t i = 0; i < n; ++i) {
        // T = mean achievable BW from this region (off-diagonal).
        double sum = 0.0;
        std::size_t count = 0;
        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            sum += achievableBw.at(i, j);
            ++count;
        }
        if (count == 0)
            continue;
        const Mbps t = sum / static_cast<double>(count);
        thresholds_[i] = t;

        for (std::size_t j = 0; j < n; ++j) {
            if (i == j)
                continue;
            if (achievableBw.at(i, j) > t) {
                sim.setTcLimit(i, j, t);
                limits.at(i, j) = t;
                limitedPairs_.emplace_back(i, j);
            }
        }
    }
    return limits;
}

void
ThrottleController::clear(net::NetworkSim &sim)
{
    for (const auto &[i, j] : limitedPairs_)
        sim.setTcLimit(i, j, 0.0);
    limitedPairs_.clear();
    thresholds_.clear();
}

Mbps
ThrottleController::threshold(std::size_t srcDc) const
{
    if (srcDc >= thresholds_.size())
        return 0.0;
    return thresholds_[srcDc];
}

} // namespace core
} // namespace wanify
