/**
 * @file
 * Static global optimization (Section 3.2.1, Eq. 2 and Eq. 3).
 *
 * From the predicted runtime BW matrix the optimizer derives, greedily,
 * a *range* of heterogeneous connection counts and achievable BWs per DC
 * pair: distant pairs (high closeness index) receive more of the limited
 * per-host connection budget M, trading strong links for weak ones. The
 * ranges [minCons, maxCons] / [minBW, maxBW] are handed to the local
 * agents, which fine-tune within them at runtime (AIMD).
 *
 * Skew weights (ws, Section 3.3.1) proportionally re-allocate the range
 * toward data-heavy DCs; the refactoring vector (rvec, Section 3.3.3)
 * rescales achievable BWs for heterogeneous providers.
 */

#ifndef WANIFY_CORE_GLOBAL_OPTIMIZER_HH
#define WANIFY_CORE_GLOBAL_OPTIMIZER_HH

#include <vector>

#include "core/bw.hh"

namespace wanify {
namespace core {

/** Global optimizer tunables. */
struct GlobalOptimizerConfig
{
    /**
     * M: per-host parallel-connection budget toward one peer. The paper
     * observes no gain past ~8 connections (Section 2.2) and uses 8 for
     * the uniform baseline.
     */
    int maxConnections = 8;

    /** D: minimum significant BW difference for Algorithm 1. */
    Mbps minDifference = 100.0;

    /** Hard per-pair clamp after skew weighting. */
    int absoluteMaxConnections = 16;
};

/** Output of global optimization: the per-pair ranges. */
struct GlobalPlan
{
    Matrix<int> dcRel;   ///< closeness indices (Algorithm 1)
    ConnMatrix minCons;  ///< lower end of connection range
    ConnMatrix maxCons;  ///< upper end of connection range
    BwMatrix minBw;      ///< achievable BW at minCons
    BwMatrix maxBw;      ///< achievable BW at maxCons
};

class GlobalOptimizer
{
  public:
    explicit GlobalOptimizer(GlobalOptimizerConfig config = {});

    /**
     * Run Eq. 2/3 on the predicted BW matrix.
     *
     * @param predictedBw predicted runtime BW matrix
     * @param skewWeights ws — per-DC weights (empty = uniform 1.0);
     *                    a pair's weight is max(ws[i], ws[j])
     * @param rvec        per-pair BW refactoring multipliers (empty
     *                    matrix = all 1.0)
     */
    GlobalPlan optimize(const BwMatrix &predictedBw,
                        const std::vector<double> &skewWeights = {},
                        const Matrix<double> &rvec = {}) const;

    const GlobalOptimizerConfig &config() const { return config_; }

  private:
    GlobalOptimizerConfig config_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_GLOBAL_OPTIMIZER_HH
