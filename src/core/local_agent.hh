/**
 * @file
 * WANify local agent (Section 4.1.3): WAN Monitor + Local Optimizer +
 * Connections Manager for one DC.
 *
 * One agent runs per VM-hosting DC. Each epoch it reads the ifTop
 * window, feeds the AIMD optimizer, and pushes the resulting target
 * connection counts into the active transfers of its DC (the
 * connections-manager role: transfers sharing a destination split the
 * per-pair target evenly, never below one connection each).
 */

#ifndef WANIFY_CORE_LOCAL_AGENT_HH
#define WANIFY_CORE_LOCAL_AGENT_HH

#include <memory>
#include <vector>

#include "core/local_optimizer.hh"
#include "monitor/iftop.hh"
#include "net/network_sim.hh"

namespace wanify {
namespace core {

class LocalAgent
{
  public:
    /**
     * @param sim         live simulator the agent's DC sends through
     * @param sourceDc    the agent's DC
     * @param plan        global optimization output
     * @param predictedBw predicted BW row for sourceDc
     * @param cfg         AIMD configuration
     */
    LocalAgent(net::NetworkSim &sim, net::DcId sourceDc,
               const GlobalPlan &plan, std::vector<Mbps> predictedBw,
               AimdConfig cfg = {}, bool dynamicThrottling = false);

    /**
     * Run one AIMD epoch: close the monitoring window, update targets,
     * apply connection counts, and reopen the window.
     */
    void onEpoch();

    /** Apply current targets to active transfers without an update. */
    void applyTargets();

    /**
     * Restart the monitoring window at the current sim time. Call when
     * a new shuffle begins after a network-idle phase, so the first
     * epoch's monitored rates do not average over the idle period.
     */
    void resetWindow();

    const LocalOptimizer &optimizer() const { return optimizer_; }
    net::DcId sourceDc() const { return sourceDc_; }

    /** Target-BW standard deviation across destinations (Fig. 9). */
    double targetBwStddev() const;

    /** Monitored-BW standard deviation from the last closed window. */
    double monitoredBwStddev() const;

    /** Mean |target - monitored| across destinations (Mbps) — how far
     *  the AIMD targets sit from what the network actually delivers. */
    double meanTrackingError() const;

    /** Monitored rates captured at the last epoch. */
    const std::vector<Mbps> &lastMonitored() const
    {
        return lastMonitored_;
    }

  private:
    /**
     * Dynamic BW throttling (Section 3.2.2): every epoch, compute the
     * threshold T as the mean monitored egress toward peers with
     * pending data and tc-cap BW-rich destinations at T. Applied
     * iteratively this drains capacity hogged by nearby DCs toward the
     * weak links until the row approaches balance — the WANify-TC
     * behaviour of Fig. 5.
     */
    void updateThrottles(const std::vector<Mbps> &monitored,
                         const std::vector<Bytes> &pending);

    net::NetworkSim &sim_;
    net::DcId sourceDc_;
    monitor::IfTop iftop_;
    LocalOptimizer optimizer_;
    std::vector<Mbps> lastMonitored_;
    bool dynamicThrottling_;

    /** Destinations currently identified as BW-rich (hysteresis: a
     *  capped pair's monitored rate equals its cap, so membership must
     *  be sticky or caps would oscillate epoch to epoch). */
    std::vector<bool> capped_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_LOCAL_AGENT_HH
