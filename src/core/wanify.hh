/**
 * @file
 * The WANify facade (Section 4.1) — the interface GDA systems invoke
 * (asynchronously in the paper; synchronously here, the simulator has no
 * real concurrency to hide).
 *
 * Offline: train the WAN Prediction Model from Bandwidth Analyzer
 * datasets. Online: snapshot the live network, predict the runtime BW
 * matrix, run global optimization, install throttles, and hand local
 * agents to the engine. Feature toggles allow the ablation variants of
 * Fig. 5 and Fig. 8 (global-only, local-only, no throttling, uniform
 * parallelism).
 */

#ifndef WANIFY_CORE_WANIFY_HH
#define WANIFY_CORE_WANIFY_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/bandwidth_analyzer.hh"
#include "core/drift.hh"
#include "core/global_optimizer.hh"
#include "core/heterogeneity.hh"
#include "core/local_agent.hh"
#include "core/predictor.hh"
#include "core/throttle.hh"

namespace wanify {
namespace core {

/** Which WANify mechanisms are active (ablation switches). */
struct WanifyFeatures
{
    bool globalOptimization = true;
    bool localOptimization = true;
    bool throttling = true;

    /** Use skew weights in global optimization (Section 3.3.1). */
    bool skewAware = true;

    /** Everything on (the paper's WANify-TC default). */
    static WanifyFeatures all() { return {}; }

    /** Global optimization only (Fig. 8 ablation). */
    static WanifyFeatures globalOnly();

    /** Local optimization only with static 1..M range (Fig. 8). */
    static WanifyFeatures localOnly();
};

/** Facade configuration. */
struct WanifyConfig
{
    WanifyFeatures features;
    GlobalOptimizerConfig global;
    AimdConfig aimd;
    monitor::MeasurementConfig measurement;
    ml::ForestConfig forest;
    DriftConfig drift;
};

class Wanify
{
  public:
    explicit Wanify(WanifyConfig config = {});

    // --- offline module ---------------------------------------------------

    /** Train the predictor with the Bandwidth Analyzer. */
    void train(const AnalyzerConfig &analyzerCfg, std::uint64_t seed);

    /** Adopt an externally trained predictor (shared across benches). */
    void setPredictor(std::shared_ptr<const RuntimeBwPredictor> p);

    bool trained() const;
    const RuntimeBwPredictor &predictor() const;

    // --- online module ----------------------------------------------------

    /**
     * Snapshot the live network and predict the runtime BW matrix
     * (Runtime Bandwidth Determination, Section 4.1.2).
     */
    BwMatrix predictRuntimeBw(net::NetworkSim &sim, Rng &rng) const;

    /**
     * Global Optimizer (Section 4.1.2): plan heterogeneous connection
     * ranges from a predicted BW matrix.
     *
     * @param skewWeights per-DC input-data skew weights (empty =
     *                    uniform); ignored unless features.skewAware
     * @param rvec        refactoring matrix (empty = identity)
     */
    GlobalPlan plan(const BwMatrix &predictedBw,
                    const std::vector<double> &skewWeights = {},
                    const Matrix<double> &rvec = {}) const;

    /**
     * One run's worth of online state: the local agents plus the
     * throttles installed on that run's simulator. Owned by the
     * caller (one per engine run) so a single Wanify instance can
     * serve many concurrent runs — the experiment runner's parallel
     * trials share one facade across threads.
     */
    struct Deployment
    {
        std::vector<std::unique_ptr<LocalAgent>> agents;
        ThrottleController throttles;

        /** Remove the throttles this deployment installed. */
        void
        clear(net::NetworkSim &sim)
        {
            throttles.clear(sim);
        }
    };

    /**
     * Deploy on a live simulator: install throttles (if enabled) and
     * create one local agent per DC. The caller drives the agents'
     * onEpoch() at aimd.epoch intervals (the engine does this) and
     * clears the deployment when the run ends.
     */
    Deployment deploy(net::NetworkSim &sim, const GlobalPlan &plan,
                      const BwMatrix &predictedBw) const;

    ModelDriftDetector &driftDetector() { return drift_; }
    const WanifyConfig &config() const { return config_; }

  private:
    WanifyConfig config_;
    std::shared_ptr<const RuntimeBwPredictor> predictor_;
    ModelDriftDetector drift_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_WANIFY_HH
