/**
 * @file
 * The WANify facade (Section 4.1) — the interface GDA systems invoke
 * (asynchronously in the paper; synchronously here, the simulator has no
 * real concurrency to hide).
 *
 * Offline: train the WAN Prediction Model from Bandwidth Analyzer
 * datasets. Online: snapshot the live network, predict the runtime BW
 * matrix, run global optimization, install throttles, and hand local
 * agents to the engine. Feature toggles allow the ablation variants of
 * Fig. 5 and Fig. 8 (global-only, local-only, no throttling, uniform
 * parallelism).
 */

#ifndef WANIFY_CORE_WANIFY_HH
#define WANIFY_CORE_WANIFY_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/bandwidth_analyzer.hh"
#include "core/drift.hh"
#include "core/global_optimizer.hh"
#include "core/heterogeneity.hh"
#include "core/local_agent.hh"
#include "core/predictor.hh"
#include "core/throttle.hh"

namespace wanify {
namespace core {

/** Which WANify mechanisms are active (ablation switches). */
struct WanifyFeatures
{
    bool globalOptimization = true;
    bool localOptimization = true;
    bool throttling = true;

    /** Use skew weights in global optimization (Section 3.3.1). */
    bool skewAware = true;

    /** Everything on (the paper's WANify-TC default). */
    static WanifyFeatures all() { return {}; }

    /** Global optimization only (Fig. 8 ablation). */
    static WanifyFeatures globalOnly();

    /** Local optimization only with static 1..M range (Fig. 8). */
    static WanifyFeatures localOnly();
};

/** Facade configuration. */
struct WanifyConfig
{
    WanifyFeatures features;
    GlobalOptimizerConfig global;
    AimdConfig aimd;
    monitor::MeasurementConfig measurement;
    ml::ForestConfig forest;
    DriftConfig drift;

    /**
     * Trees added per warm-start retrain (Section 3.3.4). The
     * retrained ensemble averages the stale trees with the new ones,
     * so a quarter of the paper's 100-tree forest pulls predictions
     * toward the freshly gauged regime without discarding what the
     * offline campaign learned.
     */
    std::size_t retrainExtraTrees = 25;
};

class Wanify
{
  public:
    explicit Wanify(WanifyConfig config = {});

    // --- offline module ---------------------------------------------------

    /** Train the predictor with the Bandwidth Analyzer. */
    void train(const AnalyzerConfig &analyzerCfg, std::uint64_t seed);

    /** Adopt an externally trained predictor (shared across benches). */
    void setPredictor(std::shared_ptr<const RuntimeBwPredictor> p);

    bool trained() const;

    /**
     * Reference to the currently published predictor — for offline,
     * single-threaded use (training scripts, benches, examples). The
     * reference is only guaranteed to outlive concurrent publishing
     * retrains while the caller also holds a predictorSnapshot();
     * code that runs alongside publishRetrainedModel trials must use
     * predictorSnapshot() instead.
     */
    const RuntimeBwPredictor &predictor() const;

    /**
     * The currently published predictor (null before training). The
     * snapshot stays valid and immutable however many retrains swap
     * the facade's predictor afterwards — engine runs pin one at
     * start so concurrent trials never see a model change mid-run.
     */
    std::shared_ptr<const RuntimeBwPredictor> predictorSnapshot() const;

    /**
     * Warm-start retraining (Section 3.3.4): copy @p base (null = the
     * currently published predictor; an untrained facade starts from
     * an empty forest), grow retrainExtraTrees new trees on @p data
     * via RandomForestRegressor::warmStart, and — when @p publish —
     * atomically swap the facade's shared predictor so *future* runs
     * adopt the update while concurrent trials keep the snapshot they
     * pinned. Returns the retrained predictor. Safe to call from
     * parallel trials; deterministic in (base, data, seed).
     *
     * Under histogram-mode forests (forest.tree.splitMode) the base
     * model's shared ml::BinIndex rides the copy and the warm start
     * extends it with the newly gauged rows — campaign datasets only
     * ever append, so mid-run retrains skip re-binning entirely and
     * the pinned base's index is never mutated. The engine reports
     * the wall time of each retrain in QueryResult::retrainLatencies;
     * that stall is what bounds the adaptation cadence.
     */
    std::shared_ptr<const RuntimeBwPredictor>
    retrain(const ml::Dataset &data, std::uint64_t seed,
            std::shared_ptr<const RuntimeBwPredictor> base = nullptr,
            bool publish = true) const;

    // --- online module ----------------------------------------------------

    /**
     * Snapshot the live network and predict the runtime BW matrix
     * (Runtime Bandwidth Determination, Section 4.1.2).
     */
    BwMatrix predictRuntimeBw(net::NetworkSim &sim, Rng &rng) const;

    /** Same, but through an explicitly pinned model. */
    BwMatrix predictRuntimeBw(net::NetworkSim &sim, Rng &rng,
                              const RuntimeBwPredictor &model) const;

    /**
     * One mid-run gauge of the Section 3.3.4 retraining path: a
     * 1-second snapshot plus the observed stable BW over one AIMD
     * epoch on the live simulator, and @p model's prediction from
     * that snapshot. The (snapshot, stable) pair becomes warm-start
     * training rows; (predicted, stable) measures the model's error
     * under current conditions.
     */
    struct RuntimeGauge
    {
        BwMatrix snapshot;
        BwMatrix stable;
        BwMatrix predicted;
    };
    RuntimeGauge gaugeRuntime(net::NetworkSim &sim, Rng &rng,
                              const RuntimeBwPredictor &model) const;

    /**
     * Global Optimizer (Section 4.1.2): plan heterogeneous connection
     * ranges from a predicted BW matrix.
     *
     * @param skewWeights per-DC input-data skew weights (empty =
     *                    uniform); ignored unless features.skewAware
     * @param rvec        refactoring matrix (empty = identity)
     */
    GlobalPlan plan(const BwMatrix &predictedBw,
                    const std::vector<double> &skewWeights = {},
                    const Matrix<double> &rvec = {}) const;

    /**
     * One run's worth of online state: the local agents plus the
     * throttles installed on that run's simulator. Owned by the
     * caller (one per engine run) so a single Wanify instance can
     * serve many concurrent runs — the experiment runner's parallel
     * trials share one facade across threads.
     */
    struct Deployment
    {
        std::vector<std::unique_ptr<LocalAgent>> agents;
        ThrottleController throttles;

        /** Remove the throttles this deployment installed. */
        void
        clear(net::NetworkSim &sim)
        {
            throttles.clear(sim);
        }
    };

    /**
     * Deploy on a live simulator: install throttles (if enabled) and
     * create one local agent per DC. The caller drives the agents'
     * onEpoch() at aimd.epoch intervals (the engine does this) and
     * clears the deployment when the run ends.
     */
    Deployment deploy(net::NetworkSim &sim, const GlobalPlan &plan,
                      const BwMatrix &predictedBw) const;

    ModelDriftDetector &driftDetector() { return drift_; }
    const WanifyConfig &config() const { return config_; }

  private:
    WanifyConfig config_;

    /**
     * Published predictor, guarded by predictorMu_: readers take
     * shared_ptr snapshots, retrain() swaps the pointer atomically.
     * Mutable because swapping the published model is logically a
     * service update, not an observable mutation of any pinned
     * snapshot — the facade stays const-shareable across trials.
     */
    mutable std::shared_ptr<const RuntimeBwPredictor> predictor_;
    mutable std::mutex predictorMu_;

    ModelDriftDetector drift_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_WANIFY_HH
