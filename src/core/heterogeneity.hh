/**
 * @file
 * Heterogeneity handling (Section 3.3.3): refactoring vectors for
 * multi-cloud providers and association for DCs hosting multiple VMs.
 *
 * Refactoring: BWs between different providers / machine types vary
 * proportionally; a per-pair multiplier matrix (rvec) generated a priori
 * rescales determined BWs. Refactoring is optional — the default rvec of
 * all ones is a no-op.
 *
 * Association: when the DC-VM mapping is one-to-many, per-VM BWs are
 * summed to reflect a DC's combined BW; connection plans computed for
 * the "one large VM" view are then chunked proportionally across the
 * DC's workers.
 */

#ifndef WANIFY_CORE_HETEROGENEITY_HH
#define WANIFY_CORE_HETEROGENEITY_HH

#include <vector>

#include "core/bw.hh"
#include "net/topology.hh"

namespace wanify {
namespace core {

/** All-ones rvec for @p n DCs (the default, refactoring disabled). */
Matrix<double> identityRvec(std::size_t n);

/**
 * Build an rvec from the topology's providers and VM types: pairs whose
 * endpoints differ in provider or WAN capability are scaled by the
 * ratio of their capabilities, reflecting the proportional BW variation
 * observed empirically.
 */
Matrix<double> providerRvec(const net::Topology &topo);

/**
 * Association: scale a probe-measured (per-VM) BW matrix to DC-level
 * combined BW by multiplying each pair with the smaller endpoint's VM
 * count (aggregate parallel NICs), clamped by the pair's backbone
 * capacity.
 */
BwMatrix associateBw(const net::Topology &topo, const BwMatrix &perVmBw);

/**
 * Chunk a DC-level connection plan across a DC's workers: worker k of
 * DC i receives ceil(plan / vmCount) connections toward each peer,
 * never less than one.
 */
std::vector<ConnMatrix> chunkConnections(const net::Topology &topo,
                                         const ConnMatrix &dcPlan);

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_HETEROGENEITY_HH
