#include "core/local_agent.hh"

#include <algorithm>

#include "common/stats.hh"

namespace wanify {
namespace core {

using net::DcId;
using net::TransferId;

LocalAgent::LocalAgent(net::NetworkSim &sim, DcId sourceDc,
                       const GlobalPlan &plan,
                       std::vector<Mbps> predictedBw, AimdConfig cfg,
                       bool dynamicThrottling)
    : sim_(sim),
      sourceDc_(sourceDc),
      iftop_(sim, sourceDc),
      optimizer_(sourceDc, plan, std::move(predictedBw), cfg),
      lastMonitored_(sim.topology().dcCount(), 0.0),
      dynamicThrottling_(dynamicThrottling),
      capped_(sim.topology().dcCount(), false)
{
    iftop_.beginWindow();
    applyTargets();
}

void
LocalAgent::onEpoch()
{
    const std::size_t n = sim_.topology().dcCount();
    lastMonitored_ = iftop_.endWindow();

    std::vector<Bytes> pending(n, 0.0);
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        pending[j] = sim_.pendingBytesBetween(sourceDc_, j);
    }

    optimizer_.epochUpdate(lastMonitored_, pending);
    if (dynamicThrottling_)
        updateThrottles(lastMonitored_, pending);
    applyTargets();
    iftop_.beginWindow();
}

void
LocalAgent::updateThrottles(const std::vector<Mbps> &monitored,
                            const std::vector<Bytes> &pending)
{
    const std::size_t n = sim_.topology().dcCount();
    const Bytes minSize = optimizer_.config().minTransferSize;

    // Threshold T: mean monitored egress over destinations that still
    // move real data (Section 3.2.2). Pairs above T are BW-rich.
    double sum = 0.0;
    std::size_t count = 0;
    Seconds slowestRemaining = 0.0;
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_ || pending[j] < minSize)
            continue;
        sum += monitored[j];
        ++count;
        slowestRemaining = std::max(
            slowestRemaining,
            units::transferTime(pending[j],
                                std::max(monitored[j], 1.0)));
    }
    if (count < 2 || slowestRemaining <= 0.0)
        return; // nothing to balance against
    const Mbps threshold = sum / static_cast<double>(count);

    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        if (pending[j] < minSize) {
            // Pair drained — release its cap.
            if (capped_[j]) {
                sim_.setTcLimit(sourceDc_, j, 0.0);
                capped_[j] = false;
            }
            continue;
        }
        if (monitored[j] > threshold)
            capped_[j] = true; // newly identified as BW-rich
        if (capped_[j]) {
            // BW-rich destination: cap at the row's mean monitored
            // rate T (Section 3.2.2) so it cannot crowd the NIC the
            // weak links depend on. The agents are data-transfer-size
            // aware: a pair that *needs* more than T to finish
            // alongside the slowest pair keeps that rate (with 20%
            // headroom) — throttling must never manufacture a new
            // straggler. Caps are recomputed every epoch, so they
            // converge toward a balanced finish.
            const Mbps needed = units::rateFor(pending[j],
                                               slowestRemaining) *
                                1.35;
            sim_.setTcLimit(sourceDc_, j,
                            std::max(threshold, needed));
        }
    }
}

void
LocalAgent::resetWindow()
{
    iftop_.beginWindow();
}

void
LocalAgent::applyTargets()
{
    const std::size_t n = sim_.topology().dcCount();
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        const auto ids = sim_.transfersBetween(sourceDc_, j);
        if (ids.empty())
            continue;
        const int target = optimizer_.targetConnections(j);
        // Connections-manager role: split the per-pair budget across
        // the pair's transfers, at least one connection each.
        const int perTransfer = std::max(
            1, target / static_cast<int>(ids.size()));
        for (TransferId id : ids)
            sim_.setConnections(id, perTransfer);
    }
}

double
LocalAgent::targetBwStddev() const
{
    std::vector<double> values;
    const std::size_t n = sim_.topology().dcCount();
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        values.push_back(optimizer_.targetBw(j));
    }
    return stats::stddev(values);
}

double
LocalAgent::meanTrackingError() const
{
    const std::size_t n = sim_.topology().dcCount();
    double total = 0.0;
    std::size_t count = 0;
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        total += std::abs(optimizer_.targetBw(j) - lastMonitored_[j]);
        ++count;
    }
    return count ? total / static_cast<double>(count) : 0.0;
}

double
LocalAgent::monitoredBwStddev() const
{
    std::vector<double> values;
    const std::size_t n = sim_.topology().dcCount();
    for (DcId j = 0; j < n; ++j) {
        if (j == sourceDc_)
            continue;
        values.push_back(lastMonitored_[j]);
    }
    return stats::stddev(values);
}

} // namespace core
} // namespace wanify
