#include "core/forecast.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace core {

constexpr Mbps BwForecast::kMinFeasibleMbps;

void
BwForecast::addSegment(Seconds end, Matrix<Mbps> bw)
{
    fatalIf(bw.rows() != bw.cols() || bw.rows() == 0,
            "BwForecast::addSegment: matrix must be square");
    fatalIf(!bw_.empty() && bw.rows() != bw_.front().rows(),
            "BwForecast::addSegment: inconsistent matrix size");
    fatalIf(!ends_.empty() && end <= ends_.back(),
            "BwForecast::addSegment: ends must be strictly "
            "increasing");
    ends_.push_back(end);
    bw_.push_back(std::move(bw));
}

std::size_t
BwForecast::dcCount() const
{
    return bw_.empty() ? 0 : bw_.front().rows();
}

Seconds
BwForecast::horizonEnd() const
{
    fatalIf(ends_.empty(), "BwForecast::horizonEnd: empty forecast");
    return ends_.back();
}

std::size_t
BwForecast::segmentFor(Seconds t) const
{
    // Segment k holds over (ends_[k-1], ends_[k]]: the first segment
    // whose end is >= t, clamped to the final segment past the
    // horizon (its matrix is held forever).
    const auto it =
        std::lower_bound(ends_.begin(), ends_.end(), t);
    if (it == ends_.end())
        return ends_.size() - 1;
    return static_cast<std::size_t>(it - ends_.begin());
}

const Matrix<Mbps> &
BwForecast::matrixAt(Seconds t) const
{
    fatalIf(bw_.empty(), "BwForecast::matrixAt: empty forecast");
    return bw_[segmentFor(t)];
}

Mbps
BwForecast::bwAt(net::DcId i, net::DcId j, Seconds t) const
{
    return matrixAt(t).at(i, j);
}

Seconds
BwForecast::transferTime(net::DcId i, net::DcId j, Bytes bytes,
                         double share, Seconds start) const
{
    fatalIf(bw_.empty(), "BwForecast::transferTime: empty forecast");
    if (bytes <= 0.0)
        return 0.0;
    Bytes remaining = bytes;
    Seconds t = start;
    std::size_t k = segmentFor(start);
    while (true) {
        const Mbps rate =
            std::max(kMinFeasibleMbps, bw_[k].at(i, j) * share);
        const double bytesPerSecond =
            rate * units::kBitsPerMegabit / units::kBitsPerByte;
        if (k + 1 >= bw_.size()) {
            // Final segment: held forever, drain the rest here.
            return t + remaining / bytesPerSecond - start;
        }
        const Seconds window = ends_[k] - t;
        if (window > 0.0) {
            const Bytes moved = bytesPerSecond * window;
            if (moved >= remaining)
                return t + remaining / bytesPerSecond - start;
            remaining -= moved;
        }
        t = ends_[k];
        ++k;
    }
}

double
BwForecast::meshMeanAt(Seconds t) const
{
    const Matrix<Mbps> &m = matrixAt(t);
    if (m.rows() < 2)
        return m.at(0, 0);
    return m.offDiagonalMean();
}

GaugeTrend::GaugeTrend(std::size_t maxPoints) : maxPoints_(maxPoints)
{
    fatalIf(maxPoints_ < 2, "GaugeTrend: maxPoints must be >= 2");
}

void
GaugeTrend::record(Seconds t, const Matrix<Mbps> &bw)
{
    fatalIf(bw.rows() != bw.cols() || bw.rows() == 0,
            "GaugeTrend::record: matrix must be square");
    fatalIf(!points_.empty() && bw.rows() != points_.front().rows(),
            "GaugeTrend::record: inconsistent matrix size");
    fatalIf(!times_.empty() && t <= times_.back(),
            "GaugeTrend::record: times must be strictly increasing");
    times_.push_back(t);
    points_.push_back(bw);
    if (times_.size() > maxPoints_) {
        times_.erase(times_.begin());
        points_.erase(points_.begin());
    }
}

BwForecast
GaugeTrend::forecast(Seconds now, Seconds horizon, Seconds step) const
{
    BwForecast fc;
    if (points_.empty())
        return fc;
    fatalIf(!(horizon > 0.0) || !(step > 0.0),
            "GaugeTrend::forecast: horizon and step must be > 0");

    const std::size_t n = points_.front().rows();
    const std::size_t m = times_.size();

    if (m < 2) {
        // No trend yet: hold the only observation flat.
        fc.addSegment(now + horizon, points_.back());
        return fc;
    }

    // Per-pair ordinary least squares over the recorded history:
    // bw(t) ~ a + b t. One shared accumulation of the time moments,
    // per-pair accumulation of the cross terms.
    double sumT = 0.0, sumTT = 0.0;
    for (Seconds t : times_) {
        sumT += t;
        sumTT += t * t;
    }
    const double count = static_cast<double>(m);
    const double det = count * sumTT - sumT * sumT;

    Matrix<double> slope = Matrix<double>::square(n, 0.0);
    Matrix<double> intercept = points_.back().map<double>(
        [](Mbps v) { return static_cast<double>(v); });
    if (det > 1.0e-12) {
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                double sumY = 0.0, sumTY = 0.0;
                for (std::size_t k = 0; k < m; ++k) {
                    const double y = points_[k].at(i, j);
                    sumY += y;
                    sumTY += times_[k] * y;
                }
                slope.at(i, j) = (count * sumTY - sumT * sumY) / det;
                intercept.at(i, j) =
                    (sumY * sumTT - sumT * sumTY) / det;
            }
        }
    }

    const std::size_t steps = static_cast<std::size_t>(
        std::max(1.0, horizon / step + 0.5));
    for (std::size_t s = 1; s <= steps; ++s) {
        const Seconds end = now + static_cast<double>(s) * step;
        Matrix<Mbps> seg = Matrix<Mbps>::square(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                seg.at(i, j) = std::max(
                    0.0, intercept.at(i, j) + slope.at(i, j) * end);
        fc.addSegment(end, std::move(seg));
    }
    return fc;
}

Matrix<Mbps>
GaugeTrend::extrapolateAt(Seconds t) const
{
    fatalIf(points_.empty(),
            "GaugeTrend::extrapolateAt: no observations");
    const std::size_t n = points_.front().rows();
    const std::size_t m = times_.size();
    if (m < 2)
        return points_.back();

    double sumT = 0.0, sumTT = 0.0;
    for (Seconds u : times_) {
        sumT += u;
        sumTT += u * u;
    }
    const double count = static_cast<double>(m);
    const double det = count * sumTT - sumT * sumT;
    if (det <= 1.0e-12)
        return points_.back();

    Matrix<Mbps> out = Matrix<Mbps>::square(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double sumY = 0.0, sumTY = 0.0;
            for (std::size_t k = 0; k < m; ++k) {
                const double y = points_[k].at(i, j);
                sumY += y;
                sumTY += times_[k] * y;
            }
            const double slope = (count * sumTY - sumT * sumY) / det;
            const double intercept =
                (sumY * sumTT - sumT * sumTY) / det;
            out.at(i, j) = std::max(0.0, intercept + slope * t);
        }
    }
    return out;
}

} // namespace core
} // namespace wanify
