/**
 * @file
 * Bandwidth and connection matrix aliases plus small helpers shared by
 * the WANify components (Section 2.3: both predicted BWs and connection
 * counts are N x N matrices).
 */

#ifndef WANIFY_CORE_BW_HH
#define WANIFY_CORE_BW_HH

#include <cstddef>

#include "common/matrix.hh"
#include "common/units.hh"

namespace wanify {
namespace core {

/** Pairwise bandwidth matrix (Mbps), diagonal = intra-DC. */
using BwMatrix = Matrix<Mbps>;

/** Pairwise parallel-connection counts. */
using ConnMatrix = Matrix<int>;

/** The paper's significance threshold for BW differences (Mbps). */
constexpr Mbps kSignificantDelta = 100.0;

/**
 * Count off-diagonal entries where |a - b| exceeds @p threshold — the
 * paper's measure of how far one BW matrix is from another (Table 1,
 * Fig. 11).
 */
std::size_t countSignificantGaps(const BwMatrix &a, const BwMatrix &b,
                                 Mbps threshold = kSignificantDelta);

/**
 * Histogram of off-diagonal |a - b| gaps over intervals
 * (t, 200], (200, 250], (250, inf) for threshold t = 100 — exactly the
 * bins of Table 1.
 */
struct GapHistogram
{
    std::size_t low = 0;  ///< (100, 200]
    std::size_t mid = 0;  ///< (200, 250]
    std::size_t high = 0; ///< > 250

    std::size_t total() const { return low + mid + high; }
};

GapHistogram gapHistogram(const BwMatrix &a, const BwMatrix &b);

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_BW_HH
