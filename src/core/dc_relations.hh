/**
 * @file
 * Algorithm 1: inferring DC relationships (closeness indices).
 *
 * Given a runtime BW matrix and a minimum significant difference D, the
 * algorithm derives a "closeness index" for every DC pair: 1 for the
 * best-connected pairs, growing for more distant (lower-BW) pairs. The
 * paper's worked example:
 *
 *   bw = {1000, 400, 120; 380, 1000, 130; 110, 120, 1000}, D = 30
 *   unique sorted BWs: {110, 120, 130, 380, 400, 1000}
 *   filtered by D:     {110, 380, 1000}
 *   closeness:         1000 -> 1, {400, 380} -> 2, {130, 120, 110} -> 3
 *
 * The paper's pseudo-code loops `1..N/2`, but its own example fills the
 * full matrix; we iterate all N x N cells (see DESIGN.md).
 */

#ifndef WANIFY_CORE_DC_RELATIONS_HH
#define WANIFY_CORE_DC_RELATIONS_HH

#include "core/bw.hh"

namespace wanify {
namespace core {

/**
 * Compute closeness indices for every DC pair.
 *
 * @param bw   runtime (predicted) BW matrix, diagonal = intra-DC BW
 * @param minDifference  D — BW differences below this are merged
 * @return     integer matrix; 1 = closest, larger = farther
 */
Matrix<int> inferDcRelations(const BwMatrix &bw, Mbps minDifference);

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_DC_RELATIONS_HH
