#include "core/local_optimizer.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace core {

LocalOptimizer::LocalOptimizer(std::size_t sourceDc,
                               const GlobalPlan &plan,
                               std::vector<Mbps> predictedBw,
                               AimdConfig cfg)
    : sourceDc_(sourceDc), cfg_(cfg), predictedBw_(std::move(predictedBw))
{
    const std::size_t n = plan.minCons.rows();
    fatalIf(sourceDc >= n, "LocalOptimizer: sourceDc out of range");
    fatalIf(predictedBw_.size() != n,
            "LocalOptimizer: predicted BW row size mismatch");

    minCons_.resize(n);
    maxCons_.resize(n);
    minBw_.resize(n);
    maxBw_.resize(n);
    for (std::size_t j = 0; j < n; ++j) {
        minCons_[j] = plan.minCons.at(sourceDc, j);
        maxCons_[j] = plan.maxCons.at(sourceDc, j);
        minBw_[j] = plan.minBw.at(sourceDc, j);
        maxBw_[j] = plan.maxBw.at(sourceDc, j);
    }

    // Start from the maximum configuration (Section 3.2.2).
    cons_ = maxCons_;
    bw_ = maxBw_;
    mode_.assign(n, AimdMode::Hold);
}

void
LocalOptimizer::epochUpdate(const std::vector<Mbps> &monitoredBw,
                            const std::vector<Bytes> &pendingBytes)
{
    const std::size_t n = cons_.size();
    fatalIf(monitoredBw.size() != n || pendingBytes.size() != n,
            "LocalOptimizer::epochUpdate: vector size mismatch");

    for (std::size_t j = 0; j < n; ++j) {
        if (j == sourceDc_) {
            mode_[j] = AimdMode::Hold;
            continue;
        }
        // Tiny transfers say nothing about network state; skip to
        // avoid mode thrashing (Section 3.2.2).
        if (pendingBytes[j] < cfg_.minTransferSize) {
            mode_[j] = AimdMode::Skipped;
            continue;
        }

        if (monitoredBw[j] < bw_[j] - cfg_.significantDelta) {
            // Multiplicative decrease: congestion detected.
            cons_[j] = std::max(minCons_[j], cons_[j] / 2);
            bw_[j] = std::max(minBw_[j], bw_[j] / 2.0);
            mode_[j] = AimdMode::Decrease;
        } else if (cons_[j] < maxCons_[j]) {
            // Additive increase: +1 connection, linear BW bump toward
            // predicted x connections.
            cons_[j] = std::min(maxCons_[j], cons_[j] + 1);
            const Mbps linear = predictedBw_[j] * cons_[j];
            bw_[j] = std::clamp(linear, minBw_[j], maxBw_[j]);
            mode_[j] = AimdMode::Increase;
        } else {
            mode_[j] = AimdMode::Hold;
        }
    }
}

int
LocalOptimizer::targetConnections(std::size_t dst) const
{
    panicIf(dst >= cons_.size(), "targetConnections: out of range");
    return cons_[dst];
}

Mbps
LocalOptimizer::targetBw(std::size_t dst) const
{
    panicIf(dst >= bw_.size(), "targetBw: out of range");
    return bw_[dst];
}

AimdMode
LocalOptimizer::lastMode(std::size_t dst) const
{
    panicIf(dst >= mode_.size(), "lastMode: out of range");
    return mode_[dst];
}

} // namespace core
} // namespace wanify
