#include "core/heterogeneity.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace core {

Matrix<double>
identityRvec(std::size_t n)
{
    return Matrix<double>::square(n, 1.0);
}

Matrix<double>
providerRvec(const net::Topology &topo)
{
    const std::size_t n = topo.dcCount();
    Matrix<double> rvec = Matrix<double>::square(n, 1.0);

    // A DC's capability is its first VM's WAN cap (probes run there).
    std::vector<Mbps> capability(n, 0.0);
    for (net::DcId i = 0; i < n; ++i) {
        const auto &vms = topo.dc(i).vms;
        panicIf(vms.empty(), "providerRvec: DC without VMs");
        capability[i] = topo.vm(vms.front()).type.wanCapMbps;
    }
    const Mbps reference =
        *std::max_element(capability.begin(), capability.end());

    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            // Pairs limited by a weaker endpoint scale down
            // proportionally; homogeneous clusters stay at 1.
            const Mbps weaker =
                std::min(capability[i], capability[j]);
            rvec.at(i, j) = weaker / reference;
        }
    }
    return rvec;
}

BwMatrix
associateBw(const net::Topology &topo, const BwMatrix &perVmBw)
{
    const std::size_t n = topo.dcCount();
    fatalIf(perVmBw.rows() != n || perVmBw.cols() != n,
            "associateBw: shape mismatch");

    BwMatrix combined = perVmBw;
    for (net::DcId i = 0; i < n; ++i) {
        for (net::DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            const double vmFactor = static_cast<double>(
                std::min(topo.dc(i).vms.size(), topo.dc(j).vms.size()));
            combined.at(i, j) = std::min(
                perVmBw.at(i, j) * vmFactor, topo.pathCap(i, j));
        }
    }
    return combined;
}

std::vector<ConnMatrix>
chunkConnections(const net::Topology &topo, const ConnMatrix &dcPlan)
{
    const std::size_t n = topo.dcCount();
    fatalIf(dcPlan.rows() != n || dcPlan.cols() != n,
            "chunkConnections: shape mismatch");

    std::size_t maxVms = 1;
    for (const auto &dc : topo.dcs())
        maxVms = std::max(maxVms, dc.vms.size());

    std::vector<ConnMatrix> perWorker(
        maxVms, ConnMatrix::square(n, 1));
    for (net::DcId i = 0; i < n; ++i) {
        const auto workers = topo.dc(i).vms.size();
        for (net::DcId j = 0; j < n; ++j) {
            const int share = std::max(
                1, static_cast<int>(std::ceil(
                       static_cast<double>(dcPlan.at(i, j)) /
                       static_cast<double>(workers))));
            for (std::size_t k = 0; k < maxVms; ++k) {
                perWorker[k].at(i, j) =
                    k < workers ? share : 0;
            }
        }
    }
    return perWorker;
}

} // namespace core
} // namespace wanify
