/**
 * @file
 * Per-pair bandwidth forecast over a horizon of future timestamps.
 *
 * Schedulers historically planned every stage against one bandwidth
 * snapshot — the matrix the scheduler *believes* at plan time — so a
 * long shuffle could be placed across a pair about to enter a
 * maintenance window and the plan was wrong the moment it started.
 * A BwForecast is the cross-layer fix: a piecewise-constant matrix of
 * per-pair bandwidth over future time, queried by the stage-time
 * estimator to integrate expected transfer time across segments
 * instead of dividing by a single stale rate.
 *
 * Two sources produce forecasts:
 *  - simulation mode: scenario::forecastFromDynamics samples a
 *    Dynamics object's pure capFactorAt(i, j, t) (scenario/forecast.hh);
 *  - "deployed" mode: a GaugeTrend extrapolates the per-pair trend of
 *    recent gauged/predicted matrices, the way an operator would dead-
 *    reckon from the drift detector's history when no timetable of
 *    future events exists.
 *
 * Segment k's matrix holds over (end[k-1], end[k]] — the same
 * interval-end convention BwTrace replay uses — and the final matrix
 * is held beyond the horizon, so queries never fall off the end.
 */

#ifndef WANIFY_CORE_FORECAST_HH
#define WANIFY_CORE_FORECAST_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/matrix.hh"
#include "common/units.hh"
#include "net/topology.hh"

namespace wanify {
namespace core {

/** Forecast-aware planning tunables (engine / serve opt-in). */
struct ForecastConfig
{
    /** Master switch; off keeps snapshot planning bit-identical. */
    bool enabled = false;

    /** How far past plan time the forecast extends. */
    Seconds horizon = 240.0;

    /** Sampling granularity of the piecewise-constant segments. */
    Seconds step = 5.0;

    /**
     * How the believed matrix relates to the dynamics factors.
     * Nominal: the believed BW was measured under factor-1 conditions
     * (static matrices), so segment bw = believed * capFactorAt(t).
     * Current: the believed BW already reflects conditions *now*
     * (fresh prediction/gauge), so segment bw = believed *
     * capFactorAt(t) / capFactorAt(now).
     */
    enum class Anchor
    {
        Nominal,
        Current,
    };
    Anchor anchor = Anchor::Current;
};

/**
 * Piecewise-constant per-pair bandwidth over future time.
 *
 * Immutable after construction (via addSegment) and therefore safe to
 * share across the parallel objective evaluations of a fraction
 * search.
 */
class BwForecast
{
  public:
    /**
     * Rate floor (Mbps) applied inside transferTime: a zero-bandwidth
     * pair (outage) yields an astronomically large — but finite and
     * bytes-proportional — transfer time instead of +infinity, so the
     * fraction search still sees a gradient pointing away from dead
     * pairs rather than an indistinguishable plateau of infinities.
     */
    static constexpr Mbps kMinFeasibleMbps = 1.0e-3;

    BwForecast() = default;

    /**
     * Append one segment holding over (previous end, @p end]. Ends
     * must be strictly increasing; every matrix must be square with a
     * consistent size.
     */
    void addSegment(Seconds end, Matrix<Mbps> bw);

    bool empty() const { return bw_.empty(); }
    std::size_t segments() const { return bw_.size(); }
    std::size_t dcCount() const;

    /** End of the last segment (its matrix is held forever after). */
    Seconds horizonEnd() const;

    /** Matrix of the segment covering time @p t. */
    const Matrix<Mbps> &matrixAt(Seconds t) const;

    /** Forecast bandwidth of pair (i, j) at time @p t. */
    Mbps bwAt(net::DcId i, net::DcId j, Seconds t) const;

    /**
     * Time to move @p bytes across pair (i, j) starting at absolute
     * time @p start, integrating across forecast segments; each
     * segment's rate is bw * @p share floored at kMinFeasibleMbps.
     * Returns 0 for empty transfers.
     */
    Seconds transferTime(net::DcId i, net::DcId j, Bytes bytes,
                         double share, Seconds start) const;

    /** Mean off-diagonal bandwidth at time @p t (admission signal). */
    double meshMeanAt(Seconds t) const;

  private:
    std::size_t segmentFor(Seconds t) const;

    std::vector<Seconds> ends_;
    std::vector<Matrix<Mbps>> bw_;
};

/**
 * History of believed/gauged bandwidth matrices with per-pair linear
 * extrapolation — the "deployed mode" forecast source, fed by the
 * engine's drift-gauge results. Keeps the most recent @p maxPoints
 * observations; older trend is stale by definition.
 */
class GaugeTrend
{
  public:
    explicit GaugeTrend(std::size_t maxPoints = 8);

    /** Record a believed matrix observed at time @p t (increasing). */
    void record(Seconds t, const Matrix<Mbps> &bw);

    std::size_t size() const { return times_.size(); }

    /** At least two observations: a trend exists. */
    bool ready() const { return times_.size() >= 2; }

    /**
     * Per-pair least-squares linear fit over the recorded history,
     * sampled every @p step seconds out to @p horizon past @p now and
     * clamped at >= 0. With fewer than two observations the forecast
     * is flat at the last (or only) recorded matrix; with none it is
     * empty.
     */
    BwForecast forecast(Seconds now, Seconds horizon,
                        Seconds step) const;

    /**
     * The same per-pair least-squares fit evaluated at the single
     * instant @p t, clamped at >= 0 — the degradation ladder's
     * "trend" rung uses this as the believed matrix when gauges are
     * failing. With fewer than two observations this returns the
     * last recorded matrix; call sites must check size() > 0.
     */
    Matrix<Mbps> extrapolateAt(Seconds t) const;

  private:
    std::size_t maxPoints_;
    std::vector<Seconds> times_;
    std::vector<Matrix<Mbps>> points_;
};

} // namespace core
} // namespace wanify

#endif // WANIFY_CORE_FORECAST_HH
