#include "core/drift.hh"

#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace core {

ModelDriftDetector::ModelDriftDetector(DriftConfig config)
    : config_(config)
{
    fatalIf(config_.windowSize == 0, "DriftDetector: empty window");
    fatalIf(config_.retrainFraction <= 0.0 ||
                config_.retrainFraction > 1.0,
            "DriftDetector: retrainFraction must be in (0, 1]");
}

void
ModelDriftDetector::record(Mbps predicted, Mbps actual)
{
    const bool significant =
        std::abs(predicted - actual) > config_.significantError;
    window_.push_back(significant);
    if (significant)
        ++significantCount_;
    while (window_.size() > config_.windowSize) {
        if (window_.front())
            --significantCount_;
        window_.pop_front();
    }
}

double
ModelDriftDetector::errorFraction() const
{
    if (window_.empty())
        return 0.0;
    return static_cast<double>(significantCount_) /
           static_cast<double>(window_.size());
}

bool
ModelDriftDetector::needsRetraining() const
{
    return window_.size() >= config_.minObservations &&
           errorFraction() >= config_.retrainFraction;
}

void
ModelDriftDetector::reset()
{
    window_.clear();
    significantCount_ = 0;
}

} // namespace core
} // namespace wanify
