#include "core/drift.hh"

#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace core {

ModelDriftDetector::ModelDriftDetector(DriftConfig config)
    : config_(config)
{
    fatalIf(config_.windowSize == 0, "DriftDetector: empty window");
    fatalIf(config_.retrainFraction <= 0.0 ||
                config_.retrainFraction > 1.0,
            "DriftDetector: retrainFraction must be in (0, 1]");
}

void
ModelDriftDetector::record(Mbps predicted, Mbps actual)
{
    const bool significant =
        std::abs(predicted - actual) > config_.significantError;
    window_.push_back(significant);
    if (significant)
        ++significantCount_;
    while (window_.size() > config_.windowSize) {
        if (window_.front())
            --significantCount_;
        window_.pop_front();
    }
}

double
ModelDriftDetector::errorFraction() const
{
    if (window_.empty())
        return 0.0;
    return static_cast<double>(significantCount_) /
           static_cast<double>(window_.size());
}

bool
ModelDriftDetector::needsRetraining() const
{
    return window_.size() >= config_.minObservations &&
           errorFraction() >= config_.retrainFraction;
}

void
ModelDriftDetector::reset()
{
    window_.clear();
    significantCount_ = 0;
}

CapacityDriftGauge::CapacityDriftGauge(DriftConfig config,
                                       std::size_t dcCount)
    : dcCount_(dcCount),
      detector_(config),
      baseline_(dcCount * dcCount, 1.0)
{
    fatalIf(dcCount_ < 2, "CapacityDriftGauge: need >= 2 DCs");
}

void
CapacityDriftGauge::observe(const net::NetworkSim &sim)
{
    fatalIf(sim.topology().dcCount() != dcCount_,
            "CapacityDriftGauge: cluster size mismatch");
    for (net::DcId i = 0; i < dcCount_; ++i) {
        for (net::DcId j = 0; j < dcCount_; ++j) {
            if (i == j)
                continue;
            detector_.record(kDriftReferenceBw *
                                 baseline_[i * dcCount_ + j],
                             kDriftReferenceBw *
                                 sim.scenarioCapFactor(i, j));
        }
    }
}

void
CapacityDriftGauge::rebase(const net::NetworkSim &sim)
{
    fatalIf(sim.topology().dcCount() != dcCount_,
            "CapacityDriftGauge: cluster size mismatch");
    for (net::DcId i = 0; i < dcCount_; ++i)
        for (net::DcId j = 0; j < dcCount_; ++j)
            if (i != j)
                baseline_[i * dcCount_ + j] =
                    sim.scenarioCapFactor(i, j);
    detector_.reset();
}

} // namespace core
} // namespace wanify
