#include "cost/cost_model.hh"

#include "common/error.hh"

namespace wanify {
namespace cost {

CostBreakdown &
CostBreakdown::operator+=(const CostBreakdown &other)
{
    compute += other.compute;
    network += other.network;
    storage += other.storage;
    return *this;
}

CostModel::CostModel(const net::Topology &topo, Pricing pricing)
    : topo_(topo), pricing_(pricing)
{}

Dollars
CostModel::vmComputeCost(net::VmId vm, Seconds seconds) const
{
    const net::VmType &type = topo_.vm(vm).type;
    const Dollars perHour =
        type.pricePerHour +
        pricing_.burstPerVcpuHour * static_cast<double>(type.vcpus);
    return perHour / units::kSecondsPerHour * seconds;
}

Dollars
CostModel::clusterComputeCost(Seconds wallClockSeconds) const
{
    Dollars total = 0.0;
    for (net::VmId v = 0; v < topo_.vmCount(); ++v)
        total += vmComputeCost(v, wallClockSeconds);
    return total;
}

Dollars
CostModel::networkCost(const Matrix<Bytes> &bytesByPair) const
{
    fatalIf(bytesByPair.rows() != topo_.dcCount() ||
                bytesByPair.cols() != topo_.dcCount(),
            "networkCost: matrix shape mismatch");
    Dollars total = 0.0;
    for (net::DcId i = 0; i < topo_.dcCount(); ++i) {
        for (net::DcId j = 0; j < topo_.dcCount(); ++j) {
            if (i == j)
                continue; // intra-region transfer is free
            const double gb =
                bytesByPair.at(i, j) / pricing_.bytesPerBilledGb;
            total += gb * topo_.dc(i).region.egressPerGb;
        }
    }
    return total;
}

Dollars
CostModel::storageCost(double gb, Seconds seconds) const
{
    const double months =
        seconds / (30.0 * 24.0 * units::kSecondsPerHour);
    return gb * months * pricing_.storagePerGbMonth;
}

CostBreakdown
CostModel::queryCost(Seconds wallClockSeconds,
                     const Matrix<Bytes> &bytesByPair,
                     double storedGb) const
{
    CostBreakdown breakdown;
    breakdown.compute = clusterComputeCost(wallClockSeconds);
    breakdown.network = networkCost(bytesByPair);
    breakdown.storage = storageCost(storedGb, wallClockSeconds);
    return breakdown;
}

Dollars
annualMonitoringCost(const MonitoringCostParams &p)
{
    return p.occurrencesPerYear * static_cast<double>(p.nodes) *
           (p.perInstanceSecond * p.duration + p.perInstanceNetwork);
}

double
occurrencesPerYear(double intervalMinutes)
{
    fatalIf(intervalMinutes <= 0.0,
            "occurrencesPerYear: interval must be positive");
    return 365.0 * 24.0 * 60.0 / intervalMinutes;
}

Dollars
monitoringNetworkCost(Mbps mbps, Seconds secs, Dollars pricePerGb)
{
    // Decimal accounting as billed: Mbps * s -> Mbit -> GB.
    const double gigabits = mbps * secs / 1000.0;
    const double gigabytes = gigabits / 8.0;
    return gigabytes * pricePerGb;
}

} // namespace cost
} // namespace wanify
