/**
 * @file
 * Cloud cost accounting: query costs (compute + network + storage) and
 * the BW monitoring cost model of Eq. 1.
 *
 * Query costs follow Section 5.1: compute is the instance-hour price
 * plus a $0.05/vCPU-hour unlimited-burst surcharge; network is the
 * source region's inter-region egress price per (decimal) GB; storage is
 * S3-style per GB-month.
 */

#ifndef WANIFY_COST_COST_MODEL_HH
#define WANIFY_COST_COST_MODEL_HH

#include "common/matrix.hh"
#include "common/units.hh"
#include "net/topology.hh"

namespace wanify {
namespace cost {

/** Pricing constants (AWS list prices). */
struct Pricing
{
    /** Unlimited-burst surcharge, $/vCPU-hour (Section 5.1). */
    Dollars burstPerVcpuHour = 0.05;

    /** S3 storage, $/GB-month. */
    Dollars storagePerGbMonth = 0.023;

    /** Decimal bytes per GB for network billing. */
    double bytesPerBilledGb = 1.0e9;
};

/** Cost breakdown of one query / job / monitoring activity. */
struct CostBreakdown
{
    Dollars compute = 0.0;
    Dollars network = 0.0;
    Dollars storage = 0.0;

    Dollars total() const { return compute + network + storage; }

    CostBreakdown &operator+=(const CostBreakdown &other);
};

/** Query / monitoring cost calculator bound to a topology. */
class CostModel
{
  public:
    explicit CostModel(const net::Topology &topo, Pricing pricing = {});

    /**
     * Compute cost of running every VM in the cluster for
     * @p wallClockSeconds (the paper bills whole clusters for the query
     * duration), including the burst surcharge.
     */
    Dollars clusterComputeCost(Seconds wallClockSeconds) const;

    /** Compute cost of one VM for @p seconds. */
    Dollars vmComputeCost(net::VmId vm, Seconds seconds) const;

    /**
     * Network cost of moving @p bytesByPair (ordered DC-pair matrix) —
     * source region egress pricing; intra-region traffic is free.
     */
    Dollars networkCost(const Matrix<Bytes> &bytesByPair) const;

    /** Storage cost of @p gb held for @p seconds. */
    Dollars storageCost(double gb, Seconds seconds) const;

    /** Full query breakdown. */
    CostBreakdown queryCost(Seconds wallClockSeconds,
                            const Matrix<Bytes> &bytesByPair,
                            double storedGb = 0.0) const;

    const Pricing &pricing() const { return pricing_; }

  private:
    const net::Topology &topo_;
    Pricing pricing_;
};

/** Inputs of Eq. 1 — annual BW monitoring cost. */
struct MonitoringCostParams
{
    /** O: monitoring occurrences per year. */
    double occurrencesPerYear = 17520.0; ///< every 30 minutes

    /** N: nodes monitored. */
    std::size_t nodes = 8;

    /** x: average per-instance-second compute cost ($/s). */
    Dollars perInstanceSecond = 0.0052 / 3600.0; ///< t3.nano

    /** y: monitoring duration per occurrence (s). */
    Seconds duration = 20.0;

    /**
     * z: per-instance network cost per occurrence ($), e.g. 200 Mbps
     * for 20 s = 0.5 decimal GB at $0.02/GB = $0.01.
     */
    Dollars perInstanceNetwork = 0.01;
};

/** Eq. 1: O x N x (x*y + z). */
Dollars annualMonitoringCost(const MonitoringCostParams &p);

/** Occurrences per year at a fixed interval. */
double occurrencesPerYear(double intervalMinutes);

/** Per-instance network cost of exchanging @p mbps for @p secs. */
Dollars monitoringNetworkCost(Mbps mbps, Seconds secs,
                              Dollars pricePerGb = 0.02);

} // namespace cost
} // namespace wanify

#endif // WANIFY_COST_COST_MODEL_HH
