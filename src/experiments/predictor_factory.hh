/**
 * @file
 * Process-wide trained predictor cache.
 *
 * Several benches and the quickstart need a trained WAN Prediction
 * Model; training one takes a few seconds of Bandwidth Analyzer
 * collection plus forest fitting, so the factory trains once per
 * process (fixed seed — deterministic) and hands out shared pointers.
 */

#ifndef WANIFY_EXPERIMENTS_PREDICTOR_FACTORY_HH
#define WANIFY_EXPERIMENTS_PREDICTOR_FACTORY_HH

#include <memory>

#include "core/bandwidth_analyzer.hh"
#include "core/predictor.hh"

namespace wanify {
namespace experiments {

/** Analyzer configuration used for the shared predictor. */
core::AnalyzerConfig sharedAnalyzerConfig();

/** Forest configuration used for the shared predictor. */
ml::ForestConfig sharedForestConfig();

/**
 * The process-wide predictor, trained lazily with a fixed seed.
 * Thread-compatible (benches are single-threaded).
 */
std::shared_ptr<const core::RuntimeBwPredictor> sharedPredictor();

/**
 * A predictor whose Bandwidth Analyzer campaign ran under
 * scenario-conditioned dynamics (scenario::campaignDynamics cycling
 * the library), so its training rows cover outage/diurnal/degraded
 * regimes on top of stationary noise. Same forest configuration and
 * lazy per-process caching as sharedPredictor().
 */
std::shared_ptr<const core::RuntimeBwPredictor>
scenarioConditionedPredictor();

} // namespace experiments
} // namespace wanify

#endif // WANIFY_EXPERIMENTS_PREDICTOR_FACTORY_HH
