#include "experiments/testbed.hh"

#include "net/region.hh"
#include "net/vm.hh"

namespace wanify {
namespace experiments {

using net::RegionCatalog;
using net::Topology;
using net::TopologyBuilder;
using net::VmTypeCatalog;

Topology
workerCluster(std::size_t n, std::size_t vmsPerDc)
{
    return TopologyBuilder::paperTestbed(
        n, VmTypeCatalog::t2medium(), vmsPerDc);
}

Topology
monitoringCluster(std::size_t n)
{
    return TopologyBuilder::paperTestbed(n, VmTypeCatalog::t3nano(), 1);
}

Topology
fig2Cluster()
{
    TopologyBuilder builder;
    const auto &regions = RegionCatalog::all();
    builder.addDc(regions[RegionCatalog::UsEast],
                  VmTypeCatalog::t3nano());
    builder.addDc(regions[RegionCatalog::UsWest],
                  VmTypeCatalog::t3nano());
    builder.addDc(regions[RegionCatalog::ApSoutheast],
                  VmTypeCatalog::t3nano());
    return builder.build();
}

net::NetworkSimConfig
defaultSimConfig()
{
    net::NetworkSimConfig cfg;
    cfg.fluctuation.enabled = true;
    return cfg;
}

net::NetworkSimConfig
quietSimConfig()
{
    net::NetworkSimConfig cfg;
    cfg.fluctuation.enabled = false;
    return cfg;
}

std::vector<double>
naturalInputFractions(std::size_t n)
{
    // US East (ingest/master) heaviest, EU next, APAC lighter.
    static const double weights[8] = {1.8, 1.1, 0.7, 0.6,
                                      0.6, 0.8, 1.4, 1.0};
    std::vector<double> fractions(n, 1.0);
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        fractions[i] = weights[i % 8];
        sum += fractions[i];
    }
    for (auto &f : fractions)
        f /= sum;
    return fractions;
}

} // namespace experiments
} // namespace wanify
