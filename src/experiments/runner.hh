/**
 * @file
 * Repeated-trial runner: the paper reports every result as the mean of
 * 5 runs with standard-error bars; this helper runs a query closure
 * across seeds and aggregates latency, cost, and minimum BW the same
 * way.
 */

#ifndef WANIFY_EXPERIMENTS_RUNNER_HH
#define WANIFY_EXPERIMENTS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gda/engine.hh"

namespace wanify {
namespace experiments {

/** Aggregated trial statistics. */
struct Aggregate
{
    double meanLatency = 0.0;
    double seLatency = 0.0;
    double meanCost = 0.0;
    double seCost = 0.0;
    double meanMinBw = 0.0;
    double seMinBw = 0.0;

    /** Mean peak drift-error fraction (Section 3.3.4 telemetry). */
    double meanDriftErrorFraction = 0.0;

    /** Mean retrain-flag raises per trial. */
    double meanRetrainTriggers = 0.0;

    /** Retrain-flag raises summed across all trials. */
    std::size_t totalRetrainTriggers = 0;

    // --- online learning telemetry (adaptOnDrift runs) ---------------

    /** Trials that performed at least one warm-start retrain. */
    std::size_t trialsRetrained = 0;

    /** Warm-start retrains summed across all trials. */
    std::size_t totalRetrainsApplied = 0;

    /**
     * Mean pre-/post-retrain BW prediction error (Mbps) over the
     * trials that retrained (0 when none did). Post strictly below
     * pre is the signature of the model genuinely learning the
     * drifted regime rather than re-anchoring on it.
     */
    double meanPreRetrainError = 0.0;
    double meanPostRetrainError = 0.0;

    /**
     * Mean wall-clock seconds per warm-start retrain (real compute
     * stall inside Wanify::retrain, averaged over every retrain in
     * every trial; 0 when none fired) and the summed stall.
     */
    double meanRetrainSeconds = 0.0;
    double totalRetrainSeconds = 0.0;

    // --- fault & recovery telemetry (runs with a FaultPlan) ----------

    /** Fault events fired, summed across all trials. */
    std::size_t totalFaultsInjected = 0;

    /** In-flight transfers killed by faults, summed. */
    std::size_t totalTransferAborts = 0;

    /** Aborted transfers re-sent after backoff, summed. */
    std::size_t totalTransferRetries = 0;

    /** Residual replans after exhausted retry budgets, summed. */
    std::size_t totalFaultReplans = 0;

    /** Undelivered bytes that had to be re-sent, summed. */
    double totalLostBytes = 0.0;

    /** Mean simulated seconds per trial spent in retry backoff. */
    double meanBackoffSeconds = 0.0;

    /** Gauge attempts lost to ProbeLoss/GaugeTimeout, summed. */
    std::size_t totalGaugeFaults = 0;

    /** Trials whose predictor left the healthy-model rung at least
     *  once (worstPredictorMode > 0). */
    std::size_t trialsDegraded = 0;

    std::size_t trials = 0;
};

/** A closure producing one QueryResult per seed. */
using TrialFn = std::function<gda::QueryResult(std::uint64_t seed)>;

/** How runTrials executes its independent per-seed trials. */
enum class Execution
{
    /** One after another on the calling thread. */
    Sequential,

    /** Fanned out on the process-wide ThreadPool. */
    Parallel,
};

/**
 * Run @p trials seeds (paper default 5) and aggregate. Per-trial
 * seeds are derived from @p baseSeed with splitmix64 (deriveSeeds),
 * fixed before any trial runs, so the two execution modes produce
 * bit-identical aggregates. Trials default to running in parallel:
 * the closure must not mutate shared state (the engine, schedulers,
 * and the Wanify facade are all safe to share across trials).
 */
Aggregate runTrials(const TrialFn &fn, std::size_t trials = 5,
                    std::uint64_t baseSeed = 1000,
                    Execution exec = Execution::Parallel);

/** Aggregate pre-computed results. */
Aggregate aggregate(const std::vector<gda::QueryResult> &results);

/**
 * Format a duration for bench tables: "12.3s" under a minute,
 * "4m 05s" under an hour, "2h 03m 07s" beyond. Negative (and NaN)
 * inputs clamp to zero.
 */
std::string formatDuration(double seconds);

} // namespace experiments
} // namespace wanify

#endif // WANIFY_EXPERIMENTS_RUNNER_HH
