/**
 * @file
 * Repeated-trial runner: the paper reports every result as the mean of
 * 5 runs with standard-error bars; this helper runs a query closure
 * across seeds and aggregates latency, cost, and minimum BW the same
 * way.
 */

#ifndef WANIFY_EXPERIMENTS_RUNNER_HH
#define WANIFY_EXPERIMENTS_RUNNER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gda/engine.hh"

namespace wanify {
namespace experiments {

/** Aggregated trial statistics. */
struct Aggregate
{
    double meanLatency = 0.0;
    double seLatency = 0.0;
    double meanCost = 0.0;
    double seCost = 0.0;
    double meanMinBw = 0.0;
    double seMinBw = 0.0;
    std::size_t trials = 0;
};

/** A closure producing one QueryResult per seed. */
using TrialFn = std::function<gda::QueryResult(std::uint64_t seed)>;

/** Run @p trials seeds (paper default 5) and aggregate. */
Aggregate runTrials(const TrialFn &fn, std::size_t trials = 5,
                    std::uint64_t baseSeed = 1000);

/** Aggregate pre-computed results. */
Aggregate aggregate(const std::vector<gda::QueryResult> &results);

/** Format seconds as "Xm Ys" for bench tables. */
std::string formatDuration(double seconds);

} // namespace experiments
} // namespace wanify

#endif // WANIFY_EXPERIMENTS_RUNNER_HH
