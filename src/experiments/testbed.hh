/**
 * @file
 * Standard testbeds and simulator configurations shared by the bench
 * binaries and integration tests, mirroring Section 5.1's setup: 8 AWS
 * DCs over VPC peering, t2.medium workers (t2.large master co-resident
 * in US East), t3.nano monitoring probes, and the 3-DC motivation
 * subset of Fig. 2 (two nearby DCs + one distant).
 */

#ifndef WANIFY_EXPERIMENTS_TESTBED_HH
#define WANIFY_EXPERIMENTS_TESTBED_HH

#include <cstdint>

#include "net/network_sim.hh"
#include "net/topology.hh"

namespace wanify {
namespace experiments {

/** The paper's n-DC worker cluster (t2.medium everywhere). */
net::Topology workerCluster(std::size_t n = 8,
                            std::size_t vmsPerDc = 1);

/** Monitoring cluster: t3.nano probes, 1 per DC. */
net::Topology monitoringCluster(std::size_t n = 8);

/**
 * Fig. 2's 3-DC subset: DC1 = US East, DC2 = US West (nearby pair),
 * DC3 = AP SE Singapore (distant from both), t3.nano probes.
 */
net::Topology fig2Cluster();

/** Default simulator configuration (fluctuation on). */
net::NetworkSimConfig defaultSimConfig();

/** Simulator configuration with fluctuation disabled. */
net::NetworkSimConfig quietSimConfig();

/**
 * Realistic non-uniform input distribution for the TPC-DS experiments:
 * ingest lands heaviest where the master/HDFS namenode lives (US East)
 * and lighter in the APAC regions — the default block placement the
 * paper's Section 5.1 setup produces. Normalized to sum to 1.
 */
std::vector<double> naturalInputFractions(std::size_t n);

} // namespace experiments
} // namespace wanify

#endif // WANIFY_EXPERIMENTS_TESTBED_HH
