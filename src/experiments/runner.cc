#include "experiments/runner.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/thread_pool.hh"

namespace wanify {
namespace experiments {

Aggregate
aggregate(const std::vector<gda::QueryResult> &results)
{
    std::vector<double> latency, costTotal, minBw, driftErr, retrains;
    latency.reserve(results.size());
    for (const auto &r : results) {
        latency.push_back(r.latency);
        costTotal.push_back(r.cost.total());
        minBw.push_back(r.minObservedBw);
        driftErr.push_back(r.driftErrorFraction);
        retrains.push_back(static_cast<double>(r.retrainTriggers));
    }
    Aggregate agg;
    agg.trials = results.size();
    agg.meanLatency = stats::mean(latency);
    agg.seLatency = stats::stderrOfMean(latency);
    agg.meanCost = stats::mean(costTotal);
    agg.seCost = stats::stderrOfMean(costTotal);
    agg.meanMinBw = stats::mean(minBw);
    agg.seMinBw = stats::stderrOfMean(minBw);
    agg.meanDriftErrorFraction = stats::mean(driftErr);
    agg.meanRetrainTriggers = stats::mean(retrains);
    for (const auto &r : results) {
        agg.totalRetrainTriggers += r.retrainTriggers;
        agg.totalRetrainsApplied += r.retrainsApplied;
        agg.totalRetrainSeconds += r.retrainCpuSeconds;
        if (r.retrainsApplied > 0) {
            ++agg.trialsRetrained;
            agg.meanPreRetrainError += r.preRetrainError;
            agg.meanPostRetrainError += r.postRetrainError;
        }
        agg.totalFaultsInjected += r.faultsInjected;
        agg.totalTransferAborts += r.transferAborts;
        agg.totalTransferRetries += r.transferRetries;
        agg.totalFaultReplans += r.faultReplans;
        agg.totalLostBytes += r.lostBytes;
        agg.meanBackoffSeconds += r.backoffSeconds;
        agg.totalGaugeFaults += r.gaugeFaults;
        if (r.worstPredictorMode > 0)
            ++agg.trialsDegraded;
    }
    if (!results.empty())
        agg.meanBackoffSeconds /=
            static_cast<double>(results.size());
    if (agg.trialsRetrained > 0) {
        const auto k = static_cast<double>(agg.trialsRetrained);
        agg.meanPreRetrainError /= k;
        agg.meanPostRetrainError /= k;
    }
    if (agg.totalRetrainsApplied > 0) {
        agg.meanRetrainSeconds =
            agg.totalRetrainSeconds /
            static_cast<double>(agg.totalRetrainsApplied);
    }
    return agg;
}

Aggregate
runTrials(const TrialFn &fn, std::size_t trials, std::uint64_t baseSeed,
          Execution exec)
{
    // Seeds fixed up front and results stored by trial index: the
    // aggregate is bit-identical however the trials are scheduled.
    const auto seeds = deriveSeeds(baseSeed, trials);
    std::vector<gda::QueryResult> results(trials);
    auto runOne = [&](std::size_t t) { results[t] = fn(seeds[t]); };
    if (exec == Execution::Parallel) {
        ThreadPool::global().parallelFor(trials, runOne);
    } else {
        for (std::size_t t = 0; t < trials; ++t)
            runOne(t);
    }
    return aggregate(results);
}

std::string
formatDuration(double seconds)
{
    if (std::isnan(seconds) || seconds < 0.0)
        seconds = 0.0;
    // Cap before the integer cast: converting +inf or >= 2^64 to
    // uint64_t is undefined behavior. ~31M years is plenty.
    seconds = std::min(seconds, 1.0e15);
    char buf[48];
    if (seconds < 60.0) {
        std::snprintf(buf, sizeof(buf), "%.1fs", seconds);
        return buf;
    }
    const auto total = static_cast<std::uint64_t>(seconds);
    const std::uint64_t hours = total / 3600;
    const std::uint64_t mins = (total % 3600) / 60;
    const std::uint64_t secs = total % 60;
    if (hours > 0) {
        std::snprintf(buf, sizeof(buf),
                      "%lluh %02llum %02llus",
                      static_cast<unsigned long long>(hours),
                      static_cast<unsigned long long>(mins),
                      static_cast<unsigned long long>(secs));
    } else {
        std::snprintf(buf, sizeof(buf), "%llum %02llus",
                      static_cast<unsigned long long>(mins),
                      static_cast<unsigned long long>(secs));
    }
    return buf;
}

} // namespace experiments
} // namespace wanify
