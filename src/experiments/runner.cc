#include "experiments/runner.hh"

#include <cstdio>

#include "common/stats.hh"

namespace wanify {
namespace experiments {

Aggregate
aggregate(const std::vector<gda::QueryResult> &results)
{
    std::vector<double> latency, costTotal, minBw;
    latency.reserve(results.size());
    for (const auto &r : results) {
        latency.push_back(r.latency);
        costTotal.push_back(r.cost.total());
        minBw.push_back(r.minObservedBw);
    }
    Aggregate agg;
    agg.trials = results.size();
    agg.meanLatency = stats::mean(latency);
    agg.seLatency = stats::stderrOfMean(latency);
    agg.meanCost = stats::mean(costTotal);
    agg.seCost = stats::stderrOfMean(costTotal);
    agg.meanMinBw = stats::mean(minBw);
    agg.seMinBw = stats::stderrOfMean(minBw);
    return agg;
}

Aggregate
runTrials(const TrialFn &fn, std::size_t trials, std::uint64_t baseSeed)
{
    std::vector<gda::QueryResult> results;
    results.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t)
        results.push_back(fn(baseSeed + 7919 * t));
    return aggregate(results);
}

std::string
formatDuration(double seconds)
{
    const int mins = static_cast<int>(seconds) / 60;
    const int secs = static_cast<int>(seconds) % 60;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%dm %02ds", mins, secs);
    return buf;
}

} // namespace experiments
} // namespace wanify
