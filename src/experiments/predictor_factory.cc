#include "experiments/predictor_factory.hh"

#include "experiments/testbed.hh"
#include "scenario/library.hh"

namespace wanify {
namespace experiments {

core::AnalyzerConfig
sharedAnalyzerConfig()
{
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {2, 4, 6, 8};
    cfg.meshesPerSize = 24;
    cfg.sim = defaultSimConfig();
    return cfg;
}

ml::ForestConfig
sharedForestConfig()
{
    ml::ForestConfig cfg;
    cfg.nEstimators = 100; // the paper's best setting
    cfg.tree.maxDepth = 14;
    cfg.bootstrapFraction = 0.8;
    return cfg;
}

std::shared_ptr<const core::RuntimeBwPredictor>
sharedPredictor()
{
    static std::shared_ptr<const core::RuntimeBwPredictor> cached = [] {
        core::BandwidthAnalyzer analyzer(sharedAnalyzerConfig());
        const ml::Dataset data = analyzer.collect(20250042);
        auto predictor = std::make_shared<core::RuntimeBwPredictor>(
            sharedForestConfig());
        predictor->train(data, 20250043);
        return std::shared_ptr<const core::RuntimeBwPredictor>(
            std::move(predictor));
    }();
    return cached;
}

std::shared_ptr<const core::RuntimeBwPredictor>
scenarioConditionedPredictor()
{
    static std::shared_ptr<const core::RuntimeBwPredictor> cached = [] {
        core::AnalyzerConfig cfg = sharedAnalyzerConfig();
        cfg.dynamics = scenario::campaignDynamics();
        core::BandwidthAnalyzer analyzer(cfg);
        const ml::Dataset data = analyzer.collect(20250044);
        auto predictor = std::make_shared<core::RuntimeBwPredictor>(
            sharedForestConfig());
        predictor->train(data, 20250045);
        return std::shared_ptr<const core::RuntimeBwPredictor>(
            std::move(predictor));
    }();
    return cached;
}

} // namespace experiments
} // namespace wanify
