#include "storage/hdfs.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace storage {

HdfsStore::HdfsStore(const net::Topology &topo, HdfsConfig cfg)
    : topo_(topo), cfg_(cfg), bytesByDc_(topo.dcCount(), 0.0)
{
    fatalIf(cfg_.blockSize <= 0.0, "HdfsStore: blockSize must be > 0");
    fatalIf(cfg_.s3ReadOverhead < 1.0,
            "HdfsStore: s3ReadOverhead must be >= 1");
}

void
HdfsStore::loadUniform(Bytes totalBytes)
{
    std::vector<double> fractions(
        topo_.dcCount(), 1.0 / static_cast<double>(topo_.dcCount()));
    loadFractions(totalBytes, fractions);
}

void
HdfsStore::loadSkewed(Bytes totalBytes,
                      const std::vector<double> &dcFractions)
{
    fatalIf(dcFractions.size() != topo_.dcCount(),
            "HdfsStore::loadSkewed: fraction count mismatch");
    double sum = 0.0;
    for (double f : dcFractions) {
        fatalIf(f < 0.0, "HdfsStore::loadSkewed: negative fraction");
        sum += f;
    }
    fatalIf(std::abs(sum - 1.0) > 1.0e-6,
            "HdfsStore::loadSkewed: fractions must sum to 1");
    loadFractions(totalBytes, dcFractions);
}

void
HdfsStore::loadFractions(Bytes totalBytes,
                         const std::vector<double> &fractions)
{
    fatalIf(totalBytes <= 0.0, "HdfsStore: totalBytes must be > 0");
    blocks_.clear();
    bytesByDc_.assign(topo_.dcCount(), 0.0);

    std::size_t nextId = 0;
    for (net::DcId dc = 0; dc < topo_.dcCount(); ++dc) {
        Bytes want = totalBytes * fractions[dc];
        while (want > 0.0) {
            const Bytes size = std::min(want, cfg_.blockSize);
            blocks_.push_back({nextId++, size, dc});
            bytesByDc_[dc] += size;
            want -= size;
        }
    }
}

Bytes
HdfsStore::bytesAt(net::DcId dc) const
{
    panicIf(dc >= bytesByDc_.size(), "HdfsStore::bytesAt: out of range");
    const double overhead = cfg_.s3Mounted ? cfg_.s3ReadOverhead : 1.0;
    return bytesByDc_[dc] * overhead;
}

std::vector<Bytes>
HdfsStore::distribution() const
{
    std::vector<Bytes> dist(topo_.dcCount(), 0.0);
    for (net::DcId dc = 0; dc < topo_.dcCount(); ++dc)
        dist[dc] = bytesAt(dc);
    return dist;
}

Bytes
HdfsStore::totalBytes() const
{
    Bytes total = 0.0;
    for (net::DcId dc = 0; dc < topo_.dcCount(); ++dc)
        total += bytesAt(dc);
    return total;
}

std::vector<double>
HdfsStore::skewWeights() const
{
    const std::size_t n = topo_.dcCount();
    const Bytes total = totalBytes();
    std::vector<double> ws(n, 1.0);
    if (total <= 0.0)
        return ws;
    for (net::DcId dc = 0; dc < n; ++dc) {
        const double share = bytesAt(dc) / total;
        ws[dc] = std::max(0.25, share * static_cast<double>(n));
    }
    return ws;
}

} // namespace storage
} // namespace wanify
