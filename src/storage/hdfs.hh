/**
 * @file
 * Geo-distributed HDFS-like block store.
 *
 * Input data lives as fixed-size blocks (64 MB in the paper's skew
 * experiments) distributed across DCs — uniformly, or skewed toward a
 * chosen subset by moving blocks (Section 5.8.1). The store exposes the
 * per-DC byte distribution and the skewness weights (ws) WANify's
 * global optimizer consumes (Section 3.3.1). S3-mounted data nodes add a
 * small (< 5%) read overhead (Section 5.1).
 */

#ifndef WANIFY_STORAGE_HDFS_HH
#define WANIFY_STORAGE_HDFS_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"
#include "net/topology.hh"

namespace wanify {
namespace storage {

/** One HDFS block. */
struct Block
{
    std::size_t id = 0;
    Bytes size = 0.0;
    net::DcId location = 0;
};

/** Store configuration. */
struct HdfsConfig
{
    /** Block size (the paper's skew experiments use 64 MB). */
    Bytes blockSize = 64.0 * 1024.0 * 1024.0;

    /** Read-amplification of S3-mounted data nodes (< 5%). */
    double s3ReadOverhead = 1.03;

    /** Data nodes are S3-mounted buckets (Section 5.1). */
    bool s3Mounted = true;
};

class HdfsStore
{
  public:
    explicit HdfsStore(const net::Topology &topo, HdfsConfig cfg = {});

    /** Load @p totalBytes spread as evenly as blocks allow. */
    void loadUniform(Bytes totalBytes);

    /**
     * Load @p totalBytes with the given per-DC fractions (must sum to
     * ~1); used to emulate moving blocks into skewed DCs.
     */
    void loadSkewed(Bytes totalBytes,
                    const std::vector<double> &dcFractions);

    const std::vector<Block> &blocks() const { return blocks_; }
    std::size_t blockCount() const { return blocks_.size(); }

    /** Bytes resident at a DC (including S3 read overhead if any). */
    Bytes bytesAt(net::DcId dc) const;

    /** Per-DC byte distribution (effective read bytes). */
    std::vector<Bytes> distribution() const;

    Bytes totalBytes() const;

    /**
     * Skewness weights ws (Section 3.3.1): per-DC data share scaled so
     * a uniform distribution yields all-ones. Clamped to >= 0.25 so
     * empty DCs keep a usable connection floor.
     */
    std::vector<double> skewWeights() const;

    const HdfsConfig &config() const { return cfg_; }

  private:
    void loadFractions(Bytes totalBytes,
                       const std::vector<double> &fractions);

    const net::Topology &topo_;
    HdfsConfig cfg_;
    std::vector<Block> blocks_;
    std::vector<Bytes> bytesByDc_;
};

} // namespace storage
} // namespace wanify

#endif // WANIFY_STORAGE_HDFS_HH
