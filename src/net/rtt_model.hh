/**
 * @file
 * RTT and single-connection TCP throughput model.
 *
 * RTT is derived from great-circle distance with a fiber-speed factor and
 * a route-inflation multiplier. Per-connection achievable throughput
 * follows a Mathis-style law calibrated against the paper's two anchor
 * measurements:
 *
 *   US East <-> US West  (~3860 km): 1700 Mbps single connection
 *   US East <-> AP SE   (~15700 km):  121 Mbps single connection
 *
 * Solving rate = C / RTT^k for the two anchors gives k ~= 2, i.e. the
 * Mathis law with loss probability growing linearly in RTT — the standard
 * empirical behaviour on long-haul WAN paths. The paper also observes the
 * weakest link scaling to ~1 Gbps with 9 connections, which this model
 * reproduces (9 x 121 ~= 1089, capped by path capacity).
 */

#ifndef WANIFY_NET_RTT_MODEL_HH
#define WANIFY_NET_RTT_MODEL_HH

#include "common/units.hh"

namespace wanify {
namespace net {

/** Parameters of the RTT/throughput model. */
struct RttModelParams
{
    /** Base RTT floor (intra-metro handoff, virtualization). */
    Seconds baseRtt = 0.004;

    /** Speed of light in fiber as a fraction of c. */
    double fiberSpeedFraction = 0.66;

    /** Multiplier for non-great-circle routing. */
    double routeInflation = 1.3;

    /**
     * Mathis constant C in rate = C / RTT^2 (Mbps * s^2), calibrated from
     * the paper's anchors (1700 Mbps at ~55 ms).
     */
    double mathisConstant = 5.14;

    /** Per-connection throughput clamp. */
    Mbps minConnCap = 10.0;
    Mbps maxConnCap = 4800.0;
};

/** Distance -> RTT -> single-connection throughput. */
class RttModel
{
  public:
    explicit RttModel(RttModelParams params = {});

    /** Round-trip time over a path of @p km great-circle kilometers. */
    Seconds rtt(Kilometers km) const;

    /** Achievable single TCP connection throughput at @p rttSeconds. */
    Mbps connCap(Seconds rttSeconds) const;

    /** Convenience: connCap(rtt(km)). */
    Mbps connCapForDistance(Kilometers km) const;

    const RttModelParams &params() const { return params_; }

  private:
    RttModelParams params_;
};

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_RTT_MODEL_HH
