/**
 * @file
 * Dense ordered-DC-pair indexing for flat per-pair state banks.
 *
 * Every hot per-pair structure in the simulator and the serve layer
 * (capacity factors, RTT factors, solver inputs, contended-pair
 * claims) keys on the same dense index `src * n + dst`. PairIndex
 * names that convention once so flat arrays across layers agree on
 * layout, and gives the iteration helpers the hot loops share.
 *
 * The layout is row-major over ordered pairs, diagonal included: for
 * n DCs there are n*n slots, and slot p maps back to
 * (src = p / n, dst = p % n). Keeping the diagonal in the bank wastes
 * n slots but makes the index arithmetic branch-free — composition
 * passes touch all n*n entries and fix the diagonal up afterwards,
 * which is cheaper than per-entry branching at 256 DCs (65536 pairs).
 */

#ifndef WANIFY_NET_PAIR_INDEX_HH
#define WANIFY_NET_PAIR_INDEX_HH

#include <cstddef>

namespace wanify {
namespace net {

/** Dense index over the ordered DC pairs of an n-DC mesh. */
class PairIndex
{
  public:
    PairIndex() = default;
    explicit PairIndex(std::size_t dcCount) : n_(dcCount) {}

    std::size_t dcCount() const { return n_; }

    /** Number of slots in a flat bank (n*n, diagonal included). */
    std::size_t size() const { return n_ * n_; }

    /** Dense slot of the ordered pair (src, dst). */
    std::size_t operator()(std::size_t src, std::size_t dst) const
    {
        return src * n_ + dst;
    }

    /** Source DC of slot @p p. */
    std::size_t src(std::size_t p) const { return p / n_; }

    /** Destination DC of slot @p p. */
    std::size_t dst(std::size_t p) const { return p % n_; }

    /** True when slot @p p is a self-pair (src == dst). */
    bool diagonal(std::size_t p) const { return p / n_ == p % n_; }

  private:
    std::size_t n_ = 0;
};

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_PAIR_INDEX_HH
