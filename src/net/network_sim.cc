#include "net/network_sim.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hh"

namespace wanify {
namespace net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr Bytes kByteEps = 1.0; // one byte of slack for completions

} // namespace

namespace {

/** VM capacity wobble is gentler than path-level fluctuation. */
FluctuationParams
vmFluctuationParams(FluctuationParams base)
{
    base.logSigma *= 0.3;
    return base;
}

} // namespace

NetworkSim::NetworkSim(Topology topology, NetworkSimConfig config,
                       std::uint64_t seed)
    : topology_(std::move(topology)),
      config_(config),
      pairs_(topology_.dcCount()),
      fluctuation_(topology_.pairCount(), config.fluctuation, seed),
      vmFluctuation_(topology_.vmCount(),
                     vmFluctuationParams(config.fluctuation),
                     seed ^ 0xabcdef1234567ULL),
      nextTick_(config.tickInterval),
      tcLimits_(topology_.pairCount(), 0.0),
      scenarioCap_(topology_.pairCount(), 1.0),
      scenarioRtt_(topology_.pairCount(), 1.0),
      pairBytes_(Matrix<Bytes>::square(topology_.dcCount(), 0.0))
{
    fatalIf(config_.tickInterval <= 0.0,
            "NetworkSim: tickInterval must be positive");

    // Unpack the immutable per-pair topology quantities into flat
    // PairIndex-layout banks once, so resolveRates composes arrays
    // instead of chasing matrix accessors.
    const std::size_t n = topology_.dcCount();
    basePathCap_.resize(pairs_.size());
    connCapFlat_.resize(pairs_.size());
    baseRtt_.resize(pairs_.size());
    routeQualityFlat_.resize(pairs_.size());
    pairWeight_.resize(pairs_.size());
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            const std::size_t p = pairs_(i, j);
            basePathCap_[p] = topology_.pathCap(i, j);
            connCapFlat_[p] = topology_.connCap(i, j);
            baseRtt_[p] = topology_.rttSeconds(i, j);
            routeQualityFlat_[p] = topology_.routeQuality(i, j);
        }
    }
    vmWanCap_.resize(topology_.vmCount());
    vmNicCap_.resize(topology_.vmCount());
    for (VmId v = 0; v < topology_.vmCount(); ++v) {
        vmWanCap_[v] = topology_.vm(v).type.wanCapMbps;
        vmNicCap_[v] = topology_.vm(v).type.nicCapMbps;
    }
    inputs_.dcCount = n;
    inputs_.vmEgressCap.resize(topology_.vmCount());
    inputs_.vmIngressCap.resize(topology_.vmCount());
    inputs_.vmNicCap.resize(topology_.vmCount());
    inputs_.pathCap.resize(pairs_.size());
}

TransferId
NetworkSim::makeTransfer(VmId src, VmId dst, Bytes bytes, int connections,
                         bool measurement, FlowGroupId group)
{
    fatalIf(src >= topology_.vmCount() || dst >= topology_.vmCount(),
            "NetworkSim: VM id out of range");
    fatalIf(src == dst, "NetworkSim: transfer to self");
    fatalIf(connections < 1, "NetworkSim: connections must be >= 1");

    Transfer t;
    t.id = nextId_++;
    t.srcVm = src;
    t.dstVm = dst;
    t.srcDc = topology_.vm(src).dc;
    t.dstDc = topology_.vm(dst).dc;
    t.connections = connections;
    t.measurement = measurement;
    t.group = group;
    t.remaining = measurement ? kInf : bytes;
    transfers_[t.id] = t;
    ratesDirty_ = true;
    return t.id;
}

TransferId
NetworkSim::startTransfer(VmId src, VmId dst, Bytes bytes, int connections,
                          FlowGroupId group)
{
    fatalIf(bytes <= 0.0, "startTransfer: bytes must be positive");
    return makeTransfer(src, dst, bytes, connections, false, group);
}

TransferId
NetworkSim::startMeasurement(VmId src, VmId dst, int connections)
{
    return makeTransfer(src, dst, 0.0, connections, true, 0);
}

void
NetworkSim::stopTransfer(TransferId id)
{
    auto it = transfers_.find(id);
    if (it == transfers_.end())
        return;
    completed_[id] = it->second;
    transfers_.erase(it);
    ratesDirty_ = true;
}

void
NetworkSim::setConnections(TransferId id, int connections)
{
    fatalIf(connections < 1, "setConnections: connections must be >= 1");
    auto it = transfers_.find(id);
    if (it == transfers_.end())
        return;
    if (it->second.connections != connections) {
        it->second.connections = connections;
        ratesDirty_ = true;
    }
}

void
NetworkSim::setTcLimit(DcId src, DcId dst, Mbps limit)
{
    const std::size_t pair = topology_.pairIndex(src, dst);
    tcLimits_[pair] = limit > 0.0 ? limit : 0.0;
    ratesDirty_ = true;
}

void
NetworkSim::clearTcLimits()
{
    std::fill(tcLimits_.begin(), tcLimits_.end(), 0.0);
    ratesDirty_ = true;
}

void
NetworkSim::setScenarioCapFactor(DcId src, DcId dst, double factor)
{
    fatalIf(!std::isfinite(factor) || factor < 0.0,
            "setScenarioCapFactor: factor must be finite and >= 0");
    const std::size_t pair = topology_.pairIndex(src, dst);
    if (scenarioCap_[pair] != factor) {
        scenarioCap_[pair] = factor;
        ratesDirty_ = true;
    }
}

void
NetworkSim::setScenarioRttFactor(DcId src, DcId dst, double factor)
{
    fatalIf(!std::isfinite(factor) || factor <= 0.0,
            "setScenarioRttFactor: factor must be finite and > 0");
    const std::size_t pair = topology_.pairIndex(src, dst);
    if (scenarioRtt_[pair] != factor) {
        scenarioRtt_[pair] = factor;
        ratesDirty_ = true;
        weightsDirty_ = true;
    }
}

void
NetworkSim::clearScenarioFactors()
{
    std::fill(scenarioCap_.begin(), scenarioCap_.end(), 1.0);
    std::fill(scenarioRtt_.begin(), scenarioRtt_.end(), 1.0);
    ratesDirty_ = true;
    weightsDirty_ = true;
}

double
NetworkSim::scenarioCapFactor(DcId src, DcId dst) const
{
    return scenarioCap_[topology_.pairIndex(src, dst)];
}

double
NetworkSim::scenarioRttFactor(DcId src, DcId dst) const
{
    return scenarioRtt_[topology_.pairIndex(src, dst)];
}

void
NetworkSim::setGroupWeight(FlowGroupId group, double weight)
{
    fatalIf(group == 0, "setGroupWeight: group 0 is ungrouped");
    fatalIf(!std::isfinite(weight) || weight <= 0.0,
            "setGroupWeight: weight must be finite and > 0");
    groups_[group].weight = weight;
    ratesDirty_ = true;
    groupsDirty_ = true;
}

void
NetworkSim::setGroupPairCap(FlowGroupId group, DcId src, DcId dst,
                            Mbps cap)
{
    fatalIf(group == 0, "setGroupPairCap: group 0 is ungrouped");
    fatalIf(!std::isfinite(cap), "setGroupPairCap: cap must be finite");
    const std::size_t pair = topology_.pairIndex(src, dst);
    auto lookup = [pair](GroupState &state) {
        return std::lower_bound(
            state.pairCap.begin(), state.pairCap.end(), pair,
            [](const std::pair<std::size_t, Mbps> &e,
               std::size_t key) { return e.first < key; });
    };
    if (cap > 0.0) {
        GroupState &state = groups_[group];
        auto it = lookup(state);
        if (it != state.pairCap.end() && it->first == pair)
            it->second = cap;
        else
            state.pairCap.insert(it, {pair, cap});
    } else {
        auto git = groups_.find(group);
        if (git == groups_.end())
            return;
        auto it = lookup(git->second);
        if (it != git->second.pairCap.end() && it->first == pair)
            git->second.pairCap.erase(it);
    }
    ratesDirty_ = true;
    groupsDirty_ = true;
}

void
NetworkSim::clearGroupAllocations(FlowGroupId group)
{
    if (groups_.erase(group) > 0) {
        ratesDirty_ = true;
        groupsDirty_ = true;
    }
}

Mbps
NetworkSim::groupRate(FlowGroupId group) const
{
    Mbps total = 0.0;
    for (const auto &[id, t] : transfers_) {
        if (t.group == group)
            total += t.rate;
    }
    return total;
}

Bytes
NetworkSim::groupPendingBytes(FlowGroupId group) const
{
    Bytes total = 0.0;
    for (const auto &[id, t] : transfers_) {
        if (t.group == group && !t.measurement)
            total += t.remaining;
    }
    return total;
}

std::size_t
NetworkSim::groupTransferCount(FlowGroupId group) const
{
    std::size_t count = 0;
    for (const auto &[id, t] : transfers_) {
        if (t.group == group)
            ++count;
    }
    return count;
}

void
NetworkSim::rebuildPairWeights()
{
    // RTT bias of TCP sharing: weight ~ 1/RTT^2, consistent with
    // the Mathis-law per-connection caps (see flow_solver.hh).
    // Route quality makes lossy backbone paths *timid* under
    // contention without affecting their solo throughput — the
    // asymmetry that makes statically measured BWs mis-rank links
    // at runtime (Table 1 / Section 2.2).
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
        const Seconds rtt =
            std::max(baseRtt_[p] * scenarioRtt_[p], 1.0e-3);
        pairWeight_[p] = routeQualityFlat_[p] / (rtt * rtt);
    }
    weightsDirty_ = false;
}

void
NetworkSim::rebuildGroupInputs()
{
    // Allocator state: groups_ keys map to dense solver indices in
    // ascending id order (deterministic), and each group's sparse
    // share caps land pre-sorted by (group, pair) because the map
    // iterates in key order and each cap vector is kept sorted.
    denseGroup_.clear();
    inputs_.groupShareCap.clear();
    for (const auto &[g, state] : groups_) {
        const std::size_t dense = denseGroup_.size();
        denseGroup_.emplace(g, dense);
        for (const auto &[pair, cap] : state.pairCap)
            inputs_.groupShareCap.push_back({dense, pair, cap});
    }
    groupsDirty_ = false;
}

void
NetworkSim::resolveRates()
{
    if (config_.referenceSolverInputs) {
        resolveRatesReference();
        return;
    }
    const std::size_t n = topology_.dcCount();

    // One branch-free composition pass per bank: cached fluctuation
    // multipliers x scenario factors over the flat base arrays, then
    // the diagonal fixed up to nominal (legacy used multiplier 1
    // there; self-pairs carry no WAN transfers either way).
    const std::vector<double> &vmMult = vmFluctuation_.multipliers();
    for (VmId v = 0; v < vmWanCap_.size(); ++v) {
        const double wobble = vmMult[v];
        inputs_.vmEgressCap[v] = vmWanCap_[v] * wobble;
        inputs_.vmIngressCap[v] = vmWanCap_[v] * wobble;
        inputs_.vmNicCap[v] = vmNicCap_[v] * wobble;
    }
    const std::vector<double> &mult = fluctuation_.multipliers();
    for (std::size_t p = 0; p < pairs_.size(); ++p)
        inputs_.pathCap[p] =
            basePathCap_[p] * (mult[p] * scenarioCap_[p]);
    for (DcId i = 0; i < n; ++i)
        inputs_.pathCap[pairs_(i, i)] = basePathCap_[pairs_(i, i)];
    inputs_.tcLimit = tcLimits_;

    if (groupsDirty_)
        rebuildGroupInputs();
    if (weightsDirty_)
        rebuildPairWeights();

    specs_.clear();
    specs_.reserve(transfers_.size());
    for (const auto &[id, t] : transfers_) {
        FlowSpec spec;
        spec.srcVm = t.srcVm;
        spec.dstVm = t.dstVm;
        spec.srcDc = t.srcDc;
        spec.dstDc = t.dstDc;
        spec.connections = t.connections;
        const std::size_t pair = pairs_(t.srcDc, t.dstDc);
        spec.weightPerConn = pairWeight_[pair];
        spec.capPerConn = connCapFlat_[pair];
        if (t.group != 0) {
            auto g = groups_.find(t.group);
            if (g != groups_.end()) {
                spec.weightPerConn *= g->second.weight;
                spec.group = denseGroup_.at(t.group);
            }
        }
        specs_.push_back(spec);
    }

    const auto rates =
        solveRates(specs_, inputs_, config_.solver, &solverScratch_);
    std::size_t i = 0;
    for (auto &[id, t] : transfers_) {
        t.rate = rates[i].rate;
        t.bottleneck = rates[i].bottleneck;
        ++i;
    }
    ratesDirty_ = false;
}

void
NetworkSim::resolveRatesReference()
{
    // The pre-flat input builder, preserved verbatim: fresh map-keyed
    // structures and matrix accessors every call. resolveRates() must
    // stay bit-identical to this (net_test asserts it on the 8-DC
    // golden mesh); bench_perf_mesh_scale times the two against each
    // other.
    const std::size_t n = topology_.dcCount();

    SolverInputs inputs;
    inputs.dcCount = n;
    inputs.vmEgressCap.resize(topology_.vmCount());
    inputs.vmIngressCap.resize(topology_.vmCount());
    inputs.vmNicCap.resize(topology_.vmCount());
    for (VmId v = 0; v < topology_.vmCount(); ++v) {
        const VmType &type = topology_.vm(v).type;
        const double wobble = vmFluctuation_.multiplier(v);
        inputs.vmEgressCap[v] = type.wanCapMbps * wobble;
        inputs.vmIngressCap[v] = type.wanCapMbps * wobble;
        inputs.vmNicCap[v] = type.nicCapMbps * wobble;
    }
    inputs.pathCap.resize(n * n);
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            const std::size_t pair = topology_.pairIndex(i, j);
            double mult = i == j ? 1.0
                                 : fluctuation_.multiplier(pair) *
                                       scenarioCap_[pair];
            inputs.pathCap[pair] = topology_.pathCap(i, j) * mult;
        }
    }
    inputs.tcLimit = tcLimits_;

    std::map<FlowGroupId, std::size_t> denseGroup;
    for (const auto &[g, state] : groups_) {
        const std::size_t dense = denseGroup.size();
        denseGroup.emplace(g, dense);
        for (const auto &[pair, cap] : state.pairCap)
            inputs.groupShareCap.push_back({dense, pair, cap});
    }

    std::vector<FlowSpec> specs;
    std::vector<TransferId> order;
    specs.reserve(transfers_.size());
    order.reserve(transfers_.size());
    for (const auto &[id, t] : transfers_) {
        FlowSpec spec;
        spec.srcVm = t.srcVm;
        spec.dstVm = t.dstVm;
        spec.srcDc = t.srcDc;
        spec.dstDc = t.dstDc;
        spec.connections = t.connections;
        const Seconds rtt = std::max(
            topology_.rttSeconds(t.srcDc, t.dstDc) *
                scenarioRtt_[topology_.pairIndex(t.srcDc, t.dstDc)],
            1.0e-3);
        spec.weightPerConn =
            topology_.routeQuality(t.srcDc, t.dstDc) / (rtt * rtt);
        spec.capPerConn = topology_.connCap(t.srcDc, t.dstDc);
        if (t.group != 0) {
            auto g = groups_.find(t.group);
            if (g != groups_.end()) {
                spec.weightPerConn *= g->second.weight;
                spec.group = denseGroup.at(t.group);
            }
        }
        specs.push_back(spec);
        order.push_back(id);
    }

    const auto rates = solveRates(specs, inputs, config_.solver);
    for (std::size_t i = 0; i < order.size(); ++i) {
        Transfer &t = transfers_[order[i]];
        t.rate = rates[i].rate;
        t.bottleneck = rates[i].bottleneck;
    }
    ratesDirty_ = false;
}

Seconds
NetworkSim::nextCompletionIn() const
{
    Seconds best = kInf;
    for (const auto &[id, t] : transfers_) {
        if (t.measurement)
            continue;
        if (t.remaining <= kByteEps)
            return 0.0;
        if (t.rate <= 0.0)
            continue;
        best = std::min(best, units::transferTime(t.remaining, t.rate));
    }
    return best;
}

void
NetworkSim::progress(Seconds dt)
{
    // dt == 0 is a legal "sweep" pass that only collects transfers whose
    // byte counters already reached zero.
    panicIf(dt < 0.0, "progress: negative dt");
    std::vector<TransferId> finished;
    for (auto &[id, t] : transfers_) {
        const Bytes moved = units::bytesAtRate(t.rate, dt);
        t.moved += moved;
        pairBytes_.at(t.srcDc, t.dstDc) += moved;
        if (!t.measurement) {
            t.remaining -= moved;
            if (t.remaining <= kByteEps)
                finished.push_back(id);
        }
    }
    now_ += dt;
    for (TransferId id : finished) {
        auto it = transfers_.find(id);
        it->second.remaining = 0.0;
        completed_[id] = it->second;
        completions_.push_back({id, now_});
        transfers_.erase(it);
        ratesDirty_ = true;
    }
}

void
NetworkSim::advanceBy(Seconds dt)
{
    fatalIf(dt < 0.0, "advanceBy: negative dt");
    Seconds remaining = dt;
    std::size_t guard = 0;
    while (remaining > 1.0e-12) {
        panicIf(++guard > 100000000,
                "advanceBy: too many steps; check tickInterval");
        if (ratesDirty_)
            resolveRates();
        const Seconds toTick = nextTick_ - now_;
        const Seconds toCompletion = nextCompletionIn();
        const Seconds step =
            std::max(0.0, std::min({remaining, toTick, toCompletion}));
        if (step > 0.0)
            progress(step);
        remaining -= step;
        if (now_ >= nextTick_ - 1.0e-12) {
            fluctuation_.step(config_.tickInterval);
            vmFluctuation_.step(config_.tickInterval);
            nextTick_ += config_.tickInterval;
            ratesDirty_ = true;
        } else if (step == 0.0 && toCompletion == 0.0) {
            // A transfer was already complete; run a zero-length sweep
            // pass to collect it.
            progress(0.0);
            // Completions flip ratesDirty_; loop continues.
            if (!ratesDirty_)
                break; // defensive: nothing changed, avoid spinning
        }
    }
    // Leave rates fresh so telemetry right after advanceBy is valid.
    if (ratesDirty_)
        resolveRates();
}

Seconds
NetworkSim::runUntilAllComplete(Seconds maxTime)
{
    std::size_t guard = 0;
    while (!allTransfersDone() && now_ < maxTime - 1.0e-9) {
        panicIf(++guard > 100000000, "runUntilAllComplete: stuck");
        if (ratesDirty_)
            resolveRates();
        const Seconds toCompletion = nextCompletionIn();
        // Advance to the earlier of the next completion, the next
        // tick (stalled transfers may unstall when fluctuation moves),
        // or the horizon. A sub-epsilon step cannot make progress —
        // stop instead of spinning.
        const Seconds step =
            std::min(toCompletion == kInf ? config_.tickInterval
                                          : toCompletion,
                     maxTime - now_);
        if (step <= 1.0e-9)
            break;
        advanceBy(step);
    }
    return now_;
}

bool
NetworkSim::allTransfersDone() const
{
    for (const auto &[id, t] : transfers_) {
        if (!t.measurement)
            return false;
    }
    return true;
}

std::vector<CompletionRecord>
NetworkSim::drainCompletions()
{
    std::vector<CompletionRecord> out;
    out.swap(completions_);
    return out;
}

TransferStatus
NetworkSim::status(TransferId id) const
{
    TransferStatus st;
    auto it = transfers_.find(id);
    if (it != transfers_.end()) {
        const Transfer &t = it->second;
        st.exists = true;
        st.done = false;
        st.bytesMoved = t.moved;
        st.bytesRemaining = t.measurement ? kInf : t.remaining;
        st.currentRate = t.rate;
        st.bottleneck = t.bottleneck;
        st.connections = t.connections;
        return st;
    }
    auto ct = completed_.find(id);
    if (ct != completed_.end()) {
        const Transfer &t = ct->second;
        st.exists = true;
        st.done = true;
        st.bytesMoved = t.moved;
        st.bytesRemaining = 0.0;
        st.currentRate = 0.0;
        st.bottleneck = t.bottleneck;
        st.connections = t.connections;
    }
    return st;
}

Mbps
NetworkSim::transferRate(TransferId id) const
{
    auto it = transfers_.find(id);
    if (it == transfers_.end())
        return 0.0;
    panicIf(ratesDirty_, "transferRate: rates are stale; advance first");
    return it->second.rate;
}

Mbps
NetworkSim::pairRate(DcId src, DcId dst) const
{
    Mbps total = 0.0;
    for (const auto &[id, t] : transfers_) {
        if (t.srcDc == src && t.dstDc == dst)
            total += t.rate;
    }
    return total;
}

Bytes
NetworkSim::pairBytes(DcId src, DcId dst) const
{
    return pairBytes_.at(src, dst);
}

Matrix<Mbps>
NetworkSim::pairRateMatrix() const
{
    const std::size_t n = topology_.dcCount();
    Matrix<Mbps> m = Matrix<Mbps>::square(n, 0.0);
    for (const auto &[id, t] : transfers_)
        m.at(t.srcDc, t.dstDc) += t.rate;
    return m;
}

double
NetworkSim::pairRetransScore(DcId src, DcId dst) const
{
    double demand = 0.0;
    double served = 0.0;
    for (const auto &[id, t] : transfers_) {
        if (t.srcDc != src || t.dstDc != dst)
            continue;
        demand += bundleCap(t.connections,
                            topology_.connCap(t.srcDc, t.dstDc),
                            config_.solver);
        served += t.rate;
    }
    if (demand <= 0.0)
        return 0.0;
    return std::clamp(1.0 - served / demand, 0.0, 1.0);
}

Mbps
NetworkSim::effectivePathCap(DcId src, DcId dst) const
{
    if (src == dst)
        return topology_.pathCap(src, dst);
    const std::size_t pair = topology_.pairIndex(src, dst);
    return topology_.pathCap(src, dst) *
           fluctuation_.multiplier(pair) * scenarioCap_[pair];
}

std::vector<TransferId>
NetworkSim::transfersBetween(DcId src, DcId dst) const
{
    std::vector<TransferId> ids;
    for (const auto &[id, t] : transfers_) {
        if (t.srcDc == src && t.dstDc == dst)
            ids.push_back(id);
    }
    return ids;
}

Bytes
NetworkSim::pendingBytesBetween(DcId src, DcId dst) const
{
    Bytes total = 0.0;
    for (const auto &[id, t] : transfers_) {
        if (t.srcDc == src && t.dstDc == dst && !t.measurement)
            total += t.remaining;
    }
    return total;
}

int
NetworkSim::totalConnectionsAtVm(VmId vm) const
{
    int total = 0;
    for (const auto &[id, t] : transfers_) {
        if (t.srcVm == vm || t.dstVm == vm)
            total += t.connections;
    }
    return total;
}

} // namespace net
} // namespace wanify
