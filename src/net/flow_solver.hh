/**
 * @file
 * Flow-level WAN bandwidth allocation.
 *
 * Each active transfer between two VMs is a bundle of parallel TCP
 * connections. The solver distributes bandwidth with *weighted*
 * progressive filling (weighted max-min fairness), where a bundle's
 * weight is connections x (1 / RTT). The 1/RTT weighting is the standard
 * fluid model of TCP AIMD's RTT bias [Vojnovic et al., INFOCOM'00 — the
 * paper's ref 37]: at a shared bottleneck, short-RTT flows grab
 * proportionally more. This single mechanism reproduces the paper's
 * central observations:
 *
 *  - nearby DCs occupy most of each other's capacity under uniform
 *    parallelism (Fig. 2(b)), and
 *  - giving *more* connections to distant pairs lifts the weakest link at
 *    the cost of the strongest (Fig. 2(c)).
 *
 * Constraints honored, in addition to per-bundle capability:
 *  - per-VM WAN egress and ingress caps (provider throttling),
 *  - per-VM NIC caps (half-duplex share per direction),
 *  - per-DC-pair backbone path capacity (with fluctuation applied by the
 *    caller), and
 *  - optional per-DC-pair Traffic Control (tc) limits set by WANify's
 *    local agents.
 *
 * A bundle's own capability is connections x connCap x efficiency(n)
 * where efficiency decays quadratically past a knee, modeling the
 * congestion observed when parallelism is pushed past ~8 connections
 * (Section 2.2).
 */

#ifndef WANIFY_NET_FLOW_SOLVER_HH
#define WANIFY_NET_FLOW_SOLVER_HH

#include <cstddef>
#include <vector>

#include "common/units.hh"

namespace wanify {
namespace net {

/** What ultimately limited a flow bundle's rate. */
enum class Bottleneck {
    None,        ///< unconstrained (should not happen with finite caps)
    SelfCap,     ///< its own connections' aggregate capability
    SrcVm,       ///< source VM WAN egress throttle
    DstVm,       ///< destination VM WAN ingress throttle
    NicTotal,    ///< a VM's total NIC (sum of in and out, Section 2.1)
    Path,        ///< DC-pair backbone capacity
    TcLimit,     ///< WANify throttling
    GroupShare,  ///< cross-query allocator share (serve layer)
};

/** Sentinel for flows that belong to no flow group. */
constexpr std::size_t kNoFlowGroup = static_cast<std::size_t>(-1);

/** One transfer bundle presented to the solver. */
struct FlowSpec
{
    std::size_t srcVm = 0;
    std::size_t dstVm = 0;
    std::size_t srcDc = 0;
    std::size_t dstDc = 0;

    /** Number of parallel connections in the bundle (>= 1). */
    int connections = 1;

    /** Fair-share weight of one connection (1/RTT; 1.0 = unweighted). */
    double weightPerConn = 1.0;

    /** Achievable throughput of one connection (RTT model). */
    Mbps capPerConn = 0.0;

    /**
     * Dense flow-group index (one group per concurrent query in the
     * serve layer), or kNoFlowGroup. Groups tie a query's flows to
     * the cross-query share caps in SolverInputs::groupShareCap.
     */
    std::size_t group = kNoFlowGroup;
};

/** Per-flow result. */
struct FlowRate
{
    Mbps rate = 0.0;
    Bottleneck bottleneck = Bottleneck::None;
};

/** Static solver inputs besides the flows themselves. */
struct SolverInputs
{
    /** WAN egress cap per VM (index = VmId). */
    std::vector<Mbps> vmEgressCap;

    /** WAN ingress cap per VM. */
    std::vector<Mbps> vmIngressCap;

    /**
     * Total NIC capacity per VM, shared by both directions — providers
     * advertise network performance as the *sum* of inbound and
     * outbound (Section 2.1's m5.large example), which is what lets
     * bidirectional nearby traffic crowd out distant pairs.
     */
    std::vector<Mbps> vmNicCap;

    /** DC count (for pair indexing). */
    std::size_t dcCount = 0;

    /** Path capacity per ordered DC pair (index src * dcCount + dst). */
    std::vector<Mbps> pathCap;

    /**
     * Optional tc limit per ordered DC pair; entries <= 0 mean
     * unlimited. Empty vector = no throttling anywhere.
     */
    std::vector<Mbps> tcLimit;

    /**
     * Sparse cross-query share caps installed by the serve layer's
     * BandwidthAllocator: the aggregate rate of one flow group across
     * one ordered DC pair may not exceed @c cap. Entries must be
     * sorted by (group, pair) and unique; caps <= 0 are ignored.
     * This is how one query's WAN share of a contended link is
     * *divided* away from the others while the ordinary max-min
     * filling still governs everything inside the share.
     */
    struct GroupShareCap
    {
        std::size_t group = 0;
        std::size_t pair = 0;
        Mbps cap = 0.0;
    };
    std::vector<GroupShareCap> groupShareCap;
};

/** Tunables of the allocation model. */
struct SolverConfig
{
    /** Connections per bundle beyond which efficiency decays. */
    int connectionKnee = 8;

    /** Quadratic efficiency decay coefficient past the knee. */
    double congestionAlpha = 0.05;

    /**
     * Per-VM connection overhead: when the total connections at a VM
     * exceed vmConnKnee, its effective NIC/WAN capacities shrink by
     * 1 / (1 + vmConnAlpha x excess) — every connection costs memory
     * buffers and per-packet work (the paper's Md feature rationale,
     * ref [17]). This is what makes blind uniform parallelism
     * counter-productive (Fig. 5's WANify-P).
     */
    int vmConnKnee = 96;
    double vmConnAlpha = 0.05;

    /**
     * Oversubscription waste: when the aggregate *desire* (connection
     * capability, clipped by tc limits) crossing a VM exceeds its
     * capacity, loss-based TCP burns goodput on retransmissions.
     * Effective capacity shrinks by 1 / (1 + alpha x (demand/cap - 1)).
     * This is the mechanism WANify's throttling exploits: capping
     * BW-rich pairs lowers demand, recovering wasted capacity for the
     * weak links (Fig. 5, WANify-TC).
     */
    double oversubAlpha = 0.06;

    /** Numerical tolerance (Mbps). */
    double epsilon = 1e-9;
};

/**
 * Aggregate capability of a bundle of @p connections connections with
 * per-connection cap @p capPerConn: n x cap x efficiency(n).
 */
Mbps bundleCap(int connections, Mbps capPerConn, const SolverConfig &cfg);

/**
 * Reusable per-call workspace for solveRates.
 *
 * A solve allocates a dozen bookkeeping vectors whose sizes repeat
 * call to call (per-VM, per-pair, per-flow). A caller that solves
 * every simulated tick (NetworkSim) keeps one scratch alive so steady
 * state allocates nothing. Contents are meaningless between calls.
 */
struct SolverScratch
{
    struct Resource
    {
        Mbps cap = 0.0;
        Mbps used = 0.0;
        Bottleneck kind = Bottleneck::None;
        std::vector<std::size_t> flows;
    };

    std::vector<int> connsAtVm;
    std::vector<Mbps> desireAtVm;
    std::vector<Resource> resources;
    std::vector<int> egressIdx;
    std::vector<int> ingressIdx;
    std::vector<int> nicIdx;
    std::vector<int> pathIdx;
    std::vector<int> tcIdx;
    std::vector<int> groupCapIdx;
    std::vector<int> groupCapOfFlow;
    std::vector<double> weight;
    std::vector<Mbps> selfCap;
    std::vector<std::vector<int>> flowResources;
    std::vector<char> active;

    // Event-driven water-fill state: per-resource active weight sums,
    // capacity already pinned by frozen flows, live flow counts, the
    // current saturation key (stale heap entries are discarded by
    // comparing against it), and the lazy min-heap of fill events.
    struct FillEvent
    {
        double key = 0.0;    ///< fill level theta of the event
        int kind = 0;        ///< 0 = flow self-cap, 1 = resource
        std::size_t id = 0;  ///< flow or resource index
    };

    std::vector<double> wsum;
    std::vector<double> frozenUsed;
    std::vector<int> activeAtResource;
    std::vector<double> satKey;
    std::vector<FillEvent> heap;
};

/**
 * Allocate rates to all flows with weighted progressive filling.
 *
 * @p scratch, when given, pools the solver's internal buffers across
 * calls (identical results either way).
 *
 * @return One FlowRate per input flow, in order.
 */
std::vector<FlowRate> solveRates(const std::vector<FlowSpec> &flows,
                                 const SolverInputs &inputs,
                                 const SolverConfig &cfg = {},
                                 SolverScratch *scratch = nullptr);

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_FLOW_SOLVER_HH
