/**
 * @file
 * Event-driven flow-level WAN simulator.
 *
 * NetworkSim owns the dynamic network state: the set of active transfers
 * (finite shuffles or infinite iPerf-style measurement flows), per-pair
 * capacity fluctuation, and WANify tc throttles. Rates are re-solved
 * whenever the flow set changes and at every fluctuation tick; between
 * rate changes, transfers progress linearly and completions are located
 * exactly.
 *
 * The simulator is the common substrate for the measurement plane
 * (monitor/), for WANify's local agents, and for the GDA engine's shuffle
 * stages.
 */

#ifndef WANIFY_NET_NETWORK_SIM_HH
#define WANIFY_NET_NETWORK_SIM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/matrix.hh"
#include "common/units.hh"
#include "net/flow_solver.hh"
#include "net/fluctuation.hh"
#include "net/pair_index.hh"
#include "net/topology.hh"

namespace wanify {
namespace net {

using TransferId = std::uint64_t;

/**
 * A flow group ties the transfers of one logical tenant (one query of
 * the serve layer) together for cross-query bandwidth allocation:
 * per-group fair-share weights, per-(group, pair) share caps, and
 * per-group telemetry. Group 0 is "ungrouped" — the default for all
 * legacy callers, measurement flows, and scenario bursts.
 */
using FlowGroupId = std::uint64_t;

/** A transfer completion event. */
struct CompletionRecord
{
    TransferId id = 0;
    Seconds time = 0.0;
};

/** Snapshot of one transfer's progress. */
struct TransferStatus
{
    bool exists = false;
    bool done = false;
    Bytes bytesMoved = 0.0;
    Bytes bytesRemaining = 0.0;
    Mbps currentRate = 0.0;
    Bottleneck bottleneck = Bottleneck::None;
    int connections = 0;
};

/** Simulator tunables. */
struct NetworkSimConfig
{
    /** Interval between fluctuation updates / rate re-solves. */
    Seconds tickInterval = 1.0;

    FluctuationParams fluctuation;
    SolverConfig solver;

    /**
     * Build solver inputs the pre-flat way (fresh map-keyed
     * structures every resolve) instead of composing the persistent
     * flat per-pair arrays. Bit-identical results either way — kept
     * as the parity reference and the honest "before" arm of
     * bench_perf_mesh_scale's resolveRates speedup.
     */
    bool referenceSolverInputs = false;
};

class NetworkSim
{
  public:
    NetworkSim(Topology topology, NetworkSimConfig config = {},
               std::uint64_t seed = 1);

    /** Current simulated time. */
    Seconds now() const { return now_; }

    const Topology &topology() const { return topology_; }
    const NetworkSimConfig &config() const { return config_; }

    // --- transfer management ---------------------------------------------

    /** Start a finite transfer of @p bytes; returns its id. */
    TransferId startTransfer(VmId src, VmId dst, Bytes bytes,
                             int connections = 1,
                             FlowGroupId group = 0);

    /** Start an infinite (iPerf-style) measurement flow. */
    TransferId startMeasurement(VmId src, VmId dst, int connections = 1);

    /** Remove a transfer (finite or measurement) before completion. */
    void stopTransfer(TransferId id);

    /** Change the parallel connection count of an active transfer. */
    void setConnections(TransferId id, int connections);

    /** Set (or with limit <= 0, clear) a tc throttle on a DC pair. */
    void setTcLimit(DcId src, DcId dst, Mbps limit);

    /** Remove all tc throttles. */
    void clearTcLimits();

    // --- scenario overrides ------------------------------------------------
    //
    // The scenario engine (src/scenario/) drives non-stationary WAN
    // dynamics — diurnal cycles, degradation, outages, trace replay —
    // through these per-pair factors. They multiply into the
    // OU-fluctuated path capacity (and the pair RTT used for TCP
    // share weighting), so scripted dynamics and stationary noise
    // compose.

    /**
     * Scenario capacity factor for an ordered DC pair (1 = nominal,
     * 0 = hard outage). Must be finite and >= 0.
     */
    void setScenarioCapFactor(DcId src, DcId dst, double factor);

    /** Scenario RTT inflation factor for a pair. Must be finite, > 0. */
    void setScenarioRttFactor(DcId src, DcId dst, double factor);

    /** Reset every scenario factor to 1. */
    void clearScenarioFactors();

    double scenarioCapFactor(DcId src, DcId dst) const;
    double scenarioRttFactor(DcId src, DcId dst) const;

    // --- flow registry (cross-query WAN sharing) ---------------------------
    //
    // The serve layer's BandwidthAllocator divides each contended
    // pair's capacity among active queries by installing per-(group,
    // pair) share caps — enforced inside the flow solver as first-
    // class resources (Bottleneck::GroupShare) — and may bias the
    // weighted max-min filling itself through per-group weights.

    /**
     * Fair-share weight multiplier for every flow of @p group (> 0,
     * finite; default 1). Composes with the per-flow RTT-bias weight,
     * so a weight of 2 gives the group's flows twice the share they
     * would organically win at every shared resource.
     */
    void setGroupWeight(FlowGroupId group, double weight);

    /**
     * Cap the aggregate rate of @p group across ordered pair
     * (src, dst) at @p cap Mbps; cap <= 0 removes the cap. The cap
     * becomes a dedicated solver resource, so the group's flows
     * share *their* allocation max-min among themselves while other
     * groups compete only for the remainder.
     */
    void setGroupPairCap(FlowGroupId group, DcId src, DcId dst,
                         Mbps cap);

    /** Drop every weight and share cap registered for @p group. */
    void clearGroupAllocations(FlowGroupId group);

    /** Instantaneous aggregate rate of a group's transfers. */
    Mbps groupRate(FlowGroupId group) const;

    /** Remaining bytes of a group's active finite transfers. */
    Bytes groupPendingBytes(FlowGroupId group) const;

    /** Active transfers (finite + measurement) tagged with @p group. */
    std::size_t groupTransferCount(FlowGroupId group) const;

    /** Groups with registered weights or share caps. */
    std::size_t registeredGroupCount() const { return groups_.size(); }

    // --- time -------------------------------------------------------------

    /** Advance simulated time by exactly @p dt. */
    void advanceBy(Seconds dt);

    /**
     * Run until every finite transfer completes or @p maxTime elapses.
     * @return The time at which the last finite transfer completed (or
     *         now() if it hit maxTime first).
     */
    Seconds runUntilAllComplete(Seconds maxTime = 1.0e7);

    /** True when no finite transfer remains active. */
    bool allTransfersDone() const;

    /** Retrieve and clear accumulated completion events. */
    std::vector<CompletionRecord> drainCompletions();

    // --- telemetry ---------------------------------------------------------

    TransferStatus status(TransferId id) const;

    /** Instantaneous rate of one transfer. */
    Mbps transferRate(TransferId id) const;

    /** Instantaneous aggregate rate between two DCs. */
    Mbps pairRate(DcId src, DcId dst) const;

    /** Cumulative bytes moved between two DCs since construction. */
    Bytes pairBytes(DcId src, DcId dst) const;

    /** Instantaneous DC-pair rate matrix. */
    Matrix<Mbps> pairRateMatrix() const;

    /**
     * Congestion proxy for a DC pair: the fraction of aggregate
     * connection capability left unserved, in [0, 1]. Feeds the Nr
     * (retransmissions) feature of Table 3.
     */
    double pairRetransScore(DcId src, DcId dst) const;

    /** Effective (fluctuated) path capacity right now. */
    Mbps effectivePathCap(DcId src, DcId dst) const;

    /** Total parallel connections currently open at a VM (both dirs). */
    int totalConnectionsAtVm(VmId vm) const;

    /** Ids of active transfers (incl. measurements) between two DCs. */
    std::vector<TransferId> transfersBetween(DcId src, DcId dst) const;

    /** Remaining bytes of active finite transfers between two DCs. */
    Bytes pendingBytesBetween(DcId src, DcId dst) const;

    /** Number of active transfers (finite + measurement). */
    std::size_t activeTransferCount() const { return transfers_.size(); }

  private:
    struct Transfer
    {
        TransferId id = 0;
        VmId srcVm = 0;
        VmId dstVm = 0;
        DcId srcDc = 0;
        DcId dstDc = 0;
        int connections = 1;
        bool measurement = false;
        FlowGroupId group = 0;
        Bytes remaining = 0.0;
        Bytes moved = 0.0;
        Mbps rate = 0.0;
        Bottleneck bottleneck = Bottleneck::None;
    };

    /** Allocator state for one flow group (see setGroupWeight). */
    struct GroupState
    {
        double weight = 1.0;

        /** Share caps as (pair index, cap), sorted by pair. */
        std::vector<std::pair<std::size_t, Mbps>> pairCap;
    };

    /** Recompute rates for the current flow set. */
    void resolveRates();

    /** Legacy map-keyed input build (parity reference + bench arm). */
    void resolveRatesReference();

    /** Refresh pairWeight_ from the scenario RTT factors. */
    void rebuildPairWeights();

    /** Refresh denseGroup_ + the solver's sparse group share caps. */
    void rebuildGroupInputs();

    /** Earliest finite-transfer completion horizon at current rates. */
    Seconds nextCompletionIn() const;

    /** Progress all transfers by dt at current rates; handle finishes. */
    void progress(Seconds dt);

    TransferId makeTransfer(VmId src, VmId dst, Bytes bytes,
                            int connections, bool measurement,
                            FlowGroupId group);

    Topology topology_;
    NetworkSimConfig config_;
    PairIndex pairs_;
    FluctuationBank fluctuation_;

    /** Per-VM capacity fluctuation (burst arbitration, noisy
     *  neighbours) — gentler than the per-path process. */
    FluctuationBank vmFluctuation_;

    Seconds now_ = 0.0;
    Seconds nextTick_ = 0.0;
    TransferId nextId_ = 1;
    bool ratesDirty_ = true;

    std::map<TransferId, Transfer> transfers_;
    std::map<TransferId, Transfer> completed_;
    std::map<FlowGroupId, GroupState> groups_;
    std::vector<CompletionRecord> completions_;
    std::vector<Mbps> tcLimits_;      ///< per ordered pair; <=0 = none
    std::vector<double> scenarioCap_; ///< per ordered pair; default 1
    std::vector<double> scenarioRtt_; ///< per ordered pair; default 1
    Matrix<Bytes> pairBytes_;

    // --- flat per-pair hot-path state (see resolveRates) -------------------
    // Immutable topology quantities unpacked once into PairIndex
    // layout, plus the persistent solver inputs/scratch so a resolve
    // in steady state is one branch-free composition pass over
    // contiguous arrays with no allocation.
    std::vector<Mbps> basePathCap_;    ///< topology pathCap, flat
    std::vector<Mbps> connCapFlat_;    ///< topology connCap, flat
    std::vector<Seconds> baseRtt_;     ///< topology rttSeconds, flat
    std::vector<double> routeQualityFlat_;
    std::vector<double> pairWeight_;   ///< routeQuality / rtt², flat
    std::vector<Mbps> vmWanCap_;       ///< per-VM WAN cap, unwobbled
    std::vector<Mbps> vmNicCap_;       ///< per-VM NIC cap, unwobbled
    bool weightsDirty_ = true;         ///< pairWeight_ needs rebuild
    bool groupsDirty_ = true;          ///< group share caps changed
    std::map<FlowGroupId, std::size_t> denseGroup_;
    SolverInputs inputs_;
    SolverScratch solverScratch_;
    std::vector<FlowSpec> specs_;
};

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_NETWORK_SIM_HH
