#include "net/rtt_model.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace net {

namespace {

constexpr double kLightSpeedKmPerSec = 299792.458;

} // namespace

RttModel::RttModel(RttModelParams params) : params_(params)
{
    fatalIf(params_.fiberSpeedFraction <= 0.0 ||
                params_.fiberSpeedFraction > 1.0,
            "RttModel: fiberSpeedFraction must be in (0, 1]");
    fatalIf(params_.mathisConstant <= 0.0,
            "RttModel: mathisConstant must be positive");
}

Seconds
RttModel::rtt(Kilometers km) const
{
    const double fiberKmPerSec =
        kLightSpeedKmPerSec * params_.fiberSpeedFraction;
    const Seconds oneWay = km / fiberKmPerSec * params_.routeInflation;
    return params_.baseRtt + 2.0 * oneWay;
}

Mbps
RttModel::connCap(Seconds rttSeconds) const
{
    panicIf(rttSeconds <= 0.0, "connCap: non-positive RTT");
    const Mbps raw = params_.mathisConstant / (rttSeconds * rttSeconds);
    return std::clamp(raw, params_.minConnCap, params_.maxConnCap);
}

Mbps
RttModel::connCapForDistance(Kilometers km) const
{
    return connCap(rtt(km));
}

} // namespace net
} // namespace wanify
