#include "net/region.hh"

#include "common/error.hh"

namespace wanify {
namespace net {

namespace {

// Egress prices follow AWS's published inter-region tiers: US/EU ~$0.02/GB,
// APAC ~$0.08-0.09/GB, Sao Paulo ~$0.13/GB.
const std::vector<Region> kCatalog = {
    {"us-east-1", "US East (N. Virginia)", Provider::AWS,
     {38.95, -77.45}, 0.02},
    {"us-west-1", "US West (N. California)", Provider::AWS,
     {37.35, -121.96}, 0.02},
    {"ap-south-1", "AP South (Mumbai)", Provider::AWS,
     {19.08, 72.88}, 0.086},
    {"ap-southeast-1", "AP SE (Singapore)", Provider::AWS,
     {1.35, 103.82}, 0.09},
    {"ap-southeast-2", "AP SE-2 (Sydney)", Provider::AWS,
     {-33.87, 151.21}, 0.098},
    {"ap-northeast-1", "AP NE (Tokyo)", Provider::AWS,
     {35.68, 139.69}, 0.09},
    {"eu-west-1", "EU West (Ireland)", Provider::AWS,
     {53.35, -6.26}, 0.02},
    {"sa-east-1", "SA East (Sao Paulo)", Provider::AWS,
     {-23.55, -46.63}, 0.138},
    {"us-central1", "GCP US Central (Iowa)", Provider::GCP,
     {41.26, -95.86}, 0.02},
    {"europe-west1", "GCP EU West (Belgium)", Provider::GCP,
     {50.45, 3.82}, 0.02},
};

} // namespace

const std::vector<Region> &
RegionCatalog::all()
{
    return kCatalog;
}

std::vector<Region>
RegionCatalog::paperRegions()
{
    return {kCatalog.begin(), kCatalog.begin() + 8};
}

std::vector<Region>
RegionCatalog::paperSubset(std::size_t n)
{
    fatalIf(n < 2 || n > 8, "paperSubset: n must be in [2, 8]");
    return {kCatalog.begin(), kCatalog.begin() + n};
}

std::vector<Region>
RegionCatalog::scaledMesh(std::size_t n)
{
    fatalIf(n < 2, "scaledMesh: n must be >= 2");
    if (n <= 8)
        return paperSubset(n);
    std::vector<Region> regions;
    regions.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Region r = kCatalog[i % 8];
        const std::size_t zone = i / 8;
        if (zone > 0) {
            const std::string suffix = "-z" + std::to_string(zone);
            r.id += suffix;
            r.displayName += " Zone " + std::to_string(zone);
            // Metro-scale deterministic offset (~30 km per zone) so
            // replica pairs keep distinct nonzero distances and the
            // Dij feature stays informative, without leaving the
            // metro area or the valid coordinate range.
            r.location.latDeg += 0.25 * static_cast<double>(zone);
            r.location.lonDeg += 0.35 * static_cast<double>(zone);
        }
        regions.push_back(r);
    }
    return regions;
}

const Region &
RegionCatalog::byId(const std::string &id)
{
    for (const auto &r : kCatalog) {
        if (r.id == id)
            return r;
    }
    fatal("unknown region id: " + id);
}

std::vector<Region>
RegionCatalog::gcpRegions()
{
    return {kCatalog.begin() + 8, kCatalog.end()};
}

Kilometers
distanceKm(const Region &a, const Region &b)
{
    return geo::haversineKm(a.location, b.location);
}

} // namespace net
} // namespace wanify
