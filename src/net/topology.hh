/**
 * @file
 * Geo-distributed cluster topology: DCs (regions) hosting one or more VMs.
 *
 * The topology is the static description of a testbed: which regions take
 * part, what instance types run in each, and the derived pairwise
 * distances, RTTs, and single-connection capacities. The dynamic part
 * (fluctuation, active transfers) lives in NetworkSim.
 */

#ifndef WANIFY_NET_TOPOLOGY_HH
#define WANIFY_NET_TOPOLOGY_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/matrix.hh"
#include "common/units.hh"
#include "net/region.hh"
#include "net/rtt_model.hh"
#include "net/vm.hh"

namespace wanify {
namespace net {

/** Index of a DC within a Topology. */
using DcId = std::size_t;

/** Global index of a VM within a Topology. */
using VmId = std::size_t;

/** A VM instance placed in a DC. */
struct Vm
{
    VmId id = 0;
    DcId dc = 0;
    VmType type;
};

/** A DC: a region plus the VMs deployed there. */
struct Dc
{
    DcId id = 0;
    Region region;
    std::vector<VmId> vms;
};

/**
 * Immutable cluster topology.
 *
 * Build with TopologyBuilder. Pairwise quantities are precomputed at
 * DC granularity; VM-level capacities come from the instance types.
 */
class Topology
{
  public:
    Topology() = default;

    std::size_t dcCount() const { return dcs_.size(); }
    std::size_t vmCount() const { return vms_.size(); }

    const Dc &dc(DcId id) const;
    const Vm &vm(VmId id) const;
    const std::vector<Dc> &dcs() const { return dcs_; }
    const std::vector<Vm> &vms() const { return vms_; }

    /** Great-circle distance between two DCs (0 for i == j). */
    Kilometers distanceKm(DcId i, DcId j) const;

    /** Round-trip time between two DCs. */
    Seconds rttSeconds(DcId i, DcId j) const;

    /** Single-connection achievable throughput between two DCs. */
    Mbps connCap(DcId i, DcId j) const;

    /**
     * Inter-DC backbone path capacity (per direction, per DC pair).
     * This is what parallel connections can in aggregate reach before the
     * provider's path limits bind (Section 2.2's observation that BW
     * stops improving past ~8 connections).
     */
    Mbps pathCap(DcId i, DcId j) const;

    /**
     * Route quality in (0, 1]: a persistent per-pair property of the
     * provider's backbone path (peering congestion, loss). A
     * low-quality route behaves normally in isolation but is *timid*
     * under contention — its TCP flows back off harder and claim a
     * smaller share. This is why statically (independently) measured
     * BWs mis-rank links at runtime (Section 2.2's observation that
     * the slowest DC from SA East flips between AP SE and EU West).
     */
    double routeQuality(DcId i, DcId j) const;

    /** Dense index of an ordered DC pair for per-pair state banks. */
    std::size_t pairIndex(DcId src, DcId dst) const;

    /** Number of ordered DC pairs (n * n). */
    std::size_t pairCount() const { return dcCount() * dcCount(); }

    const RttModel &rttModel() const { return rttModel_; }

    friend class TopologyBuilder;

  private:
    std::vector<Dc> dcs_;
    std::vector<Vm> vms_;
    Matrix<Kilometers> distance_;
    Matrix<Seconds> rtt_;
    Matrix<Mbps> connCap_;
    Matrix<Mbps> pathCap_;
    Matrix<double> routeQuality_;
    RttModel rttModel_;
};

/** Fluent builder for Topology. */
class TopologyBuilder
{
  public:
    explicit TopologyBuilder(RttModelParams rttParams = {});

    /** Add a DC in @p region with @p count VMs of @p type. */
    TopologyBuilder &addDc(const Region &region, const VmType &type,
                           std::size_t count = 1);

    /** Add one more VM to an existing DC (heterogeneous VM counts). */
    TopologyBuilder &addVm(DcId dc, const VmType &type);

    /** Override the default backbone path capacity (Mbps). */
    TopologyBuilder &setBackboneCap(Mbps cap);

    /** Finalize; at least 1 DC required. */
    Topology build();

    /**
     * Convenience: the paper's standard testbed — first @p n paper
     * regions, @p vmsPerDc VMs of @p type in each. Beyond 8 DCs the
     * paper regions are cycled into deterministic metro zones
     * (RegionCatalog::scaledMesh), enabling 128-256-DC scale runs.
     */
    static Topology paperTestbed(std::size_t n, const VmType &type,
                                 std::size_t vmsPerDc = 1);

  private:
    struct PendingVm { DcId dc; VmType type; };

    RttModelParams rttParams_;
    std::vector<Region> regions_;
    std::vector<PendingVm> pendingVms_;
    Mbps backboneCap_ = 2900.0;
};

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_TOPOLOGY_HH
