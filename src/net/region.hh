/**
 * @file
 * Cloud region catalog.
 *
 * The paper's testbed spans 8 AWS regions (Fig. 1): US East (N. Virginia),
 * US West (N. California), AP South (Mumbai), AP SE (Singapore), AP SE-2
 * (Sydney), AP NE (Tokyo), EU West (Ireland), and SA East (Sao Paulo).
 * Section 5.8.3 additionally runs a multi-cloud test with GCP, so the
 * catalog carries a couple of GCP regions as well. Coordinates are the
 * real data-center metro locations; they drive RTTs and the Dij feature.
 */

#ifndef WANIFY_NET_REGION_HH
#define WANIFY_NET_REGION_HH

#include <string>
#include <vector>

#include "common/geo.hh"
#include "common/units.hh"

namespace wanify {
namespace net {

/** Cloud provider of a region (Section 3.3.3 handles mixtures). */
enum class Provider { AWS, GCP };

/** A cloud region: identity, provider, and physical location. */
struct Region
{
    std::string id;          ///< e.g. "us-east-1"
    std::string displayName; ///< e.g. "US East (N. Virginia)"
    Provider provider = Provider::AWS;
    GeoPoint location;

    /** Inter-region egress price in $/GB charged to the source. */
    Dollars egressPerGb = 0.02;
};

/**
 * Catalog of known regions.
 *
 * The indices of the 8 paper regions are stable and exposed as named
 * constants so experiments can reference them symbolically.
 */
class RegionCatalog
{
  public:
    /** Indices of the paper's 8 AWS regions within paperRegions(). */
    enum PaperRegion : std::size_t {
        UsEast = 0,
        UsWest = 1,
        ApSouth = 2,
        ApSoutheast = 3,
        ApSoutheast2 = 4,
        ApNortheast = 5,
        EuWest = 6,
        SaEast = 7,
    };

    /** The full catalog (8 AWS paper regions + GCP extras). */
    static const std::vector<Region> &all();

    /** Exactly the paper's 8 AWS regions, in Fig. 1 order. */
    static std::vector<Region> paperRegions();

    /** First @p n of the paper regions (n in [2, 8]). */
    static std::vector<Region> paperSubset(std::size_t n);

    /**
     * A mesh of @p n regions for scale experiments (n >= 2).
     *
     * For n <= 8 this is exactly paperSubset(n). Beyond 8 the paper
     * regions are cycled into numbered zones ("us-east-1-z1", ...):
     * each zone keeps its base region's provider and egress price but
     * is offset by a deterministic metro-scale distance, so every pair
     * keeps a distinct, nonzero Dij and a well-conditioned RTT.
     */
    static std::vector<Region> scaledMesh(std::size_t n);

    /** Look up by id; fatal() if unknown. */
    static const Region &byId(const std::string &id);

    /** GCP regions used by the multi-cloud experiment. */
    static std::vector<Region> gcpRegions();
};

/** Great-circle distance between two regions. */
Kilometers distanceKm(const Region &a, const Region &b);

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_REGION_HH
