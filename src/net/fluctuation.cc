#include "net/fluctuation.hh"

#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace net {

OuProcess::OuProcess(FluctuationParams params, Rng rng)
    : params_(params), rng_(rng)
{
    fatalIf(!std::isfinite(params_.theta) || params_.theta <= 0.0,
            "OuProcess: theta must be positive and finite");
    fatalIf(!std::isfinite(params_.logSigma) || params_.logSigma < 0.0,
            "OuProcess: logSigma must be >= 0 and finite");
    reseedStationary();
}

bool
OuProcess::active() const
{
    return params_.enabled && params_.logSigma > 0.0;
}

void
OuProcess::reseedStationary()
{
    // A disabled (or zero-sigma) process pins X at 0 and leaves the
    // RNG untouched, so toggling `enabled` in a config cannot shift
    // the streams of any other seeded component.
    if (!active()) {
        x_ = 0.0;
        return;
    }
    x_ = rng_.normal(0.0, params_.logSigma);
}

double
OuProcess::step(Seconds dt)
{
    if (!active())
        return 1.0;
    // dt <= 0 and NaN are no-ops: see the header. Consuming noise for
    // a zero-length step would bias nothing statistically but would
    // desynchronize replays that mix zero- and nonzero-length ticks.
    if (!(dt > 0.0))
        return multiplier();
    // Exact OU discretization with stationary SD sigma:
    //   X' = X e^{-theta dt} + N(0, sigma sqrt(1 - e^{-2 theta dt}))
    const double decay = std::exp(-params_.theta * dt);
    const double noiseSd =
        params_.logSigma * std::sqrt(1.0 - decay * decay);
    x_ = x_ * decay + rng_.normal(0.0, noiseSd);
    // Defensive: a non-finite state would poison every rate solve
    // from here on; snap back to the mean instead.
    if (!std::isfinite(x_))
        x_ = 0.0;
    return multiplier();
}

double
OuProcess::multiplier() const
{
    if (!active())
        return 1.0;
    // Subtract half the variance so the multiplier has mean ~1.
    return std::exp(x_ - 0.5 * params_.logSigma * params_.logSigma);
}

FluctuationBank::FluctuationBank(std::size_t pairs,
                                 FluctuationParams params,
                                 std::uint64_t seed)
{
    Rng master(seed);
    processes_.reserve(pairs);
    multipliers_.reserve(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
        processes_.emplace_back(params, master.split());
        multipliers_.push_back(processes_.back().multiplier());
    }
}

void
FluctuationBank::step(Seconds dt)
{
    for (std::size_t i = 0; i < processes_.size(); ++i)
        multipliers_[i] = processes_[i].step(dt);
}

double
FluctuationBank::multiplier(std::size_t index) const
{
    panicIf(index >= processes_.size(),
            "FluctuationBank: index out of range");
    return multipliers_[index];
}

} // namespace net
} // namespace wanify
