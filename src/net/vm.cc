#include "net/vm.hh"

#include "common/error.hh"

namespace wanify {
namespace net {

VmType
VmTypeCatalog::t3nano()
{
    // Unlimited-burst t3.nano as used by the monitoring probes; NIC
    // bursts to ~5.8 Gbps (sum of in and out), WAN throttled to half.
    return {"t3.nano", 2, 0.5, 5800.0, 2900.0, 1.2, 0.0052};
}

VmType
VmTypeCatalog::t2medium()
{
    return {"t2.medium", 2, 4.0, 4000.0, 2000.0, 2.0, 0.0464};
}

VmType
VmTypeCatalog::t2large()
{
    return {"t2.large", 2, 8.0, 5000.0, 2500.0, 2.0, 0.0928};
}

VmType
VmTypeCatalog::m5large()
{
    // Section 2.1's example: 10 Gbps NIC (in + out), 5 Gbps WAN.
    return {"m5.large", 2, 8.0, 10000.0, 5000.0, 2.6, 0.096};
}

VmType
VmTypeCatalog::e2medium()
{
    return {"e2-medium", 2, 4.0, 4000.0, 2000.0, 1.9, 0.0335};
}

VmType
VmTypeCatalog::byName(const std::string &name)
{
    if (name == "t3.nano")
        return t3nano();
    if (name == "t2.medium")
        return t2medium();
    if (name == "t2.large")
        return t2large();
    if (name == "m5.large")
        return m5large();
    if (name == "e2-medium")
        return e2medium();
    fatal("unknown VM type: " + name);
}

} // namespace net
} // namespace wanify
