#include "net/flow_solver.hh"

#include <algorithm>
#include <limits>

#include "common/error.hh"

namespace wanify {
namespace net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

using Resource = SolverScratch::Resource;

/** Binary search the sorted sparse group-share caps for (group, pair);
 *  returns the entry index or -1. */
int
findGroupCap(const std::vector<SolverInputs::GroupShareCap> &caps,
             std::size_t group, std::size_t pair)
{
    auto it = std::lower_bound(
        caps.begin(), caps.end(),
        std::make_pair(group, pair),
        [](const SolverInputs::GroupShareCap &c,
           const std::pair<std::size_t, std::size_t> &key) {
            return c.group != key.first ? c.group < key.first
                                        : c.pair < key.second;
        });
    if (it == caps.end() || it->group != group || it->pair != pair)
        return -1;
    return static_cast<int>(it - caps.begin());
}

} // namespace

Mbps
bundleCap(int connections, Mbps capPerConn, const SolverConfig &cfg)
{
    fatalIf(connections < 1, "bundleCap: connections must be >= 1");
    const double excess =
        std::max(0, connections - cfg.connectionKnee);
    const double efficiency =
        1.0 / (1.0 + cfg.congestionAlpha * excess * excess);
    return static_cast<double>(connections) * capPerConn * efficiency;
}

std::vector<FlowRate>
solveRates(const std::vector<FlowSpec> &flows, const SolverInputs &inputs,
           const SolverConfig &cfg, SolverScratch *scratch)
{
    const std::size_t nf = flows.size();
    std::vector<FlowRate> result(nf);
    if (nf == 0)
        return result;

    panicIf(inputs.dcCount == 0, "solveRates: dcCount is zero");
    panicIf(inputs.pathCap.size() != inputs.dcCount * inputs.dcCount,
            "solveRates: pathCap size mismatch");

    SolverScratch local;
    SolverScratch &s = scratch != nullptr ? *scratch : local;

    // --- Hoisted group-share lookups --------------------------------------
    // Each grouped flow's (group, pair) cap entry is needed twice (the
    // desire pass and the resource build); resolve the binary search
    // once per flow up front.
    s.groupCapOfFlow.assign(nf, -1);
    for (std::size_t f = 0; f < nf; ++f) {
        if (flows[f].group == kNoFlowGroup)
            continue;
        const std::size_t pair =
            flows[f].srcDc * inputs.dcCount + flows[f].dstDc;
        s.groupCapOfFlow[f] =
            findGroupCap(inputs.groupShareCap, flows[f].group, pair);
    }

    // --- Per-VM connection overhead --------------------------------------
    // Total connections terminating at each VM shrink its effective
    // capacities (memory buffers per connection; see SolverConfig).
    s.connsAtVm.assign(inputs.vmEgressCap.size(), 0);
    // Aggregate desire (bundle capability clipped by tc limits)
    // crossing each VM, for the oversubscription-waste term.
    s.desireAtVm.assign(inputs.vmEgressCap.size(), 0.0);
    for (std::size_t f = 0; f < nf; ++f) {
        const FlowSpec &spec = flows[f];
        const int c = std::max(1, spec.connections);
        Mbps desire = bundleCap(c, spec.capPerConn, cfg);
        const std::size_t pair =
            spec.srcDc * inputs.dcCount + spec.dstDc;
        if (pair < inputs.tcLimit.size() &&
            inputs.tcLimit[pair] > 0.0)
            desire = std::min(desire, inputs.tcLimit[pair]);
        const int gc = s.groupCapOfFlow[f];
        if (gc >= 0 &&
            inputs.groupShareCap[static_cast<std::size_t>(gc)].cap >
                0.0)
            desire = std::min(
                desire,
                inputs.groupShareCap[static_cast<std::size_t>(gc)]
                    .cap);
        if (spec.srcVm < s.connsAtVm.size()) {
            s.connsAtVm[spec.srcVm] += c;
            s.desireAtVm[spec.srcVm] += desire;
        }
        if (spec.dstVm < s.connsAtVm.size()) {
            s.connsAtVm[spec.dstVm] += c;
            s.desireAtVm[spec.dstVm] += desire;
        }
    }
    auto vmPenalty = [&](std::size_t vm) {
        const int excess =
            std::max(0, s.connsAtVm[vm] - cfg.vmConnKnee);
        double penalty = 1.0 + cfg.vmConnAlpha *
                                   static_cast<double>(excess);
        // Oversubscription waste against the VM's NIC capacity.
        const Mbps nic = vm < inputs.vmNicCap.size()
                             ? inputs.vmNicCap[vm]
                             : 0.0;
        if (nic > 0.0 && s.desireAtVm[vm] > nic) {
            penalty *= 1.0 + cfg.oversubAlpha *
                                 (s.desireAtVm[vm] / nic - 1.0);
        }
        return 1.0 / penalty;
    };

    // --- Build resources ------------------------------------------------
    // Resource records are pooled: entries up to resourceCount are
    // live this call, later entries are capacity kept from prior
    // calls (their flows vectors keep their heap buffers).
    std::vector<Resource> &resources = s.resources;
    std::size_t resourceCount = 0;
    // Dense maps from (vm or pair) to resource index; -1 = not created.
    s.egressIdx.assign(inputs.vmEgressCap.size(), -1);
    s.ingressIdx.assign(inputs.vmIngressCap.size(), -1);
    s.nicIdx.assign(inputs.vmNicCap.size(), -1);
    s.pathIdx.assign(inputs.pathCap.size(), -1);
    s.tcIdx.assign(inputs.tcLimit.size(), -1);
    s.groupCapIdx.assign(inputs.groupShareCap.size(), -1);

    auto getResource = [&](std::vector<int> &map, std::size_t key,
                           Mbps cap, Bottleneck kind) -> int {
        panicIf(key >= map.size(), "solveRates: resource key out of range");
        if (map[key] < 0) {
            map[key] = static_cast<int>(resourceCount);
            if (resourceCount == resources.size())
                resources.emplace_back();
            Resource &res = resources[resourceCount];
            res.cap = cap;
            res.used = 0.0;
            res.kind = kind;
            res.flows.clear();
            ++resourceCount;
        }
        return map[key];
    };

    // Per-flow bookkeeping.
    s.weight.assign(nf, 0.0);
    s.selfCap.assign(nf, 0.0);
    if (s.flowResources.size() < nf)
        s.flowResources.resize(nf);
    for (std::size_t f = 0; f < nf; ++f)
        s.flowResources[f].clear();
    s.active.assign(nf, 0);

    for (std::size_t f = 0; f < nf; ++f) {
        const FlowSpec &spec = flows[f];
        panicIf(spec.srcVm >= inputs.vmEgressCap.size() ||
                    spec.dstVm >= inputs.vmIngressCap.size(),
                "solveRates: VM id out of range");
        s.weight[f] = spec.weightPerConn *
                      static_cast<double>(std::max(1, spec.connections));
        s.selfCap[f] = bundleCap(std::max(1, spec.connections),
                                 spec.capPerConn, cfg);
        if (s.weight[f] <= 0.0 || s.selfCap[f] <= cfg.epsilon) {
            result[f] = {0.0, Bottleneck::SelfCap};
            continue;
        }
        s.active[f] = 1;

        auto &fr = s.flowResources[f];
        fr.push_back(getResource(
            s.egressIdx, spec.srcVm,
            inputs.vmEgressCap[spec.srcVm] * vmPenalty(spec.srcVm),
            Bottleneck::SrcVm));
        fr.push_back(getResource(
            s.ingressIdx, spec.dstVm,
            inputs.vmIngressCap[spec.dstVm] * vmPenalty(spec.dstVm),
            Bottleneck::DstVm));
        if (spec.srcVm < inputs.vmNicCap.size()) {
            fr.push_back(getResource(
                s.nicIdx, spec.srcVm,
                inputs.vmNicCap[spec.srcVm] * vmPenalty(spec.srcVm),
                Bottleneck::NicTotal));
        }
        if (spec.dstVm < inputs.vmNicCap.size()) {
            fr.push_back(getResource(
                s.nicIdx, spec.dstVm,
                inputs.vmNicCap[spec.dstVm] * vmPenalty(spec.dstVm),
                Bottleneck::NicTotal));
        }

        const std::size_t pair =
            spec.srcDc * inputs.dcCount + spec.dstDc;
        panicIf(pair >= inputs.pathCap.size(),
                "solveRates: pair index out of range");
        fr.push_back(getResource(s.pathIdx, pair, inputs.pathCap[pair],
                                 Bottleneck::Path));
        if (pair < inputs.tcLimit.size() && inputs.tcLimit[pair] > 0.0) {
            fr.push_back(getResource(s.tcIdx, pair,
                                     inputs.tcLimit[pair],
                                     Bottleneck::TcLimit));
        }
        const int gc = s.groupCapOfFlow[f];
        if (gc >= 0) {
            const auto &entry =
                inputs.groupShareCap[static_cast<std::size_t>(gc)];
            if (entry.cap > 0.0) {
                fr.push_back(getResource(
                    s.groupCapIdx, static_cast<std::size_t>(gc),
                    entry.cap, Bottleneck::GroupShare));
            }
        }
        for (int r : fr)
            resources[static_cast<std::size_t>(r)].flows.push_back(f);
    }

    // --- Weighted progressive filling ------------------------------------
    // All active flows grow their rate proportionally to their weight
    // until either their own capability or a shared resource saturates;
    // saturated flows freeze and the rest continue.
    //
    // The fill is event-driven. With every active flow growing as
    // rate_f = weight_f * theta for a single global fill level theta,
    // each flow's self-cap event sits at the constant key
    // selfCap_f / weight_f, and each resource's saturation key
    // (cap_r - frozenUsed_r) / wsum_r only moves when one of its
    // flows freezes. A lazy min-heap over those keys replaces the
    // naive per-step rescan of every resource and flow — O((flows +
    // resources) log) total instead of O(flows * (memberships +
    // resources)) — which is most of bench_perf_mesh_scale's
    // resolveRates win at 128-256 DCs. Ties pop flows before
    // resources, then ascending id, so same-key freezes keep the
    // naive loop's deterministic order.
    std::size_t remaining = 0;
    for (std::size_t f = 0; f < nf; ++f)
        remaining += s.active[f] != 0 ? 1 : 0;

    s.frozenUsed.assign(resourceCount, 0.0);
    s.wsum.assign(resourceCount, 0.0);
    s.activeAtResource.assign(resourceCount, 0);
    s.satKey.assign(resourceCount, kInf);
    for (std::size_t f = 0; f < nf; ++f) {
        if (s.active[f] == 0)
            continue;
        for (int r : s.flowResources[f]) {
            s.wsum[static_cast<std::size_t>(r)] += s.weight[f];
            ++s.activeAtResource[static_cast<std::size_t>(r)];
        }
    }

    auto &heap = s.heap;
    heap.clear();
    auto heapLater = [](const SolverScratch::FillEvent &a,
                        const SolverScratch::FillEvent &b) {
        if (a.key != b.key)
            return a.key > b.key;
        if (a.kind != b.kind)
            return a.kind > b.kind;
        return a.id > b.id;
    };
    auto pushEvent = [&](double key, int kind, std::size_t id) {
        heap.push_back({key, kind, id});
        std::push_heap(heap.begin(), heap.end(), heapLater);
    };

    auto freezeFlow = [&](std::size_t f, Mbps rate, Bottleneck why) {
        if (s.active[f] == 0)
            return;
        s.active[f] = 0;
        result[f].rate = rate;
        result[f].bottleneck = why;
        --remaining;
        for (int ri : s.flowResources[f]) {
            const std::size_t r = static_cast<std::size_t>(ri);
            s.frozenUsed[r] += rate;
            s.wsum[r] -= s.weight[f];
            if (--s.activeAtResource[r] == 0) {
                // Dead for good: a frozen flow never reactivates.
                s.satKey[r] = kInf;
                continue;
            }
            const double slack =
                std::max(resources[r].cap - s.frozenUsed[r], 0.0);
            s.satKey[r] = slack / s.wsum[r];
            pushEvent(s.satKey[r], 1, r);
        }
    };

    // Pre-freeze flows crossing a zero-capacity resource.
    for (std::size_t r = 0; r < resourceCount; ++r) {
        if (resources[r].cap <= cfg.epsilon) {
            for (std::size_t f : resources[r].flows)
                freezeFlow(f, 0.0, resources[r].kind);
        }
    }

    // Initial events: one per still-active flow (self capability) and
    // one per resource that still carries active flows. Entries made
    // stale by pre-freeze pushes are discarded by the key check below.
    for (std::size_t f = 0; f < nf; ++f)
        if (s.active[f] != 0)
            pushEvent(s.selfCap[f] / s.weight[f], 0, f);
    for (std::size_t r = 0; r < resourceCount; ++r) {
        if (s.activeAtResource[r] == 0)
            continue;
        const double slack =
            std::max(resources[r].cap - s.frozenUsed[r], 0.0);
        s.satKey[r] = slack / s.wsum[r];
        pushEvent(s.satKey[r], 1, r);
    }

    std::size_t guard = 0;
    const std::size_t maxEvents = 8 * (nf + resourceCount) + 64;
    while (remaining > 0 && !heap.empty()) {
        panicIf(++guard > maxEvents,
                "solveRates: progressive filling did not converge");
        std::pop_heap(heap.begin(), heap.end(), heapLater);
        const SolverScratch::FillEvent ev = heap.back();
        heap.pop_back();
        if (ev.kind == 0) {
            if (s.active[ev.id] != 0)
                freezeFlow(ev.id, s.selfCap[ev.id],
                           Bottleneck::SelfCap);
            continue;
        }
        // Resource saturation; skip entries a later freeze re-keyed.
        const std::size_t r = ev.id;
        if (s.activeAtResource[r] == 0 || ev.key != s.satKey[r])
            continue;
        const double theta = ev.key;
        for (std::size_t f : resources[r].flows)
            if (s.active[f] != 0)
                freezeFlow(f, s.weight[f] * theta,
                           resources[r].kind);
    }

    return result;
}

} // namespace net
} // namespace wanify
