#include "net/flow_solver.hh"

#include <algorithm>
#include <limits>

#include "common/error.hh"

namespace wanify {
namespace net {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** A shared capacity constraint during progressive filling. */
struct Resource
{
    Mbps cap = 0.0;
    Mbps used = 0.0;
    Bottleneck kind = Bottleneck::None;
    std::vector<std::size_t> flows; ///< indices of flows crossing it
};

/** Binary search the sorted sparse group-share caps for (group, pair);
 *  returns the entry index or -1. */
int
findGroupCap(const std::vector<SolverInputs::GroupShareCap> &caps,
             std::size_t group, std::size_t pair)
{
    auto it = std::lower_bound(
        caps.begin(), caps.end(),
        std::make_pair(group, pair),
        [](const SolverInputs::GroupShareCap &c,
           const std::pair<std::size_t, std::size_t> &key) {
            return c.group != key.first ? c.group < key.first
                                        : c.pair < key.second;
        });
    if (it == caps.end() || it->group != group || it->pair != pair)
        return -1;
    return static_cast<int>(it - caps.begin());
}

} // namespace

Mbps
bundleCap(int connections, Mbps capPerConn, const SolverConfig &cfg)
{
    fatalIf(connections < 1, "bundleCap: connections must be >= 1");
    const double excess =
        std::max(0, connections - cfg.connectionKnee);
    const double efficiency =
        1.0 / (1.0 + cfg.congestionAlpha * excess * excess);
    return static_cast<double>(connections) * capPerConn * efficiency;
}

std::vector<FlowRate>
solveRates(const std::vector<FlowSpec> &flows, const SolverInputs &inputs,
           const SolverConfig &cfg)
{
    const std::size_t nf = flows.size();
    std::vector<FlowRate> result(nf);
    if (nf == 0)
        return result;

    panicIf(inputs.dcCount == 0, "solveRates: dcCount is zero");
    panicIf(inputs.pathCap.size() != inputs.dcCount * inputs.dcCount,
            "solveRates: pathCap size mismatch");

    // --- Per-VM connection overhead --------------------------------------
    // Total connections terminating at each VM shrink its effective
    // capacities (memory buffers per connection; see SolverConfig).
    std::vector<int> connsAtVm(inputs.vmEgressCap.size(), 0);
    // Aggregate desire (bundle capability clipped by tc limits)
    // crossing each VM, for the oversubscription-waste term.
    std::vector<Mbps> desireAtVm(inputs.vmEgressCap.size(), 0.0);
    for (const auto &f : flows) {
        const int c = std::max(1, f.connections);
        Mbps desire = bundleCap(c, f.capPerConn, cfg);
        const std::size_t pair =
            f.srcDc * inputs.dcCount + f.dstDc;
        if (pair < inputs.tcLimit.size() &&
            inputs.tcLimit[pair] > 0.0)
            desire = std::min(desire, inputs.tcLimit[pair]);
        if (f.group != kNoFlowGroup) {
            const int gc = findGroupCap(inputs.groupShareCap,
                                        f.group, pair);
            if (gc >= 0 && inputs.groupShareCap
                                   [static_cast<std::size_t>(gc)]
                                       .cap > 0.0)
                desire = std::min(
                    desire,
                    inputs.groupShareCap
                        [static_cast<std::size_t>(gc)]
                            .cap);
        }
        if (f.srcVm < connsAtVm.size()) {
            connsAtVm[f.srcVm] += c;
            desireAtVm[f.srcVm] += desire;
        }
        if (f.dstVm < connsAtVm.size()) {
            connsAtVm[f.dstVm] += c;
            desireAtVm[f.dstVm] += desire;
        }
    }
    auto vmPenalty = [&](std::size_t vm) {
        const int excess =
            std::max(0, connsAtVm[vm] - cfg.vmConnKnee);
        double penalty = 1.0 + cfg.vmConnAlpha *
                                   static_cast<double>(excess);
        // Oversubscription waste against the VM's NIC capacity.
        const Mbps nic = vm < inputs.vmNicCap.size()
                             ? inputs.vmNicCap[vm]
                             : 0.0;
        if (nic > 0.0 && desireAtVm[vm] > nic) {
            penalty *= 1.0 + cfg.oversubAlpha *
                                 (desireAtVm[vm] / nic - 1.0);
        }
        return 1.0 / penalty;
    };

    // --- Build resources ------------------------------------------------
    std::vector<Resource> resources;
    // Dense maps from (vm or pair) to resource index; -1 = not created.
    std::vector<int> egressIdx(inputs.vmEgressCap.size(), -1);
    std::vector<int> ingressIdx(inputs.vmIngressCap.size(), -1);
    std::vector<int> nicIdx(inputs.vmNicCap.size(), -1);
    std::vector<int> pathIdx(inputs.pathCap.size(), -1);
    std::vector<int> tcIdx(inputs.tcLimit.size(), -1);
    std::vector<int> groupCapIdx(inputs.groupShareCap.size(), -1);

    auto getResource = [&](std::vector<int> &map, std::size_t key,
                           Mbps cap, Bottleneck kind) -> int {
        panicIf(key >= map.size(), "solveRates: resource key out of range");
        if (map[key] < 0) {
            map[key] = static_cast<int>(resources.size());
            resources.push_back({cap, 0.0, kind, {}});
        }
        return map[key];
    };

    // Per-flow bookkeeping.
    std::vector<double> weight(nf, 0.0);
    std::vector<Mbps> selfCap(nf, 0.0);
    std::vector<std::vector<int>> flowResources(nf);
    std::vector<bool> active(nf, false);

    for (std::size_t f = 0; f < nf; ++f) {
        const FlowSpec &spec = flows[f];
        panicIf(spec.srcVm >= inputs.vmEgressCap.size() ||
                    spec.dstVm >= inputs.vmIngressCap.size(),
                "solveRates: VM id out of range");
        weight[f] = spec.weightPerConn *
                    static_cast<double>(std::max(1, spec.connections));
        selfCap[f] = bundleCap(std::max(1, spec.connections),
                               spec.capPerConn, cfg);
        if (weight[f] <= 0.0 || selfCap[f] <= cfg.epsilon) {
            result[f] = {0.0, Bottleneck::SelfCap};
            continue;
        }
        active[f] = true;

        auto &fr = flowResources[f];
        fr.push_back(getResource(
            egressIdx, spec.srcVm,
            inputs.vmEgressCap[spec.srcVm] * vmPenalty(spec.srcVm),
            Bottleneck::SrcVm));
        fr.push_back(getResource(
            ingressIdx, spec.dstVm,
            inputs.vmIngressCap[spec.dstVm] * vmPenalty(spec.dstVm),
            Bottleneck::DstVm));
        if (spec.srcVm < inputs.vmNicCap.size()) {
            fr.push_back(getResource(
                nicIdx, spec.srcVm,
                inputs.vmNicCap[spec.srcVm] * vmPenalty(spec.srcVm),
                Bottleneck::NicTotal));
        }
        if (spec.dstVm < inputs.vmNicCap.size()) {
            fr.push_back(getResource(
                nicIdx, spec.dstVm,
                inputs.vmNicCap[spec.dstVm] * vmPenalty(spec.dstVm),
                Bottleneck::NicTotal));
        }

        const std::size_t pair =
            spec.srcDc * inputs.dcCount + spec.dstDc;
        panicIf(pair >= inputs.pathCap.size(),
                "solveRates: pair index out of range");
        fr.push_back(getResource(pathIdx, pair, inputs.pathCap[pair],
                                 Bottleneck::Path));
        if (pair < inputs.tcLimit.size() && inputs.tcLimit[pair] > 0.0) {
            fr.push_back(getResource(tcIdx, pair, inputs.tcLimit[pair],
                                     Bottleneck::TcLimit));
        }
        if (spec.group != kNoFlowGroup) {
            const int gc = findGroupCap(inputs.groupShareCap,
                                        spec.group, pair);
            if (gc >= 0) {
                const auto &entry =
                    inputs.groupShareCap[static_cast<std::size_t>(
                        gc)];
                if (entry.cap > 0.0) {
                    fr.push_back(getResource(
                        groupCapIdx,
                        static_cast<std::size_t>(gc), entry.cap,
                        Bottleneck::GroupShare));
                }
            }
        }
        for (int r : fr)
            resources[static_cast<std::size_t>(r)].flows.push_back(f);
    }

    // --- Weighted progressive filling ------------------------------------
    // All active flows grow their rate proportionally to their weight
    // until either their own capability or a shared resource saturates;
    // saturated flows freeze and the rest continue.
    std::size_t remaining = 0;
    for (std::size_t f = 0; f < nf; ++f)
        remaining += active[f] ? 1 : 0;

    auto freezeFlow = [&](std::size_t f, Bottleneck why) {
        if (!active[f])
            return;
        active[f] = false;
        result[f].bottleneck = why;
        --remaining;
    };

    // Pre-freeze flows crossing a zero-capacity resource.
    for (std::size_t r = 0; r < resources.size(); ++r) {
        if (resources[r].cap <= cfg.epsilon) {
            for (std::size_t f : resources[r].flows)
                freezeFlow(f, resources[r].kind);
        }
    }

    std::size_t guard = 0;
    const std::size_t maxIterations = 2 * nf + resources.size() + 4;
    while (remaining > 0) {
        panicIf(++guard > maxIterations,
                "solveRates: progressive filling did not converge");

        // Smallest growth step theta over resources and self caps.
        double theta = kInf;
        for (const auto &res : resources) {
            double wsum = 0.0;
            for (std::size_t f : res.flows)
                if (active[f])
                    wsum += weight[f];
            if (wsum <= 0.0)
                continue;
            theta = std::min(theta, (res.cap - res.used) / wsum);
        }
        for (std::size_t f = 0; f < nf; ++f) {
            if (!active[f])
                continue;
            theta = std::min(theta,
                             (selfCap[f] - result[f].rate) / weight[f]);
        }
        if (theta == kInf)
            break; // nothing constrains the remaining flows
        theta = std::max(theta, 0.0);

        // Grow every active flow by weight * theta.
        for (std::size_t f = 0; f < nf; ++f) {
            if (!active[f])
                continue;
            const double delta = weight[f] * theta;
            result[f].rate += delta;
            for (int r : flowResources[f])
                resources[static_cast<std::size_t>(r)].used += delta;
        }

        // Freeze flows that reached their own capability.
        for (std::size_t f = 0; f < nf; ++f) {
            if (active[f] && result[f].rate >= selfCap[f] - cfg.epsilon)
                freezeFlow(f, Bottleneck::SelfCap);
        }
        // Freeze flows on saturated resources.
        for (const auto &res : resources) {
            if (res.used >= res.cap - cfg.epsilon) {
                for (std::size_t f : res.flows)
                    freezeFlow(f, res.kind);
            }
        }
    }

    return result;
}

} // namespace net
} // namespace wanify
