/**
 * @file
 * VM instance type catalog.
 *
 * Cloud providers limit network performance by instance type and size and
 * throttle WAN traffic to roughly half the NIC capacity (Section 2.1's
 * m5.large example: 10 Gbps NIC, 5 Gbps WAN). The paper uses t2.large for
 * the Spark master, t2.medium for workers, t3.nano for monitoring probes,
 * and GCP e2-medium in the multi-cloud test.
 */

#ifndef WANIFY_NET_VM_HH
#define WANIFY_NET_VM_HH

#include <string>

#include "common/units.hh"

namespace wanify {
namespace net {

/** Instance-type capabilities relevant to the simulation. */
struct VmType
{
    std::string name;
    int vcpus = 2;
    double memoryGb = 4.0;

    /** Total NIC capacity (sum of inbound and outbound). */
    Mbps nicCapMbps = 4000.0;

    /** WAN throttle applied by the provider (per direction). */
    Mbps wanCapMbps = 2000.0;

    /**
     * Relative compute rate in work-units per second. A work-unit is
     * normalized so that one t2.medium vCPU processes one unit of task
     * work per second.
     */
    double computeRate = 2.0;

    /** On-demand price, $/hour. */
    Dollars pricePerHour = 0.0464;
};

/** Known instance types. */
class VmTypeCatalog
{
  public:
    static VmType t3nano();
    static VmType t2medium();
    static VmType t2large();
    static VmType m5large();
    static VmType e2medium(); ///< GCP, for the multi-cloud experiment

    /** Look up by name; fatal() if unknown. */
    static VmType byName(const std::string &name);
};

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_VM_HH
