/**
 * @file
 * WAN bandwidth fluctuation process.
 *
 * Inter-DC capacity varies on the scale of seconds to minutes [Wang'21,
 * ref 38 in the paper]. We model each DC-pair's capacity multiplier as the
 * exponential of an Ornstein-Uhlenbeck process: mean-reverting, stationary
 * and seedable, so 1-second snapshots differ from 20-second stable
 * averages exactly the way the paper's motivation experiments describe.
 */

#ifndef WANIFY_NET_FLUCTUATION_HH
#define WANIFY_NET_FLUCTUATION_HH

#include <vector>

#include "common/rng.hh"
#include "common/units.hh"

namespace wanify {
namespace net {

/** Parameters of the OU fluctuation process. */
struct FluctuationParams
{
    /** Mean-reversion rate (1/s). 0.08 -> ~12 s correlation time. */
    double theta = 0.08;

    /** Stationary standard deviation of log-capacity. */
    double logSigma = 0.16;

    /** Disable fluctuation entirely (deterministic capacity). */
    bool enabled = true;
};

/**
 * One OU process: X mean-reverts to 0; multiplier() = exp(X).
 *
 * Uses the exact discretization so step size does not bias the
 * stationary distribution.
 */
class OuProcess
{
  public:
    OuProcess(FluctuationParams params, Rng rng);

    /**
     * Advance the process by @p dt and return the new multiplier.
     *
     * @p dt <= 0 (or NaN) is a no-op returning the current
     * multiplier: no time has passed, and drawing noise for it would
     * perturb the RNG stream of every later step.
     */
    double step(Seconds dt);

    /** Current multiplier exp(X). */
    double multiplier() const;

    /** Draw the state from the stationary distribution. */
    void reseedStationary();

    /** True when the process actually fluctuates (enabled, sigma > 0). */
    bool active() const;

  private:
    FluctuationParams params_;
    Rng rng_;
    double x_ = 0.0;
};

/**
 * A bank of independent OU processes, one per DC pair, indexed by a
 * caller-chosen dense pair index.
 *
 * Multipliers are cached in a flat vector refreshed on every step, so
 * hot paths that compose all pairs (NetworkSim::resolveRates over the
 * whole mesh) read a contiguous array instead of paying one exp() per
 * pair per solve.
 */
class FluctuationBank
{
  public:
    FluctuationBank(std::size_t pairs, FluctuationParams params,
                    std::uint64_t seed);

    /** Advance all processes by dt. */
    void step(Seconds dt);

    /** Capacity multiplier of pair @p index. */
    double multiplier(std::size_t index) const;

    /** All multipliers, indexed by pair — valid until the next step. */
    const std::vector<double> &multipliers() const
    {
        return multipliers_;
    }

    std::size_t size() const { return processes_.size(); }

  private:
    std::vector<OuProcess> processes_;
    std::vector<double> multipliers_;
};

} // namespace net
} // namespace wanify

#endif // WANIFY_NET_FLUCTUATION_HH
