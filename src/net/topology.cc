#include "net/topology.hh"

#include <algorithm>
#include <cstdint>

#include "common/error.hh"
#include "common/rng.hh"

namespace wanify {
namespace net {

const Dc &
Topology::dc(DcId id) const
{
    panicIf(id >= dcs_.size(), "Topology::dc: id out of range");
    return dcs_[id];
}

const Vm &
Topology::vm(VmId id) const
{
    panicIf(id >= vms_.size(), "Topology::vm: id out of range");
    return vms_[id];
}

Kilometers
Topology::distanceKm(DcId i, DcId j) const
{
    return distance_.at(i, j);
}

Seconds
Topology::rttSeconds(DcId i, DcId j) const
{
    return rtt_.at(i, j);
}

Mbps
Topology::connCap(DcId i, DcId j) const
{
    return connCap_.at(i, j);
}

Mbps
Topology::pathCap(DcId i, DcId j) const
{
    return pathCap_.at(i, j);
}

double
Topology::routeQuality(DcId i, DcId j) const
{
    return routeQuality_.at(i, j);
}

std::size_t
Topology::pairIndex(DcId src, DcId dst) const
{
    panicIf(src >= dcCount() || dst >= dcCount(),
            "Topology::pairIndex: DC out of range");
    return src * dcCount() + dst;
}

TopologyBuilder::TopologyBuilder(RttModelParams rttParams)
    : rttParams_(rttParams)
{}

TopologyBuilder &
TopologyBuilder::addDc(const Region &region, const VmType &type,
                       std::size_t count)
{
    fatalIf(count == 0, "addDc: need at least one VM per DC");
    const DcId id = regions_.size();
    regions_.push_back(region);
    for (std::size_t i = 0; i < count; ++i)
        pendingVms_.push_back({id, type});
    return *this;
}

TopologyBuilder &
TopologyBuilder::addVm(DcId dc, const VmType &type)
{
    fatalIf(dc >= regions_.size(), "addVm: unknown DC");
    pendingVms_.push_back({dc, type});
    return *this;
}

TopologyBuilder &
TopologyBuilder::setBackboneCap(Mbps cap)
{
    fatalIf(cap <= 0.0, "setBackboneCap: cap must be positive");
    backboneCap_ = cap;
    return *this;
}

Topology
TopologyBuilder::build()
{
    fatalIf(regions_.empty(), "TopologyBuilder: no DCs added");

    Topology topo;
    topo.rttModel_ = RttModel(rttParams_);

    const std::size_t n = regions_.size();
    topo.dcs_.reserve(n);
    for (DcId i = 0; i < n; ++i)
        topo.dcs_.push_back({i, regions_[i], {}});

    topo.vms_.reserve(pendingVms_.size());
    for (const auto &pv : pendingVms_) {
        const VmId vid = topo.vms_.size();
        topo.vms_.push_back({vid, pv.dc, pv.type});
        topo.dcs_[pv.dc].vms.push_back(vid);
    }

    topo.distance_ = Matrix<Kilometers>::square(n, 0.0);
    topo.rtt_ = Matrix<Seconds>::square(n, 0.0);
    topo.connCap_ = Matrix<Mbps>::square(n, 0.0);
    topo.pathCap_ = Matrix<Mbps>::square(n, 0.0);
    topo.routeQuality_ = Matrix<double>::square(n, 1.0);

    // Route quality: a persistent hash of the region-id pair, so the
    // same pair always has the same quality regardless of which other
    // regions are in the cluster.
    auto pairQuality = [](const Region &a, const Region &b) {
        std::uint64_t h = 1469598103934665603ULL;
        for (char c : a.id + "->" + b.id) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ULL;
        }
        std::uint64_t s = h;
        const double u =
            static_cast<double>(splitmix64(s) >> 11) * 0x1.0p-53;
        return 0.55 + 0.45 * u; // in [0.55, 1.0]
    };

    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j) {
                // Intra-DC: LAN latency; a single connection saturates
                // the NIC (Section 2.1), so the conn cap is the NIC cap.
                topo.rtt_.at(i, j) = topo.rttModel_.params().baseRtt / 4.0;
                topo.connCap_.at(i, j) =
                    topo.rttModel_.params().maxConnCap;
                topo.pathCap_.at(i, j) = 10000.0;
                continue;
            }
            const Kilometers km =
                distanceKm(regions_[i], regions_[j]);
            topo.distance_.at(i, j) = km;
            topo.rtt_.at(i, j) = topo.rttModel_.rtt(km);
            topo.connCap_.at(i, j) =
                topo.rttModel_.connCap(topo.rtt_.at(i, j));
            topo.pathCap_.at(i, j) = backboneCap_;
            topo.routeQuality_.at(i, j) =
                pairQuality(regions_[i], regions_[j]);
        }
    }
    return topo;
}

Topology
TopologyBuilder::paperTestbed(std::size_t n, const VmType &type,
                              std::size_t vmsPerDc)
{
    TopologyBuilder builder;
    for (const auto &region : RegionCatalog::scaledMesh(n))
        builder.addDc(region, type, vmsPerDc);
    return builder.build();
}

} // namespace net
} // namespace wanify
