#include "serve/service.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "monitor/features.hh"
#include "sched/kimchi.hh"
#include "sched/locality.hh"
#include "sched/tetrium.hh"
#include "scenario/forecast.hh"

namespace wanify {
namespace serve {

using net::DcId;
using net::TransferId;

namespace {

constexpr Seconds kTimeEps = 1.0e-9;

std::unique_ptr<gda::Scheduler>
makeScheduler(SchedulerKind kind)
{
    switch (kind) {
    case SchedulerKind::Locality:
        return std::make_unique<sched::LocalityScheduler>();
    case SchedulerKind::Tetrium:
        return std::make_unique<sched::TetriumScheduler>();
    case SchedulerKind::Kimchi:
        return std::make_unique<sched::KimchiScheduler>();
    }
    panicIf(true, "Service: unknown scheduler kind");
    return nullptr;
}

/** FNV-1a over raw bytes — the report's bit-identity witness. */
void
fnv1a(std::uint64_t &h, const void *data, std::size_t len)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
}

void
fnv1aU64(std::uint64_t &h, std::uint64_t v)
{
    fnv1a(h, &v, sizeof(v));
}

void
fnv1aDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    fnv1aU64(h, bits);
}

} // namespace

Service::Service(net::Topology topo, ServiceConfig cfg,
                 net::NetworkSimConfig simCfg,
                 const core::Wanify *wanify, std::uint64_t seed)
    : topo_(std::move(topo)),
      cfg_(cfg),
      wanify_(wanify),
      sim_(topo_, simCfg, seed),
      rng_(seed ^ 0x5e17ce),
      allocator_(cfg.policy),
      gaugedRows_(monitor::kFeatureCount, 1)
{
    fatalIf(cfg_.maxConcurrent == 0,
            "Service: maxConcurrent must be positive");
    fatalIf(!(cfg_.epoch > 0.0), "Service: epoch must be positive");
    const std::size_t n = topo_.dcCount();
    computeRate_.assign(n, 0.0);
    for (DcId dc = 0; dc < n; ++dc)
        for (net::VmId v : topo_.dc(dc).vms)
            computeRate_[dc] += topo_.vm(v).type.computeRate;

    if (cfg_.dynamics != nullptr) {
        fatalIf(cfg_.dynamics->dcCount() != 0 &&
                    cfg_.dynamics->dcCount() != n,
                "Service: dynamics compiled for a different cluster "
                "size");
        burstCursor_ =
            std::make_unique<scenario::BurstCursor>(cfg_.dynamics);
    }
    if (cfg_.faults == nullptr && cfg_.dynamics != nullptr)
        cfg_.faults = cfg_.dynamics->faultPlan();
    if (cfg_.faults != nullptr && cfg_.faults->empty())
        cfg_.faults = nullptr;
    fatalIf(cfg_.faults != nullptr && cfg_.faults->dcCount() != n,
            "Service: fault plan compiled for a different cluster "
            "size");
}

void
Service::applyDynamics()
{
    if (cfg_.dynamics == nullptr)
        return;
    cfg_.dynamics->applyAt(sim_, sim_.now());
    // Scenario bursts are other tenants' flows: group 0, competing
    // with every query through the allocator-managed mesh.
    burstCursor_->advanceTo(sim_, sim_.now());
}

std::size_t
Service::effectiveSlotCap() const
{
    if (cfg_.faults == nullptr ||
        !cfg_.faults->anyBlackoutAt(sim_.now()))
        return cfg_.maxConcurrent;
    const double scaled =
        std::ceil(static_cast<double>(cfg_.maxConcurrent) *
                  cfg_.blackoutAdmissionFactor);
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::max(0.0, scaled)));
}

void
Service::killQueryRun(QueryState &q, Seconds at)
{
    for (const auto &[id, t] : q.pending)
        sim_.stopTransfer(id);
    q.pending.clear();
    allocator_.release(sim_, q.group);
    ++faultKills_;
    if (q.outcome.requeues < cfg_.maxRequeues) {
        // Tear the run down and send the query back through
        // admission; re-execution starts from stage zero (delivered
        // stage outputs of a killed run are not trusted).
        ++q.outcome.requeues;
        q.phase = Phase::Queued;
        requeue_.push_back({q.index, at + cfg_.requeueBackoff});
    } else {
        q.outcome.killedByFault = true;
        finishQuery(q, at, false);
    }
}

void
Service::applyFaults()
{
    if (cfg_.faults == nullptr)
        return;
    const Seconds now = sim_.now();
    std::vector<std::size_t> started;
    cfg_.faults->startsIn(faultCursor_, now, started);
    faultCursor_ = std::max(faultCursor_, now);
    if (started.empty())
        return;

    std::vector<std::size_t> victims;
    for (const std::size_t fi : started) {
        const fault::CompiledFault &cf = cfg_.faults->events()[fi];
        // Gauge faults gate maybeRetrain at its own boundary; there
        // is no per-query AIMD agent to crash on a shared mesh.
        if (cf.ev.kind != fault::FaultKind::TransferAbort &&
            cf.ev.kind != fault::FaultKind::DcBlackout)
            continue;
        for (const std::size_t idx : active_) {
            QueryState &q = queries_[idx];
            if (q.phase != Phase::Shuffling)
                continue;
            bool hit = false;
            for (const auto &[id, t] : q.pending) {
                if (cf.ev.kind == fault::FaultKind::DcBlackout)
                    hit = t.src == static_cast<DcId>(cf.ev.dc) ||
                          t.dst == static_cast<DcId>(cf.ev.dc);
                else
                    hit = (cf.ev.src == fault::kAnyDc ||
                           static_cast<DcId>(cf.ev.src) == t.src) &&
                          (cf.ev.dst == fault::kAnyDc ||
                           static_cast<DcId>(cf.ev.dst) == t.dst);
                if (hit)
                    break;
            }
            if (hit)
                victims.push_back(idx);
        }
    }
    std::sort(victims.begin(), victims.end());
    victims.erase(std::unique(victims.begin(), victims.end()),
                  victims.end());
    for (const std::size_t idx : victims)
        killQueryRun(queries_[idx], now);
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](std::size_t idx) {
                                     const Phase p =
                                         queries_[idx].phase;
                                     return p == Phase::Done ||
                                            p == Phase::Queued;
                                 }),
                  active_.end());
}

double
Service::meshMeanFactor(Seconds t) const
{
    const std::size_t n = topo_.dcCount();
    double sum = 0.0;
    std::size_t pairs = 0;
    for (DcId i = 0; i < n; ++i) {
        for (DcId j = 0; j < n; ++j) {
            if (i == j)
                continue;
            sum += cfg_.dynamics->capFactorAt(i, j, t);
            ++pairs;
        }
    }
    return pairs == 0 ? 1.0 : sum / static_cast<double>(pairs);
}

bool
Service::admissionHeld()
{
    if (!cfg_.forecastAdmission || !cfg_.forecast.enabled ||
        cfg_.dynamics == nullptr)
        return false;
    const Seconds now = sim_.now();
    if (now < admissionResumeAt_)
        return true; // inside a standing hold
    if (now < holdCooloffUntil_)
        return false; // a hold just expired; admit regardless

    // Compare the mesh-mean capacity factor now against the best
    // within the horizon: admitting into a trough that the forecast
    // says will lift shortly only buys queue-for-bandwidth churn.
    const double nowMean = meshMeanFactor(now);
    double best = nowMean;
    for (Seconds t = now + cfg_.forecast.step;
         t <= now + cfg_.forecast.horizon + kTimeEps;
         t += cfg_.forecast.step)
        best = std::max(best, meshMeanFactor(t));
    if (nowMean >= cfg_.admissionTrough * best)
        return false;

    // Hold until the first forecast sample out of the trough,
    // bounded by maxAdmissionHold; cool off as long afterwards so
    // repeated troughs cannot defer admission without bound.
    Seconds resume = now + cfg_.maxAdmissionHold;
    for (Seconds t = now + cfg_.forecast.step;
         t <= now + cfg_.forecast.horizon + kTimeEps;
         t += cfg_.forecast.step) {
        if (meshMeanFactor(t) >= cfg_.admissionTrough * best) {
            resume = std::min(resume, t);
            break;
        }
    }
    admissionResumeAt_ = resume;
    holdCooloffUntil_ = resume + cfg_.maxAdmissionHold;
    return true;
}

void
Service::submit(QuerySpec spec)
{
    fatalIf(draining_, "Service: submit after drain started");
    fatalIf(spec.job.stages.empty(),
            "Service: query has no stages");
    fatalIf(spec.inputByDc.size() != topo_.dcCount(),
            "Service: input distribution size mismatch");
    fatalIf(!(spec.weight > 0.0) || !std::isfinite(spec.weight),
            "Service: query weight must be positive");
    fatalIf(!(spec.arrival >= 0.0),
            "Service: arrival must be non-negative");

    QueryState q;
    q.index = queries_.size();
    q.group = static_cast<net::FlowGroupId>(q.index + 1);
    q.outcome.name = spec.name;
    q.outcome.arrival = spec.arrival;
    q.spec = std::move(spec);
    queries_.push_back(std::move(q));
}

void
Service::admitQuery(QueryState &q, Seconds now, bool readmission)
{
    q.phase = Phase::Planning;
    q.stage = 0;
    q.stageInput = q.spec.inputByDc;
    q.scheduler = makeScheduler(cfg_.scheduler);
    // Pin the published predictor now: a service-level retrain
    // may swap the facade's model at any completion boundary, but
    // this query's planning evolves only from the pinned snapshot
    // (the engine's per-run discipline, ported to admission).
    if (wanify_ != nullptr)
        q.model = wanify_->predictorSnapshot();
    q.outcome.admitted = now;
    if (!readmission) {
        q.outcome.queueWait = now - q.spec.arrival;
        if (q.outcome.queueWait > kTimeEps)
            ++queuedAdmissions_;
    }

    active_.push_back(q.index);
    peakConcurrent_ = std::max(peakConcurrent_, active_.size());
}

void
Service::admitDueQueries()
{
    const Seconds now = sim_.now();
    const bool held = admissionHeld();
    const std::size_t cap = effectiveSlotCap();

    // Fault-requeued queries re-enter first once their backoff
    // expires — they have already waited since their kill.
    while (!held && !requeue_.empty() && active_.size() < cap &&
           requeue_.front().due <= now + kTimeEps) {
        QueryState &q = queries_[requeue_.front().idx];
        requeue_.erase(requeue_.begin());
        admitQuery(q, now, /*readmission=*/true);
    }

    while (nextArrival_ < arrivalOrder_.size() &&
           active_.size() < cap) {
        QueryState &q = queries_[arrivalOrder_[nextArrival_]];
        if (q.spec.arrival > now + kTimeEps)
            break;
        if (held) {
            // Due but deferred: the forecast says the mesh is in a
            // trough that lifts within the horizon.
            if (!q.heldByForecast) {
                q.heldByForecast = true;
                ++forecastHeldAdmissions_;
            }
            break;
        }
        ++nextArrival_;
        admitQuery(q, now, /*readmission=*/false);
    }
}

void
Service::transitionComputedQueries()
{
    const Seconds now = sim_.now();
    for (const std::size_t idx : active_) {
        QueryState &q = queries_[idx];
        if (q.phase != Phase::Computing ||
            q.stageEnd > now + kTimeEps)
            continue;
        const gda::StageSpec &spec = q.spec.job.stages[q.stage];
        std::vector<Bytes> next(topo_.dcCount(), 0.0);
        for (DcId j = 0; j < topo_.dcCount(); ++j) {
            Bytes atJ = 0.0;
            for (DcId i = 0; i < topo_.dcCount(); ++i)
                atJ += q.assignment.at(i, j);
            next[j] = atJ * spec.selectivity;
        }
        q.stageInput = std::move(next);
        ++q.stage;
        if (q.stage >= q.spec.job.stages.size())
            finishQuery(q, q.stageEnd, false);
        else
            q.phase = Phase::Planning;
    }
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](std::size_t idx) {
                                     return queries_[idx].phase ==
                                            Phase::Done;
                                 }),
                  active_.end());
}

void
Service::planAndLaunch()
{
    std::vector<std::size_t> planning;
    for (const std::size_t idx : active_)
        if (queries_[idx].phase == Phase::Planning)
            planning.push_back(idx);
    if (planning.empty())
        return;

    const std::size_t n = topo_.dcCount();

    // One shared capacity snapshot per round, taken on the control
    // thread: the cheap stand-in for the measurement plane's 1-second
    // snapshot, read once so the parallel planners never touch the
    // simulator.
    Matrix<Mbps> snapshot = Matrix<Mbps>::square(n, 0.0);
    for (DcId i = 0; i < n; ++i)
        for (DcId j = 0; j < n; ++j)
            snapshot.at(i, j) =
                i == j ? 0.0 : sim_.effectivePathCap(i, j);

    // A-priori share estimate for planning. Adaptive (default): the
    // fraction of a contended link this query would win against the
    // *observed* mesh occupancy — the queries shuffling right now
    // plus this round's co-planning cohort. Compute-phase neighbors
    // don't dilute the estimate, so a query planning its next stage
    // while most peers crunch locally sees a realistic share and
    // stays network-differentiable (a mass admission still seeds
    // conservatively: the whole cohort is in the denominator).
    // Legacy: 1 / (sum of every active weight), which kept small
    // mixed-workload queries planned so defensively they went
    // compute-bound and the weighted allocator had nothing left to
    // differentiate. Either way the allocator's water-fill then
    // enforces the real shares from the transfers actually started.
    double weightSum = 0.0;
    double occupiedWeight = 0.0;
    for (const std::size_t idx : active_) {
        const QueryState &o = queries_[idx];
        const double w = cfg_.policy == AllocPolicy::WeightedPriority
                             ? o.spec.weight
                             : 1.0;
        weightSum += w;
        if (o.phase == Phase::Shuffling && !o.pending.empty())
            occupiedWeight += w;
        else if (o.phase == Phase::Planning)
            occupiedWeight += w; // co-planning cohort, incl. self
    }
    const Seconds planNow = sim_.now();

    // Placement, prediction, and connection planning are pure in the
    // query's own state, so the fan-out is deterministic: work is
    // assigned by index and each worker writes only its query.
    ThreadPool::global().parallelFor(
        planning.size(), [&](std::size_t k) {
            QueryState &q = queries_[planning[k]];
            const double w =
                cfg_.policy == AllocPolicy::WeightedPriority
                    ? q.spec.weight
                    : 1.0;
            q.share = cfg_.adaptiveAprioriShare
                          ? std::min(1.0,
                                     w / std::max(w, occupiedWeight))
                          : (weightSum > 0.0 ? w / weightSum : 1.0);
            q.outcome.minPlanningShare =
                std::min(q.outcome.minPlanningShare, q.share);

            if (q.model != nullptr && q.model->trained())
                q.believedBw = q.model->predictMatrix(
                    topo_, snapshot, q.predictScratch);
            else
                q.believedBw = snapshot;

            gda::StageContext ctx = gda::makeStageContext(
                topo_, q.spec.job, q.stage, q.stageInput,
                q.believedBw);
            ctx.wanShare = q.share;
            ctx.memory = &q.planMemory;
            if (cfg_.forecast.enabled && cfg_.dynamics != nullptr) {
                // Plan against where the mesh is going, not only
                // where it is: believed bandwidth scaled by the
                // dynamics' future factors relative to now.
                q.forecast = scenario::forecastFromDynamics(
                    *cfg_.dynamics, q.believedBw, planNow,
                    cfg_.forecast);
                ctx.forecast = &q.forecast;
                ctx.planTime = planNow;
            }
            q.assignment = q.scheduler->placeStage(ctx);
            panicIf(q.assignment.rows() != n ||
                        q.assignment.cols() != n,
                    "Service: scheduler assignment shape mismatch");

            // Heterogeneous parallelism from the global optimizer
            // (the engine's global-only shape — per-query local
            // agents have no place on a shared mesh).
            if (wanify_ != nullptr && q.model != nullptr &&
                q.model->trained())
                q.connections =
                    wanify_->plan(q.believedBw).maxCons;
            else
                q.connections = Matrix<int>::square(n, 1);
        });

    // Transfers start sequentially, in query order, on the control
    // thread — the shared simulator is single-writer.
    const Seconds now = sim_.now();
    for (const std::size_t idx : planning) {
        QueryState &q = queries_[idx];
        q.stageShuffleStart = now;
        q.transferDone.assign(n, now);
        q.pending.clear();
        for (DcId i = 0; i < n; ++i) {
            for (DcId j = 0; j < n; ++j) {
                const Bytes bytes = q.assignment.at(i, j);
                if (i == j || bytes < 1.0)
                    continue;
                const int conns =
                    std::max(1, q.connections.at(i, j));
                const TransferId id = sim_.startTransfer(
                    gda::shuffleEndpointVm(topo_, i),
                    gda::shuffleEndpointVm(topo_, j), bytes, conns,
                    q.group);
                ActiveTransfer t;
                t.src = i;
                t.dst = j;
                t.bytes = bytes;
                t.started = now;
                // Straggler budgets share the planner's rate model:
                // forecast-integrated when available, else the
                // snapshot rate floored at the infeasibility
                // epsilon (a dead pair's budget must be huge, not
                // the silent 1 Mbps the old floor implied).
                t.expected =
                    cfg_.forecast.enabled && !q.forecast.empty()
                        ? q.forecast.transferTime(i, j, bytes,
                                                  q.share, now)
                        : units::transferTime(
                              bytes,
                              std::max(
                                  core::BwForecast::kMinFeasibleMbps,
                                  q.believedBw.at(i, j) * q.share));
                t.connections = conns;
                q.pending[id] = t;
                q.outcome.wanBytes += bytes;
            }
        }
        if (q.pending.empty())
            enterComputePhase(q);
        else
            q.phase = Phase::Shuffling;
    }
}

void
Service::runAllocationRound()
{
    std::vector<QueryDemand> demands;
    for (const std::size_t idx : active_) {
        QueryState &q = queries_[idx];
        if (q.phase != Phase::Shuffling || q.pending.empty())
            continue;
        QueryDemand d;
        d.group = q.group;
        d.weight = q.spec.weight;
        for (const auto &[id, t] : q.pending) {
            const std::size_t pair = topo_.pairIndex(t.src, t.dst);
            // Elastic demand: a shuffle takes any rate granted.
            if (d.pairs.empty() || d.pairs.back().pair != pair)
                d.pairs.push_back({pair, 0.0});
        }
        std::sort(d.pairs.begin(), d.pairs.end(),
                  [](const PairDemand &a, const PairDemand &b) {
                      return a.pair < b.pair;
                  });
        d.pairs.erase(
            std::unique(d.pairs.begin(), d.pairs.end(),
                        [](const PairDemand &a, const PairDemand &b) {
                            return a.pair == b.pair;
                        }),
            d.pairs.end());
        demands.push_back(std::move(d));
    }
    // Admission follows arrival order, not submission order, so the
    // demand list needs the allocator's canonical group order before
    // the round runs.
    std::sort(demands.begin(), demands.end(),
              [](const QueryDemand &a, const QueryDemand &b) {
                  return a.group < b.group;
              });
    const Allocation alloc = allocator_.allocate(sim_, demands);
    cappedPairRounds_ += alloc.cappedPairs;
    for (const auto &[group, share] : alloc.planningShare) {
        QueryState &q = queries_[static_cast<std::size_t>(group) - 1];
        q.outcome.minPlanningShare =
            std::min(q.outcome.minPlanningShare, share);
    }
}

void
Service::routeCompletions()
{
    for (const net::CompletionRecord &rec : sim_.drainCompletions()) {
        // Completions are sparse relative to active queries; the
        // linear owner scan is far from the hot path (the flow
        // solver is).
        for (const std::size_t idx : active_) {
            QueryState &q = queries_[idx];
            auto it = q.pending.find(rec.id);
            if (it == q.pending.end())
                continue;
            q.transferDone[it->second.dst] = std::max(
                q.transferDone[it->second.dst], rec.time);
            q.pending.erase(it);
            if (q.phase == Phase::Shuffling && q.pending.empty())
                enterComputePhase(q);
            break;
        }
    }
}

void
Service::enterComputePhase(QueryState &q)
{
    const gda::StageSpec &spec = q.spec.job.stages[q.stage];
    Seconds stageEnd = sim_.now();
    for (DcId j = 0; j < topo_.dcCount(); ++j) {
        Bytes atJ = 0.0;
        for (DcId i = 0; i < topo_.dcCount(); ++i)
            atJ += q.assignment.at(i, j);
        const double rate = std::max(1.0e-9, computeRate_[j]);
        const Seconds compute =
            units::toMegabytes(atJ) * spec.workPerMb / rate;
        stageEnd =
            std::max(stageEnd, q.transferDone[j] + compute);
    }
    q.stageEnd = stageEnd;
    q.phase = Phase::Computing;
    // The query's WAN appetite is gone; free its share for the rest.
    allocator_.release(sim_, q.group);
}

void
Service::checkStragglersAndGuards()
{
    const Seconds now = sim_.now();
    for (const std::size_t idx : active_) {
        QueryState &q = queries_[idx];

        if (now - q.outcome.admitted > cfg_.maxQuerySeconds) {
            logging::warn("service: query '" + q.spec.name +
                          "' hit the per-query guard");
            for (const auto &[id, t] : q.pending)
                sim_.stopTransfer(id);
            q.pending.clear();
            finishQuery(q, now, true);
            continue;
        }

        if (cfg_.stragglerFactor <= 0.0 ||
            q.phase != Phase::Shuffling)
            continue;

        // Re-dispatch transfers that overshot their plan: stop the
        // flow and restart the remainder with doubled connections —
        // the classic speculative-retry answer to a path that turned
        // out far slower than the predictor believed. Each transfer
        // gets maxRedispatches attempts (historically exactly one).
        std::vector<std::pair<TransferId, ActiveTransfer>> retry;
        for (const auto &[id, t] : q.pending) {
            const Seconds budget =
                cfg_.stragglerFactor *
                std::max(cfg_.epoch, t.expected);
            if (t.redispatches <
                    static_cast<int>(cfg_.maxRedispatches) &&
                now - t.started > budget)
                retry.push_back({id, t});
        }
        for (auto &[id, t] : retry) {
            const net::TransferStatus st = sim_.status(id);
            const Bytes remaining = st.bytesRemaining;
            sim_.stopTransfer(id);
            q.pending.erase(id);
            if (remaining < 1.0)
                continue;
            const int conns =
                std::min(cfg_.maxRedispatchConnections,
                         std::max(1, t.connections * 2));
            const TransferId fresh = sim_.startTransfer(
                gda::shuffleEndpointVm(topo_, t.src),
                gda::shuffleEndpointVm(topo_, t.dst), remaining,
                conns, q.group);
            ActiveTransfer nt = t;
            nt.bytes = remaining;
            nt.started = now;
            nt.connections = conns;
            ++nt.redispatches;
            q.pending[fresh] = nt;
            ++q.outcome.redispatches;
            q.outcome.wanBytes += remaining;
        }
        if (q.phase == Phase::Shuffling && q.pending.empty())
            enterComputePhase(q);
    }
    active_.erase(std::remove_if(active_.begin(), active_.end(),
                                 [&](std::size_t idx) {
                                     return queries_[idx].phase ==
                                            Phase::Done;
                                 }),
                  active_.end());
}

void
Service::maybeRetrain()
{
    if (cfg_.retrainEveryCompleted == 0 || wanify_ == nullptr ||
        completedSinceRetrain_ < cfg_.retrainEveryCompleted)
        return;
    // Inside a ProbeLoss/GaugeTimeout window the gauge would never
    // land: keep the stale model and try again next boundary.
    if (cfg_.faults != nullptr &&
        cfg_.faults->gaugeFaultAt(sim_.now()))
        return;
    const auto published = wanify_->predictorSnapshot();
    if (published == nullptr || !published->trained())
        return;
    completedSinceRetrain_ = 0;

    // Gauge the live mesh (snapshot + one epoch of stable BW): real
    // measurement flows on the shared simulator, so adapting costs
    // the tenants bandwidth exactly as it would in production.
    const auto gauge = wanify_->gaugeRuntime(sim_, rng_, *published);
    core::CollectedMesh mesh;
    mesh.clusterSize = topo_.dcCount();
    mesh.snapshotBw = gauge.snapshot;
    mesh.stableBw = gauge.stable;
    core::BandwidthAnalyzer::appendRows(gaugedRows_, topo_, mesh,
                                        rng_);

    std::uint64_t state =
        0x5e12feedULL ^ (retrainsPublished_ + 1);
    wanify_->retrain(gaugedRows_, splitmix64(state), published,
                     /*publish=*/true);
    ++retrainsPublished_;
}

void
Service::finishQuery(QueryState &q, Seconds at, bool timedOut)
{
    q.phase = Phase::Done;
    q.outcome.finished = at;
    q.outcome.latency = at - q.outcome.admitted;
    q.outcome.stages = q.stage;
    q.outcome.timedOut = timedOut;
    allocator_.release(sim_, q.group);
    ++completedSinceRetrain_;
}

ServiceReport
Service::buildReport() const
{
    ServiceReport report;
    report.peakConcurrent = peakConcurrent_;
    report.queuedAdmissions = queuedAdmissions_;
    report.retrainsPublished = retrainsPublished_;
    report.cappedPairRounds = cappedPairRounds_;
    report.forecastHeldAdmissions = forecastHeldAdmissions_;
    report.faultKills = faultKills_;

    Seconds firstAdmitted = 0.0, lastFinished = 0.0;
    double xSum = 0.0, x2Sum = 0.0;
    std::size_t wanActive = 0;
    std::uint64_t hash = 1469598103934665603ULL; // FNV offset basis

    for (const QueryState &q : queries_) {
        report.queries.push_back(q.outcome);
        if (q.outcome.requeues > 0)
            ++report.requeuedQueries;
        if (q.outcome.timedOut) {
            ++report.timedOut;
        } else if (q.outcome.killedByFault) {
            ++report.failedQueries;
        } else {
            ++report.completed;
            if (report.completed == 1 ||
                q.outcome.admitted < firstAdmitted)
                firstAdmitted = q.outcome.admitted;
            lastFinished =
                std::max(lastFinished, q.outcome.finished);
            if (q.outcome.wanBytes > 0.0 &&
                q.outcome.latency > 0.0) {
                const double x =
                    q.outcome.wanBytes / q.outcome.latency;
                xSum += x;
                x2Sum += x * x;
                ++wanActive;
            }
        }
        report.redispatches += q.outcome.redispatches;

        fnv1aU64(hash, q.index);
        fnv1aDouble(hash, q.outcome.latency);
        fnv1aDouble(hash, q.outcome.wanBytes);
        fnv1aU64(hash, q.outcome.redispatches);
        fnv1aU64(hash, q.outcome.stages);
        fnv1aU64(hash, q.outcome.timedOut ? 1 : 0);
        fnv1aU64(hash, q.outcome.requeues);
        fnv1aU64(hash, q.outcome.killedByFault ? 1 : 0);
    }

    if (report.completed > 0) {
        report.makespan = lastFinished - firstAdmitted;
        if (report.makespan > 0.0)
            report.throughputPerHour =
                static_cast<double>(report.completed) * 3600.0 /
                report.makespan;
    }
    if (wanActive > 0 && x2Sum > 0.0)
        report.jainFairness =
            (xSum * xSum) /
            (static_cast<double>(wanActive) * x2Sum);
    report.resultHash = hash;
    return report;
}

ServiceReport
Service::drain()
{
    fatalIf(draining_, "Service: drain is single-shot");
    draining_ = true;

    arrivalOrder_.resize(queries_.size());
    for (std::size_t i = 0; i < queries_.size(); ++i)
        arrivalOrder_[i] = i;
    std::sort(arrivalOrder_.begin(), arrivalOrder_.end(),
              [&](std::size_t a, std::size_t b) {
                  if (queries_[a].spec.arrival !=
                      queries_[b].spec.arrival)
                      return queries_[a].spec.arrival <
                             queries_[b].spec.arrival;
                  return a < b; // FIFO among simultaneous arrivals
              });

    while (!active_.empty() || nextArrival_ < arrivalOrder_.size() ||
           !requeue_.empty()) {
        applyDynamics();
        applyFaults();
        admitDueQueries();

        if (active_.empty()) {
            // Fully idle: fast-forward to the next arrival or the
            // earliest requeue due time — or to the end of a forecast
            // admission hold, whichever is later (a hold always
            // resumes strictly in the future, so this cannot stall).
            Seconds at = 0.0;
            bool haveTarget = false;
            if (nextArrival_ < arrivalOrder_.size()) {
                at = queries_[arrivalOrder_[nextArrival_]]
                         .spec.arrival;
                haveTarget = true;
            }
            if (!requeue_.empty()) {
                at = haveTarget ? std::min(at, requeue_.front().due)
                                : requeue_.front().due;
                haveTarget = true;
            }
            // Nothing active, queued, or due: a fault kill can
            // terminally finish the last query between the loop
            // check and here, so this is completion, not a stall.
            if (!haveTarget)
                break;
            if (admissionResumeAt_ > sim_.now())
                at = std::max(at, admissionResumeAt_);
            if (at > sim_.now())
                sim_.advanceBy(at - sim_.now());
            continue;
        }

        transitionComputedQueries();
        planAndLaunch();
        runAllocationRound();

        // Advance to the next control-plane event: the epoch
        // boundary, the earliest compute end, or the next arrival
        // (when a slot is free to take it). Transfer completions
        // inside the window are located exactly by the simulator.
        const Seconds now = sim_.now();
        Seconds target = now + cfg_.epoch;
        for (const std::size_t idx : active_) {
            const QueryState &q = queries_[idx];
            if (q.phase == Phase::Computing)
                target = std::min(target,
                                  std::max(now + kTimeEps,
                                           q.stageEnd));
        }
        if (active_.size() < cfg_.maxConcurrent &&
            nextArrival_ < arrivalOrder_.size()) {
            Seconds at =
                queries_[arrivalOrder_[nextArrival_]].spec.arrival;
            if (admissionResumeAt_ > now)
                at = std::max(at, admissionResumeAt_);
            target =
                std::min(target, std::max(now + kTimeEps, at));
        }
        if (active_.size() < cfg_.maxConcurrent &&
            !requeue_.empty())
            target = std::min(target,
                              std::max(now + kTimeEps,
                                       requeue_.front().due));
        if (target <= now + kTimeEps)
            target = now + cfg_.epoch;

        if (sim_.activeTransferCount() > 0)
            sim_.runUntilAllComplete(target);
        else
            sim_.advanceBy(target - now);

        routeCompletions();
        checkStragglersAndGuards();
        transitionComputedQueries();
        maybeRetrain();
    }

    if (burstCursor_ != nullptr)
        burstCursor_->finish(sim_);
    return buildReport();
}

} // namespace serve
} // namespace wanify
