/**
 * @file
 * Deterministic mixed multi-query workloads for the serve layer.
 *
 * A realistic service mix is mostly small interactive queries with a
 * minority of heavy analytics jobs: the small ones are single-stage
 * scan/aggregate proxies whose input sits at one DC, the heavy ones
 * are the paper's TPC-DS query proxies over a skewed multi-DC input.
 * One seeded generator is shared by the wanify-serve CLI, the serve
 * perf bench, and the tests so "N queries" means the same workload
 * everywhere — and so the bit-identity checks compare like with like.
 */

#ifndef WANIFY_SERVE_WORKLOAD_HH
#define WANIFY_SERVE_WORKLOAD_HH

#include <cstdint>
#include <vector>

#include "serve/service.hh"

namespace wanify {
namespace serve {

/** Mix shape for mixedWorkload. */
struct WorkloadConfig
{
    std::size_t queries = 256;

    /** Fraction of heavy (TPC-DS proxy) queries. */
    double heavyFraction = 0.08;

    /** Fraction of weight-4 priority queries (rest weigh 1). */
    double priorityFraction = 0.2;

    /** Arrivals fall uniformly in [0, arrivalWindow) seconds. */
    Seconds arrivalWindow = 60.0;

    /** Input size of a small query (GB). */
    double smallInputGb = 1.0;

    /** Input size of a heavy query (GB). */
    double heavyInputGb = 20.0;
};

/**
 * Generate the mixed workload deterministically from @p seed for a
 * @p dcCount-DC cluster. Queries come back in submission order with
 * assigned arrivals, weights, and input distributions.
 */
std::vector<QuerySpec> mixedWorkload(const WorkloadConfig &cfg,
                                     std::size_t dcCount,
                                     std::uint64_t seed);

} // namespace serve
} // namespace wanify

#endif // WANIFY_SERVE_WORKLOAD_HH
