/**
 * @file
 * Cross-query WAN bandwidth allocator for the resident service.
 *
 * The one-shot engine lets each query assume whole links: correct when
 * one query owns the WAN, systematically wrong when hundreds share it.
 * The allocator closes that gap online. Every allocation round it takes
 * the active queries' per-pair demands (which ordered DC pairs each
 * query is currently shuffling over, and at what rate it could usefully
 * consume), water-fills each contended pair's effective capacity among
 * the demanding queries, and installs the resulting shares on the
 * shared NetworkSim through the flow-registry hooks: per-(group, pair)
 * share caps — first-class solver resources — plus per-group fair-share
 * weights.
 *
 * Two policies:
 *  - MaxMinFair: every demanding query weighs 1; the water-fill is the
 *    classic max-min fair allocation per pair.
 *  - WeightedPriority: shares are proportional to the query's declared
 *    weight (its priority class), so a weight-4 query gets 4x the share
 *    of a weight-1 query wherever they contend.
 *
 * Caps are installed only on *contended* pairs (two or more demanding
 * queries, or aggregate demand above capacity): an uncontended query
 * keeps whole-link behavior at zero solver cost, which keeps the flow
 * solver's resource count proportional to actual contention rather
 * than to queries x pairs.
 */

#ifndef WANIFY_SERVE_ALLOCATOR_HH
#define WANIFY_SERVE_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <vector>

#include "net/network_sim.hh"

namespace wanify {
namespace serve {

/** Cross-query sharing policy. */
enum class AllocPolicy
{
    MaxMinFair,
    WeightedPriority,
};

const char *allocPolicyName(AllocPolicy policy);

/** One query's appetite on one ordered DC pair. */
struct PairDemand
{
    /** Ordered pair index (Topology::pairIndex). */
    std::size_t pair = 0;

    /**
     * Rate the query could usefully consume on the pair (Mbps);
     * <= 0 means elastic (take any share granted).
     */
    Mbps demand = 0.0;
};

/** One active query's demand set for an allocation round. */
struct QueryDemand
{
    net::FlowGroupId group = 0;

    /** Priority weight (> 0); ignored under MaxMinFair. */
    double weight = 1.0;

    /** Pairs the query is actively shuffling over, sorted by index. */
    std::vector<PairDemand> pairs;
};

/** Outcome of one allocation round. */
struct Allocation
{
    /**
     * Per-query planning share in (0, 1]: the worst granted
     * capacity fraction across the query's contended pairs (1 when
     * it contends nowhere). This is the scalar the fraction search
     * consumes via StageContext::wanShare, so placement is computed
     * against the bandwidth the query will actually receive.
     */
    std::map<net::FlowGroupId, double> planningShare;

    /** Pairs that received share caps this round. */
    std::size_t cappedPairs = 0;

    /** (group, pair) share caps installed this round. */
    std::size_t installedCaps = 0;
};

class BandwidthAllocator
{
  public:
    explicit BandwidthAllocator(AllocPolicy policy);

    AllocPolicy policy() const { return policy_; }

    /**
     * Run one allocation round: water-fill every contended pair's
     * effective capacity among the queries demanding it and install
     * the shares on @p sim (group weights + per-(group, pair) caps).
     * Caps from earlier rounds that are no longer warranted are
     * removed, so the sim's registered allocation state always
     * mirrors the latest round. Deterministic in (demands, sim
     * state); queries must be pre-sorted by group id.
     */
    Allocation allocate(net::NetworkSim &sim,
                        const std::vector<QueryDemand> &demands);

    /** Forget a departed query's installed state (weights + caps). */
    void release(net::NetworkSim &sim, net::FlowGroupId group);

  private:
    /** One demander at a contended pair during the water-fill. */
    struct Claim
    {
        net::FlowGroupId group = 0;
        double weight = 1.0;
        Mbps demand = 0.0; ///< <= 0 = elastic
        Mbps granted = 0.0;
        bool satisfied = false;
    };

    /** Weighted max-min water-fill over one pair's claim span. */
    static void waterFill(Mbps capacity, Claim *claims,
                          std::size_t count);

    AllocPolicy policy_;

    /** (group, pair) caps currently installed on the sim; each
     *  group's pair list is sorted ascending (the scan emits pairs
     *  in index order), so retirement checks binary-search it. */
    std::map<net::FlowGroupId, std::vector<std::size_t>> installed_;

    // Flat counting-sort scratch for the contended-pair scan,
    // reused across rounds so the steady state allocates nothing:
    // claims land in one contiguous array grouped by pair index
    // (demand order within a pair, i.e. ascending group), with
    // claimCount_/claimSlot_ dense over pairCount() and touched_
    // listing the pairs that saw any demand this round.
    std::vector<std::int32_t> claimCount_;
    std::vector<std::size_t> claimSlot_;
    std::vector<Claim> claims_;
    std::vector<std::size_t> touched_;
};

} // namespace serve
} // namespace wanify

#endif // WANIFY_SERVE_ALLOCATOR_HH
