#include "serve/allocator.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace serve {

const char *
allocPolicyName(AllocPolicy policy)
{
    switch (policy) {
    case AllocPolicy::MaxMinFair:
        return "maxmin";
    case AllocPolicy::WeightedPriority:
        return "weighted";
    }
    return "?";
}

BandwidthAllocator::BandwidthAllocator(AllocPolicy policy)
    : policy_(policy)
{}

/**
 * Weighted water-filling of @p capacity among the @p count claims at
 * @p claims: repeatedly raise a common water level (rate per unit
 * weight); claims whose finite demand sits below their level-implied
 * share freeze at their demand and release the remainder to everyone
 * still filling. The fixed point is the weighted max-min fair
 * allocation. Operates on a span of the flat claim array so the
 * per-pair fill never copies.
 */
void
BandwidthAllocator::waterFill(Mbps capacity, Claim *claims,
                              std::size_t count)
{
    Mbps remaining = capacity;
    std::size_t unsatisfied = count;
    while (unsatisfied > 0) {
        double weightSum = 0.0;
        for (std::size_t k = 0; k < count; ++k)
            if (!claims[k].satisfied)
                weightSum += claims[k].weight;
        const double level = remaining / weightSum;
        bool froze = false;
        for (std::size_t k = 0; k < count; ++k) {
            Claim &c = claims[k];
            if (c.satisfied)
                continue;
            const Mbps fair = c.weight * level;
            if (c.demand > 0.0 && c.demand <= fair) {
                c.granted = c.demand;
                c.satisfied = true;
                remaining -= c.demand;
                --unsatisfied;
                froze = true;
            }
        }
        if (!froze) {
            for (std::size_t k = 0; k < count; ++k) {
                Claim &c = claims[k];
                if (c.satisfied)
                    continue;
                c.granted = c.weight * level;
                c.satisfied = true;
            }
            break;
        }
    }
}

Allocation
BandwidthAllocator::allocate(net::NetworkSim &sim,
                             const std::vector<QueryDemand> &demands)
{
    const net::Topology &topo = sim.topology();
    Allocation out;

    // Queries arrive sorted by group; the per-pair claim lists below
    // inherit that order, so ties in the water-fill resolve the same
    // way every round and every run.
    for (std::size_t q = 1; q < demands.size(); ++q)
        panicIf(demands[q - 1].group >= demands[q].group,
                "BandwidthAllocator: demands not sorted by group");

    // Group weights steer the solver's organic filling between
    // allocation rounds (new flows join mid-epoch); the caps bound
    // each query's aggregate per pair. Both express the same policy.
    for (const QueryDemand &q : demands) {
        fatalIf(q.group == 0,
                "BandwidthAllocator: group 0 is reserved");
        fatalIf(!(q.weight > 0.0) || !std::isfinite(q.weight),
                "BandwidthAllocator: weight must be positive");
        sim.setGroupWeight(q.group,
                           policy_ == AllocPolicy::WeightedPriority
                               ? q.weight
                               : 1.0);
        out.planningShare[q.group] = 1.0;
    }

    // Collect the demanding queries per ordered pair — counting sort
    // into one flat claim array instead of a node-per-pair map, so
    // the scan is contiguous and the steady state allocates nothing.
    const std::size_t pairCount = topo.pairCount();
    claimCount_.assign(pairCount, 0);
    touched_.clear();
    std::size_t total = 0;
    for (const QueryDemand &q : demands) {
        for (const PairDemand &p : q.pairs) {
            panicIf(p.pair >= pairCount,
                    "BandwidthAllocator: pair index out of range");
            if (claimCount_[p.pair]++ == 0)
                touched_.push_back(p.pair);
            ++total;
        }
    }
    // Ascending pair order — the iteration order the map-keyed scan
    // had, so installed caps and planning shares are bit-identical.
    std::sort(touched_.begin(), touched_.end());
    claimSlot_.resize(pairCount);
    std::size_t running = 0;
    for (const std::size_t pair : touched_) {
        claimSlot_[pair] = running;
        running += static_cast<std::size_t>(claimCount_[pair]);
    }
    claims_.resize(total);
    for (const QueryDemand &q : demands) {
        const double w =
            policy_ == AllocPolicy::WeightedPriority ? q.weight : 1.0;
        for (const PairDemand &p : q.pairs)
            claims_[claimSlot_[p.pair]++] = {q.group, w, p.demand,
                                             0.0, false};
    }

    // Water-fill the contended pairs and install the shares; record
    // which caps each group now holds so stale ones can be retired.
    // claimSlot_ now points one past each pair's span.
    std::map<net::FlowGroupId, std::vector<std::size_t>> fresh;
    for (const std::size_t pair : touched_) {
        const std::size_t count =
            static_cast<std::size_t>(claimCount_[pair]);
        if (count < 2)
            continue; // sole demander keeps whole-link behavior

        const net::DcId src = pair / topo.dcCount();
        const net::DcId dst = pair % topo.dcCount();
        const Mbps capacity = sim.effectivePathCap(src, dst);
        if (capacity <= 0.0)
            continue; // outage: the solver starves the pair anyway

        Claim *claims = claims_.data() + (claimSlot_[pair] - count);
        waterFill(capacity, claims, count);
        ++out.cappedPairs;
        for (std::size_t k = 0; k < count; ++k) {
            const Claim &c = claims[k];
            sim.setGroupPairCap(c.group, src, dst, c.granted);
            fresh[c.group].push_back(pair);
            ++out.installedCaps;
            auto it = out.planningShare.find(c.group);
            it->second =
                std::min(it->second, c.granted / capacity);
        }
    }

    // Retire caps installed in earlier rounds that this round did not
    // renew — the pair went uncontended or the query left it. Both
    // pair lists are ascending (emitted in touched order), so the
    // membership check is a binary search, not a linear scan.
    for (const auto &[group, pairs] : installed_) {
        const auto now = fresh.find(group);
        for (const std::size_t pair : pairs) {
            const bool kept =
                now != fresh.end() &&
                std::binary_search(now->second.begin(),
                                   now->second.end(), pair);
            if (!kept)
                sim.setGroupPairCap(group, pair / topo.dcCount(),
                                    pair % topo.dcCount(), 0.0);
        }
    }
    installed_ = std::move(fresh);
    return out;
}

void
BandwidthAllocator::release(net::NetworkSim &sim,
                            net::FlowGroupId group)
{
    sim.clearGroupAllocations(group);
    installed_.erase(group);
}

} // namespace serve
} // namespace wanify
