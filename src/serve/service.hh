/**
 * @file
 * Resident multi-query WAN-sharing service.
 *
 * The one-shot engine (gda::Engine) gives each query a private
 * simulator and whole links. The service inverts that: one shared
 * NetworkSim mesh, a query queue with admission control, and an online
 * cross-query BandwidthAllocator dividing each contended pair's
 * capacity among the active queries — the deployment shape a WANify
 * control plane actually runs in, where analytics queries arrive
 * continuously and the WAN is the shared resource.
 *
 * Per admitted query the service replays the engine's per-stage
 * semantics — scheduler placement, shuffle transfers, compute phase —
 * but against the shared mesh, tagging every transfer with the query's
 * flow group so the allocator's share caps and weights apply. Planning
 * consumes the shared WANify predictor: each query pins a predictor
 * snapshot at admission (exactly the engine's pinning discipline), and
 * the service can republish a warm-start retrained model every K
 * completions so later admissions plan from fresher trees. Per-query
 * WANify agents and tc throttles are deliberately absent: per-pair
 * throttles are a single-tenant mechanism, and the allocator's
 * per-(group, pair) share caps are their multi-tenant replacement.
 *
 * The loop is virtual-time and epoch-quantized: admission, planning,
 * allocation, straggler checks, and retrains happen on epoch
 * boundaries (or earlier, when every in-flight transfer completes),
 * while the data plane — transfer completions, stage compute ends —
 * is resolved at exact event times by the flow-level simulator.
 * Planning for concurrently admitted queries fans out on the global
 * ThreadPool, but work is assigned by index and transfers start
 * sequentially in query order, so a fixed seed reproduces the
 * aggregate report bit-identically at any WANIFY_THREADS setting.
 */

#ifndef WANIFY_SERVE_SERVICE_HH
#define WANIFY_SERVE_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "core/forecast.hh"
#include "core/wanify.hh"
#include "gda/engine.hh"
#include "gda/job.hh"
#include "gda/scheduler.hh"
#include "ml/dataset.hh"
#include "net/network_sim.hh"
#include "scenario/scenario.hh"
#include "serve/allocator.hh"

namespace wanify {
namespace serve {

/** Placement policy used for every query's stages. */
enum class SchedulerKind
{
    Locality,
    Tetrium,
    Kimchi,
};

/** Service tunables. */
struct ServiceConfig
{
    AllocPolicy policy = AllocPolicy::MaxMinFair;
    SchedulerKind scheduler = SchedulerKind::Tetrium;

    /** Admission control: queries running at once; others queue. */
    std::size_t maxConcurrent = 64;

    /** Control-plane quantum (admission / allocation / stragglers). */
    Seconds epoch = 1.0;

    /** Per-query guard; exceeding it aborts the query (timedOut). */
    Seconds maxQuerySeconds = 4.0 * 3600.0;

    // --- straggler re-dispatch -------------------------------------------

    /**
     * Re-dispatch a transfer still unfinished after stragglerFactor
     * times its planned duration: stop it and restart the remaining
     * bytes with doubled connections. 0 disables.
     */
    double stragglerFactor = 4.0;

    /** Connection cap for re-dispatched transfers. */
    int maxRedispatchConnections = 8;

    /**
     * Re-dispatches allowed per transfer (each doubles connections up
     * to maxRedispatchConnections). The default preserves the
     * historical once-per-transfer behavior; 0 disables re-dispatch
     * even with a positive stragglerFactor.
     */
    std::size_t maxRedispatches = 1;

    // --- fault injection & recovery --------------------------------------

    /**
     * Hard-fault schedule applied to the shared mesh. Unlike the
     * engine's per-transfer retry/backoff, the service recovers at
     * query granularity: a query whose in-flight transfer a fault
     * kills has its run torn down and re-admitted after
     * requeueBackoff. Must be compiled for the service's cluster size
     * and outlive the service. Null (or empty) = fault-free.
     */
    const fault::FaultPlan *faults = nullptr;

    /** Re-admissions granted per fault-killed query before it is
     *  reported failed. */
    std::size_t maxRequeues = 2;

    /** Delay before a fault-killed query re-enters admission. */
    Seconds requeueBackoff = 30.0;

    /**
     * While any DC blackout is active, the admission slot cap shrinks
     * to ceil(maxConcurrent * this), floored at one slot: admitting a
     * full cohort into a degraded mesh only manufactures stragglers
     * and fault kills.
     */
    double blackoutAdmissionFactor = 0.5;

    // --- non-stationary dynamics + forecast-aware planning ---------------

    /**
     * Optional WAN dynamics (scenario timeline or trace replay)
     * applied to the shared mesh at every control-plane step, with
     * its background bursts opened on the mesh as group-0 tenants.
     * Must be compiled for the service's cluster size and outlive
     * the service. Null = stationary mesh.
     */
    const scenario::Dynamics *dynamics = nullptr;

    /**
     * Forecast-aware planning: with enabled set and dynamics
     * attached, every planning round builds a per-query BwForecast
     * (the query's believed matrix scaled by the dynamics' future
     * capacity factors, Current anchor) so placement and straggler
     * budgets integrate across upcoming scenario events, and each
     * query's fraction search warm-starts from its previous plan.
     */
    core::ForecastConfig forecast;

    /**
     * Forecast-aware admission: hold admissions while the mesh-mean
     * forecast capacity is below admissionTrough times the best
     * mesh-mean within the horizon — the upcoming recovery makes
     * "right now" the worst moment to start a query. Each hold is
     * capped at maxAdmissionHold and followed by an equally long
     * cool-off before another hold may begin, so admission delay
     * stays bounded. Needs forecast.enabled and dynamics.
     */
    bool forecastAdmission = false;
    double admissionTrough = 0.6;
    Seconds maxAdmissionHold = 120.0;

    /**
     * Seed each query's a-priori planning wanShare from observed
     * mesh occupancy — its weight against the weights of the queries
     * actually shuffling right now — instead of the defensive 1 / N
     * over every active query. The 1/N floor kept small queries
     * planned so conservatively they went compute-bound, which
     * erased the weighted allocator's differentiation on mixed
     * workloads. The allocator's water-fill still enforces the real
     * shares afterwards.
     */
    bool adaptiveAprioriShare = true;

    // --- online model refresh --------------------------------------------

    /**
     * Every this many completed queries, gauge the live mesh, warm-
     * start retrain the published predictor on the gauged rows, and
     * publish the result (Wanify::retrain's atomic swap) so later
     * admissions pin the fresher model. The gauge runs real
     * measurement flows on the shared mesh — adapting costs the
     * tenants bandwidth, as it would in production. 0 disables.
     */
    std::size_t retrainEveryCompleted = 0;
};

/** One query submitted to the service. */
struct QuerySpec
{
    std::string name;
    gda::JobSpec job;
    std::vector<Bytes> inputByDc;

    /** Virtual arrival time (service time zero = first drain()). */
    Seconds arrival = 0.0;

    /** Priority weight for AllocPolicy::WeightedPriority (> 0). */
    double weight = 1.0;
};

/** Per-query outcome, reported in submission order. */
struct QueryOutcome
{
    std::string name;
    Seconds arrival = 0.0;
    Seconds admitted = 0.0;
    Seconds finished = 0.0;

    /** Admission delay imposed by the concurrency cap. */
    Seconds queueWait = 0.0;

    /** finished - admitted (execution only, queue wait excluded). */
    Seconds latency = 0.0;

    /** Planned WAN bytes plus straggler re-sends. */
    Bytes wanBytes = 0.0;

    /** Worst WAN share the query ever planned a stage with. */
    double minPlanningShare = 1.0;

    std::size_t stages = 0;
    std::size_t redispatches = 0;
    bool timedOut = false;

    /** Times a fault kill sent the query back to admission. */
    std::size_t requeues = 0;

    /** Fault-killed after exhausting maxRequeues (reported failed,
     *  not completed). */
    bool killedByFault = false;
};

/** Aggregate outcome of one drain(). */
struct ServiceReport
{
    std::vector<QueryOutcome> queries;

    std::size_t completed = 0;
    std::size_t timedOut = 0;

    /** Highest concurrent admission level reached. */
    std::size_t peakConcurrent = 0;

    /** Queries that waited in the admission queue. */
    std::size_t queuedAdmissions = 0;

    /** First admission to last finish. */
    Seconds makespan = 0.0;

    /** Completed queries per hour of makespan. */
    double throughputPerHour = 0.0;

    /**
     * Jain fairness index over per-query attained WAN throughput
     * (wanBytes / latency), completed WAN-active queries only:
     * (sum x)^2 / (N * sum x^2), 1 = perfectly even.
     */
    double jainFairness = 0.0;

    std::size_t redispatches = 0;
    std::size_t retrainsPublished = 0;

    /** Queries whose admission a forecast hold deferred. */
    std::size_t forecastHeldAdmissions = 0;

    /** Query runs torn down by fault kills (incl. re-admitted ones). */
    std::size_t faultKills = 0;

    /** Queries re-admitted after a fault kill at least once. */
    std::size_t requeuedQueries = 0;

    /** Queries that exhausted maxRequeues and were reported failed. */
    std::size_t failedQueries = 0;

    /** Sum over allocation rounds of pairs that got share caps. */
    std::size_t cappedPairRounds = 0;

    /**
     * FNV-1a hash over every query's (index, latency, wanBytes,
     * redispatches, stages, timedOut) — the bit-identity witness a
     * fixed seed must reproduce across runs and thread counts.
     */
    std::uint64_t resultHash = 0;
};

class Service
{
  public:
    /**
     * @param wanify Shared facade whose published predictor feeds
     *               planning (null = schedulers believe the raw
     *               effective path capacities). Must outlive the
     *               service; may be shared with other components.
     */
    Service(net::Topology topo, ServiceConfig cfg = {},
            net::NetworkSimConfig simCfg = {},
            const core::Wanify *wanify = nullptr,
            std::uint64_t seed = 1);

    /** Enqueue a query; valid until drain() starts. */
    void submit(QuerySpec spec);

    /** Run the service loop until every submitted query finishes. */
    ServiceReport drain();

    const net::Topology &topology() const { return topo_; }

  private:
    struct ActiveTransfer
    {
        net::DcId src = 0;
        net::DcId dst = 0;
        Bytes bytes = 0.0;
        Seconds started = 0.0;
        Seconds expected = 0.0;
        int connections = 1;

        /** Straggler re-dispatches this transfer already consumed. */
        int redispatches = 0;
    };

    enum class Phase { Queued, Planning, Shuffling, Computing, Done };

    struct QueryState
    {
        std::size_t index = 0;
        QuerySpec spec;
        net::FlowGroupId group = 0;
        Phase phase = Phase::Queued;
        std::size_t stage = 0;
        std::vector<Bytes> stageInput;
        std::shared_ptr<const core::RuntimeBwPredictor> model;
        std::unique_ptr<gda::Scheduler> scheduler;

        /** Outputs of the parallel planning pass. */
        Matrix<Mbps> believedBw;
        Matrix<Bytes> assignment;
        Matrix<int> connections;

        /** Per-query prediction buffers, reused every planning
         *  round (each parallel planning worker owns its query's
         *  scratch, so the fan-out stays race-free). */
        core::PredictScratch predictScratch;

        double share = 1.0;

        /** Per-query forecast of the current planning round. */
        core::BwForecast forecast;

        /** Warm-start memory across this query's plans. */
        gda::PlanMemory planMemory;

        /** Admission deferred by a forecast hold (counted once). */
        bool heldByForecast = false;

        std::map<net::TransferId, ActiveTransfer> pending;
        std::vector<Seconds> transferDone;
        Seconds stageShuffleStart = 0.0;
        Seconds stageEnd = 0.0;

        QueryOutcome outcome;
    };

    /** A fault-killed query waiting out its re-admission backoff. */
    struct PendingRequeue
    {
        std::size_t idx = 0;
        Seconds due = 0.0;
    };

    void applyDynamics();
    void applyFaults();
    std::size_t effectiveSlotCap() const;
    void killQueryRun(QueryState &q, Seconds at);
    void admitQuery(QueryState &q, Seconds now, bool readmission);
    bool admissionHeld();
    double meshMeanFactor(Seconds t) const;
    void admitDueQueries();
    void transitionComputedQueries();
    void planAndLaunch();
    void runAllocationRound();
    void routeCompletions();
    void enterComputePhase(QueryState &q);
    void checkStragglersAndGuards();
    void maybeRetrain();
    void finishQuery(QueryState &q, Seconds at, bool timedOut);
    ServiceReport buildReport() const;

    net::Topology topo_;
    ServiceConfig cfg_;
    const core::Wanify *wanify_;
    net::NetworkSim sim_;
    Rng rng_;
    BandwidthAllocator allocator_;

    std::vector<double> computeRate_; ///< per DC, topology-fixed

    std::vector<QueryState> queries_;   ///< submission order
    std::vector<std::size_t> arrivalOrder_;
    std::size_t nextArrival_ = 0;
    std::vector<std::size_t> active_;   ///< admitted, not Done; sorted
    bool draining_ = false;

    ml::Dataset gaugedRows_;
    std::size_t completedSinceRetrain_ = 0;
    std::size_t retrainsPublished_ = 0;
    std::size_t cappedPairRounds_ = 0;
    std::size_t peakConcurrent_ = 0;
    std::size_t queuedAdmissions_ = 0;

    std::unique_ptr<scenario::BurstCursor> burstCursor_;
    Seconds admissionResumeAt_ = 0.0;
    Seconds holdCooloffUntil_ = 0.0;
    std::size_t forecastHeldAdmissions_ = 0;

    /** Fault-killed queries awaiting re-admission, in due order
     *  (backoff is constant, so appends keep it sorted). */
    std::vector<PendingRequeue> requeue_;
    Seconds faultCursor_ = -1.0;
    std::size_t faultKills_ = 0;
};

} // namespace serve
} // namespace wanify

#endif // WANIFY_SERVE_SERVICE_HH
