#include "serve/workload.hh"

#include <cmath>

#include "common/error.hh"
#include "common/rng.hh"
#include "workloads/tpcds.hh"

namespace wanify {
namespace serve {

std::vector<QuerySpec>
mixedWorkload(const WorkloadConfig &cfg, std::size_t dcCount,
              std::uint64_t seed)
{
    fatalIf(dcCount == 0, "mixedWorkload: empty cluster");
    fatalIf(cfg.heavyFraction < 0.0 || cfg.heavyFraction > 1.0,
            "mixedWorkload: heavyFraction out of range");

    Rng rng(seed ^ 0x5e19e0ULL);
    std::vector<QuerySpec> out;
    out.reserve(cfg.queries);

    const workloads::TpcDsQuery heavies[] = {
        workloads::TpcDsQuery::Q82, workloads::TpcDsQuery::Q95,
        workloads::TpcDsQuery::Q11};

    for (std::size_t i = 0; i < cfg.queries; ++i) {
        QuerySpec q;
        q.arrival = rng.uniform(0.0, cfg.arrivalWindow);
        q.weight = rng.uniform() < cfg.priorityFraction ? 4.0 : 1.0;

        if (rng.uniform() < cfg.heavyFraction) {
            // Heavy analytics job: one of the paper's lighter TPC-DS
            // proxies over a skewed multi-DC input (heaviest where
            // ingest lands, decaying with DC index).
            const auto which = heavies[static_cast<std::size_t>(
                rng.uniformInt(0, 2))];
            q.job = workloads::tpcDsQuery(which, cfg.heavyInputGb);
            q.name = "q" + std::to_string(i) + "-heavy-" +
                     workloads::queryName(which);
            std::vector<double> frac(dcCount, 0.0);
            double sum = 0.0;
            for (std::size_t d = 0; d < dcCount; ++d) {
                frac[d] = std::pow(0.6, static_cast<double>(d));
                sum += frac[d];
            }
            q.inputByDc.assign(dcCount, 0.0);
            for (std::size_t d = 0; d < dcCount; ++d)
                q.inputByDc[d] =
                    q.job.inputBytes * frac[d] / sum;
        } else {
            // Small interactive query: one scan/aggregate stage whose
            // input sits wholly at one DC — at most dcCount - 1
            // shuffle transfers, usually far fewer, which keeps the
            // shared solver's flow count proportional to admitted
            // queries rather than to queries x pairs.
            gda::StageSpec stage;
            stage.name = "scan-agg";
            stage.selectivity = 0.05;
            stage.workPerMb = 0.05;
            q.job.name = "small";
            q.job.stages.push_back(stage);
            q.job.inputBytes = cfg.smallInputGb * 1.0e9;
            q.name = "q" + std::to_string(i) + "-small";
            const std::size_t src = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(dcCount) -
                                   1));
            q.inputByDc.assign(dcCount, 0.0);
            q.inputByDc[src] = q.job.inputBytes;
        }
        out.push_back(std::move(q));
    }
    return out;
}

} // namespace serve
} // namespace wanify
