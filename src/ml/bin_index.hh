/**
 * @file
 * Feature quantization for histogram-mode tree training.
 *
 * A BinIndex maps every (sample, feature) value to one of at most 256
 * bins chosen once per dataset, so histogram split finding scans
 * O(bins) candidates per feature instead of O(samples). The index is
 * immutable and shared across every tree of a forest fit; warm-start
 * retraining extends it with the newly gauged rows against the
 * original bin edges instead of re-binning the whole campaign dataset
 * (the drift-retrain path re-plans while the query is stalled, so
 * skipping the re-bin shortens the stall directly).
 */

#ifndef WANIFY_ML_BIN_INDEX_HH
#define WANIFY_ML_BIN_INDEX_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/dataset.hh"

namespace wanify {
namespace ml {

class BinIndex
{
  public:
    /** Histogram codes are one byte; more bins would not fit. */
    static constexpr std::size_t kMaxBins = 256;

    /**
     * Quantize @p data: per feature, at most @p maxBins bins. When a
     * feature has few distinct values (cluster size N, discrete
     * scenario regimes), every distinct value gets its own bin and
     * the candidate thresholds are exactly the exact-mode midpoints;
     * dense continuous features fall back to quantile edges.
     */
    static std::shared_ptr<const BinIndex>
    build(const Dataset &data, std::size_t maxBins = kMaxBins);

    /**
     * The index extended to @p data, whose first rows() rows must be
     * the rows this index was built from (campaign datasets only ever
     * append). Bin edges are kept; only the new rows are coded, with
     * out-of-range values clamped to the edge bins. Returns a new
     * immutable index — the receiver is shared across predictor
     * snapshots and is never mutated.
     */
    std::shared_ptr<const BinIndex> extended(const Dataset &data) const;

    std::size_t rows() const { return rows_; }
    std::size_t featureCount() const { return featureCount_; }

    /** Bins actually used by @p feature (<= maxBins). */
    std::size_t
    binCount(std::size_t feature) const
    {
        return uppers_[feature].size();
    }

    /** Bin of sample @p row's @p feature value. */
    std::uint8_t
    code(std::size_t row, std::size_t feature) const
    {
        return codes_[row * featureCount_ + feature];
    }

    /**
     * Split threshold between @p bin and @p bin + 1 of @p feature:
     * the midpoint between the largest training value in the left
     * bin group and the smallest in the right, so `x <= threshold`
     * separates the bins exactly as the codes do.
     */
    double
    threshold(std::size_t feature, std::size_t bin) const
    {
        return thresholds_[feature][bin];
    }

    /** Code an arbitrary value against @p feature's edges. */
    std::uint8_t codeValue(std::size_t feature, double value) const;

  private:
    BinIndex() = default;

    std::size_t rows_ = 0;
    std::size_t featureCount_ = 0;

    /** Row-major per-sample codes (rows_ x featureCount_). */
    std::vector<std::uint8_t> codes_;

    /** Per feature: inclusive upper value of each bin. */
    std::vector<std::vector<double>> uppers_;

    /** Per feature: threshold between bins b and b+1 (size B - 1). */
    std::vector<std::vector<double>> thresholds_;
};

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_BIN_INDEX_HH
