#include "ml/compiled_forest.hh"

#include <algorithm>
#include <limits>

#include "common/error.hh"
#include "common/thread_pool.hh"

namespace wanify {
namespace ml {

CompiledForest::CompiledForest(
    const std::vector<DecisionTreeRegressor> &trees)
{
    if (trees.empty())
        return;

    std::size_t totalNodes = 0;
    for (const auto &tree : trees) {
        fatalIf(!tree.trained(),
                "CompiledForest: unfitted tree in ensemble");
        fatalIf(tree.featureCount() != trees.front().featureCount() ||
                    tree.outputCount() != trees.front().outputCount(),
                "CompiledForest: tree shape mismatch");
        totalNodes += tree.nodeCount();
    }

    treeCount_ = trees.size();
    featureCount_ = trees.front().featureCount();
    outputCount_ = trees.front().outputCount();

    // Child references pack (node index, child feature) into 32 bits.
    featShift_ = 0;
    while ((1ull << featShift_) < featureCount_)
        ++featShift_;
    featMask_ = (1u << featShift_) - 1u;
    fatalIf(totalNodes >= (1ull << (32u - featShift_)),
            "CompiledForest: ensemble too large for packed 32-bit "
            "child references");

    nodes_.reserve(totalNodes);
    leafOfs_.reserve(totalNodes);
    rootRef_.reserve(treeCount_);
    depth_.reserve(treeCount_);

    for (const auto &tree : trees) {
        const auto &src = tree.nodes();
        const auto base = static_cast<std::uint32_t>(nodes_.size());

        // ref = (absolute index << featShift_) | node's own feature:
        // a step lands with the next comparison's feature in hand.
        auto packRef = [&](int local) {
            const int feat =
                src[static_cast<std::size_t>(local)].feature;
            return ((base + static_cast<std::uint32_t>(local))
                    << featShift_) |
                   static_cast<std::uint32_t>(feat < 0 ? 0 : feat);
        };

        rootRef_.push_back(packRef(0));
        // Fixed walk length: a leaf at depth d absorbs the remaining
        // steps via its self-loop, so depth() - 1 steps land every
        // row on its leaf.
        depth_.push_back(static_cast<std::int32_t>(tree.depth()) - 1);

        for (std::size_t local = 0; local < src.size(); ++local) {
            const auto &node = src[local];
            PackedNode packed;
            if (node.feature < 0) {
                fatalIf(node.leafValue.size() != outputCount_,
                        "CompiledForest: leaf shape mismatch");
                // Branchless leaf: both children loop back to self,
                // so the walk parks here whichever way the comparison
                // goes — which leaves the threshold field dead. For
                // single-output forests (the production predictor) it
                // carries the leaf value itself, so accumulation
                // reads the node already in cache instead of
                // indirecting through the pooled leaf array.
                packed.threshold =
                    outputCount_ == 1
                        ? node.leafValue.front()
                        : std::numeric_limits<double>::infinity();
                packed.left = packRef(static_cast<int>(local));
                packed.right = packed.left;
                leafOfs_.push_back(
                    static_cast<std::int32_t>(leafValues_.size()));
                leafValues_.insert(leafValues_.end(),
                                   node.leafValue.begin(),
                                   node.leafValue.end());
                ++leafCount_;
            } else {
                packed.threshold = node.threshold;
                packed.left = packRef(node.left);
                packed.right = packRef(node.right);
                leafOfs_.push_back(-1);
            }
            nodes_.push_back(packed);
        }
    }
}

void
CompiledForest::predictInto(const double *x, double *out) const
{
    panicIf(empty(), "CompiledForest::predictInto on empty forest");
    const std::size_t o = outputCount_;
    for (std::size_t k = 0; k < o; ++k)
        out[k] = 0.0;

    // Same accumulation order and arithmetic as the interpreted
    // reference path: per-tree leaf sums in tree order, one divide.
    const PackedNode *nodes = nodes_.data();
    const double *leaves = leafValues_.data();
    const std::uint32_t shift = featShift_;
    const std::uint32_t mask = featMask_;

    for (std::size_t t = 0; t < treeCount_; ++t) {
        std::uint32_t ref = rootRef_[t];
        for (;;) {
            const PackedNode &node = nodes[ref >> shift];
            const auto goLeft = static_cast<std::uint32_t>(
                x[ref & mask] <= node.threshold);
            const std::uint32_t next =
                node.right ^
                ((node.left ^ node.right) & (0u - goLeft));
            if (next == ref)
                break; // leaf self-loop
            ref = next;
        }
        if (o == 1) {
            // Single-output leaf value lives in the parked node.
            out[0] += nodes[ref >> shift].threshold;
        } else {
            const double *leaf = leaves + leafOfs_[ref >> shift];
            for (std::size_t k = 0; k < o; ++k)
                out[k] += leaf[k];
        }
    }
    const double inv = static_cast<double>(treeCount_);
    for (std::size_t k = 0; k < o; ++k)
        out[k] /= inv;
}

void
CompiledForest::predictRange(const double *X, std::size_t begin,
                             std::size_t end, double *Y) const
{
    const std::size_t f = featureCount_;
    const std::size_t o = outputCount_;
    for (std::size_t r = begin; r < end; ++r)
        for (std::size_t k = 0; k < o; ++k)
            Y[r * o + k] = 0.0;

    const PackedNode *nodes = nodes_.data();
    const double *leaves = leafValues_.data();
    const std::uint32_t shift = featShift_;
    const std::uint32_t mask = featMask_;

    // One walk step: land on the node, compare its feature value,
    // take a child reference. The child select is computed with mask
    // arithmetic — a ternary here compiles to a branch that random
    // 50/50 splits mispredict constantly.
    auto step = [&](std::uint32_t ref, const double *xrow) {
        const PackedNode &node = nodes[ref >> shift];
        const double v = xrow[ref & mask];
        const auto goLeft =
            static_cast<std::uint32_t>(v <= node.threshold);
        return node.right ^
               ((node.left ^ node.right) & (0u - goLeft));
    };

    // Walk a lane to its leaf (parks on the leaf's self-loop).
    auto finish = [&](std::uint32_t ref, const double *xrow) {
        for (;;) {
            const std::uint32_t next = step(ref, xrow);
            if (next == ref)
                return ref;
            ref = next;
        }
    };

    // Tree-major, lane-interleaved: walking one tree across a block
    // of eight rows keeps that tree's nodes cache-hot, and stepping
    // eight independent walks per round hides the dependent-load
    // latency a single walk serializes on. The lanes are individual
    // locals (not an array) so they live in registers. The walk runs
    // in two phases: a branch-free lockstep march to the typical
    // leaf depth (self-looping leaves absorb surplus steps), then a
    // per-lane early-exit finish for the few deep lanes, so shallow
    // leaves don't pay for the tree's maximum depth. Each row still
    // accumulates its leaves in tree order and divides once, so the
    // result is bit-identical to predictInto on that row.
    constexpr std::size_t kLanes = 8;
    const std::size_t blockEnd =
        begin + (end - begin) / kLanes * kLanes;

    for (std::size_t t = 0; t < treeCount_; ++t) {
        const std::uint32_t rootRef = rootRef_[t];
        const std::int32_t rounds = depth_[t];
        for (std::size_t r = begin; r < blockEnd; r += kLanes) {
            const double *x0 = X + r * f;
            const double *x1 = x0 + f;
            const double *x2 = x1 + f;
            const double *x3 = x2 + f;
            const double *x4 = x3 + f;
            const double *x5 = x4 + f;
            const double *x6 = x5 + f;
            const double *x7 = x6 + f;
            std::uint32_t r0 = rootRef, r1 = rootRef;
            std::uint32_t r2 = rootRef, r3 = rootRef;
            std::uint32_t r4 = rootRef, r5 = rootRef;
            std::uint32_t r6 = rootRef, r7 = rootRef;
            // Phase 1: lockstep to the typical leaf depth. Lanes
            // whose leaf sits shallower park on its self-loop.
            const std::int32_t lockstep =
                std::min<std::int32_t>(rounds, 9);
            for (std::int32_t d = lockstep; d > 0; --d) {
                r0 = step(r0, x0);
                r1 = step(r1, x1);
                r2 = step(r2, x2);
                r3 = step(r3, x3);
                r4 = step(r4, x4);
                r5 = step(r5, x5);
                r6 = step(r6, x6);
                r7 = step(r7, x7);
            }
            // Phase 2: finish the deep lanes individually instead of
            // marching every lane to the tree's maximum depth.
            if (lockstep < rounds) {
                r0 = finish(r0, x0);
                r1 = finish(r1, x1);
                r2 = finish(r2, x2);
                r3 = finish(r3, x3);
                r4 = finish(r4, x4);
                r5 = finish(r5, x5);
                r6 = finish(r6, x6);
                r7 = finish(r7, x7);
            }
            const std::uint32_t refs[kLanes] = {r0, r1, r2, r3,
                                                r4, r5, r6, r7};
            if (o == 1) {
                // Single-output leaf values live in the parked
                // nodes, already cache-hot from the walk.
                for (std::size_t l = 0; l < kLanes; ++l)
                    Y[r + l] += nodes[refs[l] >> shift].threshold;
            } else {
                for (std::size_t l = 0; l < kLanes; ++l) {
                    const double *leaf =
                        leaves + leafOfs_[refs[l] >> shift];
                    double *y = Y + (r + l) * o;
                    for (std::size_t k = 0; k < o; ++k)
                        y[k] += leaf[k];
                }
            }
        }
    }

    const double inv = static_cast<double>(treeCount_);
    for (std::size_t r = begin; r < blockEnd; ++r)
        for (std::size_t k = 0; k < o; ++k)
            Y[r * o + k] /= inv;

    // Tail rows (fewer than a full lane block): the single-row walk,
    // which is bit-identical by construction.
    for (std::size_t r = blockEnd; r < end; ++r)
        predictInto(X + r * f, Y + r * o);
}

void
CompiledForest::predictBatch(const double *X, std::size_t rows,
                             double *Y, bool parallel) const
{
    panicIf(empty(), "CompiledForest::predictBatch on empty forest");
    if (rows == 0)
        return;

    // Chunked fan-out: each chunk owns a fixed row range and each row
    // a fixed output slot, so scheduling cannot change the result.
    // Chunks are multiples of the 8-row lane block (only the final
    // chunk may carry a sub-block tail, so no chunk boundary forces
    // rows through the slow single-row finish), sized for ~4 per pool
    // thread so an unlucky straggler costs a quarter-chunk of idle
    // time rather than half, with a 64-row floor below which the
    // tree-major walk stops amortizing its node loads. On a 1-thread
    // pool (single-core runners: the committed BENCH_inference
    // baseline's speedup_predict_batch_pool ~= 1.0 is exactly this
    // case) the fan-out is skipped and the batch walks one range.
    ThreadPool &pool = ThreadPool::global();
    const std::size_t threads = pool.threadCount();
    constexpr std::size_t kLaneBlock = 8;
    const std::size_t perChunk =
        (rows + 4 * threads - 1) / (4 * threads);
    const std::size_t chunk = std::max<std::size_t>(
        64, (perChunk + kLaneBlock - 1) / kLaneBlock * kLaneBlock);
    const std::size_t chunks = (rows + chunk - 1) / chunk;
    if (!parallel || threads == 1 || chunks < 2) {
        predictRange(X, 0, rows, Y);
        return;
    }
    pool.parallelFor(chunks, [&](std::size_t c) {
        predictRange(X, c * chunk,
                     std::min(rows, (c + 1) * chunk), Y);
    });
}

} // namespace ml
} // namespace wanify
