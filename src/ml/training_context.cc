#include "ml/training_context.hh"

#include <algorithm>
#include <limits>

#include "common/error.hh"

namespace wanify {
namespace ml {

TrainingContext::TrainingContext(const Dataset &data, SplitMode mode,
                                 std::shared_ptr<const BinIndex> bins)
    : mode_(mode),
      sampleCount_(data.size()),
      featureCount_(data.featureCount()),
      outputCount_(data.outputCount()),
      bins_(std::move(bins))
{
    fatalIf(data.empty(), "TrainingContext: empty dataset");
    fatalIf(sampleCount_ >=
                std::numeric_limits<std::uint32_t>::max(),
            "TrainingContext: dataset too large for 32-bit indices");
    fatalIf(mode_ == SplitMode::histogram &&
                (bins_ == nullptr ||
                 bins_->featureCount() != featureCount_ ||
                 bins_->rows() < sampleCount_),
            "TrainingContext: histogram mode needs a BinIndex "
            "covering the dataset");

    features_.resize(sampleCount_ * featureCount_);
    targets_.resize(sampleCount_ * outputCount_);
    for (std::size_t i = 0; i < sampleCount_; ++i) {
        const auto &x = data.x(i);
        const auto &y = data.y(i);
        for (std::size_t f = 0; f < featureCount_; ++f)
            features_[f * sampleCount_ + i] = x[f];
        for (std::size_t k = 0; k < outputCount_; ++k)
            targets_[i * outputCount_ + k] = y[k];
    }

    if (mode_ != SplitMode::exact)
        return;

    // One argsort per feature, ties broken by sample index — the
    // canonical order every split engine agrees on. Trees derive
    // their bootstrap-bag orderings from these in O(n).
    order_.resize(featureCount_ * sampleCount_);
    for (std::size_t f = 0; f < featureCount_; ++f) {
        std::uint32_t *order = order_.data() + f * sampleCount_;
        for (std::size_t i = 0; i < sampleCount_; ++i)
            order[i] = static_cast<std::uint32_t>(i);
        const double *col = features_.data() + f * sampleCount_;
        std::sort(order, order + sampleCount_,
                  [col](std::uint32_t a, std::uint32_t b) {
                      return col[a] < col[b] ||
                             (col[a] == col[b] && a < b);
                  });
    }
}

TreeScratch &
threadScratch()
{
    thread_local TreeScratch scratch;
    return scratch;
}

} // namespace ml
} // namespace wanify
