/**
 * @file
 * Compiled, allocation-free batched inference for the Random Forest.
 *
 * The interpreted ensemble walks per-tree `Node` structs with embedded
 * leaf vectors and returns a freshly allocated vector per tree per
 * call — fine for training-time OOB accounting, far too heavy for the
 * predict→plan hot path, which evaluates the WAN Prediction Model once
 * per DC pair, per AIMD epoch, per trial (Sections 3.3, 4.1.1: runtime
 * gauging must stay cheap). CompiledForest flattens every tree into
 * contiguous packed arrays — one 16-byte record per node (threshold +
 * both child references, each carrying the child's feature index),
 * plus side arrays for leaf-value offsets into one pooled leaf array —
 * so a prediction is a pure pointer-free array walk: zero allocations,
 * no per-node indirection, cache-friendly, and branch-free on the
 * random 50/50 splits that defeat branch prediction.
 *
 * predictInto() evaluates one feature row; predictBatch() evaluates a
 * row-major matrix of rows, optionally chunked across the process-wide
 * ThreadPool. Every row writes a fixed output slot, so the parallel
 * batch is bit-identical to the sequential one, and both are
 * bit-identical to the interpreted reference path
 * (RandomForestRegressor::predict): trees are accumulated in the same
 * order with the same arithmetic.
 */

#ifndef WANIFY_ML_COMPILED_FOREST_HH
#define WANIFY_ML_COMPILED_FOREST_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ml/decision_tree.hh"

namespace wanify {
namespace ml {

class CompiledForest
{
  public:
    /** An empty compiled forest; predictions panic. */
    CompiledForest() = default;

    /**
     * Flatten @p trees (all fitted, same feature/output shape) into
     * packed form. The compiled forest is an immutable snapshot: it
     * does not observe later refits of the source trees.
     */
    explicit CompiledForest(
        const std::vector<DecisionTreeRegressor> &trees);

    bool empty() const { return treeCount_ == 0; }
    std::size_t treeCount() const { return treeCount_; }
    std::size_t featureCount() const { return featureCount_; }
    std::size_t outputCount() const { return outputCount_; }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t leafCount() const { return leafCount_; }

    /**
     * Ensemble-mean prediction of one feature row. @p x must hold
     * featureCount() values and @p out outputCount() slots; @p out is
     * overwritten. Allocation-free and safe to call concurrently.
     */
    void predictInto(const double *x, double *out) const;

    /**
     * Predict @p rows feature rows from the row-major matrix @p X
     * (rows x featureCount()) into the row-major @p Y (rows x
     * outputCount()). With @p parallel the rows are chunked across the
     * process-wide ThreadPool; each row writes only its own output
     * slot, so the result is bit-identical to the sequential path.
     */
    void predictBatch(const double *X, std::size_t rows, double *Y,
                      bool parallel = true) const;

  private:
    /** Tree-major evaluation of rows [begin, end) into Y. */
    void predictRange(const double *X, std::size_t begin,
                      std::size_t end, double *Y) const;
    /**
     * One packed 16-byte record per node, trees laid out back to
     * back in build order (each tree's root first): the split
     * threshold plus both child references. A child reference packs
     * the child's node index with the *child's own* feature index
     * (childIdx * featureCount + childFeature), so on arriving at a
     * node the walk already knows which feature to compare — one
     * 16-byte load and one feature load per step, no separate
     * feature array on the hot path.
     *
     * Leaves are compiled branchless: both child references point
     * back to the leaf itself, so a lockstep walk can overshoot a
     * shallow leaf safely (the self-loop absorbs surplus steps) and
     * batches walk several rows per tree in lockstep to hide the
     * dependent-load latency. Because the select lands on the leaf
     * whichever way its comparison goes, a leaf's threshold field is
     * dead — single-output forests store the leaf value there, so
     * accumulation never leaves the node array. Multi-output leaves
     * keep threshold = +inf and go through leafOfs_ (cold during the
     * walk), which maps a leaf to its offset into the pooled
     * leafValues_ (-1 for interior nodes).
     */
    struct PackedNode
    {
        double threshold = 0.0;
        std::uint32_t left = 0;
        std::uint32_t right = 0;
    };
    static_assert(sizeof(PackedNode) == 16,
                  "PackedNode must stay a quarter of a cache line");

    std::vector<PackedNode> nodes_;
    std::vector<std::int32_t> leafOfs_;

    /**
     * Per tree: the root's packed reference (rootIdx << featShift_ |
     * rootFeature) and walk steps to the deepest leaf.
     */
    std::vector<std::uint32_t> rootRef_;
    std::vector<std::int32_t> depth_;

    /** All leaf vectors pooled, outputCount_ values per leaf. */
    std::vector<double> leafValues_;

    /** Child-reference packing: ref = (idx << featShift_) | feature. */
    std::uint32_t featShift_ = 0;
    std::uint32_t featMask_ = 0;

    std::size_t treeCount_ = 0;
    std::size_t featureCount_ = 0;
    std::size_t outputCount_ = 0;
    std::size_t leafCount_ = 0;
};

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_COMPILED_FOREST_HH
