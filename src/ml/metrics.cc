#include "ml/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace wanify {
namespace ml {

namespace {

void
checkSizes(const std::vector<double> &truth,
           const std::vector<double> &pred)
{
    fatalIf(truth.size() != pred.size(), "metrics: size mismatch");
    fatalIf(truth.empty(), "metrics: empty input");
}

} // namespace

double
mae(const std::vector<double> &truth, const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double total = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        total += std::abs(truth[i] - pred[i]);
    return total / static_cast<double>(truth.size());
}

double
rmse(const std::vector<double> &truth, const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double total = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double d = truth[i] - pred[i];
        total += d * d;
    }
    return std::sqrt(total / static_cast<double>(truth.size()));
}

double
r2(const std::vector<double> &truth, const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double meanY = 0.0;
    for (double y : truth)
        meanY += y;
    meanY /= static_cast<double>(truth.size());

    double ssRes = 0.0, ssTot = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        ssRes += (truth[i] - pred[i]) * (truth[i] - pred[i]);
        ssTot += (truth[i] - meanY) * (truth[i] - meanY);
    }
    if (ssTot <= 0.0)
        return 0.0;
    return 1.0 - ssRes / ssTot;
}

double
withinAbsolute(const std::vector<double> &truth,
               const std::vector<double> &pred, double threshold)
{
    checkSizes(truth, pred);
    std::size_t hits = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (std::abs(truth[i] - pred[i]) <= threshold)
            ++hits;
    }
    return static_cast<double>(hits) /
           static_cast<double>(truth.size());
}

std::size_t
significantDifferences(const std::vector<double> &truth,
                       const std::vector<double> &pred, double threshold)
{
    checkSizes(truth, pred);
    std::size_t count = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        if (std::abs(truth[i] - pred[i]) > threshold)
            ++count;
    }
    return count;
}

double
relativeAccuracyPct(const std::vector<double> &truth,
                    const std::vector<double> &pred)
{
    checkSizes(truth, pred);
    double totalRelErr = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double denom = std::max(std::abs(truth[i]), 1.0e-9);
        totalRelErr += std::abs(truth[i] - pred[i]) / denom;
    }
    const double meanRelErr =
        totalRelErr / static_cast<double>(truth.size());
    return std::clamp(100.0 * (1.0 - meanRelErr), 0.0, 100.0);
}

} // namespace ml
} // namespace wanify
