/**
 * @file
 * Regression quality metrics.
 *
 * Besides the standard MAE/RMSE/R^2, the suite includes the paper's two
 * operational metrics: the count of "significant" differences (> 100
 * Mbps, the threshold refs [13, 24] use to characterize network
 * performance) and a relative training-accuracy figure comparable to the
 * paper's reported 98.51%.
 */

#ifndef WANIFY_ML_METRICS_HH
#define WANIFY_ML_METRICS_HH

#include <cstddef>
#include <vector>

namespace wanify {
namespace ml {

/** Mean absolute error. */
double mae(const std::vector<double> &truth,
           const std::vector<double> &pred);

/** Root mean squared error. */
double rmse(const std::vector<double> &truth,
            const std::vector<double> &pred);

/** Coefficient of determination; 0 when truth has no variance. */
double r2(const std::vector<double> &truth,
          const std::vector<double> &pred);

/** Fraction of predictions within @p threshold (absolute). */
double withinAbsolute(const std::vector<double> &truth,
                      const std::vector<double> &pred, double threshold);

/** Count of absolute differences strictly above @p threshold. */
std::size_t significantDifferences(const std::vector<double> &truth,
                                   const std::vector<double> &pred,
                                   double threshold = 100.0);

/**
 * Relative accuracy in percent: 100 * (1 - mean(|err| / max(|y|, eps))),
 * clamped to [0, 100]. Comparable to the paper's "98.51% training
 * accuracy".
 */
double relativeAccuracyPct(const std::vector<double> &truth,
                           const std::vector<double> &pred);

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_METRICS_HH
