#include "ml/bin_index.hh"

#include <algorithm>

#include "common/error.hh"

namespace wanify {
namespace ml {

std::uint8_t
BinIndex::codeValue(std::size_t feature, double value) const
{
    const auto &uppers = uppers_[feature];
    // First bin whose inclusive upper edge admits the value;
    // out-of-range values (only possible for rows appended after the
    // edges were fixed) clamp to the last bin.
    const auto it =
        std::lower_bound(uppers.begin(), uppers.end(), value);
    const std::size_t bin =
        it == uppers.end()
            ? uppers.size() - 1
            : static_cast<std::size_t>(it - uppers.begin());
    return static_cast<std::uint8_t>(bin);
}

std::shared_ptr<const BinIndex>
BinIndex::build(const Dataset &data, std::size_t maxBins)
{
    fatalIf(data.empty(), "BinIndex::build: empty dataset");
    fatalIf(maxBins < 2 || maxBins > kMaxBins,
            "BinIndex::build: maxBins must be in [2, 256]");

    const std::size_t n = data.size();
    const std::size_t f = data.featureCount();
    auto index = std::shared_ptr<BinIndex>(new BinIndex());
    index->rows_ = n;
    index->featureCount_ = f;
    index->uppers_.resize(f);
    index->thresholds_.resize(f);

    std::vector<double> sorted(n);
    for (std::size_t feat = 0; feat < f; ++feat) {
        for (std::size_t i = 0; i < n; ++i)
            sorted[i] = data.x(i)[feat];
        std::sort(sorted.begin(), sorted.end());

        // Candidate upper edges: every distinct value when they fit,
        // otherwise the values at evenly spaced sample quantiles
        // (duplicates collapse, so heavy value mass never splits a
        // bin mid-value and codes stay order-consistent).
        auto &uppers = index->uppers_[feat];
        std::size_t distinct = 1;
        for (std::size_t i = 1; i < n; ++i)
            if (sorted[i] > sorted[i - 1])
                ++distinct;
        if (distinct <= maxBins) {
            uppers.reserve(distinct);
            uppers.push_back(sorted[0]);
            for (std::size_t i = 1; i < n; ++i)
                if (sorted[i] > sorted[i - 1])
                    uppers.push_back(sorted[i]);
        } else {
            uppers.reserve(maxBins);
            for (std::size_t b = 1; b <= maxBins; ++b) {
                const std::size_t pos =
                    std::min(n - 1, n * b / maxBins - 1);
                const double v = sorted[pos];
                if (uppers.empty() || v > uppers.back())
                    uppers.push_back(v);
            }
            if (uppers.back() < sorted[n - 1])
                uppers.push_back(sorted[n - 1]);
        }

        // Between-bin thresholds: midpoint between a bin's upper
        // edge and the smallest training value above it, mirroring
        // the exact splitter's between-neighbors convention.
        auto &thresholds = index->thresholds_[feat];
        thresholds.resize(uppers.size() > 0 ? uppers.size() - 1 : 0);
        for (std::size_t b = 0; b + 1 < uppers.size(); ++b) {
            const auto next = std::upper_bound(
                sorted.begin(), sorted.end(), uppers[b]);
            panicIf(next == sorted.end(),
                    "BinIndex: bin edge beyond data range");
            thresholds[b] = 0.5 * (uppers[b] + *next);
        }
    }

    index->codes_.resize(n * f);
    for (std::size_t i = 0; i < n; ++i) {
        const auto &x = data.x(i);
        for (std::size_t feat = 0; feat < f; ++feat)
            index->codes_[i * f + feat] =
                index->codeValue(feat, x[feat]);
    }
    return index;
}

std::shared_ptr<const BinIndex>
BinIndex::extended(const Dataset &data) const
{
    fatalIf(data.featureCount() != featureCount_,
            "BinIndex::extended: feature count mismatch");
    fatalIf(data.size() < rows_,
            "BinIndex::extended: dataset shrank below the binned "
            "prefix (campaign datasets only append)");

    auto next = std::shared_ptr<BinIndex>(new BinIndex(*this));
    const std::size_t f = featureCount_;
    next->codes_.resize(data.size() * f);
    for (std::size_t i = rows_; i < data.size(); ++i) {
        const auto &x = data.x(i);
        for (std::size_t feat = 0; feat < f; ++feat)
            next->codes_[i * f + feat] = codeValue(feat, x[feat]);
    }
    next->rows_ = data.size();
    return next;
}

} // namespace ml
} // namespace wanify
