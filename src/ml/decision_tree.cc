#include "ml/decision_tree.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hh"
#include "ml/training_context.hh"

namespace wanify {
namespace ml {

/**
 * Grows one tree against a shared TrainingContext (exact or histogram
 * mode). A node is a contiguous range [lo, hi) of the scratch arrays:
 * `members` holds the node's samples in bootstrap-bag order (the
 * canonical accumulation order for node sums and leaf means, matching
 * the nodeSort reference's inherited order), and in exact mode
 * `sorted` holds one bag ordering per feature — derived once per tree
 * from the context's dataset argsort — partitioned alongside the
 * members, so no node ever sorts anything.
 */
struct TreeGrower
{
    DecisionTreeRegressor &tree;
    const TrainingContext &ctx;
    TreeScratch &s;
    Rng &rng;
    std::size_t bagSize = 0;

    using SplitResult = DecisionTreeRegressor::SplitResult;

    void
    grow(const std::vector<std::size_t> &bag)
    {
        bagSize = bag.size();
        const std::size_t n = ctx.sampleCount();
        s.members.resize(bagSize);
        for (std::size_t i = 0; i < bagSize; ++i) {
            fatalIf(bag[i] >= n,
                    "DecisionTree: sample index out of range");
            s.members[i] = static_cast<std::uint32_t>(bag[i]);
        }

        if (ctx.mode() == SplitMode::exact) {
            // Per-feature bag orderings in the canonical (value,
            // sample index) order, derived in O(n) per feature from
            // the context's shared argsort: emit each dataset sample
            // as many times as the bag drew it. Duplicates of one
            // sample are interchangeable (identical feature and
            // target values), so this order is FP-equivalent to
            // stably sorting the bag itself.
            s.bagCount.assign(n, 0);
            for (std::uint32_t id : s.members)
                ++s.bagCount[id];
            const std::size_t f = ctx.featureCount();
            s.sorted.resize(f * bagSize);
            for (std::size_t feat = 0; feat < f; ++feat) {
                const std::uint32_t *order = ctx.order(feat);
                std::uint32_t *out = s.sorted.data() + feat * bagSize;
                std::size_t w = 0;
                for (std::size_t i = 0; i < n; ++i) {
                    const std::uint32_t id = order[i];
                    for (std::uint32_t c = s.bagCount[id]; c > 0; --c)
                        out[w++] = id;
                }
                panicIf(w != bagSize,
                        "DecisionTree: bag ordering size mismatch");
            }
        }

        if (s.histDirty) {
            // A previous scan unwound mid-flight (exception): restore
            // the all-zero invariant before trusting the accumulators.
            std::fill(s.histCount.begin(), s.histCount.end(), 0);
            std::fill(s.histSum.begin(), s.histSum.end(), 0.0);
            std::fill(s.histSumSq.begin(), s.histSumSq.end(), 0.0);
            s.histDirty = false;
        }

        s.spill.resize(bagSize);
        build(0, bagSize, 0);
    }

    /** Node sums over members (bag order) -> parent SSE. */
    double
    parentSums(std::size_t lo, std::size_t hi)
    {
        const std::size_t o = ctx.outputCount();
        s.sum.assign(o, 0.0);
        s.sumSq.assign(o, 0.0);
        for (std::size_t pos = lo; pos < hi; ++pos) {
            const double *y = ctx.y(s.members[pos]);
            for (std::size_t k = 0; k < o; ++k) {
                s.sum[k] += y[k];
                s.sumSq[k] += y[k] * y[k];
            }
        }
        double parentSse = 0.0;
        const auto n = static_cast<double>(hi - lo);
        for (std::size_t k = 0; k < o; ++k)
            parentSse += s.sumSq[k] - s.sum[k] * s.sum[k] / n;
        return parentSse;
    }

    /** Candidate features into s.features (same draws as nodeSort). */
    void
    candidateFeatures()
    {
        const std::size_t f = ctx.featureCount();
        const std::size_t maxF = tree.config_.maxFeatures;
        if (maxF == 0 || maxF >= f) {
            s.features.resize(f);
            for (std::size_t i = 0; i < f; ++i)
                s.features[i] = i;
        } else {
            rng.sampleWithoutReplacementInto(f, maxF, s.features);
        }
    }

    SplitResult
    bestSplitExact(std::size_t lo, std::size_t hi)
    {
        SplitResult best;
        const std::size_t n = hi - lo;
        if (n < tree.config_.minSamplesSplit)
            return best;
        const std::size_t o = ctx.outputCount();

        const double parentSse = parentSums(lo, hi);
        if (parentSse <= 1.0e-12)
            return best; // pure node

        candidateFeatures();
        s.leftSum.resize(o);
        s.leftSumSq.resize(o);

        for (std::size_t f : s.features) {
            const std::uint32_t *ord =
                s.sorted.data() + f * bagSize + lo;
            std::fill(s.leftSum.begin(), s.leftSum.end(), 0.0);
            std::fill(s.leftSumSq.begin(), s.leftSumSq.end(), 0.0);

            for (std::size_t pos = 0; pos + 1 < n; ++pos) {
                const std::uint32_t id = ord[pos];
                const double *y = ctx.y(id);
                for (std::size_t k = 0; k < o; ++k) {
                    s.leftSum[k] += y[k];
                    s.leftSumSq[k] += y[k] * y[k];
                }
                const double xHere = ctx.x(id, f);
                const double xNext = ctx.x(ord[pos + 1], f);
                if (xNext <= xHere)
                    continue; // ties: no threshold between equals

                const std::size_t nl = pos + 1;
                const std::size_t nr = n - nl;
                if (nl < tree.config_.minSamplesLeaf ||
                    nr < tree.config_.minSamplesLeaf)
                    continue;

                double childSse = 0.0;
                for (std::size_t k = 0; k < o; ++k) {
                    const double rs = s.sum[k] - s.leftSum[k];
                    const double rss = s.sumSq[k] - s.leftSumSq[k];
                    childSse += s.leftSumSq[k] -
                                s.leftSum[k] * s.leftSum[k] /
                                    static_cast<double>(nl);
                    childSse +=
                        rss - rs * rs / static_cast<double>(nr);
                }
                const double gain = parentSse - childSse;
                if (gain > best.gain + 1.0e-12) {
                    best.found = true;
                    best.feature = f;
                    best.threshold = 0.5 * (xHere + xNext);
                    best.gain = gain;
                }
            }
        }
        return best;
    }

    SplitResult
    bestSplitHistogram(std::size_t lo, std::size_t hi)
    {
        SplitResult best;
        const std::size_t n = hi - lo;
        if (n < tree.config_.minSamplesSplit)
            return best;
        const std::size_t o = ctx.outputCount();

        const double parentSse = parentSums(lo, hi);
        if (parentSse <= 1.0e-12)
            return best; // pure node

        candidateFeatures();
        s.leftSum.resize(o);
        s.leftSumSq.resize(o);
        const BinIndex &bins = *ctx.bins();

        for (std::size_t f : s.features) {
            const std::size_t B = bins.binCount(f);
            if (B < 2)
                continue; // constant feature

            // Grow (never shrink) the accumulators; fresh entries are
            // value-initialized to zero, matching the invariant.
            if (s.histCount.size() < B)
                s.histCount.resize(B, 0);
            if (s.histSum.size() < B * o) {
                s.histSum.resize(B * o, 0.0);
                s.histSumSq.resize(B * o, 0.0);
            }

            // Track the touched bin range: deep nodes cover a narrow
            // value band (splits are axis-aligned), so the scan and
            // the cleanup below pay O(touched bins), not O(256).
            std::size_t minB = B, maxB = 0;
            s.histDirty = true;
            for (std::size_t pos = lo; pos < hi; ++pos) {
                const std::uint32_t id = s.members[pos];
                const std::size_t b = bins.code(id, f);
                ++s.histCount[b];
                minB = std::min(minB, b);
                maxB = std::max(maxB, b);
                const double *y = ctx.y(id);
                for (std::size_t k = 0; k < o; ++k) {
                    s.histSum[b * o + k] += y[k];
                    s.histSumSq[b * o + k] += y[k] * y[k];
                }
            }

            if (maxB > minB) {
                std::fill(s.leftSum.begin(), s.leftSum.end(), 0.0);
                std::fill(s.leftSumSq.begin(), s.leftSumSq.end(),
                          0.0);
                std::size_t leftCount = 0;
                // Splits at b >= maxB would leave the right side
                // empty; bins below minB cannot move the sums.
                for (std::size_t b = minB; b < maxB && b + 1 < B;
                     ++b) {
                    leftCount += s.histCount[b];
                    for (std::size_t k = 0; k < o; ++k) {
                        s.leftSum[k] += s.histSum[b * o + k];
                        s.leftSumSq[k] += s.histSumSq[b * o + k];
                    }
                    const std::size_t nl = leftCount;
                    const std::size_t nr = n - nl;
                    if (nl < tree.config_.minSamplesLeaf ||
                        nr < tree.config_.minSamplesLeaf)
                        continue;

                    double childSse = 0.0;
                    for (std::size_t k = 0; k < o; ++k) {
                        const double rs = s.sum[k] - s.leftSum[k];
                        const double rss =
                            s.sumSq[k] - s.leftSumSq[k];
                        childSse += s.leftSumSq[k] -
                                    s.leftSum[k] * s.leftSum[k] /
                                        static_cast<double>(nl);
                        childSse +=
                            rss - rs * rs / static_cast<double>(nr);
                    }
                    const double gain = parentSse - childSse;
                    if (gain > best.gain + 1.0e-12) {
                        best.found = true;
                        best.feature = f;
                        // Predictions branch on the between-bin
                        // midpoint; training partitions by code
                        // (see SplitResult::bin).
                        best.threshold = bins.threshold(f, b);
                        best.gain = gain;
                        best.bin = b;
                    }
                }
            }

            // Restore the all-zero invariant over the touched range.
            const auto clearLo =
                static_cast<std::ptrdiff_t>(minB * o);
            const auto clearHi =
                static_cast<std::ptrdiff_t>((maxB + 1) * o);
            std::fill(s.histCount.begin() +
                          static_cast<std::ptrdiff_t>(minB),
                      s.histCount.begin() +
                          static_cast<std::ptrdiff_t>(maxB + 1),
                      0u);
            std::fill(s.histSum.begin() + clearLo,
                      s.histSum.begin() + clearHi, 0.0);
            std::fill(s.histSumSq.begin() + clearLo,
                      s.histSumSq.begin() + clearHi, 0.0);
            s.histDirty = false;
        }
        return best;
    }

    /**
     * Stable in-place partition of [lo, hi) of @p arr by the split
     * predicate — feature value vs threshold in exact mode, bin code
     * in histogram mode (whose gains were computed from codes) —
     * via the spill buffer; returns the left-side count.
     */
    std::size_t
    partitionRange(std::uint32_t *arr, std::size_t lo, std::size_t hi,
                   const SplitResult &split)
    {
        const bool byCode = ctx.mode() == SplitMode::histogram;
        const BinIndex *bins = ctx.bins();
        std::size_t w = lo, spilled = 0;
        for (std::size_t pos = lo; pos < hi; ++pos) {
            const std::uint32_t id = arr[pos];
            const bool left =
                byCode ? bins->code(id, split.feature) <= split.bin
                       : ctx.x(id, split.feature) <= split.threshold;
            if (left)
                arr[w++] = id;
            else
                s.spill[spilled++] = id;
        }
        std::copy(s.spill.begin(),
                  s.spill.begin() + static_cast<std::ptrdiff_t>(spilled),
                  arr + w);
        return w - lo;
    }

    void
    makeLeaf(std::size_t nodeIdx, std::size_t lo, std::size_t hi)
    {
        const std::size_t o = ctx.outputCount();
        std::vector<double> mean(o, 0.0);
        for (std::size_t pos = lo; pos < hi; ++pos) {
            const double *y = ctx.y(s.members[pos]);
            for (std::size_t k = 0; k < o; ++k)
                mean[k] += y[k];
        }
        const auto n = static_cast<double>(hi - lo);
        for (auto &m : mean)
            m /= n;
        tree.nodes_[nodeIdx].leafValue = std::move(mean);
    }

    int
    build(std::size_t lo, std::size_t hi, std::size_t depth)
    {
        const int nodeIdx = static_cast<int>(tree.nodes_.size());
        tree.nodes_.emplace_back();

        SplitResult split;
        if (depth < tree.config_.maxDepth) {
            split = ctx.mode() == SplitMode::exact
                        ? bestSplitExact(lo, hi)
                        : bestSplitHistogram(lo, hi);
        }

        if (!split.found) {
            makeLeaf(static_cast<std::size_t>(nodeIdx), lo, hi);
            return nodeIdx;
        }

        tree.featureGains_[split.feature] += split.gain;

        const std::size_t nl =
            partitionRange(s.members.data(), lo, hi, split);
        panicIf(nl == 0 || nl == hi - lo,
                "DecisionTree: degenerate split");
        if (ctx.mode() == SplitMode::exact) {
            // Every per-feature ordering partitions by the same
            // predicate, so children keep one shared [lo, hi) range
            // and stay sorted (stable partition preserves order).
            for (std::size_t f = 0; f < ctx.featureCount(); ++f) {
                const std::size_t got = partitionRange(
                    s.sorted.data() + f * bagSize, lo, hi, split);
                panicIf(got != nl,
                        "DecisionTree: inconsistent partition");
            }
        }

        auto &node = tree.nodes_[static_cast<std::size_t>(nodeIdx)];
        node.feature = static_cast<int>(split.feature);
        node.threshold = split.threshold;
        const int left = build(lo, lo + nl, depth + 1);
        const int right = build(lo + nl, hi, depth + 1);
        tree.nodes_[static_cast<std::size_t>(nodeIdx)].left = left;
        tree.nodes_[static_cast<std::size_t>(nodeIdx)].right = right;
        return nodeIdx;
    }
};

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config)
    : config_(config)
{}

void
DecisionTreeRegressor::fit(const Dataset &data, Rng &rng)
{
    std::vector<std::size_t> all(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        all[i] = i;
    fit(data, all, rng);
}

void
DecisionTreeRegressor::fit(const Dataset &data,
                           const std::vector<std::size_t> &sampleIndices,
                           Rng &rng)
{
    fatalIf(data.empty(), "DecisionTreeRegressor::fit: empty dataset");
    fatalIf(sampleIndices.empty(),
            "DecisionTreeRegressor::fit: no sample indices");

    if (config_.splitMode == SplitMode::nodeSort) {
        featureCount_ = data.featureCount();
        outputCount_ = data.outputCount();
        nodes_.clear();
        featureGains_.assign(featureCount_, 0.0);
        std::vector<std::size_t> indices = sampleIndices;
        buildNodeSort(data, indices, 0, rng);
        return;
    }

    // Standalone fit: build a private context. Forests build one
    // shared context per grow batch and use the overload directly.
    const TrainingContext ctx(
        data, config_.splitMode,
        config_.splitMode == SplitMode::histogram
            ? BinIndex::build(data)
            : nullptr);
    fit(ctx, sampleIndices, rng);
}

void
DecisionTreeRegressor::fit(const TrainingContext &ctx,
                           const std::vector<std::size_t> &sampleIndices,
                           Rng &rng)
{
    fatalIf(sampleIndices.empty(),
            "DecisionTreeRegressor::fit: no sample indices");
    fatalIf(ctx.mode() != config_.splitMode,
            "DecisionTreeRegressor::fit: context mode mismatch");
    featureCount_ = ctx.featureCount();
    outputCount_ = ctx.outputCount();
    nodes_.clear();
    featureGains_.assign(featureCount_, 0.0);

    TreeGrower grower{*this, ctx, threadScratch(), rng, 0};
    grower.grow(sampleIndices);
}

std::vector<double>
DecisionTreeRegressor::meanTarget(
    const Dataset &data, const std::vector<std::size_t> &indices) const
{
    std::vector<double> mean(outputCount_, 0.0);
    for (std::size_t i : indices) {
        const auto &y = data.y(i);
        for (std::size_t k = 0; k < outputCount_; ++k)
            mean[k] += y[k];
    }
    for (auto &m : mean)
        m /= static_cast<double>(indices.size());
    return mean;
}

DecisionTreeRegressor::SplitResult
DecisionTreeRegressor::bestSplitNodeSort(
    const Dataset &data, const std::vector<std::size_t> &indices,
    Rng &rng) const
{
    SplitResult best;
    const std::size_t n = indices.size();
    if (n < config_.minSamplesSplit)
        return best;

    // Parent SSE via sum and sum of squares, per output.
    std::vector<double> sum(outputCount_, 0.0);
    std::vector<double> sumSq(outputCount_, 0.0);
    for (std::size_t i : indices) {
        const auto &y = data.y(i);
        for (std::size_t k = 0; k < outputCount_; ++k) {
            sum[k] += y[k];
            sumSq[k] += y[k] * y[k];
        }
    }
    double parentSse = 0.0;
    for (std::size_t k = 0; k < outputCount_; ++k) {
        parentSse +=
            sumSq[k] - sum[k] * sum[k] / static_cast<double>(n);
    }
    if (parentSse <= 1.0e-12)
        return best; // pure node

    // Candidate features (all, or a random subset for feature bagging).
    std::vector<std::size_t> features;
    if (config_.maxFeatures == 0 ||
        config_.maxFeatures >= featureCount_) {
        features.resize(featureCount_);
        for (std::size_t f = 0; f < featureCount_; ++f)
            features[f] = f;
    } else {
        features = rng.sampleWithoutReplacement(featureCount_,
                                                config_.maxFeatures);
    }

    std::vector<std::size_t> sorted(indices);
    std::vector<double> leftSum(outputCount_);
    std::vector<double> leftSumSq(outputCount_);

    for (std::size_t f : features) {
        // Canonical order: feature value, ties by sample index —
        // the same total order the presorted exact engine inherits
        // from the dataset argsort, so the two engines accumulate
        // identical floating-point sums.
        std::sort(sorted.begin(), sorted.end(),
                  [&](std::size_t a, std::size_t b) {
                      const double xa = data.x(a)[f];
                      const double xb = data.x(b)[f];
                      return xa < xb || (xa == xb && a < b);
                  });
        std::fill(leftSum.begin(), leftSum.end(), 0.0);
        std::fill(leftSumSq.begin(), leftSumSq.end(), 0.0);

        for (std::size_t pos = 0; pos + 1 < n; ++pos) {
            const auto &y = data.y(sorted[pos]);
            for (std::size_t k = 0; k < outputCount_; ++k) {
                leftSum[k] += y[k];
                leftSumSq[k] += y[k] * y[k];
            }
            const double xHere = data.x(sorted[pos])[f];
            const double xNext = data.x(sorted[pos + 1])[f];
            if (xNext <= xHere)
                continue; // ties: no valid threshold between equal values

            const std::size_t nl = pos + 1;
            const std::size_t nr = n - nl;
            if (nl < config_.minSamplesLeaf ||
                nr < config_.minSamplesLeaf)
                continue;

            double childSse = 0.0;
            for (std::size_t k = 0; k < outputCount_; ++k) {
                const double rs = sum[k] - leftSum[k];
                const double rss = sumSq[k] - leftSumSq[k];
                childSse += leftSumSq[k] -
                            leftSum[k] * leftSum[k] /
                                static_cast<double>(nl);
                childSse +=
                    rss - rs * rs / static_cast<double>(nr);
            }
            const double gain = parentSse - childSse;
            if (gain > best.gain + 1.0e-12) {
                best.found = true;
                best.feature = f;
                best.threshold = 0.5 * (xHere + xNext);
                best.gain = gain;
            }
        }
    }
    return best;
}

int
DecisionTreeRegressor::buildNodeSort(const Dataset &data,
                                     std::vector<std::size_t> &indices,
                                     std::size_t depth, Rng &rng)
{
    const int nodeIdx = static_cast<int>(nodes_.size());
    nodes_.emplace_back();

    SplitResult split;
    if (depth < config_.maxDepth)
        split = bestSplitNodeSort(data, indices, rng);

    if (!split.found) {
        nodes_[nodeIdx].leafValue = meanTarget(data, indices);
        return nodeIdx;
    }

    featureGains_[split.feature] += split.gain;

    std::vector<std::size_t> left, right;
    left.reserve(indices.size());
    right.reserve(indices.size());
    for (std::size_t i : indices) {
        if (data.x(i)[split.feature] <= split.threshold)
            left.push_back(i);
        else
            right.push_back(i);
    }
    panicIf(left.empty() || right.empty(),
            "DecisionTree: degenerate split");

    indices.clear();
    indices.shrink_to_fit();

    nodes_[nodeIdx].feature = static_cast<int>(split.feature);
    nodes_[nodeIdx].threshold = split.threshold;
    nodes_[nodeIdx].left = buildNodeSort(data, left, depth + 1, rng);
    nodes_[nodeIdx].right = buildNodeSort(data, right, depth + 1, rng);
    return nodeIdx;
}

const std::vector<double> &
DecisionTreeRegressor::predict(const std::vector<double> &x) const
{
    panicIf(nodes_.empty(), "DecisionTree::predict before fit");
    fatalIf(x.size() != featureCount_,
            "DecisionTree::predict: feature count mismatch");
    int idx = 0;
    while (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        idx = x[static_cast<std::size_t>(node.feature)] <= node.threshold
                  ? node.left
                  : node.right;
    }
    return nodes_[static_cast<std::size_t>(idx)].leafValue;
}

double
DecisionTreeRegressor::predictScalar(const std::vector<double> &x) const
{
    const auto &y = predict(x);
    panicIf(y.size() != 1, "predictScalar on multi-output tree");
    return y[0];
}

std::size_t
DecisionTreeRegressor::depth() const
{
    if (nodes_.empty())
        return 0;
    // Iterative depth computation over the node array.
    std::function<std::size_t(int)> walk = [&](int idx) -> std::size_t {
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        if (node.feature < 0)
            return 1;
        return 1 + std::max(walk(node.left), walk(node.right));
    };
    return walk(0);
}

} // namespace ml
} // namespace wanify
