#include "ml/decision_tree.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hh"

namespace wanify {
namespace ml {

DecisionTreeRegressor::DecisionTreeRegressor(TreeConfig config)
    : config_(config)
{}

void
DecisionTreeRegressor::fit(const Dataset &data, Rng &rng)
{
    std::vector<std::size_t> all(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        all[i] = i;
    fit(data, all, rng);
}

void
DecisionTreeRegressor::fit(const Dataset &data,
                           const std::vector<std::size_t> &sampleIndices,
                           Rng &rng)
{
    fatalIf(data.empty(), "DecisionTreeRegressor::fit: empty dataset");
    fatalIf(sampleIndices.empty(),
            "DecisionTreeRegressor::fit: no sample indices");
    featureCount_ = data.featureCount();
    outputCount_ = data.outputCount();
    nodes_.clear();
    featureGains_.assign(featureCount_, 0.0);

    std::vector<std::size_t> indices = sampleIndices;
    build(data, indices, 0, rng);
}

std::vector<double>
DecisionTreeRegressor::meanTarget(
    const Dataset &data, const std::vector<std::size_t> &indices) const
{
    std::vector<double> mean(outputCount_, 0.0);
    for (std::size_t i : indices) {
        const auto &y = data.y(i);
        for (std::size_t k = 0; k < outputCount_; ++k)
            mean[k] += y[k];
    }
    for (auto &m : mean)
        m /= static_cast<double>(indices.size());
    return mean;
}

DecisionTreeRegressor::SplitResult
DecisionTreeRegressor::bestSplit(const Dataset &data,
                                 const std::vector<std::size_t> &indices,
                                 Rng &rng) const
{
    SplitResult best;
    const std::size_t n = indices.size();
    if (n < config_.minSamplesSplit)
        return best;

    // Parent SSE via sum and sum of squares, per output.
    std::vector<double> sum(outputCount_, 0.0);
    std::vector<double> sumSq(outputCount_, 0.0);
    for (std::size_t i : indices) {
        const auto &y = data.y(i);
        for (std::size_t k = 0; k < outputCount_; ++k) {
            sum[k] += y[k];
            sumSq[k] += y[k] * y[k];
        }
    }
    double parentSse = 0.0;
    for (std::size_t k = 0; k < outputCount_; ++k) {
        parentSse +=
            sumSq[k] - sum[k] * sum[k] / static_cast<double>(n);
    }
    if (parentSse <= 1.0e-12)
        return best; // pure node

    // Candidate features (all, or a random subset for feature bagging).
    std::vector<std::size_t> features;
    if (config_.maxFeatures == 0 ||
        config_.maxFeatures >= featureCount_) {
        features.resize(featureCount_);
        for (std::size_t f = 0; f < featureCount_; ++f)
            features[f] = f;
    } else {
        features = rng.sampleWithoutReplacement(featureCount_,
                                                config_.maxFeatures);
    }

    std::vector<std::size_t> sorted(indices);
    std::vector<double> leftSum(outputCount_);
    std::vector<double> leftSumSq(outputCount_);

    for (std::size_t f : features) {
        std::sort(sorted.begin(), sorted.end(),
                  [&](std::size_t a, std::size_t b) {
                      return data.x(a)[f] < data.x(b)[f];
                  });
        std::fill(leftSum.begin(), leftSum.end(), 0.0);
        std::fill(leftSumSq.begin(), leftSumSq.end(), 0.0);

        for (std::size_t pos = 0; pos + 1 < n; ++pos) {
            const auto &y = data.y(sorted[pos]);
            for (std::size_t k = 0; k < outputCount_; ++k) {
                leftSum[k] += y[k];
                leftSumSq[k] += y[k] * y[k];
            }
            const double xHere = data.x(sorted[pos])[f];
            const double xNext = data.x(sorted[pos + 1])[f];
            if (xNext <= xHere)
                continue; // ties: no valid threshold between equal values

            const std::size_t nl = pos + 1;
            const std::size_t nr = n - nl;
            if (nl < config_.minSamplesLeaf ||
                nr < config_.minSamplesLeaf)
                continue;

            double childSse = 0.0;
            for (std::size_t k = 0; k < outputCount_; ++k) {
                const double rs = sum[k] - leftSum[k];
                const double rss = sumSq[k] - leftSumSq[k];
                childSse += leftSumSq[k] -
                            leftSum[k] * leftSum[k] /
                                static_cast<double>(nl);
                childSse +=
                    rss - rs * rs / static_cast<double>(nr);
            }
            const double gain = parentSse - childSse;
            if (gain > best.gain + 1.0e-12) {
                best.found = true;
                best.feature = f;
                best.threshold = 0.5 * (xHere + xNext);
                best.gain = gain;
            }
        }
    }
    return best;
}

int
DecisionTreeRegressor::build(const Dataset &data,
                             std::vector<std::size_t> &indices,
                             std::size_t depth, Rng &rng)
{
    const int nodeIdx = static_cast<int>(nodes_.size());
    nodes_.emplace_back();

    SplitResult split;
    if (depth < config_.maxDepth)
        split = bestSplit(data, indices, rng);

    if (!split.found) {
        nodes_[nodeIdx].leafValue = meanTarget(data, indices);
        return nodeIdx;
    }

    featureGains_[split.feature] += split.gain;

    std::vector<std::size_t> left, right;
    left.reserve(indices.size());
    right.reserve(indices.size());
    for (std::size_t i : indices) {
        if (data.x(i)[split.feature] <= split.threshold)
            left.push_back(i);
        else
            right.push_back(i);
    }
    panicIf(left.empty() || right.empty(),
            "DecisionTree: degenerate split");

    indices.clear();
    indices.shrink_to_fit();

    nodes_[nodeIdx].feature = static_cast<int>(split.feature);
    nodes_[nodeIdx].threshold = split.threshold;
    nodes_[nodeIdx].left = build(data, left, depth + 1, rng);
    nodes_[nodeIdx].right = build(data, right, depth + 1, rng);
    return nodeIdx;
}

const std::vector<double> &
DecisionTreeRegressor::predict(const std::vector<double> &x) const
{
    panicIf(nodes_.empty(), "DecisionTree::predict before fit");
    fatalIf(x.size() != featureCount_,
            "DecisionTree::predict: feature count mismatch");
    int idx = 0;
    while (nodes_[static_cast<std::size_t>(idx)].feature >= 0) {
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        idx = x[static_cast<std::size_t>(node.feature)] <= node.threshold
                  ? node.left
                  : node.right;
    }
    return nodes_[static_cast<std::size_t>(idx)].leafValue;
}

double
DecisionTreeRegressor::predictScalar(const std::vector<double> &x) const
{
    const auto &y = predict(x);
    panicIf(y.size() != 1, "predictScalar on multi-output tree");
    return y[0];
}

std::size_t
DecisionTreeRegressor::depth() const
{
    if (nodes_.empty())
        return 0;
    // Iterative depth computation over the node array.
    std::function<std::size_t(int)> walk = [&](int idx) -> std::size_t {
        const Node &node = nodes_[static_cast<std::size_t>(idx)];
        if (node.feature < 0)
            return 1;
        return 1 + std::max(walk(node.left), walk(node.right));
    };
    return walk(0);
}

} // namespace ml
} // namespace wanify
