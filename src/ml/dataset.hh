/**
 * @file
 * Feature/target dataset container for the regression stack.
 *
 * Samples are rows; features and targets are stored densely. Targets are
 * multi-output capable (the runtime-BW problem is multivariate, Section
 * 3.1) though the production predictor uses one output per DC pair.
 */

#ifndef WANIFY_ML_DATASET_HH
#define WANIFY_ML_DATASET_HH

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.hh"

namespace wanify {
namespace ml {

class Dataset
{
  public:
    Dataset() = default;

    /** Create an empty dataset with fixed dimensionality. */
    Dataset(std::size_t featureCount, std::size_t outputCount);

    /** Append one sample; sizes must match the dataset's shape. */
    void add(std::vector<double> features, std::vector<double> targets);

    /** Convenience for single-output problems. */
    void add(std::vector<double> features, double target);

    std::size_t size() const { return features_.size(); }
    std::size_t featureCount() const { return featureCount_; }
    std::size_t outputCount() const { return outputCount_; }
    bool empty() const { return features_.empty(); }

    const std::vector<double> &x(std::size_t i) const;
    const std::vector<double> &y(std::size_t i) const;

    /** Single-output shortcut: y(i)[0]. */
    double target(std::size_t i) const;

    /** Append all samples of another dataset (shapes must match). */
    void append(const Dataset &other);

    /** Random split into (train, test) with trainFraction in (0, 1). */
    std::pair<Dataset, Dataset> split(double trainFraction,
                                      Rng &rng) const;

    /** Dataset restricted to the given sample indices. */
    Dataset subset(const std::vector<std::size_t> &indices) const;

  private:
    std::size_t featureCount_ = 0;
    std::size_t outputCount_ = 0;
    std::vector<std::vector<double>> features_;
    std::vector<std::vector<double>> targets_;
};

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_DATASET_HH
