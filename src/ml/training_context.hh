/**
 * @file
 * Shared per-fit state for fast tree training.
 *
 * The legacy splitter re-sorted the node's whole index set for every
 * candidate feature at every node — O(nodes * features * n log n) —
 * and chased the Dataset's row-major vector-of-vectors for each read.
 * A TrainingContext is built once per fit and shared (immutably)
 * across every tree of the forest: it columnizes the features,
 * flattens the targets, and precomputes one argsort per feature
 * (exact mode) or carries the dataset's BinIndex (histogram mode).
 * Trees then derive their bootstrap-bag orderings from the shared
 * argsort in O(n) and partition them down the tree instead of
 * re-sorting per node.
 *
 * TreeScratch holds every per-node buffer a grower needs (index
 * arrays, running sums, histograms, candidate-feature lists), pooled
 * per thread and reused across nodes, trees, and fits, so steady-state
 * training allocates nothing per node.
 */

#ifndef WANIFY_ML_TRAINING_CONTEXT_HH
#define WANIFY_ML_TRAINING_CONTEXT_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "ml/bin_index.hh"
#include "ml/dataset.hh"
#include "ml/decision_tree.hh"

namespace wanify {
namespace ml {

class TrainingContext
{
  public:
    /**
     * Columnize @p data for @p mode. @p bins is required for
     * histogram mode (built against this dataset or an extension of
     * the dataset it was built from) and ignored otherwise. The
     * context only reads @p data during construction.
     */
    TrainingContext(const Dataset &data, SplitMode mode,
                    std::shared_ptr<const BinIndex> bins = nullptr);

    SplitMode mode() const { return mode_; }
    std::size_t sampleCount() const { return sampleCount_; }
    std::size_t featureCount() const { return featureCount_; }
    std::size_t outputCount() const { return outputCount_; }

    /** Feature @p f of sample @p i (column-major storage). */
    double
    x(std::size_t i, std::size_t f) const
    {
        return features_[f * sampleCount_ + i];
    }

    /** Target row of sample @p i (outputCount() values). */
    const double *
    y(std::size_t i) const
    {
        return targets_.data() + i * outputCount_;
    }

    /**
     * Exact mode: sample indices sorted by (feature value, sample
     * index) — the canonical tie order every split engine follows.
     */
    const std::uint32_t *
    order(std::size_t f) const
    {
        return order_.data() + f * sampleCount_;
    }

    /** Histogram mode's bin index (null in other modes). */
    const BinIndex *bins() const { return bins_.get(); }

  private:
    SplitMode mode_;
    std::size_t sampleCount_ = 0;
    std::size_t featureCount_ = 0;
    std::size_t outputCount_ = 0;
    std::vector<double> features_; // column-major
    std::vector<double> targets_;  // row-major
    std::vector<std::uint32_t> order_;
    std::shared_ptr<const BinIndex> bins_;
};

/**
 * Per-thread grower scratch: every buffer is resized (never shrunk)
 * on use, so repeated fits on a pool worker stop allocating once the
 * buffers reach steady state. Obtain via threadScratch().
 */
struct TreeScratch
{
    /** Bag multiplicity per dataset sample (exact-mode derivation). */
    std::vector<std::uint32_t> bagCount;

    /** Node membership in bag order, partitioned down the tree. */
    std::vector<std::uint32_t> members;

    /** Per-feature bag orderings (featureCount * bagSize, flat). */
    std::vector<std::uint32_t> sorted;

    /** Partition spill buffer (right-side members). */
    std::vector<std::uint32_t> spill;

    /** Candidate feature list of the current node. */
    std::vector<std::size_t> features;

    /** Per-output running sums of the current node and scan. */
    std::vector<double> sum, sumSq, leftSum, leftSumSq;

    /**
     * Histogram accumulators (bins * outputs). Invariant: all-zero
     * between scans — each scan re-zeroes only the bin range it
     * touched, so small deep nodes never pay for 256 bins. histDirty
     * marks a scan abandoned mid-flight (an exception unwound through
     * it); the next tree restores the invariant with a full clear.
     */
    std::vector<std::uint32_t> histCount;
    std::vector<double> histSum, histSumSq;
    bool histDirty = false;
};

/** The calling thread's pooled scratch. */
TreeScratch &threadScratch();

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_TRAINING_CONTEXT_HH
