#include "ml/csv.hh"

#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hh"

namespace wanify {
namespace ml {

void
writeCsv(std::ostream &out, const Dataset &data,
         const std::vector<std::string> &featureNames)
{
    fatalIf(!featureNames.empty() &&
                featureNames.size() != data.featureCount(),
            "writeCsv: feature name count mismatch");

    for (std::size_t f = 0; f < data.featureCount(); ++f) {
        if (f > 0)
            out << ",";
        if (featureNames.empty())
            out << "f" << f;
        else
            out << featureNames[f];
    }
    for (std::size_t k = 0; k < data.outputCount(); ++k)
        out << ",y" << k;
    out << "\n";

    // max_digits10: doubles survive the write/parse round trip
    // exactly — scenario trace replay (scenario/trace.hh) depends on
    // CSV not quantizing multipliers.
    out.precision(std::numeric_limits<double>::max_digits10);
    for (std::size_t i = 0; i < data.size(); ++i) {
        const auto &x = data.x(i);
        const auto &y = data.y(i);
        for (std::size_t f = 0; f < x.size(); ++f) {
            if (f > 0)
                out << ",";
            out << x[f];
        }
        for (double v : y)
            out << "," << v;
        out << "\n";
    }
}

void
writeCsvFile(const std::string &path, const Dataset &data,
             const std::vector<std::string> &featureNames)
{
    std::ofstream out(path);
    fatalIf(!out, "writeCsvFile: cannot open " + path);
    writeCsv(out, data, featureNames);
    fatalIf(!out, "writeCsvFile: write failed for " + path);
}

Dataset
readCsv(std::istream &in)
{
    std::string header;
    fatalIf(!std::getline(in, header), "readCsv: missing header");

    // Columns whose names start with 'y' are targets.
    std::size_t features = 0, targets = 0;
    {
        std::stringstream ss(header);
        std::string name;
        bool inTargets = false;
        while (std::getline(ss, name, ',')) {
            if (!name.empty() && name[0] == 'y') {
                inTargets = true;
                ++targets;
            } else {
                fatalIf(inTargets,
                        "readCsv: feature column after targets");
                ++features;
            }
        }
    }
    fatalIf(features == 0 || targets == 0,
            "readCsv: need at least one feature and target column");

    Dataset data(features, targets);
    std::string line;
    std::size_t lineNo = 1;
    while (std::getline(in, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        std::stringstream ss(line);
        std::string cell;
        std::vector<double> x, y;
        while (std::getline(ss, cell, ',')) {
            try {
                if (x.size() < features)
                    x.push_back(std::stod(cell));
                else
                    y.push_back(std::stod(cell));
            } catch (const std::exception &) {
                fatal("readCsv: bad number at line " +
                      std::to_string(lineNo));
            }
        }
        fatalIf(x.size() != features || y.size() != targets,
                "readCsv: wrong column count at line " +
                    std::to_string(lineNo));
        data.add(std::move(x), std::move(y));
    }
    return data;
}

Dataset
readCsvFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "readCsvFile: cannot open " + path);
    return readCsv(in);
}

} // namespace ml
} // namespace wanify
