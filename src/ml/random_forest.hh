/**
 * @file
 * Bagged Random Forest regressor.
 *
 * The paper's WAN Prediction Model: an ensemble of CART trees trained on
 * bootstrap samples with optional feature subsampling; predictions are
 * ensemble means. The bias-variance trade-off of bagging is what lets
 * the model generalize across the WAN's dynamics (Section 5.8.2). The
 * forest supports warm start — retraining on additional data while
 * keeping already-grown trees — used when Nmax changes (Section 3.3.2)
 * or the drift detector flags the model as out of date (Section 3.3.4).
 */

#ifndef WANIFY_ML_RANDOM_FOREST_HH
#define WANIFY_ML_RANDOM_FOREST_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "ml/bin_index.hh"
#include "ml/compiled_forest.hh"
#include "ml/decision_tree.hh"

namespace wanify {
namespace ml {

/** Forest hyperparameters. */
struct ForestConfig
{
    /** Paper: 100 estimators yielded the best training accuracy. */
    std::size_t nEstimators = 100;

    TreeConfig tree;

    /** Bootstrap sample size as a fraction of the training set. */
    double bootstrapFraction = 1.0;

    /** Draw bootstrap samples with replacement. */
    bool bootstrap = true;

    /**
     * Training parallelism: 0 = grow trees on the process-wide
     * ThreadPool, 1 = grow sequentially on the calling thread, k > 1
     * = at most k threads (a private pool of k - 1 workers plus the
     * caller). Every mode produces bit-identical forests: per-tree
     * seeds are derived up front (splitmix64 from the caller's seed)
     * and each tree is written to its fixed slot.
     */
    std::size_t nThreads = 0;
};

class RandomForestRegressor
{
  public:
    explicit RandomForestRegressor(ForestConfig config = {});

    /**
     * Copies share the (immutable) compiled snapshot; the tree
     * ensemble itself is deep-copied. Needed explicitly because the
     * lazy-compile guard is not copyable.
     */
    RandomForestRegressor(const RandomForestRegressor &other);
    RandomForestRegressor &operator=(const RandomForestRegressor &other);

    /** Train from scratch, replacing any existing trees. */
    void fit(const Dataset &data, std::uint64_t seed);

    /**
     * Warm start: keep existing trees and grow @p extraTrees new ones
     * on @p data (typically the union of old and newly collected
     * samples, which the caller maintains). On an untrained forest
     * this is the initial fit: the extra trees become the whole
     * ensemble and @p data locks in the feature count. extraTrees
     * must be > 0 — a tree-less "retrain" would silently keep
     * reporting the stale model's accuracy. oobR2() afterwards
     * covers the newly grown batch only.
     */
    void warmStart(const Dataset &data, std::size_t extraTrees,
                   std::uint64_t seed);

    /**
     * Ensemble-mean prediction — the interpreted reference path. Hot
     * paths should go through compiled() instead; both produce
     * bit-identical results.
     */
    std::vector<double> predict(const std::vector<double> &x) const;

    /** Single-output shortcut. */
    double predictScalar(const std::vector<double> &x) const;

    /**
     * The compiled inference engine for the current ensemble, built
     * lazily on first use after fit()/warmStart() and invalidated
     * whenever trees regrow. Thread-safe against concurrent readers;
     * the reference stays valid until the next (non-const) refit.
     */
    const CompiledForest &compiled() const;

    bool trained() const { return !trees_.empty(); }
    std::size_t treeCount() const { return trees_.size(); }

    /** The fitted ensemble (reference path; benches emulate legacy
     *  per-call-allocating inference through this view). */
    const std::vector<DecisionTreeRegressor> &trees() const
    {
        return trees_;
    }

    /**
     * Out-of-bag R^2 estimate from the most recent fit()/warmStart()
     * call (samples never drawn by a tree's bootstrap vote on it).
     * Returns NaN when OOB coverage is insufficient.
     */
    double oobR2() const { return oobR2_; }

    /**
     * Histogram mode's shared feature quantization: built once per
     * fit() dataset, shared immutably across all trees and forest
     * copies, and *extended* (never rebuilt) by warmStart() when the
     * training set has only grown — so drift retrains skip re-binning
     * the whole campaign. Null in exact/nodeSort modes.
     */
    const std::shared_ptr<const BinIndex> &binIndex() const
    {
        return bins_;
    }

    /** Normalized impurity feature importances (sums to 1). */
    std::vector<double> featureImportances() const;

    const ForestConfig &config() const { return config_; }

  private:
    void growTrees(const Dataset &data, std::size_t count,
                   std::uint64_t seed);
    void computeOob(const Dataset &data,
                    const std::vector<std::vector<std::size_t>> &bags);
    void invalidateCompiled();

    ForestConfig config_;
    std::vector<DecisionTreeRegressor> trees_;
    std::size_t featureCount_ = 0;
    double oobR2_ = 0.0;

    /** Shared quantization (histogram mode only); immutable. */
    std::shared_ptr<const BinIndex> bins_;

    /**
     * Lazily built compiled snapshot, guarded by compiledMu_. Shared
     * (not deep-copied) across forest copies: a CompiledForest is
     * immutable once built.
     */
    mutable std::shared_ptr<const CompiledForest> compiled_;
    mutable std::mutex compiledMu_;
};

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_RANDOM_FOREST_HH
