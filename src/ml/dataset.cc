#include "ml/dataset.hh"

#include "common/error.hh"

namespace wanify {
namespace ml {

Dataset::Dataset(std::size_t featureCount, std::size_t outputCount)
    : featureCount_(featureCount), outputCount_(outputCount)
{
    fatalIf(featureCount == 0, "Dataset: featureCount must be > 0");
    fatalIf(outputCount == 0, "Dataset: outputCount must be > 0");
}

void
Dataset::add(std::vector<double> features, std::vector<double> targets)
{
    if (featureCount_ == 0 && outputCount_ == 0) {
        featureCount_ = features.size();
        outputCount_ = targets.size();
    }
    fatalIf(features.size() != featureCount_,
            "Dataset::add: feature count mismatch");
    fatalIf(targets.size() != outputCount_,
            "Dataset::add: target count mismatch");
    features_.push_back(std::move(features));
    targets_.push_back(std::move(targets));
}

void
Dataset::add(std::vector<double> features, double target)
{
    add(std::move(features), std::vector<double>{target});
}

const std::vector<double> &
Dataset::x(std::size_t i) const
{
    panicIf(i >= size(), "Dataset::x out of range");
    return features_[i];
}

const std::vector<double> &
Dataset::y(std::size_t i) const
{
    panicIf(i >= size(), "Dataset::y out of range");
    return targets_[i];
}

double
Dataset::target(std::size_t i) const
{
    panicIf(outputCount_ != 1, "Dataset::target needs single output");
    return y(i)[0];
}

void
Dataset::append(const Dataset &other)
{
    fatalIf(other.featureCount_ != featureCount_ ||
                other.outputCount_ != outputCount_,
            "Dataset::append: shape mismatch");
    // Appending is the hot path of incremental campaigns (runtime
    // gauges accrete every drift epoch): reserve once instead of
    // reallocating per row.
    features_.reserve(features_.size() + other.size());
    targets_.reserve(targets_.size() + other.size());
    for (std::size_t i = 0; i < other.size(); ++i)
        add(other.x(i), other.y(i));
}

std::pair<Dataset, Dataset>
Dataset::split(double trainFraction, Rng &rng) const
{
    fatalIf(trainFraction <= 0.0 || trainFraction >= 1.0,
            "Dataset::split: trainFraction must be in (0, 1)");
    std::vector<std::size_t> indices(size());
    for (std::size_t i = 0; i < size(); ++i)
        indices[i] = i;
    rng.shuffle(indices);
    const auto cut = static_cast<std::size_t>(
        trainFraction * static_cast<double>(size()));
    std::vector<std::size_t> trainIdx(indices.begin(),
                                      indices.begin() + cut);
    std::vector<std::size_t> testIdx(indices.begin() + cut,
                                     indices.end());
    return {subset(trainIdx), subset(testIdx)};
}

Dataset
Dataset::subset(const std::vector<std::size_t> &indices) const
{
    Dataset out(featureCount_, outputCount_);
    for (std::size_t i : indices)
        out.add(x(i), y(i));
    return out;
}

} // namespace ml
} // namespace wanify
