#include "ml/random_forest.hh"

#include <cmath>
#include <limits>
#include <optional>

#include "common/error.hh"
#include "common/thread_pool.hh"
#include "ml/training_context.hh"

namespace wanify {
namespace ml {

RandomForestRegressor::RandomForestRegressor(ForestConfig config)
    : config_(config)
{
    fatalIf(config_.nEstimators == 0,
            "RandomForest: nEstimators must be > 0");
    fatalIf(config_.bootstrapFraction <= 0.0 ||
                config_.bootstrapFraction > 1.0,
            "RandomForest: bootstrapFraction must be in (0, 1]");
}

RandomForestRegressor::RandomForestRegressor(
    const RandomForestRegressor &other)
    : config_(other.config_), trees_(other.trees_),
      featureCount_(other.featureCount_), oobR2_(other.oobR2_),
      bins_(other.bins_)
{
    std::lock_guard<std::mutex> lock(other.compiledMu_);
    compiled_ = other.compiled_;
}

RandomForestRegressor &
RandomForestRegressor::operator=(const RandomForestRegressor &other)
{
    if (this == &other)
        return *this;
    config_ = other.config_;
    trees_ = other.trees_;
    featureCount_ = other.featureCount_;
    oobR2_ = other.oobR2_;
    bins_ = other.bins_;
    std::shared_ptr<const CompiledForest> snapshot;
    {
        std::lock_guard<std::mutex> lock(other.compiledMu_);
        snapshot = other.compiled_;
    }
    std::lock_guard<std::mutex> lock(compiledMu_);
    compiled_ = std::move(snapshot);
    return *this;
}

void
RandomForestRegressor::invalidateCompiled()
{
    std::lock_guard<std::mutex> lock(compiledMu_);
    compiled_.reset();
}

const CompiledForest &
RandomForestRegressor::compiled() const
{
    std::lock_guard<std::mutex> lock(compiledMu_);
    if (compiled_ == nullptr)
        compiled_ = std::make_shared<const CompiledForest>(trees_);
    return *compiled_;
}

void
RandomForestRegressor::fit(const Dataset &data, std::uint64_t seed)
{
    fatalIf(data.empty(), "RandomForest::fit: empty dataset");
    trees_.clear();
    invalidateCompiled();
    // A fresh fit is a new campaign: any cached quantization belongs
    // to the previous dataset and is rebuilt by growTrees.
    bins_.reset();
    featureCount_ = data.featureCount();
    growTrees(data, config_.nEstimators, seed);
}

void
RandomForestRegressor::warmStart(const Dataset &data,
                                 std::size_t extraTrees,
                                 std::uint64_t seed)
{
    fatalIf(data.empty(), "RandomForest::warmStart: empty dataset");
    fatalIf(extraTrees == 0, "RandomForest::warmStart: extraTrees == 0");
    if (trees_.empty()) {
        featureCount_ = data.featureCount();
    } else {
        fatalIf(data.featureCount() != featureCount_,
                "RandomForest::warmStart: feature count changed");
    }
    growTrees(data, extraTrees, seed ^ 0xa5a5a5a5a5a5a5a5ULL);
}

namespace {

/**
 * Spot check of the append-only contract behind bin reuse: the rows
 * the index was built from must still code identically. Verifies a
 * deterministic spread of up to 16 rows across the binned prefix
 * (endpoints always included) — O(16 * features * log bins) against
 * a full re-bin's O(rows * features * log bins). Advisory, not a
 * proof: an interior mutation between checked rows that still codes
 * identically can slip through, so callers must honor the
 * append-only contract (BandwidthAnalyzer::absorb does); a mismatch
 * here just downgrades reuse to a rebuild.
 */
bool
binnedPrefixUnchanged(const Dataset &data, const BinIndex &bins)
{
    const std::size_t f = bins.featureCount();
    const std::size_t binned = bins.rows();
    for (std::size_t i = 0; i < 16; ++i) {
        const std::size_t row = i * (binned - 1) / 15;
        const auto &x = data.x(row);
        for (std::size_t feat = 0; feat < f; ++feat)
            if (bins.codeValue(feat, x[feat]) != bins.code(row, feat))
                return false;
    }
    return true;
}

} // namespace

void
RandomForestRegressor::growTrees(const Dataset &data, std::size_t count,
                                 std::uint64_t seed)
{
    const std::size_t n = data.size();
    const auto bagSize = static_cast<std::size_t>(
        std::max(1.0, config_.bootstrapFraction *
                          static_cast<double>(n)));

    // Shared per-batch training state, built once and read-only
    // across the parallel tree tasks: the histogram quantization
    // (reusing — extending, not rebuilding — a cached index when the
    // dataset only grew, the warm-start path of drift retrains) and
    // the TrainingContext carrying the columnized data and the
    // per-feature presort.
    std::shared_ptr<const BinIndex> bins;
    if (config_.tree.splitMode == SplitMode::histogram) {
        if (bins_ != nullptr &&
            bins_->featureCount() == data.featureCount() &&
            data.size() >= bins_->rows() &&
            binnedPrefixUnchanged(data, *bins_)) {
            bins = data.size() == bins_->rows()
                       ? bins_
                       : bins_->extended(data);
        } else {
            bins = BinIndex::build(data);
        }
        bins_ = bins;
    }
    std::optional<TrainingContext> ctx;
    if (config_.tree.splitMode != SplitMode::nodeSort)
        ctx.emplace(data, config_.tree.splitMode, std::move(bins));

    // Per-tree seeds are fixed before any tree grows, and each tree
    // lands in a pre-assigned slot: the trained forest is identical
    // whether the loop below runs sequentially or on the pool.
    const auto treeSeeds = deriveSeeds(seed, count);
    const std::size_t firstNew = trees_.size();
    trees_.resize(firstNew + count, DecisionTreeRegressor(config_.tree));
    std::vector<std::vector<std::size_t>> bags(count);

    auto growOne = [&](std::size_t t) {
        Rng treeRng(treeSeeds[t]);
        std::vector<std::size_t> bag;
        if (config_.bootstrap) {
            bag = treeRng.sampleWithReplacement(n, bagSize);
        } else {
            bag.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                bag[i] = i;
        }
        DecisionTreeRegressor tree(config_.tree);
        if (ctx.has_value())
            tree.fit(*ctx, bag, treeRng);
        else
            tree.fit(data, bag, treeRng);
        trees_[firstNew + t] = std::move(tree);
        bags[t] = std::move(bag);
    };

    try {
        if (config_.nThreads == 0) {
            ThreadPool::global().parallelFor(count, growOne);
        } else if (config_.nThreads == 1) {
            for (std::size_t t = 0; t < count; ++t)
                growOne(t);
        } else {
            ThreadPool local(config_.nThreads);
            local.parallelFor(count, growOne);
        }
    } catch (...) {
        // Drop the whole batch rather than leave unfitted placeholder
        // trees in the ensemble; the forest stays in its prior state.
        trees_.resize(firstNew, DecisionTreeRegressor(config_.tree));
        throw;
    }
    invalidateCompiled();
    computeOob(data, bags);
}

void
RandomForestRegressor::computeOob(
    const Dataset &data,
    const std::vector<std::vector<std::size_t>> &bags)
{
    // OOB over the trees grown in this batch only; single-output path
    // is the production configuration, so OOB handles output 0.
    const std::size_t n = data.size();
    const std::size_t firstNew = trees_.size() - bags.size();

    std::vector<std::vector<bool>> inBag(
        bags.size(), std::vector<bool>(n, false));
    for (std::size_t t = 0; t < bags.size(); ++t)
        for (std::size_t i : bags[t])
            if (i < n)
                inBag[t][i] = true;

    double ssRes = 0.0, ssTot = 0.0, meanY = 0.0;
    std::size_t covered = 0;
    for (std::size_t i = 0; i < n; ++i)
        meanY += data.y(i)[0];
    meanY /= static_cast<double>(n);

    for (std::size_t i = 0; i < n; ++i) {
        double pred = 0.0;
        std::size_t votes = 0;
        for (std::size_t t = 0; t < bags.size(); ++t) {
            if (inBag[t][i])
                continue;
            // const-ref leaf access: no per-vote temporary.
            pred += trees_[firstNew + t].predict(data.x(i)).front();
            ++votes;
        }
        if (votes == 0)
            continue;
        pred /= static_cast<double>(votes);
        const double yi = data.y(i)[0];
        ssRes += (yi - pred) * (yi - pred);
        ssTot += (yi - meanY) * (yi - meanY);
        ++covered;
    }
    if (covered < 2 || ssTot <= 0.0) {
        oobR2_ = std::numeric_limits<double>::quiet_NaN();
        return;
    }
    oobR2_ = 1.0 - ssRes / ssTot;
}

std::vector<double>
RandomForestRegressor::predict(const std::vector<double> &x) const
{
    panicIf(trees_.empty(), "RandomForest::predict before fit");
    std::vector<double> mean;
    for (const auto &tree : trees_) {
        const auto &y = tree.predict(x);
        if (mean.empty())
            mean.assign(y.size(), 0.0);
        for (std::size_t k = 0; k < y.size(); ++k)
            mean[k] += y[k];
    }
    for (auto &m : mean)
        m /= static_cast<double>(trees_.size());
    return mean;
}

double
RandomForestRegressor::predictScalar(const std::vector<double> &x) const
{
    const auto y = predict(x);
    panicIf(y.size() != 1, "predictScalar on multi-output forest");
    return y[0];
}

std::vector<double>
RandomForestRegressor::featureImportances() const
{
    std::vector<double> gains(featureCount_, 0.0);
    for (const auto &tree : trees_) {
        const auto &treeGains = tree.featureGains();
        for (std::size_t f = 0; f < featureCount_; ++f)
            gains[f] += treeGains[f];
    }
    double total = 0.0;
    for (double g : gains)
        total += g;
    if (total > 0.0) {
        for (auto &g : gains)
            g /= total;
    }
    return gains;
}

} // namespace ml
} // namespace wanify
