/**
 * @file
 * CART regression tree with multi-output leaves.
 *
 * Splits minimize the summed (over outputs) within-node sum of squared
 * errors; leaves predict the mean target vector of their training
 * samples. Trees are robust to the outliers that plague parametric
 * regressions on WAN bandwidth data (Section 3.1's motivation for
 * tree-based learners).
 */

#ifndef WANIFY_ML_DECISION_TREE_HH
#define WANIFY_ML_DECISION_TREE_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "ml/dataset.hh"

namespace wanify {
namespace ml {

/** Tree growth limits. */
struct TreeConfig
{
    std::size_t maxDepth = 14;
    std::size_t minSamplesSplit = 4;
    std::size_t minSamplesLeaf = 2;

    /**
     * Features considered per split; 0 = all (CART default for
     * regression). The forest sets this for feature bagging.
     */
    std::size_t maxFeatures = 0;
};

class DecisionTreeRegressor
{
  public:
    explicit DecisionTreeRegressor(TreeConfig config = {});

    /**
     * Fit on the rows of @p data selected by @p sampleIndices (the
     * forest passes bootstrap samples; pass all indices for a plain
     * tree). @p rng drives feature subsampling.
     */
    void fit(const Dataset &data,
             const std::vector<std::size_t> &sampleIndices, Rng &rng);

    /** Fit on the full dataset. */
    void fit(const Dataset &data, Rng &rng);

    /**
     * Predict the target vector for a feature vector. Returns a
     * reference to the matched leaf's value (no copy); it stays valid
     * until the tree is refit.
     */
    const std::vector<double> &predict(const std::vector<double> &x) const;

    /** Single-output shortcut. */
    double predictScalar(const std::vector<double> &x) const;

    bool trained() const { return !nodes_.empty(); }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t featureCount() const { return featureCount_; }
    std::size_t outputCount() const { return outputCount_; }
    std::size_t depth() const;

    /** One tree node; leaves have feature == -1. */
    struct Node
    {
        /** -1 for leaves. */
        int feature = -1;
        double threshold = 0.0;
        int left = -1;
        int right = -1;
        std::vector<double> leafValue;
    };

    /**
     * The node array in build order (root at index 0). CompiledForest
     * flattens trees through this view.
     */
    const std::vector<Node> &nodes() const { return nodes_; }

    /**
     * Total SSE reduction contributed by each feature across all splits
     * (unnormalized impurity importance).
     */
    const std::vector<double> &featureGains() const
    {
        return featureGains_;
    }

  private:
    struct SplitResult
    {
        bool found = false;
        std::size_t feature = 0;
        double threshold = 0.0;
        double gain = 0.0;
    };

    int build(const Dataset &data, std::vector<std::size_t> &indices,
              std::size_t depth, Rng &rng);

    SplitResult bestSplit(const Dataset &data,
                          const std::vector<std::size_t> &indices,
                          Rng &rng) const;

    std::vector<double> meanTarget(
        const Dataset &data,
        const std::vector<std::size_t> &indices) const;

    TreeConfig config_;
    std::size_t featureCount_ = 0;
    std::size_t outputCount_ = 0;
    std::vector<Node> nodes_;
    std::vector<double> featureGains_;
};

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_DECISION_TREE_HH
