/**
 * @file
 * CART regression tree with multi-output leaves.
 *
 * Splits minimize the summed (over outputs) within-node sum of squared
 * errors; leaves predict the mean target vector of their training
 * samples. Trees are robust to the outliers that plague parametric
 * regressions on WAN bandwidth data (Section 3.1's motivation for
 * tree-based learners).
 *
 * Three split engines grow identical tree shapes from the same
 * recursion (see SplitMode): the presorted exact engine (default),
 * the binned histogram engine, and the legacy per-node-sorting
 * reference the exact engine is parity-locked against. All engines
 * share one canonical sample order — feature value ascending, ties
 * broken by sample index — so results do not depend on the standard
 * library's sort implementation.
 */

#ifndef WANIFY_ML_DECISION_TREE_HH
#define WANIFY_ML_DECISION_TREE_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"
#include "ml/dataset.hh"

namespace wanify {
namespace ml {

class TrainingContext;
struct TreeScratch;

/** Split-finding engine selector (TreeConfig::splitMode). */
enum class SplitMode
{
    /**
     * Presorted CART: one argsort per feature per fit (shared across
     * a forest's trees via TrainingContext), per-feature index
     * arrays partitioned down the tree. Bit-identical trees to the
     * nodeSort reference — the default.
     */
    exact,

    /**
     * Quantize each feature into <= 256 bins once per dataset
     * (ml::BinIndex, reused across trees and *extended* — never
     * rebuilt — by warm starts, so drift retrains skip re-binning).
     * Nodes accumulate per-bin sums and scan only the touched bin
     * range; training partitions by bin code. Trees are not
     * bit-identical to exact mode (thresholds come from bin edges)
     * but accuracy matches within noise; comparable to exact on
     * Table-3-sized features, ahead as features and rows grow.
     */
    histogram,

    /**
     * The legacy splitter re-sorting the node's index set per
     * candidate feature at every node, retained as the reference
     * implementation: parity tests lock exact mode against it and
     * bench_perf_training uses it as the "before" timing.
     */
    nodeSort,
};

/** Tree growth limits. */
struct TreeConfig
{
    std::size_t maxDepth = 14;
    std::size_t minSamplesSplit = 4;
    std::size_t minSamplesLeaf = 2;

    /**
     * Features considered per split; 0 = all (CART default for
     * regression). The forest sets this for feature bagging.
     */
    std::size_t maxFeatures = 0;

    /** Split-finding engine (the forest threads this through). */
    SplitMode splitMode = SplitMode::exact;
};

class DecisionTreeRegressor
{
  public:
    explicit DecisionTreeRegressor(TreeConfig config = {});

    /**
     * Fit on the rows of @p data selected by @p sampleIndices (the
     * forest passes bootstrap samples; pass all indices for a plain
     * tree). @p rng drives feature subsampling. Builds a private
     * TrainingContext for the configured split mode; forests share
     * one context across all trees via the overload below.
     */
    void fit(const Dataset &data,
             const std::vector<std::size_t> &sampleIndices, Rng &rng);

    /** Fit on the full dataset. */
    void fit(const Dataset &data, Rng &rng);

    /**
     * Fit against a shared, immutable TrainingContext (built for
     * this config's split mode). Safe to call concurrently on
     * distinct trees with the same context — per-node scratch comes
     * from the calling thread's pool.
     */
    void fit(const TrainingContext &ctx,
             const std::vector<std::size_t> &sampleIndices, Rng &rng);

    /**
     * Predict the target vector for a feature vector. Returns a
     * reference to the matched leaf's value (no copy); it stays valid
     * until the tree is refit.
     */
    const std::vector<double> &predict(const std::vector<double> &x) const;

    /** Single-output shortcut. */
    double predictScalar(const std::vector<double> &x) const;

    bool trained() const { return !nodes_.empty(); }
    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t featureCount() const { return featureCount_; }
    std::size_t outputCount() const { return outputCount_; }
    std::size_t depth() const;

    /** One tree node; leaves have feature == -1. */
    struct Node
    {
        /** -1 for leaves. */
        int feature = -1;
        double threshold = 0.0;
        int left = -1;
        int right = -1;
        std::vector<double> leafValue;
    };

    /**
     * The node array in build order (root at index 0). CompiledForest
     * flattens trees through this view.
     */
    const std::vector<Node> &nodes() const { return nodes_; }

    /**
     * Total SSE reduction contributed by each feature across all splits
     * (unnormalized impurity importance).
     */
    const std::vector<double> &featureGains() const
    {
        return featureGains_;
    }

  private:
    friend struct TreeGrower;

    struct SplitResult
    {
        bool found = false;
        std::size_t feature = 0;
        double threshold = 0.0;
        double gain = 0.0;

        /**
         * Histogram mode: last bin of the left side. Training
         * partitions by bin code — rows appended to an extended
         * BinIndex can fall between the original bins, where the
         * code and the threshold disagree; the code is what the
         * split's gain was computed from.
         */
        std::size_t bin = 0;
    };

    int buildNodeSort(const Dataset &data,
                      std::vector<std::size_t> &indices,
                      std::size_t depth, Rng &rng);

    SplitResult bestSplitNodeSort(const Dataset &data,
                                  const std::vector<std::size_t> &indices,
                                  Rng &rng) const;

    std::vector<double> meanTarget(
        const Dataset &data,
        const std::vector<std::size_t> &indices) const;

    TreeConfig config_;
    std::size_t featureCount_ = 0;
    std::size_t outputCount_ = 0;
    std::vector<Node> nodes_;
    std::vector<double> featureGains_;
};

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_DECISION_TREE_HH
