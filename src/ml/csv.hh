/**
 * @file
 * CSV persistence for datasets.
 *
 * The paper open-sources the collected snapshot/runtime BW datasets
 * alongside the WANify code so future WAN-aware systems can reuse
 * them; this module provides the matching export/import path for the
 * Bandwidth Analyzer's output (one row per DC-pair sample: features,
 * then targets).
 */

#ifndef WANIFY_ML_CSV_HH
#define WANIFY_ML_CSV_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "ml/dataset.hh"

namespace wanify {
namespace ml {

/**
 * Write a dataset as CSV with a header line. Feature columns are
 * named from @p featureNames (must match the dataset's feature count;
 * empty = f0, f1, ...); target columns are named y0, y1, ...
 */
void writeCsv(std::ostream &out, const Dataset &data,
              const std::vector<std::string> &featureNames = {});

/** Write to a file; fatal() on I/O failure. */
void writeCsvFile(const std::string &path, const Dataset &data,
                  const std::vector<std::string> &featureNames = {});

/**
 * Read a dataset from CSV produced by writeCsv (header required;
 * the target columns are those whose names start with 'y').
 */
Dataset readCsv(std::istream &in);

/** Read from a file; fatal() on I/O failure. */
Dataset readCsvFile(const std::string &path);

} // namespace ml
} // namespace wanify

#endif // WANIFY_ML_CSV_HH
