# Empty dependencies file for wanify-serve.
# This may be replaced when dependencies are built.
