file(REMOVE_RECURSE
  "CMakeFiles/wanify-serve.dir/cli/wanify_serve.cc.o"
  "CMakeFiles/wanify-serve.dir/cli/wanify_serve.cc.o.d"
  "wanify-serve"
  "wanify-serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wanify-serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
