# Empty dependencies file for bench_fig5_parallel_approaches.
# This may be replaced when dependencies are built.
