file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_parallel_approaches.dir/bench/bench_fig5_parallel_approaches.cc.o"
  "CMakeFiles/bench_fig5_parallel_approaches.dir/bench/bench_fig5_parallel_approaches.cc.o.d"
  "bench_fig5_parallel_approaches"
  "bench_fig5_parallel_approaches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_parallel_approaches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
