# Empty dependencies file for bench_perf_serve.
# This may be replaced when dependencies are built.
