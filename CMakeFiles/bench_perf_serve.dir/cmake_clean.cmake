file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_serve.dir/bench/bench_perf_serve.cc.o"
  "CMakeFiles/bench_perf_serve.dir/bench/bench_perf_serve.cc.o.d"
  "bench_perf_serve"
  "bench_perf_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
