# Empty dependencies file for bench_fig7_tpcds_e2e.
# This may be replaced when dependencies are built.
