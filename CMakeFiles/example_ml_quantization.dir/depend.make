# Empty dependencies file for example_ml_quantization.
# This may be replaced when dependencies are built.
