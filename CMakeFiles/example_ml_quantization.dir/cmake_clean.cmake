file(REMOVE_RECURSE
  "CMakeFiles/example_ml_quantization.dir/examples/ml_quantization.cpp.o"
  "CMakeFiles/example_ml_quantization.dir/examples/ml_quantization.cpp.o.d"
  "example_ml_quantization"
  "example_ml_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ml_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
