# Empty dependencies file for bench_fig10_skew.
# This may be replaced when dependencies are built.
