file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_skew.dir/bench/bench_fig10_skew.cc.o"
  "CMakeFiles/bench_fig10_skew.dir/bench/bench_fig10_skew.cc.o.d"
  "bench_fig10_skew"
  "bench_fig10_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
