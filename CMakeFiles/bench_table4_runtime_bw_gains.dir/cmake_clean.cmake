file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_runtime_bw_gains.dir/bench/bench_table4_runtime_bw_gains.cc.o"
  "CMakeFiles/bench_table4_runtime_bw_gains.dir/bench/bench_table4_runtime_bw_gains.cc.o.d"
  "bench_table4_runtime_bw_gains"
  "bench_table4_runtime_bw_gains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_runtime_bw_gains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
