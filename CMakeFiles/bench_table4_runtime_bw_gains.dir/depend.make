# Empty dependencies file for bench_table4_runtime_bw_gains.
# This may be replaced when dependencies are built.
