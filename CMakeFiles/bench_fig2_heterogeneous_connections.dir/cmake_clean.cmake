file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_heterogeneous_connections.dir/bench/bench_fig2_heterogeneous_connections.cc.o"
  "CMakeFiles/bench_fig2_heterogeneous_connections.dir/bench/bench_fig2_heterogeneous_connections.cc.o.d"
  "bench_fig2_heterogeneous_connections"
  "bench_fig2_heterogeneous_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_heterogeneous_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
