# Empty dependencies file for bench_fig2_heterogeneous_connections.
# This may be replaced when dependencies are built.
