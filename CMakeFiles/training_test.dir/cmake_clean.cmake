file(REMOVE_RECURSE
  "CMakeFiles/training_test.dir/tests/training_test.cc.o"
  "CMakeFiles/training_test.dir/tests/training_test.cc.o.d"
  "training_test"
  "training_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/training_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
