# Empty dependencies file for gda_test.
# This may be replaced when dependencies are built.
