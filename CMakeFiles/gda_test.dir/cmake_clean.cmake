file(REMOVE_RECURSE
  "CMakeFiles/gda_test.dir/tests/gda_test.cc.o"
  "CMakeFiles/gda_test.dir/tests/gda_test.cc.o.d"
  "gda_test"
  "gda_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
