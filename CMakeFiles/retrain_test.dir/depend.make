# Empty dependencies file for retrain_test.
# This may be replaced when dependencies are built.
