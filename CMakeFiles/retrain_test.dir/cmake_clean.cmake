file(REMOVE_RECURSE
  "CMakeFiles/retrain_test.dir/tests/retrain_test.cc.o"
  "CMakeFiles/retrain_test.dir/tests/retrain_test.cc.o.d"
  "retrain_test"
  "retrain_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retrain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
