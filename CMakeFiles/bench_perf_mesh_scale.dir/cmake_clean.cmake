file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_mesh_scale.dir/bench/bench_perf_mesh_scale.cc.o"
  "CMakeFiles/bench_perf_mesh_scale.dir/bench/bench_perf_mesh_scale.cc.o.d"
  "bench_perf_mesh_scale"
  "bench_perf_mesh_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_mesh_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
