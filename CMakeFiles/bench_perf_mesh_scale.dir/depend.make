# Empty dependencies file for bench_perf_mesh_scale.
# This may be replaced when dependencies are built.
