file(REMOVE_RECURSE
  "CMakeFiles/event_clock_test.dir/tests/event_clock_test.cc.o"
  "CMakeFiles/event_clock_test.dir/tests/event_clock_test.cc.o.d"
  "event_clock_test"
  "event_clock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
