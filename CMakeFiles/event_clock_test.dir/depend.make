# Empty dependencies file for event_clock_test.
# This may be replaced when dependencies are built.
