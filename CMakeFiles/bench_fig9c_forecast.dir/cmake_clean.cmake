file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9c_forecast.dir/bench/bench_fig9c_forecast.cc.o"
  "CMakeFiles/bench_fig9c_forecast.dir/bench/bench_fig9c_forecast.cc.o.d"
  "bench_fig9c_forecast"
  "bench_fig9c_forecast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9c_forecast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
