# Empty dependencies file for bench_fig9c_forecast.
# This may be replaced when dependencies are built.
