# Empty dependencies file for bench_perf_training.
# This may be replaced when dependencies are built.
