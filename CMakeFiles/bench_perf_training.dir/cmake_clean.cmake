file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_training.dir/bench/bench_perf_training.cc.o"
  "CMakeFiles/bench_perf_training.dir/bench/bench_perf_training.cc.o.d"
  "bench_perf_training"
  "bench_perf_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
