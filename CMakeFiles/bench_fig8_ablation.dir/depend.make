# Empty dependencies file for bench_fig8_ablation.
# This may be replaced when dependencies are built.
