# Empty dependencies file for bench_table2_monitoring_cost.
# This may be replaced when dependencies are built.
