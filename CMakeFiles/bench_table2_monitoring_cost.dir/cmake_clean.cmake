file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_monitoring_cost.dir/bench/bench_table2_monitoring_cost.cc.o"
  "CMakeFiles/bench_table2_monitoring_cost.dir/bench/bench_table2_monitoring_cost.cc.o.d"
  "bench_table2_monitoring_cost"
  "bench_table2_monitoring_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_monitoring_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
