# Empty dependencies file for bench_fig6_shuffle_sizes.
# This may be replaced when dependencies are built.
