file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_shuffle_sizes.dir/bench/bench_fig6_shuffle_sizes.cc.o"
  "CMakeFiles/bench_fig6_shuffle_sizes.dir/bench/bench_fig6_shuffle_sizes.cc.o.d"
  "bench_fig6_shuffle_sizes"
  "bench_fig6_shuffle_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_shuffle_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
