file(REMOVE_RECURSE
  "CMakeFiles/bench_perf_inference.dir/bench/bench_perf_inference.cc.o"
  "CMakeFiles/bench_perf_inference.dir/bench/bench_perf_inference.cc.o.d"
  "bench_perf_inference"
  "bench_perf_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
