# Empty dependencies file for bench_perf_inference.
# This may be replaced when dependencies are built.
