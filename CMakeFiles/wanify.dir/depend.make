# Empty dependencies file for wanify.
# This may be replaced when dependencies are built.
