file(REMOVE_RECURSE
  "libwanify.a"
)
