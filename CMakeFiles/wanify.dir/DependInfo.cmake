
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/error.cc" "CMakeFiles/wanify.dir/src/common/error.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/error.cc.o.d"
  "/root/repo/src/common/geo.cc" "CMakeFiles/wanify.dir/src/common/geo.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/geo.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/wanify.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "CMakeFiles/wanify.dir/src/common/rng.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/rng.cc.o.d"
  "/root/repo/src/common/stats.cc" "CMakeFiles/wanify.dir/src/common/stats.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/stats.cc.o.d"
  "/root/repo/src/common/table.cc" "CMakeFiles/wanify.dir/src/common/table.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/table.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/wanify.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/common/units.cc" "CMakeFiles/wanify.dir/src/common/units.cc.o" "gcc" "CMakeFiles/wanify.dir/src/common/units.cc.o.d"
  "/root/repo/src/core/bandwidth_analyzer.cc" "CMakeFiles/wanify.dir/src/core/bandwidth_analyzer.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/bandwidth_analyzer.cc.o.d"
  "/root/repo/src/core/bw.cc" "CMakeFiles/wanify.dir/src/core/bw.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/bw.cc.o.d"
  "/root/repo/src/core/dc_relations.cc" "CMakeFiles/wanify.dir/src/core/dc_relations.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/dc_relations.cc.o.d"
  "/root/repo/src/core/drift.cc" "CMakeFiles/wanify.dir/src/core/drift.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/drift.cc.o.d"
  "/root/repo/src/core/forecast.cc" "CMakeFiles/wanify.dir/src/core/forecast.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/forecast.cc.o.d"
  "/root/repo/src/core/global_optimizer.cc" "CMakeFiles/wanify.dir/src/core/global_optimizer.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/global_optimizer.cc.o.d"
  "/root/repo/src/core/heterogeneity.cc" "CMakeFiles/wanify.dir/src/core/heterogeneity.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/heterogeneity.cc.o.d"
  "/root/repo/src/core/local_agent.cc" "CMakeFiles/wanify.dir/src/core/local_agent.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/local_agent.cc.o.d"
  "/root/repo/src/core/local_optimizer.cc" "CMakeFiles/wanify.dir/src/core/local_optimizer.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/local_optimizer.cc.o.d"
  "/root/repo/src/core/predictor.cc" "CMakeFiles/wanify.dir/src/core/predictor.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/predictor.cc.o.d"
  "/root/repo/src/core/throttle.cc" "CMakeFiles/wanify.dir/src/core/throttle.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/throttle.cc.o.d"
  "/root/repo/src/core/wanify.cc" "CMakeFiles/wanify.dir/src/core/wanify.cc.o" "gcc" "CMakeFiles/wanify.dir/src/core/wanify.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "CMakeFiles/wanify.dir/src/cost/cost_model.cc.o" "gcc" "CMakeFiles/wanify.dir/src/cost/cost_model.cc.o.d"
  "/root/repo/src/experiments/predictor_factory.cc" "CMakeFiles/wanify.dir/src/experiments/predictor_factory.cc.o" "gcc" "CMakeFiles/wanify.dir/src/experiments/predictor_factory.cc.o.d"
  "/root/repo/src/experiments/runner.cc" "CMakeFiles/wanify.dir/src/experiments/runner.cc.o" "gcc" "CMakeFiles/wanify.dir/src/experiments/runner.cc.o.d"
  "/root/repo/src/experiments/testbed.cc" "CMakeFiles/wanify.dir/src/experiments/testbed.cc.o" "gcc" "CMakeFiles/wanify.dir/src/experiments/testbed.cc.o.d"
  "/root/repo/src/gda/engine.cc" "CMakeFiles/wanify.dir/src/gda/engine.cc.o" "gcc" "CMakeFiles/wanify.dir/src/gda/engine.cc.o.d"
  "/root/repo/src/gda/event_clock.cc" "CMakeFiles/wanify.dir/src/gda/event_clock.cc.o" "gcc" "CMakeFiles/wanify.dir/src/gda/event_clock.cc.o.d"
  "/root/repo/src/gda/scheduler.cc" "CMakeFiles/wanify.dir/src/gda/scheduler.cc.o" "gcc" "CMakeFiles/wanify.dir/src/gda/scheduler.cc.o.d"
  "/root/repo/src/ml/bin_index.cc" "CMakeFiles/wanify.dir/src/ml/bin_index.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/bin_index.cc.o.d"
  "/root/repo/src/ml/compiled_forest.cc" "CMakeFiles/wanify.dir/src/ml/compiled_forest.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/compiled_forest.cc.o.d"
  "/root/repo/src/ml/csv.cc" "CMakeFiles/wanify.dir/src/ml/csv.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/csv.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "CMakeFiles/wanify.dir/src/ml/dataset.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "CMakeFiles/wanify.dir/src/ml/decision_tree.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "CMakeFiles/wanify.dir/src/ml/metrics.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/metrics.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "CMakeFiles/wanify.dir/src/ml/random_forest.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/training_context.cc" "CMakeFiles/wanify.dir/src/ml/training_context.cc.o" "gcc" "CMakeFiles/wanify.dir/src/ml/training_context.cc.o.d"
  "/root/repo/src/monitor/features.cc" "CMakeFiles/wanify.dir/src/monitor/features.cc.o" "gcc" "CMakeFiles/wanify.dir/src/monitor/features.cc.o.d"
  "/root/repo/src/monitor/iftop.cc" "CMakeFiles/wanify.dir/src/monitor/iftop.cc.o" "gcc" "CMakeFiles/wanify.dir/src/monitor/iftop.cc.o.d"
  "/root/repo/src/monitor/measurement.cc" "CMakeFiles/wanify.dir/src/monitor/measurement.cc.o" "gcc" "CMakeFiles/wanify.dir/src/monitor/measurement.cc.o.d"
  "/root/repo/src/net/flow_solver.cc" "CMakeFiles/wanify.dir/src/net/flow_solver.cc.o" "gcc" "CMakeFiles/wanify.dir/src/net/flow_solver.cc.o.d"
  "/root/repo/src/net/fluctuation.cc" "CMakeFiles/wanify.dir/src/net/fluctuation.cc.o" "gcc" "CMakeFiles/wanify.dir/src/net/fluctuation.cc.o.d"
  "/root/repo/src/net/network_sim.cc" "CMakeFiles/wanify.dir/src/net/network_sim.cc.o" "gcc" "CMakeFiles/wanify.dir/src/net/network_sim.cc.o.d"
  "/root/repo/src/net/region.cc" "CMakeFiles/wanify.dir/src/net/region.cc.o" "gcc" "CMakeFiles/wanify.dir/src/net/region.cc.o.d"
  "/root/repo/src/net/rtt_model.cc" "CMakeFiles/wanify.dir/src/net/rtt_model.cc.o" "gcc" "CMakeFiles/wanify.dir/src/net/rtt_model.cc.o.d"
  "/root/repo/src/net/topology.cc" "CMakeFiles/wanify.dir/src/net/topology.cc.o" "gcc" "CMakeFiles/wanify.dir/src/net/topology.cc.o.d"
  "/root/repo/src/net/vm.cc" "CMakeFiles/wanify.dir/src/net/vm.cc.o" "gcc" "CMakeFiles/wanify.dir/src/net/vm.cc.o.d"
  "/root/repo/src/scenario/driver.cc" "CMakeFiles/wanify.dir/src/scenario/driver.cc.o" "gcc" "CMakeFiles/wanify.dir/src/scenario/driver.cc.o.d"
  "/root/repo/src/scenario/forecast.cc" "CMakeFiles/wanify.dir/src/scenario/forecast.cc.o" "gcc" "CMakeFiles/wanify.dir/src/scenario/forecast.cc.o.d"
  "/root/repo/src/scenario/library.cc" "CMakeFiles/wanify.dir/src/scenario/library.cc.o" "gcc" "CMakeFiles/wanify.dir/src/scenario/library.cc.o.d"
  "/root/repo/src/scenario/scenario.cc" "CMakeFiles/wanify.dir/src/scenario/scenario.cc.o" "gcc" "CMakeFiles/wanify.dir/src/scenario/scenario.cc.o.d"
  "/root/repo/src/scenario/trace.cc" "CMakeFiles/wanify.dir/src/scenario/trace.cc.o" "gcc" "CMakeFiles/wanify.dir/src/scenario/trace.cc.o.d"
  "/root/repo/src/sched/fraction_search.cc" "CMakeFiles/wanify.dir/src/sched/fraction_search.cc.o" "gcc" "CMakeFiles/wanify.dir/src/sched/fraction_search.cc.o.d"
  "/root/repo/src/sched/kimchi.cc" "CMakeFiles/wanify.dir/src/sched/kimchi.cc.o" "gcc" "CMakeFiles/wanify.dir/src/sched/kimchi.cc.o.d"
  "/root/repo/src/sched/locality.cc" "CMakeFiles/wanify.dir/src/sched/locality.cc.o" "gcc" "CMakeFiles/wanify.dir/src/sched/locality.cc.o.d"
  "/root/repo/src/sched/tetrium.cc" "CMakeFiles/wanify.dir/src/sched/tetrium.cc.o" "gcc" "CMakeFiles/wanify.dir/src/sched/tetrium.cc.o.d"
  "/root/repo/src/serve/allocator.cc" "CMakeFiles/wanify.dir/src/serve/allocator.cc.o" "gcc" "CMakeFiles/wanify.dir/src/serve/allocator.cc.o.d"
  "/root/repo/src/serve/service.cc" "CMakeFiles/wanify.dir/src/serve/service.cc.o" "gcc" "CMakeFiles/wanify.dir/src/serve/service.cc.o.d"
  "/root/repo/src/serve/workload.cc" "CMakeFiles/wanify.dir/src/serve/workload.cc.o" "gcc" "CMakeFiles/wanify.dir/src/serve/workload.cc.o.d"
  "/root/repo/src/storage/hdfs.cc" "CMakeFiles/wanify.dir/src/storage/hdfs.cc.o" "gcc" "CMakeFiles/wanify.dir/src/storage/hdfs.cc.o.d"
  "/root/repo/src/workloads/ml_quantization.cc" "CMakeFiles/wanify.dir/src/workloads/ml_quantization.cc.o" "gcc" "CMakeFiles/wanify.dir/src/workloads/ml_quantization.cc.o.d"
  "/root/repo/src/workloads/terasort.cc" "CMakeFiles/wanify.dir/src/workloads/terasort.cc.o" "gcc" "CMakeFiles/wanify.dir/src/workloads/terasort.cc.o.d"
  "/root/repo/src/workloads/tpcds.cc" "CMakeFiles/wanify.dir/src/workloads/tpcds.cc.o" "gcc" "CMakeFiles/wanify.dir/src/workloads/tpcds.cc.o.d"
  "/root/repo/src/workloads/wordcount.cc" "CMakeFiles/wanify.dir/src/workloads/wordcount.cc.o" "gcc" "CMakeFiles/wanify.dir/src/workloads/wordcount.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
