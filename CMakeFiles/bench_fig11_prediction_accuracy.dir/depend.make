# Empty dependencies file for bench_fig11_prediction_accuracy.
# This may be replaced when dependencies are built.
