file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_prediction_accuracy.dir/bench/bench_fig11_prediction_accuracy.cc.o"
  "CMakeFiles/bench_fig11_prediction_accuracy.dir/bench/bench_fig11_prediction_accuracy.cc.o.d"
  "bench_fig11_prediction_accuracy"
  "bench_fig11_prediction_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_prediction_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
