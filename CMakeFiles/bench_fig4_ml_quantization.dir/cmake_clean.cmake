file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ml_quantization.dir/bench/bench_fig4_ml_quantization.cc.o"
  "CMakeFiles/bench_fig4_ml_quantization.dir/bench/bench_fig4_ml_quantization.cc.o.d"
  "bench_fig4_ml_quantization"
  "bench_fig4_ml_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ml_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
