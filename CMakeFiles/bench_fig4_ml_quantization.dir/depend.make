# Empty dependencies file for bench_fig4_ml_quantization.
# This may be replaced when dependencies are built.
