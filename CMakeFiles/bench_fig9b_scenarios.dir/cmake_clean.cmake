file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_scenarios.dir/bench/bench_fig9b_scenarios.cc.o"
  "CMakeFiles/bench_fig9b_scenarios.dir/bench/bench_fig9b_scenarios.cc.o.d"
  "bench_fig9b_scenarios"
  "bench_fig9b_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
