# Empty dependencies file for bench_fig9b_scenarios.
# This may be replaced when dependencies are built.
