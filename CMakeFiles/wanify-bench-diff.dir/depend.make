# Empty dependencies file for wanify-bench-diff.
# This may be replaced when dependencies are built.
