file(REMOVE_RECURSE
  "CMakeFiles/wanify-bench-diff.dir/tools/bench_diff.cc.o"
  "CMakeFiles/wanify-bench-diff.dir/tools/bench_diff.cc.o.d"
  "wanify-bench-diff"
  "wanify-bench-diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wanify-bench-diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
