# Empty dependencies file for wanify-scenario.
# This may be replaced when dependencies are built.
