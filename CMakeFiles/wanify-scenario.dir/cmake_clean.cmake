file(REMOVE_RECURSE
  "CMakeFiles/wanify-scenario.dir/cli/wanify_scenario.cc.o"
  "CMakeFiles/wanify-scenario.dir/cli/wanify_scenario.cc.o.d"
  "wanify-scenario"
  "wanify-scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wanify-scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
