# Empty dependencies file for example_geo_terasort.
# This may be replaced when dependencies are built.
