file(REMOVE_RECURSE
  "CMakeFiles/example_geo_terasort.dir/examples/geo_terasort.cpp.o"
  "CMakeFiles/example_geo_terasort.dir/examples/geo_terasort.cpp.o.d"
  "example_geo_terasort"
  "example_geo_terasort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_geo_terasort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
