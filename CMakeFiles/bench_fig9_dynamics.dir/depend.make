# Empty dependencies file for bench_fig9_dynamics.
# This may be replaced when dependencies are built.
