file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_dynamics.dir/bench/bench_fig9_dynamics.cc.o"
  "CMakeFiles/bench_fig9_dynamics.dir/bench/bench_fig9_dynamics.cc.o.d"
  "bench_fig9_dynamics"
  "bench_fig9_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
