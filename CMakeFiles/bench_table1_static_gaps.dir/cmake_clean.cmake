file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_static_gaps.dir/bench/bench_table1_static_gaps.cc.o"
  "CMakeFiles/bench_table1_static_gaps.dir/bench/bench_table1_static_gaps.cc.o.d"
  "bench_table1_static_gaps"
  "bench_table1_static_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_static_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
