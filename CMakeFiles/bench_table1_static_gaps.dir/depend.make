# Empty dependencies file for bench_table1_static_gaps.
# This may be replaced when dependencies are built.
