# Empty dependencies file for example_tpcds_scheduling.
# This may be replaced when dependencies are built.
