file(REMOVE_RECURSE
  "CMakeFiles/example_tpcds_scheduling.dir/examples/tpcds_scheduling.cpp.o"
  "CMakeFiles/example_tpcds_scheduling.dir/examples/tpcds_scheduling.cpp.o.d"
  "example_tpcds_scheduling"
  "example_tpcds_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tpcds_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
