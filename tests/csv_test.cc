/**
 * @file
 * Tests for the dataset CSV persistence (the paper open-sources its
 * collected datasets; this is the matching I/O path) plus the
 * multi-cloud (Section 5.8.3) and drift-retraining (Section 3.3.4)
 * end-to-end flows.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "core/bandwidth_analyzer.hh"
#include "core/drift.hh"
#include "core/heterogeneity.hh"
#include "core/predictor.hh"
#include "experiments/testbed.hh"
#include "ml/csv.hh"
#include "ml/metrics.hh"
#include "monitor/features.hh"
#include "monitor/measurement.hh"
#include "net/region.hh"
#include "net/vm.hh"

using namespace wanify;
using namespace wanify::ml;

TEST(Csv, RoundTripPreservesData)
{
    Dataset data(2, 1);
    data.add({1.5, -2.25}, 10.0);
    data.add({0.0, 3.75}, -0.5);

    std::stringstream ss;
    writeCsv(ss, data, {"a", "b"});
    const Dataset loaded = readCsv(ss);

    ASSERT_EQ(loaded.size(), 2u);
    ASSERT_EQ(loaded.featureCount(), 2u);
    ASSERT_EQ(loaded.outputCount(), 1u);
    EXPECT_DOUBLE_EQ(loaded.x(0)[0], 1.5);
    EXPECT_DOUBLE_EQ(loaded.x(0)[1], -2.25);
    EXPECT_DOUBLE_EQ(loaded.target(1), -0.5);
}

TEST(Csv, HeaderNamesWritten)
{
    Dataset data(2, 1);
    data.add({1.0, 2.0}, 3.0);
    std::stringstream ss;
    writeCsv(ss, data, {"N", "S_BWij"});
    std::string header;
    std::getline(ss, header);
    EXPECT_EQ(header, "N,S_BWij,y0");
}

TEST(Csv, RejectsMalformedInput)
{
    {
        std::stringstream ss("");
        EXPECT_THROW(readCsv(ss), FatalError);
    }
    {
        std::stringstream ss("a,b,y0\n1,2\n");
        EXPECT_THROW(readCsv(ss), FatalError);
    }
    {
        std::stringstream ss("a,b,y0\n1,huh,3\n");
        EXPECT_THROW(readCsv(ss), FatalError);
    }
    {
        // Feature column after targets.
        std::stringstream ss("a,y0,b\n1,2,3\n");
        EXPECT_THROW(readCsv(ss), FatalError);
    }
}

TEST(Csv, AnalyzerDatasetRoundTripsWithFeatureNames)
{
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {3};
    cfg.meshesPerSize = 2;
    core::BandwidthAnalyzer analyzer(cfg);
    const auto data = analyzer.collect(808);

    std::vector<std::string> names(monitor::featureNames().begin(),
                                   monitor::featureNames().end());
    std::stringstream ss;
    writeCsv(ss, data, names);
    const auto loaded = readCsv(ss);
    ASSERT_EQ(loaded.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_NEAR(loaded.target(i), data.target(i), 1e-6);

    // A model trained from the re-loaded CSV behaves equivalently
    // (CSV carries 12 significant digits; splits near ties may land
    // on either side, so compare predictions, not trees).
    core::RuntimeBwPredictor a, b;
    a.train(data, 809);
    b.train(loaded, 809);
    const double pa = a.predictPair(data.x(0));
    const double pb = b.predictPair(data.x(0));
    EXPECT_NEAR(pa, pb, 0.05 * std::abs(pa));
}

// ---- Section 5.8.3: multi-cloud (AWS + GCP) -----------------------------------

TEST(MultiCloud, MixedProviderTopologyWorksEndToEnd)
{
    // AWS t2.medium regions plus GCP e2-medium regions in one
    // cluster, as in the paper's multi-cloud accuracy test.
    net::TopologyBuilder builder;
    builder.addDc(net::RegionCatalog::byId("us-east-1"),
                  net::VmTypeCatalog::m5large());
    builder.addDc(net::RegionCatalog::byId("eu-west-1"),
                  net::VmTypeCatalog::m5large());
    for (const auto &region : net::RegionCatalog::gcpRegions())
        builder.addDc(region, net::VmTypeCatalog::e2medium());
    const auto topo = builder.build();
    ASSERT_EQ(topo.dcCount(), 4u);

    // Refactoring vector reflects the weaker GCP endpoints.
    const auto rvec = core::providerRvec(topo);
    EXPECT_LT(rvec.at(0, 2), 1.0);
    EXPECT_DOUBLE_EQ(rvec.at(0, 1), 1.0); // AWS<->AWS untouched

    // Mesh measurement across providers runs like any other.
    const auto bw = monitor::staticIndependentBw(
        topo, experiments::quietSimConfig(),
        monitor::MeasurementConfig{}, 5);
    for (net::DcId i = 0; i < 4; ++i)
        for (net::DcId j = 0; j < 4; ++j)
            if (i != j)
                EXPECT_GT(bw.at(i, j), 0.0);
}

// ---- Section 3.3.4: drift -> warm-start retraining -----------------------------

TEST(DriftRetraining, FlagTriggersWarmStartAndRecovers)
{
    // Train on one network regime...
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {4};
    cfg.meshesPerSize = 6;
    core::BandwidthAnalyzer analyzer(cfg);
    const auto before = analyzer.collect(111);

    ml::ForestConfig forestCfg;
    forestCfg.nEstimators = 24;
    core::RuntimeBwPredictor predictor(forestCfg);
    predictor.train(before, 112);

    // ...then the WAN shifts: a different fluctuation regime with
    // much lower effective capacities (simulated by scaling targets).
    Dataset shifted(before.featureCount(), 1);
    for (std::size_t i = 0; i < before.size(); ++i) {
        auto x = before.x(i);
        x[monitor::FeatSnapshotBw] *= 0.3;
        shifted.add(x, before.target(i) * 0.3);
    }

    // The drift detector sees persistent significant errors (weak
    // pairs shift by < 100 Mbps, so the fraction is moderate).
    core::DriftConfig driftCfg;
    driftCfg.minObservations = 16;
    driftCfg.retrainFraction = 0.15;
    core::ModelDriftDetector drift(driftCfg);
    for (std::size_t i = 0; i < shifted.size(); ++i) {
        drift.record(predictor.predictPair(shifted.x(i)),
                     shifted.target(i));
    }
    ASSERT_TRUE(drift.needsRetraining());

    std::vector<double> truth, predBefore;
    for (std::size_t i = 0; i < shifted.size(); ++i) {
        truth.push_back(shifted.target(i));
        predBefore.push_back(predictor.predictPair(shifted.x(i)));
    }
    const double maeBefore = ml::mae(truth, predBefore);

    // Warm start on old + new data (the paper's Section 3.3.4 flow).
    // The kept trees dilute the correction, so grow a larger batch of
    // new trees than the original forest.
    Dataset combined = before;
    combined.append(shifted);
    predictor.retrain(combined, 72, 113);
    drift.reset();

    std::vector<double> predAfter;
    for (std::size_t i = 0; i < shifted.size(); ++i) {
        predAfter.push_back(predictor.predictPair(shifted.x(i)));
        drift.record(predAfter.back(), truth[i]);
    }
    // Retraining substantially reduces the error on the new regime.
    EXPECT_LT(ml::mae(truth, predAfter), 0.5 * maeBefore);
    EXPECT_LT(drift.errorFraction(), 0.5);
}
