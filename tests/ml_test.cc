/**
 * @file
 * Tests for the learning substrate: dataset handling, CART trees
 * (single- and multi-output), the Random Forest (bagging, warm start,
 * OOB, feature importances), and the metrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "ml/compiled_forest.hh"
#include "ml/dataset.hh"
#include "ml/decision_tree.hh"
#include "ml/metrics.hh"
#include "ml/random_forest.hh"

using namespace wanify;
using namespace wanify::ml;

namespace {

/** y = 3x0 + noise on x1 (irrelevant feature). */
Dataset
linearData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset data(2, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 10.0);
        const double x1 = rng.uniform(0.0, 10.0);
        data.add({x0, x1}, 3.0 * x0 + rng.normal(0.0, 0.05));
    }
    return data;
}

/** Step function: y = 10 for x < 5 else 20 — trivially learnable. */
Dataset
stepData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset data(1, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.uniform(0.0, 10.0);
        data.add({x}, x < 5.0 ? 10.0 : 20.0);
    }
    return data;
}

} // namespace

// ---- dataset ---------------------------------------------------------------

TEST(Dataset, ShapeEnforced)
{
    Dataset data(2, 1);
    data.add({1.0, 2.0}, 3.0);
    EXPECT_THROW(data.add({1.0}, 3.0), FatalError);
    EXPECT_EQ(data.size(), 1u);
    EXPECT_DOUBLE_EQ(data.target(0), 3.0);
}

TEST(Dataset, SplitPartitionsAllSamples)
{
    auto data = linearData(100, 1);
    Rng rng(2);
    const auto [train, test] = data.split(0.8, rng);
    EXPECT_EQ(train.size() + test.size(), 100u);
    EXPECT_EQ(train.size(), 80u);
}

TEST(Dataset, AppendConcatenates)
{
    auto a = linearData(10, 1);
    const auto b = linearData(5, 2);
    a.append(b);
    EXPECT_EQ(a.size(), 15u);
}

// ---- decision tree -----------------------------------------------------------

TEST(DecisionTree, LearnsStepFunctionExactly)
{
    DecisionTreeRegressor tree;
    Rng rng(3);
    tree.fit(stepData(200, 5), rng);
    EXPECT_NEAR(tree.predictScalar({2.0}), 10.0, 1e-9);
    EXPECT_NEAR(tree.predictScalar({8.0}), 20.0, 1e-9);
}

TEST(DecisionTree, FitsLinearTrendApproximately)
{
    DecisionTreeRegressor tree;
    Rng rng(4);
    tree.fit(linearData(500, 6), rng);
    for (double x : {1.0, 4.0, 9.0})
        EXPECT_NEAR(tree.predictScalar({x, 5.0}), 3.0 * x, 1.0);
}

TEST(DecisionTree, MultiOutputLeaves)
{
    // y = (x, 2x): both outputs learned from the same splits.
    Dataset data(1, 2);
    Rng gen(7);
    for (int i = 0; i < 300; ++i) {
        const double x = gen.uniform(0.0, 10.0);
        data.add({x}, {x, 2.0 * x});
    }
    DecisionTreeRegressor tree;
    Rng rng(8);
    tree.fit(data, rng);
    const auto y = tree.predict({5.0});
    ASSERT_EQ(y.size(), 2u);
    EXPECT_NEAR(y[0], 5.0, 0.5);
    EXPECT_NEAR(y[1], 10.0, 1.0);
}

TEST(DecisionTree, RespectsMaxDepth)
{
    TreeConfig cfg;
    cfg.maxDepth = 2;
    DecisionTreeRegressor tree(cfg);
    Rng rng(9);
    tree.fit(linearData(500, 10), rng);
    EXPECT_LE(tree.depth(), 3u); // root + 2 levels
}

TEST(DecisionTree, FeatureGainsIdentifyRelevantFeature)
{
    DecisionTreeRegressor tree;
    Rng rng(11);
    tree.fit(linearData(500, 12), rng);
    const auto &gains = tree.featureGains();
    ASSERT_EQ(gains.size(), 2u);
    EXPECT_GT(gains[0], 100.0 * gains[1]);
}

TEST(DecisionTree, PredictBeforeFitPanics)
{
    DecisionTreeRegressor tree;
    EXPECT_THROW(tree.predict({1.0}), PanicError);
}

TEST(DecisionTree, ConstantTargetGivesSingleLeaf)
{
    Dataset data(1, 1);
    for (int i = 0; i < 50; ++i)
        data.add({static_cast<double>(i)}, 42.0);
    DecisionTreeRegressor tree;
    Rng rng(13);
    tree.fit(data, rng);
    EXPECT_EQ(tree.nodeCount(), 1u);
    EXPECT_DOUBLE_EQ(tree.predictScalar({99.0}), 42.0);
}

// ---- random forest ------------------------------------------------------------

TEST(RandomForest, BeatsNaiveMeanOnLinearData)
{
    const auto train = linearData(600, 20);
    const auto test = linearData(100, 21);

    ForestConfig cfg;
    cfg.nEstimators = 30;
    RandomForestRegressor forest(cfg);
    forest.fit(train, 22);

    std::vector<double> truth, pred;
    for (std::size_t i = 0; i < test.size(); ++i) {
        truth.push_back(test.target(i));
        pred.push_back(forest.predictScalar(test.x(i)));
    }
    EXPECT_GT(r2(truth, pred), 0.98);
    EXPECT_LT(mae(truth, pred), 1.0);
}

TEST(RandomForest, OobR2HighOnLearnableProblem)
{
    ForestConfig cfg;
    cfg.nEstimators = 40;
    RandomForestRegressor forest(cfg);
    forest.fit(linearData(400, 30), 31);
    EXPECT_GT(forest.oobR2(), 0.95);
}

TEST(RandomForest, WarmStartAddsTrees)
{
    ForestConfig cfg;
    cfg.nEstimators = 10;
    RandomForestRegressor forest(cfg);
    const auto data = linearData(200, 40);
    forest.fit(data, 41);
    EXPECT_EQ(forest.treeCount(), 10u);

    auto grown = data;
    grown.append(linearData(100, 42));
    forest.warmStart(grown, 5, 43);
    EXPECT_EQ(forest.treeCount(), 15u);
    // Still accurate after the warm start.
    EXPECT_NEAR(forest.predictScalar({5.0, 1.0}), 15.0, 1.0);
}

TEST(RandomForest, WarmStartRejectsShapeChange)
{
    RandomForestRegressor forest;
    forest.fit(linearData(100, 50), 51);
    Dataset other(3, 1);
    other.add({1.0, 2.0, 3.0}, 4.0);
    EXPECT_THROW(forest.warmStart(other, 2, 52), FatalError);
}

TEST(RandomForest, WarmStartOnUntrainedForestTrainsFromScratch)
{
    ForestConfig cfg;
    cfg.nEstimators = 10;
    RandomForestRegressor forest(cfg);
    EXPECT_FALSE(forest.trained());

    forest.warmStart(linearData(300, 55), 6, 56);
    EXPECT_TRUE(forest.trained());
    // The extra trees are the whole ensemble; nEstimators is only
    // the fit() batch size.
    EXPECT_EQ(forest.treeCount(), 6u);
    EXPECT_NEAR(forest.predictScalar({5.0, 1.0}), 15.0, 1.5);
    // Shape is locked in by the warm start.
    Dataset other(3, 1);
    other.add({1.0, 2.0, 3.0}, 4.0);
    EXPECT_THROW(forest.warmStart(other, 2, 57), FatalError);
}

TEST(RandomForest, WarmStartRejectsZeroExtraTrees)
{
    RandomForestRegressor forest;
    const auto data = linearData(100, 58);
    // Zero extra trees is invalid whether or not the forest has been
    // fit — a no-op "retrain" would silently report stale accuracy.
    EXPECT_THROW(forest.warmStart(data, 0, 59), FatalError);
    forest.fit(data, 60);
    EXPECT_THROW(forest.warmStart(data, 0, 61), FatalError);
}

TEST(RandomForest, OobR2ImprovesAsAppendedDataGrows)
{
    // The warm-start story of Section 3.3.4: the original batch is
    // noisy, the appended runtime gauges are cleaner and more
    // plentiful, so each warm start's OOB R^2 (computed over the
    // union) must climb monotonically.
    auto noisy = [](std::size_t n, std::uint64_t seed, double sd) {
        Rng rng(seed);
        Dataset data(2, 1);
        for (std::size_t i = 0; i < n; ++i) {
            const double x0 = rng.uniform(0.0, 10.0);
            const double x1 = rng.uniform(0.0, 10.0);
            data.add({x0, x1}, 3.0 * x0 + rng.normal(0.0, sd));
        }
        return data;
    };

    ForestConfig cfg;
    cfg.nEstimators = 15;
    RandomForestRegressor forest(cfg);
    auto data = noisy(40, 62, 8.0);
    forest.fit(data, 63);
    const double before = forest.oobR2();
    ASSERT_FALSE(std::isnan(before));

    data.append(noisy(300, 64, 0.5));
    forest.warmStart(data, 15, 65);
    const double mid = forest.oobR2();
    ASSERT_FALSE(std::isnan(mid));
    EXPECT_GT(mid, before);

    data.append(noisy(600, 66, 0.5));
    forest.warmStart(data, 15, 67);
    const double after = forest.oobR2();
    ASSERT_FALSE(std::isnan(after));
    EXPECT_GT(after, mid);
}

TEST(RandomForest, FeatureImportancesNormalized)
{
    RandomForestRegressor forest;
    forest.fit(linearData(300, 60), 61);
    const auto imp = forest.featureImportances();
    ASSERT_EQ(imp.size(), 2u);
    EXPECT_NEAR(imp[0] + imp[1], 1.0, 1e-9);
    EXPECT_GT(imp[0], 0.95);
}

TEST(RandomForest, DeterministicForSameSeed)
{
    const auto data = linearData(200, 70);
    ForestConfig cfg;
    cfg.nEstimators = 8;
    RandomForestRegressor a(cfg), b(cfg);
    a.fit(data, 71);
    b.fit(data, 71);
    for (double x : {1.0, 5.0, 9.0})
        EXPECT_DOUBLE_EQ(a.predictScalar({x, 0.0}),
                         b.predictScalar({x, 0.0}));
}

// ---- compiled forest -----------------------------------------------------------

namespace {

/** Random feature rows matching linearData's 2-feature shape. */
std::vector<double>
randomRows(std::size_t rows, std::size_t features, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> X(rows * features);
    for (auto &v : X)
        v = rng.uniform(-2.0, 12.0);
    return X;
}

} // namespace

TEST(CompiledForest, BitIdenticalToReferenceOnRandomInputs)
{
    ForestConfig cfg;
    cfg.nEstimators = 40;
    RandomForestRegressor forest(cfg);
    forest.fit(linearData(400, 80), 81);

    const CompiledForest &compiled = forest.compiled();
    EXPECT_EQ(compiled.treeCount(), forest.treeCount());
    EXPECT_EQ(compiled.featureCount(), 2u);
    EXPECT_EQ(compiled.outputCount(), 1u);

    Rng rng(82);
    for (int i = 0; i < 200; ++i) {
        const std::vector<double> x = {rng.uniform(-5.0, 15.0),
                                       rng.uniform(-5.0, 15.0)};
        const auto ref = forest.predict(x);
        double out = 0.0;
        compiled.predictInto(x.data(), &out);
        // Exact equality: the compiled walk must be bit-identical to
        // the interpreted ensemble, not merely close.
        EXPECT_EQ(out, ref[0]);
    }
}

TEST(CompiledForest, InvalidatedAndRebuiltAfterWarmStartRegrow)
{
    ForestConfig cfg;
    cfg.nEstimators = 12;
    RandomForestRegressor forest(cfg);
    auto data = linearData(250, 83);
    forest.fit(data, 84);
    EXPECT_EQ(forest.compiled().treeCount(), 12u);

    data.append(linearData(100, 85));
    forest.warmStart(data, 6, 86);
    // The compiled snapshot must track the regrown ensemble, not the
    // stale 12-tree one.
    const CompiledForest &compiled = forest.compiled();
    ASSERT_EQ(compiled.treeCount(), 18u);

    Rng rng(87);
    for (int i = 0; i < 100; ++i) {
        const std::vector<double> x = {rng.uniform(0.0, 10.0),
                                       rng.uniform(0.0, 10.0)};
        double out = 0.0;
        compiled.predictInto(x.data(), &out);
        EXPECT_EQ(out, forest.predict(x)[0]);
    }
}

TEST(CompiledForest, MultiOutputLeavesMatchReference)
{
    Dataset data(1, 2);
    Rng gen(88);
    for (int i = 0; i < 300; ++i) {
        const double x = gen.uniform(0.0, 10.0);
        data.add({x}, {x, 2.0 * x + gen.normal(0.0, 0.1)});
    }
    ForestConfig cfg;
    cfg.nEstimators = 20;
    RandomForestRegressor forest(cfg);
    forest.fit(data, 89);

    const CompiledForest &compiled = forest.compiled();
    ASSERT_EQ(compiled.outputCount(), 2u);
    Rng rng(90);
    for (int i = 0; i < 100; ++i) {
        const std::vector<double> x = {rng.uniform(0.0, 10.0)};
        const auto ref = forest.predict(x);
        double out[2] = {0.0, 0.0};
        compiled.predictInto(x.data(), out);
        EXPECT_EQ(out[0], ref[0]);
        EXPECT_EQ(out[1], ref[1]);
    }
}

TEST(CompiledForest, PredictBatchSequentialParallelBitIdentical)
{
    ForestConfig cfg;
    cfg.nEstimators = 25;
    RandomForestRegressor forest(cfg);
    forest.fit(linearData(400, 91), 92);
    const CompiledForest &compiled = forest.compiled();

    // Enough rows to span many chunks on a multi-core pool.
    const std::size_t rows = 513;
    const auto X = randomRows(rows, 2, 93);
    std::vector<double> seq(rows, -1.0), par(rows, -2.0);
    compiled.predictBatch(X.data(), rows, seq.data(),
                          /*parallel=*/false);
    compiled.predictBatch(X.data(), rows, par.data(),
                          /*parallel=*/true);
    for (std::size_t r = 0; r < rows; ++r) {
        EXPECT_EQ(seq[r], par[r]);
        // And each batch row matches the single-row walk.
        double one = 0.0;
        compiled.predictInto(X.data() + 2 * r, &one);
        EXPECT_EQ(one, seq[r]);
    }
}

TEST(CompiledForest, CopiedForestSharesCompiledSnapshot)
{
    ForestConfig cfg;
    cfg.nEstimators = 8;
    RandomForestRegressor forest(cfg);
    forest.fit(linearData(150, 94), 95);

    const RandomForestRegressor copy = forest;
    const std::vector<double> x = {4.0, 2.0};
    EXPECT_EQ(copy.compiled().treeCount(), 8u);
    double a = 0.0, b = 0.0;
    forest.compiled().predictInto(x.data(), &a);
    copy.compiled().predictInto(x.data(), &b);
    EXPECT_EQ(a, b);
}

TEST(CompiledForest, EmptyForestPredictPanics)
{
    const CompiledForest compiled;
    EXPECT_TRUE(compiled.empty());
    double x = 1.0, y = 0.0;
    EXPECT_THROW(compiled.predictInto(&x, &y), PanicError);
    EXPECT_THROW(compiled.predictBatch(&x, 1, &y), PanicError);
}

// ---- metrics -------------------------------------------------------------------

TEST(Metrics, PerfectPrediction)
{
    const std::vector<double> y = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mae(y, y), 0.0);
    EXPECT_DOUBLE_EQ(rmse(y, y), 0.0);
    EXPECT_DOUBLE_EQ(r2(y, y), 1.0);
    EXPECT_DOUBLE_EQ(withinAbsolute(y, y, 0.0), 1.0);
    EXPECT_EQ(significantDifferences(y, y), 0u);
    EXPECT_DOUBLE_EQ(relativeAccuracyPct(y, y), 100.0);
}

TEST(Metrics, KnownValues)
{
    const std::vector<double> truth = {100.0, 200.0, 300.0};
    const std::vector<double> pred = {150.0, 200.0, 450.0};
    EXPECT_NEAR(mae(truth, pred), (50.0 + 0.0 + 150.0) / 3.0, 1e-12);
    EXPECT_EQ(significantDifferences(truth, pred, 100.0), 1u);
    EXPECT_NEAR(withinAbsolute(truth, pred, 50.0), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, SizeMismatchFails)
{
    EXPECT_THROW(mae({1.0}, {1.0, 2.0}), FatalError);
    EXPECT_THROW(r2({}, {}), FatalError);
}
