/**
 * @file
 * Tests for the storage / cost / monitor / GDA layers: HDFS skew,
 * query cost accounting, Eq. 1 (Table 2's exact figures), the
 * measurement plane, schedulers, workload factories, and the engine.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "cost/cost_model.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "monitor/features.hh"
#include "monitor/iftop.hh"
#include "monitor/measurement.hh"
#include "sched/kimchi.hh"
#include "sched/locality.hh"
#include "sched/tetrium.hh"
#include "storage/hdfs.hh"
#include "workloads/ml_quantization.hh"
#include "workloads/terasort.hh"
#include "workloads/tpcds.hh"
#include "workloads/wordcount.hh"

using namespace wanify;
using namespace wanify::experiments;

// ---- storage ---------------------------------------------------------------

TEST(Hdfs, UniformLoadSpreadsEvenly)
{
    const auto topo = workerCluster(4);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(units::gigabytes(1.0));
    const auto dist = hdfs.distribution();
    for (net::DcId d = 1; d < 4; ++d)
        EXPECT_NEAR(dist[d], dist[0], 1.0);
    EXPECT_NEAR(hdfs.totalBytes(),
                units::gigabytes(1.0) * hdfs.config().s3ReadOverhead,
                1.0e4);
}

TEST(Hdfs, BlocksRespectBlockSize)
{
    const auto topo = workerCluster(2);
    storage::HdfsConfig cfg;
    cfg.blockSize = units::megabytes(64.0);
    storage::HdfsStore hdfs(topo, cfg);
    hdfs.loadUniform(units::megabytes(200.0));
    for (const auto &block : hdfs.blocks())
        EXPECT_LE(block.size, cfg.blockSize);
    // 100 MB per DC -> 2 blocks = 64 + 36.
    EXPECT_EQ(hdfs.blockCount(), 4u);
}

TEST(Hdfs, SkewWeightsReflectDistribution)
{
    const auto topo = workerCluster(4);
    storage::HdfsStore hdfs(topo);
    hdfs.loadSkewed(units::gigabytes(1.0), {0.7, 0.1, 0.1, 0.1});
    const auto ws = hdfs.skewWeights();
    EXPECT_NEAR(ws[0], 2.8, 0.01); // 0.7 * 4
    EXPECT_NEAR(ws[1], 0.4, 0.01);
    // Uniform data -> all-ones weights.
    hdfs.loadUniform(units::gigabytes(1.0));
    for (double w : hdfs.skewWeights())
        EXPECT_NEAR(w, 1.0, 0.01);
}

TEST(Hdfs, SkewFractionsValidated)
{
    const auto topo = workerCluster(2);
    storage::HdfsStore hdfs(topo);
    EXPECT_THROW(hdfs.loadSkewed(1000.0, {0.6, 0.6}), FatalError);
    EXPECT_THROW(hdfs.loadSkewed(1000.0, {1.0}), FatalError);
}

// ---- cost --------------------------------------------------------------------

TEST(Cost, Table2RuntimeMonitoringExact)
{
    // Eq. 1 with the paper's parameters reproduces Table 2's runtime
    // column: $703 / $1055 / $1406.
    cost::MonitoringCostParams p;
    p.occurrencesPerYear = cost::occurrencesPerYear(30.0);
    p.perInstanceSecond = 0.0052 / 3600.0;
    p.duration = 20.0;
    p.perInstanceNetwork =
        cost::monitoringNetworkCost(200.0, 20.0, 0.02);

    p.nodes = 4;
    EXPECT_NEAR(cost::annualMonitoringCost(p), 703.0, 2.0);
    p.nodes = 6;
    EXPECT_NEAR(cost::annualMonitoringCost(p), 1055.0, 2.0);
    p.nodes = 8;
    EXPECT_NEAR(cost::annualMonitoringCost(p), 1406.0, 2.0);
}

TEST(Cost, NetworkCostUsesSourceEgressPricing)
{
    const auto topo = workerCluster(8);
    const cost::CostModel model(topo);
    Matrix<Bytes> bytes = Matrix<Bytes>::square(8, 0.0);
    bytes.at(0, 1) = 1.0e9; // 1 GB out of us-east at $0.02
    bytes.at(7, 0) = 1.0e9; // 1 GB out of sa-east at $0.138
    EXPECT_NEAR(model.networkCost(bytes), 0.02 + 0.138, 1e-9);
}

TEST(Cost, ComputeCostIncludesBurstSurcharge)
{
    const auto topo = workerCluster(2);
    const cost::CostModel model(topo);
    // t2.medium: $0.0464/h + 2 vCPU * $0.05/h = $0.1464/h.
    EXPECT_NEAR(model.vmComputeCost(0, 3600.0), 0.1464, 1e-6);
}

TEST(Cost, QueryBreakdownSumsComponents)
{
    const auto topo = workerCluster(2);
    const cost::CostModel model(topo);
    Matrix<Bytes> bytes = Matrix<Bytes>::square(2, 0.0);
    bytes.at(0, 1) = 5.0e8;
    const auto breakdown = model.queryCost(600.0, bytes, 10.0);
    EXPECT_GT(breakdown.compute, 0.0);
    EXPECT_GT(breakdown.network, 0.0);
    EXPECT_GT(breakdown.storage, 0.0);
    EXPECT_NEAR(breakdown.total(),
                breakdown.compute + breakdown.network +
                    breakdown.storage,
                1e-12);
}

// ---- monitor ---------------------------------------------------------------------

TEST(Measurement, IndependentMatchesSingleConnCaps)
{
    const auto topo = monitoringCluster(4);
    const auto simCfg = quietSimConfig();
    const monitor::MeasurementConfig mc;
    const auto bw =
        monitor::staticIndependentBw(topo, simCfg, mc, 1);
    for (net::DcId i = 0; i < 4; ++i) {
        for (net::DcId j = 0; j < 4; ++j) {
            if (i == j)
                continue;
            EXPECT_NEAR(bw.at(i, j), topo.connCap(i, j),
                        0.02 * topo.connCap(i, j));
        }
    }
}

TEST(Measurement, SimultaneousIsContended)
{
    const auto topo = monitoringCluster(8);
    const auto simCfg = quietSimConfig();
    const monitor::MeasurementConfig mc;
    const auto indep =
        monitor::staticIndependentBw(topo, simCfg, mc, 1);
    const auto simult =
        monitor::staticSimultaneousBw(topo, simCfg, mc, 1);
    // Contention can only hold a pair at or below its solo BW.
    std::size_t reduced = 0;
    for (net::DcId i = 0; i < 8; ++i) {
        for (net::DcId j = 0; j < 8; ++j) {
            if (i == j)
                continue;
            EXPECT_LE(simult.at(i, j), indep.at(i, j) * 1.02);
            reduced += simult.at(i, j) < 0.9 * indep.at(i, j);
        }
    }
    EXPECT_GT(reduced, 10u); // many pairs materially degraded
}

TEST(Measurement, SnapshotCorrelatesWithStable)
{
    // Section 2.2: 1-second snapshots have positive Pearson
    // correlation with >= 20-second stable BWs.
    const auto topo = monitoringCluster(6);
    net::NetworkSim sim(topo, defaultSimConfig(), 99);
    sim.advanceBy(20.0);
    monitor::MeshMeasurer measurer(sim);
    Rng rng(7);
    monitor::MeasurementConfig mc;
    const auto snap = measurer.snapshot(mc, rng);
    const auto stable = measurer.measureSimultaneous(20.0, 1);
    std::vector<double> xs, ys;
    for (net::DcId i = 0; i < 6; ++i) {
        for (net::DcId j = 0; j < 6; ++j) {
            if (i == j)
                continue;
            xs.push_back(snap.at(i, j));
            ys.push_back(stable.at(i, j));
        }
    }
    EXPECT_GT(stats::pearson(xs, ys), 0.8);
}

TEST(IfTop, WindowAveragesMatchMovedBytes)
{
    const auto topo = monitoringCluster(2);
    net::NetworkSim sim(topo, quietSimConfig(), 1);
    monitor::IfTop iftop(sim, 0);
    sim.startMeasurement(topo.dc(0).vms.front(),
                         topo.dc(1).vms.front(), 1);
    iftop.beginWindow();
    sim.advanceBy(5.0);
    const auto rates = iftop.endWindow();
    EXPECT_NEAR(rates[1], 1718.8, 30.0);
    EXPECT_DOUBLE_EQ(rates[0], 0.0);
}

TEST(Features, TableThreeLayout)
{
    const auto topo = monitoringCluster(4);
    const Matrix<Mbps> snap = Matrix<Mbps>::square(4, 321.0);
    monitor::HostLoad load;
    load.memUtil = 0.5;
    load.cpuLoad = 0.25;
    const auto f =
        monitor::pairFeatures(topo, snap, 0, 2, load, 0.1);
    ASSERT_EQ(f.size(), monitor::kFeatureCount);
    EXPECT_DOUBLE_EQ(f[monitor::FeatN], 4.0);
    EXPECT_DOUBLE_EQ(f[monitor::FeatSnapshotBw], 321.0);
    EXPECT_DOUBLE_EQ(f[monitor::FeatMemUtil], 0.5);
    EXPECT_DOUBLE_EQ(f[monitor::FeatCpuLoad], 0.25);
    EXPECT_DOUBLE_EQ(f[monitor::FeatRetrans], 0.1);
    EXPECT_NEAR(f[monitor::FeatDistance],
                units::toMiles(topo.distanceKm(0, 2)), 1e-6);
}

// ---- schedulers -------------------------------------------------------------------

namespace {

gda::StageContext
contextFor(const net::Topology &topo, const Matrix<Mbps> &bw,
           const gda::StageSpec &stage, std::vector<Bytes> input,
           std::size_t stageIndex)
{
    gda::StageContext ctx;
    ctx.topo = &topo;
    ctx.bw = &bw;
    ctx.inputByDc = std::move(input);
    ctx.stage = &stage;
    ctx.stageIndex = stageIndex;
    ctx.computeRate.assign(topo.dcCount(), 0.0);
    ctx.egressPrice.assign(topo.dcCount(), 0.0);
    for (net::DcId d = 0; d < topo.dcCount(); ++d) {
        for (net::VmId v : topo.dc(d).vms)
            ctx.computeRate[d] += topo.vm(v).type.computeRate;
        ctx.egressPrice[d] = topo.dc(d).region.egressPerGb;
    }
    return ctx;
}

} // namespace

TEST(Schedulers, AssignmentsConserveInput)
{
    const auto topo = workerCluster(4);
    const Matrix<Mbps> bw = Matrix<Mbps>::square(4, 500.0);
    const gda::StageSpec stage{"s", 1.0, 0.05, true};
    const std::vector<Bytes> input = {4.0e9, 1.0e9, 2.0e9, 3.0e9};

    sched::LocalityScheduler locality;
    sched::TetriumScheduler tetrium;
    sched::KimchiScheduler kimchi;
    for (gda::Scheduler *sched :
         {static_cast<gda::Scheduler *>(&locality),
          static_cast<gda::Scheduler *>(&tetrium),
          static_cast<gda::Scheduler *>(&kimchi)}) {
        const auto ctx = contextFor(topo, bw, stage, input, 1);
        const auto a = sched->placeStage(ctx);
        for (std::size_t i = 0; i < 4; ++i) {
            Bytes rowSum = 0.0;
            for (std::size_t j = 0; j < 4; ++j) {
                EXPECT_GE(a.at(i, j), -1.0);
                rowSum += a.at(i, j);
            }
            EXPECT_NEAR(rowSum, input[i], 1.0) << sched->name();
        }
    }
}

TEST(Schedulers, LocalityMapStageStaysLocal)
{
    const auto topo = workerCluster(3);
    const Matrix<Mbps> bw = Matrix<Mbps>::square(3, 500.0);
    const gda::StageSpec stage{"map", 1.0, 0.05, true};
    sched::LocalityScheduler locality;
    const auto ctx = contextFor(topo, bw, stage,
                                {1.0e9, 2.0e9, 3.0e9}, 0);
    const auto a = locality.placeStage(ctx);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(a.at(i, j), i == j ? ctx.inputByDc[i]
                                                : 0.0);
}

TEST(Schedulers, TetriumAvoidsWeakInboundDc)
{
    const auto topo = workerCluster(3);
    // DC 2's inbound links are terrible.
    Matrix<Mbps> bw = Matrix<Mbps>::square(3, 1000.0);
    bw.at(0, 2) = bw.at(1, 2) = 10.0;
    const gda::StageSpec stage{"reduce", 1.0, 0.001, true};
    sched::TetriumScheduler tetrium;
    const auto ctx = contextFor(topo, bw, stage,
                                {3.0e9, 3.0e9, 3.0e9}, 1);
    const auto a = tetrium.placeStage(ctx);
    // Work shipped INTO DC 2 should be far less than into DC 0.
    Bytes into2 = a.at(0, 2) + a.at(1, 2);
    Bytes into0 = a.at(1, 0) + a.at(2, 0);
    EXPECT_LT(into2, 0.5 * into0);
}

TEST(Schedulers, KimchiPrefersCheapEgress)
{
    const auto topo = workerCluster(8);
    const Matrix<Mbps> bw = Matrix<Mbps>::square(8, 800.0);
    const gda::StageSpec stage{"reduce", 1.0, 0.001, true};
    // All input sits in Sao Paulo (egress $0.138/GB).
    std::vector<Bytes> input(8, 0.0);
    input[7] = 8.0e9;

    sched::KimchiScheduler cheap(600.0);
    sched::TetriumScheduler latencyOnly;
    const auto ctxK = contextFor(topo, bw, stage, input, 1);
    const auto aK = cheap.placeStage(ctxK);
    const auto ctxT = contextFor(topo, bw, stage, input, 1);
    const auto aT = latencyOnly.placeStage(ctxT);

    const auto ctxCost = contextFor(topo, bw, stage, input, 1);
    EXPECT_LT(gda::estimateStageCost(ctxCost, aK),
              gda::estimateStageCost(ctxCost, aT) + 1e-9);
    // Kimchi keeps more of the expensive-egress data at home.
    EXPECT_GE(aK.at(7, 7), aT.at(7, 7) - 1.0);
}

// ---- workloads ---------------------------------------------------------------------

TEST(Workloads, TeraSortShuffleEqualsInput)
{
    const auto job = workloads::teraSort(10.0);
    EXPECT_EQ(job.stages.size(), 2u);
    EXPECT_DOUBLE_EQ(job.stages[0].selectivity, 1.0);
    EXPECT_DOUBLE_EQ(job.stages[1].selectivity, 1.0);
    EXPECT_NEAR(job.inputBytes, units::gigabytes(10.0), 1.0);
}

TEST(Workloads, WordCountIntermediateControlled)
{
    const auto job = workloads::wordCount(600.0, 120.0);
    EXPECT_NEAR(job.stages[0].selectivity, 0.2, 1e-9);
    EXPECT_THROW(workloads::wordCount(0.0, 1.0), FatalError);
}

TEST(Workloads, TpcDsClassesOrderedByWeight)
{
    using workloads::TpcDsQuery;
    const auto q82 = workloads::tpcDsQuery(TpcDsQuery::Q82);
    const auto q78 = workloads::tpcDsQuery(TpcDsQuery::Q78);
    // The heavy query moves more intermediate data overall.
    auto shuffleVolume = [](const gda::JobSpec &job) {
        double total = 0.0, size = 1.0;
        for (const auto &s : job.stages) {
            size *= s.selectivity;
            total += size;
        }
        return total;
    };
    EXPECT_GT(shuffleVolume(q78), 5.0 * shuffleVolume(q82));
    EXPECT_EQ(workloads::queryWeight(TpcDsQuery::Q82),
              workloads::QueryWeight::Light);
    EXPECT_EQ(workloads::queryWeight(TpcDsQuery::Q78),
              workloads::QueryWeight::Heavy);
    EXPECT_EQ(workloads::allQueries().size(), 4u);
}

TEST(Workloads, QuantizationBitsFollowBw)
{
    EXPECT_EQ(workloads::quantizationBits(50.0), 8);
    EXPECT_EQ(workloads::quantizationBits(250.0), 16);
    EXPECT_EQ(workloads::quantizationBits(800.0), 32);
}

// ---- engine ------------------------------------------------------------------------

namespace {

gda::QueryResult
runTeraSortOnce(core::Wanify *wanify, int conns,
                std::uint64_t seed = 5150)
{
    const auto topo = workerCluster(4);
    const auto job = workloads::teraSort(8.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    sched::LocalityScheduler locality;

    gda::Engine engine(topo, defaultSimConfig(), seed);
    gda::RunOptions opts;
    opts.schedulerBw = monitor::staticIndependentBw(
        topo, quietSimConfig(), monitor::MeasurementConfig{}, 3);
    opts.wanify = wanify;
    if (conns > 0)
        opts.staticConnections = Matrix<int>::square(4, conns);
    return engine.run(job, hdfs.distribution(), locality, opts);
}

} // namespace

TEST(Engine, ProducesSaneQueryResult)
{
    const auto result = runTeraSortOnce(nullptr, 1);
    EXPECT_GT(result.latency, 10.0);
    EXPECT_LT(result.latency, 3600.0);
    EXPECT_GT(result.cost.total(), 0.0);
    EXPECT_GT(result.minObservedBw, 0.0);
    ASSERT_EQ(result.stages.size(), 2u);
    // TeraSort reduce shuffles 3/4 of the data across the WAN.
    EXPECT_NEAR(result.stages[1].wanBytes,
                units::gigabytes(8.0) * 1.03 * 0.75, 2.0e8);
    EXPECT_GT(result.stages[1].end, result.stages[1].start);
}

TEST(Engine, WanBytesMatchPairAccounting)
{
    const auto result = runTeraSortOnce(nullptr, 1);
    Bytes total = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            total += result.wanBytesByPair.at(i, j);
    Bytes fromStages = 0.0;
    for (const auto &s : result.stages)
        fromStages += s.wanBytes;
    EXPECT_NEAR(total, fromStages, 1.0e6);
}

TEST(Engine, ParallelConnectionsReduceLatency)
{
    const auto single = runTeraSortOnce(nullptr, 1);
    const auto parallel = runTeraSortOnce(nullptr, 4);
    EXPECT_LT(parallel.latency, single.latency);
    EXPECT_GT(parallel.minObservedBw, single.minObservedBw);
}

TEST(Engine, DeterministicForSameSeed)
{
    const auto a = runTeraSortOnce(nullptr, 2, 777);
    const auto b = runTeraSortOnce(nullptr, 2, 777);
    EXPECT_DOUBLE_EQ(a.latency, b.latency);
    EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
}

TEST(Engine, RejectsBadInputs)
{
    const auto topo = workerCluster(2);
    gda::Engine engine(topo, quietSimConfig(), 1);
    sched::LocalityScheduler locality;
    gda::JobSpec empty;
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(2, 100.0);
    EXPECT_THROW(engine.run(empty, {1.0, 1.0}, locality, opts),
                 FatalError);
    const auto job = workloads::teraSort(1.0);
    EXPECT_THROW(engine.run(job, {1.0}, locality, opts), FatalError);
}

// ---- ML workload ----------------------------------------------------------------------

TEST(MlQuantization, QuantizedTrainingIsFasterThanFullPrecision)
{
    const auto topo = workerCluster(4);
    workloads::MlModelSpec spec;
    spec.epochs = 2;
    spec.syncsPerEpoch = 150;
    const workloads::MlQuantizationJob job(spec);

    const auto noq = job.run(topo, defaultSimConfig(), 9,
                             std::nullopt, nullptr);
    // Quantize from a pessimistic matrix -> all links coarse.
    const Matrix<Mbps> slow = Matrix<Mbps>::square(4, 50.0);
    const auto quant =
        job.run(topo, defaultSimConfig(), 9, slow, nullptr);

    EXPECT_LT(quant.trainingTime, noq.trainingTime);
    EXPECT_LT(quant.cost.network, noq.cost.network);
    EXPECT_EQ(noq.epochTimes.size(), 2u);
    EXPECT_GT(quant.testAccuracy, 96.0);
}
