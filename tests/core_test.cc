/**
 * @file
 * Tests for the WANify core: Algorithm 1 (against the paper's worked
 * example), the Eq. 2/3 global optimizer (against the paper's worked
 * example), AIMD local optimization, throttling, drift detection,
 * heterogeneity handling, and the facade.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "core/bw.hh"
#include "core/dc_relations.hh"
#include "core/drift.hh"
#include "core/global_optimizer.hh"
#include "core/heterogeneity.hh"
#include "core/local_optimizer.hh"
#include "core/predictor.hh"
#include "core/throttle.hh"
#include "core/wanify.hh"
#include "monitor/features.hh"
#include "net/network_sim.hh"
#include "net/vm.hh"

using namespace wanify;
using namespace wanify::core;

namespace {

/** The paper's Algorithm 1 worked example. */
BwMatrix
paperExample()
{
    return BwMatrix{{1000.0, 400.0, 120.0},
                    {380.0, 1000.0, 130.0},
                    {110.0, 120.0, 1000.0}};
}

} // namespace

// ---- Algorithm 1 --------------------------------------------------------------

TEST(DcRelations, PaperWorkedExample)
{
    // bwu filtered by D=30 -> {110, 380, 1000}; closeness: 1000 -> 1,
    // {400, 380} -> 2, {130, 120, 110} -> 3.
    const auto rel = inferDcRelations(paperExample(), 30.0);
    const Matrix<int> expected{{1, 2, 3}, {2, 1, 3}, {3, 3, 1}};
    EXPECT_EQ(rel, expected);
}

TEST(DcRelations, AllEqualBwsCollapseToOneLevel)
{
    const BwMatrix bw = BwMatrix::square(3, 500.0);
    const auto rel = inferDcRelations(bw, 30.0);
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(rel.at(i, j), 1);
}

TEST(DcRelations, ZeroMinDifferenceKeepsEveryLevel)
{
    const auto rel = inferDcRelations(paperExample(), 0.0);
    // 6 unique values -> closeness indices span 1..6.
    int maxRel = 0;
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            maxRel = std::max(maxRel, rel.at(i, j));
    EXPECT_EQ(maxRel, 6);
}

TEST(DcRelations, MonotoneInBandwidth)
{
    // Larger BW never gets a larger (farther) closeness index.
    const auto bw = paperExample();
    const auto rel = inferDcRelations(bw, 30.0);
    for (std::size_t a = 0; a < 9; ++a) {
        for (std::size_t b = 0; b < 9; ++b) {
            const auto ai = a / 3, aj = a % 3;
            const auto bi = b / 3, bj = b % 3;
            if (bw.at(ai, aj) > bw.at(bi, bj))
                EXPECT_LE(rel.at(ai, aj), rel.at(bi, bj));
        }
    }
}

TEST(DcRelations, RejectsBadInputs)
{
    EXPECT_THROW(inferDcRelations(BwMatrix(2, 3, 1.0), 30.0),
                 FatalError);
    EXPECT_THROW(inferDcRelations(BwMatrix::square(1, 1.0), 30.0),
                 FatalError);
    EXPECT_THROW(inferDcRelations(paperExample(), -1.0), FatalError);
}

// ---- global optimizer -----------------------------------------------------------

TEST(GlobalOptimizer, PaperWorkedExampleEq3)
{
    // M = 8, DCrel from the example: minCons all ones; maxCons
    // off-diagonal {6 for rel 2, 8 for rel 3} (the paper's example
    // applies the formula to diagonals too — the equation text says 1
    // for i = j, which we follow; see DESIGN.md).
    GlobalOptimizerConfig cfg;
    cfg.maxConnections = 8;
    cfg.minDifference = 30.0;
    const GlobalOptimizer optimizer(cfg);
    const auto plan = optimizer.optimize(paperExample());

    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_EQ(plan.minCons.at(i, j), 1);

    EXPECT_EQ(plan.maxCons.at(0, 1), 6);
    EXPECT_EQ(plan.maxCons.at(1, 0), 6);
    EXPECT_EQ(plan.maxCons.at(0, 2), 8);
    EXPECT_EQ(plan.maxCons.at(1, 2), 8);
    EXPECT_EQ(plan.maxCons.at(2, 0), 8);
    EXPECT_EQ(plan.maxCons.at(2, 1), 8);
    for (std::size_t i = 0; i < 3; ++i)
        EXPECT_EQ(plan.maxCons.at(i, i), 1);
}

TEST(GlobalOptimizer, AchievableBwIsLinearInConnections)
{
    const GlobalOptimizer optimizer;
    const auto plan = optimizer.optimize(paperExample());
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_NEAR(plan.maxBw.at(i, j),
                        paperExample().at(i, j) *
                            plan.maxCons.at(i, j),
                        1e-9);
        }
    }
}

TEST(GlobalOptimizer, InvariantsOverRandomMatrices)
{
    Rng rng(99);
    const GlobalOptimizer optimizer;
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 2 + rng.uniformInt(0, 6);
        BwMatrix bw = BwMatrix::square(n, 0.0);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < n; ++j)
                bw.at(i, j) =
                    i == j ? 5000.0 : rng.uniform(20.0, 2000.0);
        const auto plan = optimizer.optimize(bw);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                EXPECT_GE(plan.minCons.at(i, j), 1);
                EXPECT_LE(plan.minCons.at(i, j),
                          plan.maxCons.at(i, j));
                EXPECT_LE(plan.minBw.at(i, j),
                          plan.maxBw.at(i, j) + 1e-9);
            }
            EXPECT_EQ(plan.maxCons.at(i, i), 1);
        }
    }
}

TEST(GlobalOptimizer, DistantPairsGetMoreConnections)
{
    const GlobalOptimizer optimizer;
    const auto plan = optimizer.optimize(paperExample());
    // Weak pairs (rel 3) must not get fewer connections than strong
    // off-diagonal pairs (rel 2).
    EXPECT_GT(plan.maxCons.at(0, 2), plan.maxCons.at(0, 1) - 1);
    EXPECT_GE(plan.maxCons.at(2, 0), plan.maxCons.at(1, 0));
}

TEST(GlobalOptimizer, SkewWeightsReallocateNotInflate)
{
    const GlobalOptimizer optimizer;
    const auto base = optimizer.optimize(paperExample());
    const std::vector<double> ws = {2.0, 0.5, 0.5};
    const auto skewed = optimizer.optimize(paperExample(), ws);

    for (std::size_t i = 0; i < 3; ++i) {
        int baseRow = 0, skewRow = 0;
        for (std::size_t j = 0; j < 3; ++j) {
            if (i == j)
                continue;
            baseRow += base.maxCons.at(i, j);
            skewRow += skewed.maxCons.at(i, j);
        }
        // Row budget approximately preserved (rounding slack of 2).
        EXPECT_NEAR(skewRow, baseRow, 2.0);
    }
    // Links touching the skewed DC 0 gained priority.
    EXPECT_GE(skewed.maxCons.at(1, 0), base.maxCons.at(1, 0));
    EXPECT_GE(skewed.maxCons.at(2, 0), base.maxCons.at(2, 0));
}

TEST(GlobalOptimizer, RvecScalesBw)
{
    const GlobalOptimizer optimizer;
    Matrix<double> rvec = Matrix<double>::square(3, 0.5);
    const auto plan = optimizer.optimize(paperExample(), {}, rvec);
    const auto base = optimizer.optimize(paperExample());
    for (std::size_t i = 0; i < 3; ++i)
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_NEAR(plan.maxBw.at(i, j),
                        0.5 * base.maxBw.at(i, j), 1e-9);
}

// ---- gap accounting ---------------------------------------------------------------

TEST(BwGaps, CountAndHistogram)
{
    BwMatrix a = BwMatrix::square(3, 500.0);
    BwMatrix b = a;
    b.at(0, 1) = 650.0;  // gap 150 -> low bin
    b.at(1, 2) = 730.0;  // gap 230 -> mid bin
    b.at(2, 0) = 900.0;  // gap 400 -> high bin
    b.at(2, 2) = 9999.0; // diagonal ignored
    EXPECT_EQ(countSignificantGaps(a, b), 3u);
    const auto hist = gapHistogram(a, b);
    EXPECT_EQ(hist.low, 1u);
    EXPECT_EQ(hist.mid, 1u);
    EXPECT_EQ(hist.high, 1u);
    EXPECT_EQ(hist.total(), 3u);
}

// ---- AIMD local optimizer -----------------------------------------------------------

namespace {

GlobalPlan
planFor(const BwMatrix &bw)
{
    GlobalOptimizerConfig cfg;
    cfg.minDifference = 30.0;
    return GlobalOptimizer(cfg).optimize(bw);
}

std::vector<Mbps>
row(const BwMatrix &bw, std::size_t i)
{
    std::vector<Mbps> r(bw.cols());
    for (std::size_t j = 0; j < bw.cols(); ++j)
        r[j] = bw.at(i, j);
    return r;
}

} // namespace

TEST(LocalOptimizer, StartsAtMaximumConfiguration)
{
    const auto bw = paperExample();
    const auto plan = planFor(bw);
    LocalOptimizer opt(0, plan, row(bw, 0));
    for (std::size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(opt.targetConnections(j), plan.maxCons.at(0, j));
        EXPECT_DOUBLE_EQ(opt.targetBw(j), plan.maxBw.at(0, j));
    }
}

TEST(LocalOptimizer, MultiplicativeDecreaseOnCongestion)
{
    const auto bw = paperExample();
    const auto plan = planFor(bw);
    LocalOptimizer opt(0, plan, row(bw, 0));

    const int consBefore = opt.targetConnections(2);
    const Mbps bwBefore = opt.targetBw(2);
    // Monitored far below target on destination 2 -> decrease.
    std::vector<Mbps> monitored = {0.0, 5000.0, 10.0};
    std::vector<Bytes> pending(3, 1.0e9);
    opt.epochUpdate(monitored, pending);

    EXPECT_EQ(opt.lastMode(2), AimdMode::Decrease);
    EXPECT_LE(opt.targetConnections(2), std::max(1, consBefore / 2));
    EXPECT_LE(opt.targetBw(2), bwBefore / 2.0 + 1e-9);
}

TEST(LocalOptimizer, DecreaseFloorsAtMinimum)
{
    const auto bw = paperExample();
    const auto plan = planFor(bw);
    LocalOptimizer opt(0, plan, row(bw, 0));
    std::vector<Mbps> monitored = {0.0, 0.0, 0.0};
    std::vector<Bytes> pending(3, 1.0e9);
    for (int e = 0; e < 12; ++e)
        opt.epochUpdate(monitored, pending);
    EXPECT_EQ(opt.targetConnections(2), plan.minCons.at(0, 2));
    EXPECT_DOUBLE_EQ(opt.targetBw(2), plan.minBw.at(0, 2));
}

TEST(LocalOptimizer, AdditiveIncreaseTowardMaximum)
{
    const auto bw = paperExample();
    const auto plan = planFor(bw);
    LocalOptimizer opt(0, plan, row(bw, 0));
    std::vector<Bytes> pending(3, 1.0e9);

    // Push destination 2 down...
    std::vector<Mbps> congested = {0.0, 5000.0, 10.0};
    opt.epochUpdate(congested, pending);
    opt.epochUpdate(congested, pending);
    const int low = opt.targetConnections(2);

    // ...then recover: monitored matches the target.
    for (int e = 0; e < 10; ++e) {
        std::vector<Mbps> healthy = {0.0, 5000.0, opt.targetBw(2)};
        opt.epochUpdate(healthy, pending);
    }
    EXPECT_GT(opt.targetConnections(2), low);
    EXPECT_EQ(opt.targetConnections(2), plan.maxCons.at(0, 2));
}

TEST(LocalOptimizer, SkipsTinyTransfers)
{
    const auto bw = paperExample();
    const auto plan = planFor(bw);
    LocalOptimizer opt(0, plan, row(bw, 0));
    const int before = opt.targetConnections(2);
    std::vector<Mbps> congested = {0.0, 0.0, 1.0};
    std::vector<Bytes> pending = {0.0, 0.0, 1000.0}; // < 1 MB
    opt.epochUpdate(congested, pending);
    EXPECT_EQ(opt.lastMode(2), AimdMode::Skipped);
    EXPECT_EQ(opt.targetConnections(2), before);
}

// ---- throttling --------------------------------------------------------------------

TEST(Throttle, CapsOnlyBwRichDestinations)
{
    const auto topo = net::TopologyBuilder::paperTestbed(
        3, net::VmTypeCatalog::t3nano());
    net::NetworkSimConfig cfg;
    cfg.fluctuation.enabled = false;
    net::NetworkSim sim(topo, cfg, 1);

    // Row 0: mean of {900, 100} = 500 -> only dest 1 capped.
    BwMatrix achievable{{5000.0, 900.0, 100.0},
                        {900.0, 5000.0, 100.0},
                        {100.0, 100.0, 5000.0}};
    ThrottleController throttle;
    const auto limits = throttle.apply(sim, achievable);
    EXPECT_NEAR(throttle.threshold(0), 500.0, 1e-9);
    EXPECT_NEAR(limits.at(0, 1), 500.0, 1e-9);
    EXPECT_DOUBLE_EQ(limits.at(0, 2), 0.0);

    // The cap binds in the simulator.
    const auto id = sim.startMeasurement(topo.dc(0).vms.front(),
                                         topo.dc(1).vms.front(), 4);
    sim.advanceBy(1.0);
    EXPECT_NEAR(sim.transferRate(id), 500.0, 1.0);

    throttle.clear(sim);
    sim.advanceBy(1.0);
    EXPECT_GT(sim.transferRate(id), 1000.0);
}

// ---- drift detection -----------------------------------------------------------------

TEST(Drift, FlagsAfterPersistentErrors)
{
    DriftConfig cfg;
    cfg.minObservations = 8;
    cfg.windowSize = 16;
    cfg.retrainFraction = 0.5;
    ModelDriftDetector detector(cfg);

    for (int i = 0; i < 8; ++i)
        detector.record(500.0, 510.0); // fine
    EXPECT_FALSE(detector.needsRetraining());

    for (int i = 0; i < 8; ++i)
        detector.record(500.0, 900.0); // significant
    EXPECT_TRUE(detector.needsRetraining());
    EXPECT_NEAR(detector.errorFraction(), 0.5, 1e-9);

    detector.reset();
    EXPECT_FALSE(detector.needsRetraining());
    EXPECT_EQ(detector.observations(), 0u);
}

TEST(Drift, SlidingWindowForgetsOldErrors)
{
    DriftConfig cfg;
    cfg.minObservations = 4;
    cfg.windowSize = 8;
    cfg.retrainFraction = 0.4;
    ModelDriftDetector detector(cfg);
    for (int i = 0; i < 8; ++i)
        detector.record(0.0, 500.0);
    EXPECT_TRUE(detector.needsRetraining());
    for (int i = 0; i < 8; ++i)
        detector.record(500.0, 500.0);
    EXPECT_FALSE(detector.needsRetraining());
}

// ---- heterogeneity ----------------------------------------------------------------------

TEST(Heterogeneity, IdentityRvecIsAllOnes)
{
    const auto rvec = identityRvec(4);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(rvec.at(i, j), 1.0);
}

TEST(Heterogeneity, ProviderRvecScalesWeakerEndpoints)
{
    net::TopologyBuilder builder;
    builder.addDc(net::RegionCatalog::byId("us-east-1"),
                  net::VmTypeCatalog::m5large()); // wan 5000
    builder.addDc(net::RegionCatalog::byId("eu-west-1"),
                  net::VmTypeCatalog::t2medium()); // wan 2000
    const auto topo = builder.build();
    const auto rvec = providerRvec(topo);
    EXPECT_NEAR(rvec.at(0, 1), 2000.0 / 5000.0, 1e-9);
    EXPECT_DOUBLE_EQ(rvec.at(0, 0), 1.0);
}

TEST(Heterogeneity, AssociationSumsVmBandwidth)
{
    net::TopologyBuilder builder;
    builder.addDc(net::RegionCatalog::byId("us-east-1"),
                  net::VmTypeCatalog::t2medium(), 3);
    builder.addDc(net::RegionCatalog::byId("eu-west-1"),
                  net::VmTypeCatalog::t2medium(), 2);
    const auto topo = builder.build();

    BwMatrix perVm = BwMatrix::square(2, 0.0);
    perVm.at(0, 1) = perVm.at(1, 0) = 400.0;
    const auto combined = associateBw(topo, perVm);
    // min(3, 2) VM pairs -> 800, still under the backbone cap.
    EXPECT_NEAR(combined.at(0, 1), 800.0, 1e-9);
}

TEST(Heterogeneity, ChunkConnectionsSplitsPlans)
{
    net::TopologyBuilder builder;
    builder.addDc(net::RegionCatalog::byId("us-east-1"),
                  net::VmTypeCatalog::t2medium(), 2);
    builder.addDc(net::RegionCatalog::byId("eu-west-1"),
                  net::VmTypeCatalog::t2medium(), 1);
    const auto topo = builder.build();

    ConnMatrix plan = ConnMatrix::square(2, 6);
    const auto perWorker = chunkConnections(topo, plan);
    ASSERT_EQ(perWorker.size(), 2u);
    // DC 0 has 2 workers -> ceil(6 / 2) = 3 each; DC 1 has 1 -> 6.
    EXPECT_EQ(perWorker[0].at(0, 1), 3);
    EXPECT_EQ(perWorker[1].at(0, 1), 3);
    EXPECT_EQ(perWorker[0].at(1, 0), 6);
    EXPECT_EQ(perWorker[1].at(1, 0), 0); // DC 1 has no second worker
}

// ---- runtime BW predictor ---------------------------------------------------------------

namespace {

/** Deterministic synthetic Table 3 training set (golden fixture). */
ml::Dataset
goldenTrainingData()
{
    Rng rng(20250731);
    ml::Dataset data(monitor::kFeatureCount, 1);
    for (int s = 0; s < 400; ++s) {
        const double n = 2.0 + rng.uniformInt(0, 6);
        const double snap = rng.uniform(20.0, 2000.0);
        const double mem = rng.uniform(0.1, 0.9);
        const double cpu = rng.uniform(0.1, 0.9);
        const double retrans = rng.uniform(0.0, 0.5);
        const double dist = rng.uniform(100.0, 11000.0);
        const double target = snap * (1.1 - 0.3 * retrans) -
                              0.01 * dist + 40.0 * mem +
                              rng.normal(0.0, 25.0);
        data.add({n, snap, mem, cpu, retrans, dist}, target);
    }
    return data;
}

/** The golden fixture's predictor and snapshot mesh. */
std::pair<RuntimeBwPredictor, BwMatrix>
goldenFixture()
{
    ml::ForestConfig cfg;
    cfg.nEstimators = 25;
    RuntimeBwPredictor predictor(cfg);
    predictor.train(goldenTrainingData(), 77);

    BwMatrix snapshot = BwMatrix::square(4, 0.0);
    Rng snapRng(99);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            snapshot.at(i, j) =
                i == j ? 5800.0 : snapRng.uniform(50.0, 1500.0);
    return {std::move(predictor), std::move(snapshot)};
}

} // namespace

TEST(RuntimeBwPredictor, PredictMatrixMatchesPrePrGoldenMatrix)
{
    // Golden values captured from the interpreted per-pair reference
    // path (see CHANGES.md): the batched compiled path must reproduce
    // them bit for bit. Re-locked when the trainer's tie order was
    // canonicalized to (feature value, sample index) for the
    // presorted exact engine — a trainer change (three marginal
    // tie-break splits moved), not an inference change; inference
    // parity is still locked by BatchedMatrixMatchesPerPairReference
    // below and the ml_test compiled-forest suite.
    const double kGolden[4][4] = {
        {5800.0, 544.52859933535603, 868.59469093581788,
         561.2524390317808},
        {1259.2259436995178, 5800.0, 1238.0036475617221,
         308.33605793846647},
        {413.34217807457389, 57.589963821803032, 5800.0,
         1267.9513825785264},
        {879.52877075997878, 1144.9202077429572, 257.22110734868579,
         5800.0},
    };

    const auto topo = net::TopologyBuilder::paperTestbed(
        4, net::VmTypeCatalog::t3nano());
    const auto [predictor, snapshot] = goldenFixture();
    const auto predicted = predictor.predictMatrix(topo, snapshot);
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = 0; j < 4; ++j)
            EXPECT_EQ(predicted.at(i, j), kGolden[i][j])
                << "pair (" << i << ", " << j << ")";
}

TEST(RuntimeBwPredictor, BatchedMatrixMatchesPerPairReference)
{
    // The batched single-predictBatch path must be bit-identical to
    // predicting each pair individually through the interpreted
    // ensemble (the pre-PR code shape).
    const auto topo = net::TopologyBuilder::paperTestbed(
        4, net::VmTypeCatalog::t3nano());
    const auto [predictor, snapshot] = goldenFixture();
    const auto predicted = predictor.predictMatrix(topo, snapshot);

    const monitor::HostLoad load;
    for (net::DcId i = 0; i < 4; ++i) {
        for (net::DcId j = 0; j < 4; ++j) {
            if (i == j) {
                EXPECT_EQ(predicted.at(i, j), snapshot.at(i, j));
                continue;
            }
            const double cap = topo.connCap(i, j);
            const double retrans = std::max(
                0.0,
                1.0 - snapshot.at(i, j) / std::max(cap, 1.0));
            const auto features = monitor::pairFeatures(
                topo, snapshot, i, j, load, retrans);
            const double reference = std::max(
                0.0, predictor.forest().predict(features)[0]);
            EXPECT_EQ(predicted.at(i, j), reference);
            EXPECT_EQ(predicted.at(i, j),
                      predictor.predictPair(features));
        }
    }
}

// ---- facade ---------------------------------------------------------------------------

TEST(Wanify, FeatureTogglesShapeThePlan)
{
    WanifyConfig cfg;
    cfg.features = WanifyFeatures::localOnly();
    Wanify wanify(cfg);
    const auto plan = wanify.plan(paperExample());
    // Local-only: static [1, M] range everywhere off-diagonal.
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(plan.minCons.at(i, j), 1);
            EXPECT_EQ(plan.maxCons.at(i, j),
                      i == j ? 1 : cfg.global.maxConnections);
        }
    }
}

TEST(Wanify, RequiresTrainedPredictor)
{
    Wanify wanify;
    EXPECT_FALSE(wanify.trained());
    EXPECT_THROW(wanify.predictor(), FatalError);
    EXPECT_THROW(
        wanify.setPredictor(std::make_shared<RuntimeBwPredictor>()),
        FatalError);
}
