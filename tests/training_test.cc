/**
 * @file
 * Tests for the TrainingContext split engines: the presorted exact
 * engine locked bit-identical against the nodeSort reference (random
 * datasets, heavy ties, multi-output targets, minSamples edges, warm
 * starts, parallel growth), the histogram engine's accuracy and
 * BinIndex sharing/extension semantics, and the retrain-latency
 * aggregation plumbing.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hh"
#include "core/predictor.hh"
#include "core/wanify.hh"
#include "experiments/runner.hh"
#include "ml/bin_index.hh"
#include "ml/metrics.hh"
#include "ml/random_forest.hh"
#include "ml/training_context.hh"

using namespace wanify;
using namespace wanify::ml;

namespace {

/** Continuous features, y = 3a + b - 2c + noise. */
Dataset
continuousData(std::size_t n, std::uint64_t seed,
               std::size_t outputs = 1)
{
    Rng rng(seed);
    Dataset data(3, outputs);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = rng.uniform(0.0, 10.0);
        const double b = rng.uniform(0.0, 10.0);
        const double c = rng.uniform(0.0, 1.0);
        std::vector<double> y;
        for (std::size_t k = 0; k < outputs; ++k)
            y.push_back(3.0 * a + b * static_cast<double>(k + 1) -
                        2.0 * c + rng.normal(0.0, 0.5));
        data.add({a, b, c}, y);
    }
    return data;
}

/** Heavy ties: discrete features (as the Table 3 cluster size) and
 *  duplicated rows, the regime where tie handling decides splits. */
Dataset
tiedData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset data(3, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double a = static_cast<double>(rng.uniformInt(0, 5));
        const double b = static_cast<double>(rng.uniformInt(0, 2));
        const double c =
            rng.bernoulli(0.3) ? 7.0 : rng.uniform(0.0, 10.0);
        data.add({a, b, c},
                 4.0 * a - b + 0.5 * c + rng.normal(0.0, 0.3));
        if (rng.bernoulli(0.25)) // exact duplicate rows
            data.add({a, b, c}, 4.0 * a - b + 0.5 * c);
    }
    return data;
}

ForestConfig
configFor(SplitMode mode, std::size_t trees = 12,
          std::size_t maxFeatures = 2)
{
    ForestConfig cfg;
    cfg.nEstimators = trees;
    cfg.bootstrapFraction = 0.8;
    cfg.tree.maxFeatures = maxFeatures;
    cfg.tree.splitMode = mode;
    return cfg;
}

/** Node-by-node, bit-for-bit forest equality. */
void
expectForestsIdentical(const RandomForestRegressor &a,
                       const RandomForestRegressor &b)
{
    ASSERT_EQ(a.treeCount(), b.treeCount());
    for (std::size_t t = 0; t < a.treeCount(); ++t) {
        const auto &na = a.trees()[t].nodes();
        const auto &nb = b.trees()[t].nodes();
        ASSERT_EQ(na.size(), nb.size()) << "tree " << t;
        for (std::size_t i = 0; i < na.size(); ++i) {
            EXPECT_EQ(na[i].feature, nb[i].feature)
                << "tree " << t << " node " << i;
            EXPECT_EQ(na[i].threshold, nb[i].threshold)
                << "tree " << t << " node " << i;
            EXPECT_EQ(na[i].left, nb[i].left);
            EXPECT_EQ(na[i].right, nb[i].right);
            ASSERT_EQ(na[i].leafValue.size(), nb[i].leafValue.size());
            for (std::size_t k = 0; k < na[i].leafValue.size(); ++k)
                EXPECT_EQ(na[i].leafValue[k], nb[i].leafValue[k]);
        }
        const auto &ga = a.trees()[t].featureGains();
        const auto &gb = b.trees()[t].featureGains();
        ASSERT_EQ(ga.size(), gb.size());
        for (std::size_t f = 0; f < ga.size(); ++f)
            EXPECT_EQ(ga[f], gb[f]) << "tree " << t << " gain " << f;
    }
    // OOB is computed from identical trees and bags.
    if (std::isnan(a.oobR2())) {
        EXPECT_TRUE(std::isnan(b.oobR2()));
    } else {
        EXPECT_EQ(a.oobR2(), b.oobR2());
    }
}

} // namespace

// ---- exact vs nodeSort parity ----------------------------------------------

TEST(TrainingParity, ExactBitIdenticalOnRandomDatasets)
{
    for (std::uint64_t seed : {11ull, 22ull, 33ull}) {
        const auto data = continuousData(300, seed);
        RandomForestRegressor exact(configFor(SplitMode::exact));
        RandomForestRegressor ref(configFor(SplitMode::nodeSort));
        exact.fit(data, seed);
        ref.fit(data, seed);
        expectForestsIdentical(exact, ref);
    }
}

TEST(TrainingParity, ExactBitIdenticalOnHeavyTies)
{
    for (std::uint64_t seed : {5ull, 6ull}) {
        const auto data = tiedData(250, seed);
        RandomForestRegressor exact(configFor(SplitMode::exact));
        RandomForestRegressor ref(configFor(SplitMode::nodeSort));
        exact.fit(data, seed);
        ref.fit(data, seed);
        expectForestsIdentical(exact, ref);
    }
}

TEST(TrainingParity, ExactBitIdenticalMultiOutput)
{
    const auto data = continuousData(250, 77, /*outputs=*/3);
    RandomForestRegressor exact(configFor(SplitMode::exact));
    RandomForestRegressor ref(configFor(SplitMode::nodeSort));
    exact.fit(data, 78);
    ref.fit(data, 78);
    expectForestsIdentical(exact, ref);
}

TEST(TrainingParity, ExactBitIdenticalAtMinSamplesEdges)
{
    // Tiny nodes and tight limits: the regime where a one-off in the
    // minSamplesSplit/minSamplesLeaf checks or the tie skipping
    // changes the tree shape.
    for (std::size_t minSplit : {2u, 4u, 7u}) {
        for (std::size_t minLeaf : {1u, 2u, 3u}) {
            for (std::size_t nSamples : {6u, 13u, 40u}) {
                auto ce = configFor(SplitMode::exact, 6, 0);
                auto cn = configFor(SplitMode::nodeSort, 6, 0);
                ce.tree.minSamplesSplit = cn.tree.minSamplesSplit =
                    minSplit;
                ce.tree.minSamplesLeaf = cn.tree.minSamplesLeaf =
                    minLeaf;
                ce.tree.maxDepth = cn.tree.maxDepth = 5;
                const auto data = tiedData(nSamples, 90 + nSamples);
                RandomForestRegressor exact(ce), ref(cn);
                exact.fit(data, 91);
                ref.fit(data, 91);
                expectForestsIdentical(exact, ref);
            }
        }
    }
}

TEST(TrainingParity, ExactWarmStartRegrowthBitIdentical)
{
    auto data = tiedData(200, 101);
    RandomForestRegressor exact(configFor(SplitMode::exact));
    RandomForestRegressor ref(configFor(SplitMode::nodeSort));
    exact.fit(data, 102);
    ref.fit(data, 102);

    data.append(continuousData(80, 103));
    exact.warmStart(data, 5, 104);
    ref.warmStart(data, 5, 104);
    expectForestsIdentical(exact, ref);
}

TEST(TrainingParity, ExactParallelAndSequentialGrowthBitIdentical)
{
    // The shared TrainingContext is read-only across tree tasks and
    // scratch is per-thread: pool growth must equal sequential.
    const auto data = tiedData(300, 111);
    auto seq = configFor(SplitMode::exact, 16);
    auto par = configFor(SplitMode::exact, 16);
    seq.nThreads = 1;
    par.nThreads = 4;
    RandomForestRegressor a(seq), b(par);
    a.fit(data, 112);
    b.fit(data, 112);
    expectForestsIdentical(a, b);
}

TEST(TrainingParity, TreeContextFitMatchesDatasetFit)
{
    const auto data = tiedData(150, 121);
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < data.size(); i += 2)
        indices.push_back(i);

    TreeConfig cfg;
    cfg.maxFeatures = 2;
    DecisionTreeRegressor direct(cfg), viaContext(cfg);
    Rng rngA(122), rngB(122);
    direct.fit(data, indices, rngA);
    const TrainingContext ctx(data, SplitMode::exact);
    viaContext.fit(ctx, indices, rngB);

    ASSERT_EQ(direct.nodeCount(), viaContext.nodeCount());
    for (std::size_t i = 0; i < direct.nodes().size(); ++i) {
        EXPECT_EQ(direct.nodes()[i].threshold,
                  viaContext.nodes()[i].threshold);
        EXPECT_EQ(direct.nodes()[i].feature,
                  viaContext.nodes()[i].feature);
    }
}

// ---- histogram mode --------------------------------------------------------

TEST(HistogramTraining, OobWithinEpsilonOfExact)
{
    const auto data = continuousData(600, 131);
    RandomForestRegressor exact(configFor(SplitMode::exact, 25));
    RandomForestRegressor hist(configFor(SplitMode::histogram, 25));
    exact.fit(data, 132);
    hist.fit(data, 132);
    ASSERT_FALSE(std::isnan(exact.oobR2()));
    ASSERT_FALSE(std::isnan(hist.oobR2()));
    EXPECT_NEAR(hist.oobR2(), exact.oobR2(), 0.05);

    // Holdout predictions track the exact-mode forest closely.
    const auto test = continuousData(150, 133);
    std::vector<double> truth, pe, ph;
    for (std::size_t i = 0; i < test.size(); ++i) {
        truth.push_back(test.target(i));
        pe.push_back(exact.predictScalar(test.x(i)));
        ph.push_back(hist.predictScalar(test.x(i)));
    }
    EXPECT_LT(mae(truth, ph), mae(truth, pe) * 1.25 + 0.1);
}

TEST(HistogramTraining, DeterministicAndExactThresholdsOnDiscrete)
{
    // Same seed -> identical forests; on all-discrete features every
    // distinct value is its own bin, so the candidate thresholds are
    // exactly the exact-mode midpoints between neighboring values.
    const auto data = tiedData(200, 141);
    RandomForestRegressor a(configFor(SplitMode::histogram));
    RandomForestRegressor b(configFor(SplitMode::histogram));
    a.fit(data, 142);
    b.fit(data, 142);
    expectForestsIdentical(a, b);

    const auto bins = BinIndex::build(data);
    ASSERT_NE(bins, nullptr);
    EXPECT_EQ(bins->binCount(0), 6u); // values 0..5
    EXPECT_DOUBLE_EQ(bins->threshold(0, 0), 0.5);
    EXPECT_DOUBLE_EQ(bins->threshold(0, 4), 4.5);
}

TEST(HistogramTraining, ForestSharesAndExtendsBinIndex)
{
    auto data = continuousData(300, 151);
    RandomForestRegressor forest(configFor(SplitMode::histogram));
    forest.fit(data, 152);
    const auto bins = forest.binIndex();
    ASSERT_NE(bins, nullptr);
    EXPECT_EQ(bins->rows(), 300u);

    // Copies share the index; exact-mode forests have none.
    const RandomForestRegressor copy = forest;
    EXPECT_EQ(copy.binIndex().get(), bins.get());
    RandomForestRegressor exact(configFor(SplitMode::exact));
    exact.fit(data, 153);
    EXPECT_EQ(exact.binIndex(), nullptr);

    // Warm start on the grown dataset extends rather than rebuilds:
    // the original rows keep their codes and the original edges keep
    // their thresholds; only the new rows are coded.
    data.append(continuousData(100, 154));
    forest.warmStart(data, 5, 155);
    const auto extended = forest.binIndex();
    ASSERT_NE(extended, nullptr);
    EXPECT_EQ(extended->rows(), 400u);
    for (std::size_t f = 0; f < 3; ++f) {
        EXPECT_EQ(extended->binCount(f), bins->binCount(f));
        for (std::size_t i = 0; i < 300; i += 37)
            EXPECT_EQ(extended->code(i, f), bins->code(i, f));
        for (std::size_t b = 0; b + 1 < bins->binCount(f); b += 11)
            EXPECT_EQ(extended->threshold(f, b), bins->threshold(f, b));
    }
    // The base copy still sees the original, un-mutated index.
    EXPECT_EQ(copy.binIndex()->rows(), 300u);
}

TEST(HistogramTraining, WarmStartWithOutOfRangeRowsSurvives)
{
    // Regression test: appended gauges can carry values outside the
    // original bin edges or inside between-bin gaps, where the bin
    // code and the stored threshold disagree — training partitions by
    // code, so the grower must not hit a degenerate split.
    auto data = continuousData(250, 161);
    RandomForestRegressor forest(configFor(SplitMode::histogram, 15));
    forest.fit(data, 162);

    Rng rng(163);
    for (int i = 0; i < 120; ++i) {
        // Deliberately out of the training range on every feature.
        const double a = rng.uniform(-5.0, 20.0);
        const double b = rng.uniform(-5.0, 20.0);
        const double c = rng.uniform(-2.0, 3.0);
        data.add({a, b, c}, 3.0 * a + b - 2.0 * c);
    }
    forest.warmStart(data, 10, 164);
    EXPECT_EQ(forest.treeCount(), 25u);
    EXPECT_EQ(forest.binIndex()->rows(), data.size());
    // Still a sane regressor after the extension.
    EXPECT_NEAR(forest.predictScalar({5.0, 5.0, 0.5}), 19.0, 6.0);
}

TEST(BinIndex, CodesAreMonotoneAndClampOutOfRange)
{
    Dataset data(1, 1);
    for (double v : {1.0, 2.0, 2.0, 5.0, 9.0})
        data.add({v}, v);
    const auto bins = BinIndex::build(data);
    EXPECT_EQ(bins->binCount(0), 4u);
    EXPECT_EQ(bins->codeValue(0, 1.0), 0);
    EXPECT_EQ(bins->codeValue(0, 2.0), 1);
    EXPECT_EQ(bins->codeValue(0, 3.0), 2); // gap -> next bin up
    EXPECT_EQ(bins->codeValue(0, 9.0), 3);
    EXPECT_EQ(bins->codeValue(0, -4.0), 0);  // clamp low
    EXPECT_EQ(bins->codeValue(0, 100.0), 3); // clamp high

    Dataset shrunk(1, 1);
    shrunk.add({1.0}, 1.0);
    EXPECT_THROW(bins->extended(shrunk), FatalError);
}

TEST(BinIndex, QuantileBinningCapsBinCount)
{
    Dataset data(1, 1);
    Rng rng(171);
    for (int i = 0; i < 4000; ++i) {
        const double v = rng.uniform(0.0, 1000.0);
        data.add({v}, v);
    }
    const auto bins = BinIndex::build(data);
    EXPECT_LE(bins->binCount(0), BinIndex::kMaxBins);
    EXPECT_GE(bins->binCount(0), BinIndex::kMaxBins / 2);
    // For *training* values, codes and thresholds agree: x <=
    // threshold(b) iff code <= b. (Unseen values inside a between-bin
    // gap may disagree — that is why histogram training partitions by
    // code, not threshold.)
    for (std::size_t i = 0; i < data.size(); i += 13) {
        const double v = data.x(i)[0];
        const std::size_t code = bins->codeValue(0, v);
        if (code + 1 < bins->binCount(0))
            EXPECT_LE(v, bins->threshold(0, code));
        if (code > 0)
            EXPECT_GT(v, bins->threshold(0, code - 1));
    }
}

// ---- facade plumbing -------------------------------------------------------

TEST(WanifyRetrain, HistogramBinIndexRidesWarmStarts)
{
    // The facade's retrain copies the base predictor, so the shared
    // BinIndex travels with it and the warm start extends it against
    // the grown campaign dataset instead of re-binning.
    core::WanifyConfig cfg;
    cfg.forest.nEstimators = 10;
    cfg.forest.tree.splitMode = ml::SplitMode::histogram;
    cfg.retrainExtraTrees = 5;
    core::Wanify wanify(cfg);

    auto makeRows = [](std::size_t n, std::uint64_t seed) {
        Rng rng(seed);
        Dataset rows(monitor::kFeatureCount, 1);
        for (std::size_t i = 0; i < n; ++i) {
            rows.add({2.0 + rng.uniformInt(0, 6),
                      rng.uniform(20.0, 2000.0),
                      rng.uniform(0.1, 0.9), rng.uniform(0.1, 0.9),
                      rng.uniform(0.0, 0.5),
                      rng.uniform(100.0, 11000.0)},
                     rng.uniform(50.0, 1500.0));
        }
        return rows;
    };

    auto base =
        std::make_shared<core::RuntimeBwPredictor>(cfg.forest);
    auto campaign = makeRows(200, 181);
    base->train(campaign, 182);
    ASSERT_NE(base->forest().binIndex(), nullptr);
    EXPECT_EQ(base->forest().binIndex()->rows(), 200u);
    wanify.setPredictor(base);

    campaign.append(makeRows(50, 183));
    const auto retrained = wanify.retrain(campaign, 184);
    ASSERT_NE(retrained, nullptr);
    EXPECT_EQ(retrained->forest().treeCount(), 15u);
    EXPECT_EQ(retrained->forest().binIndex()->rows(), 250u);
    // The pinned base snapshot keeps its original, un-mutated index.
    EXPECT_EQ(base->forest().binIndex()->rows(), 200u);
    for (std::size_t f = 0; f < monitor::kFeatureCount; ++f)
        EXPECT_EQ(retrained->forest().binIndex()->binCount(f),
                  base->forest().binIndex()->binCount(f));
}

// ---- retrain latency aggregation -------------------------------------------

TEST(RetrainLatency, AggregateAveragesAcrossRetrains)
{
    gda::QueryResult a, b, c;
    a.retrainsApplied = 2;
    a.retrainLatencies = {0.10, 0.30};
    a.retrainCpuSeconds = 0.40;
    b.retrainsApplied = 1;
    b.retrainLatencies = {0.20};
    b.retrainCpuSeconds = 0.20;
    // c never retrained.

    const auto agg = experiments::aggregate({a, b, c});
    EXPECT_EQ(agg.totalRetrainsApplied, 3u);
    EXPECT_NEAR(agg.totalRetrainSeconds, 0.60, 1e-12);
    EXPECT_NEAR(agg.meanRetrainSeconds, 0.20, 1e-12);

    const auto none = experiments::aggregate({c});
    EXPECT_EQ(none.meanRetrainSeconds, 0.0);
    EXPECT_EQ(none.totalRetrainSeconds, 0.0);
}
